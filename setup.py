"""Legacy setup shim (the environment's setuptools lacks PEP 517 wheel
support, so ``pip install -e . --no-use-pep517`` goes through this)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of PUBS (MICRO 2018): prioritizing the issue of "
        "instructions in unconfident branch slices"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
