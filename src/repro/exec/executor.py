"""Parallel sweep executor: dedup, cache, fan out, reassemble.

Every evaluation in the repo reduces to a batch of independent, deterministic
(workload, config, budget) simulations.  :class:`SweepExecutor` takes such a
batch and

1. **deduplicates** it by content hash, so a result requested by several
   figures (the Fig. 9 scatter reuses every Fig. 8 run) is simulated once;
2. serves what it can from the **persistent result cache**
   (:mod:`repro.exec.cache`);
3. fans the remaining misses out over a
   :class:`concurrent.futures.ProcessPoolExecutor` sized by the ``--jobs``
   CLI flag / ``REPRO_JOBS`` environment variable / ``os.cpu_count()``;
4. returns results in request order, so callers are oblivious to scheduling.

Because each simulation is deterministic (seeded generators, fixed dynamic
stream) and jobs share no state, a parallel or cached batch is *identical*
to a serial fresh one -- the property the tier-1 executor tests pin down.

A batch of one, or ``jobs=1``, runs inline in this process: no pool, no
pickling, no surprises for small calls like ``run_pair``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.simulator import SimulationResult
from .cache import ResultCache, cache_enabled_by_env
from .jobs import SimJob, execute_job, job_key


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` if set and positive, else cpu count."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            value = int(env)
            if value > 0:
                return value
        except ValueError:
            pass
    return os.cpu_count() or 1


def _execute_entry(entry: Tuple[str, SimJob]) -> Tuple[str, SimulationResult]:
    """Worker-side shim: run one keyed job (module-level for pickling)."""
    key, job = entry
    return key, execute_job(job)


class SweepExecutor:
    """Batch runner with job dedup, persistent caching and a process pool."""

    def __init__(self, jobs: Optional[int] = None,
                 cache: "Optional[ResultCache | bool]" = None):
        """``jobs``: worker count (None -> :func:`default_jobs`).

        ``cache``: a :class:`ResultCache` to use, ``False`` to disable
        caching, or None to follow the environment policy (enabled unless
        ``REPRO_CACHE=0``, directory from ``REPRO_CACHE_DIR``).
        """
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        if cache is None:
            self.cache: Optional[ResultCache] = (
                ResultCache() if cache_enabled_by_env() else None)
        elif cache is False:
            self.cache = None
        elif cache is True:
            self.cache = ResultCache()
        else:
            self.cache = cache
        #: Simulations actually executed (cache misses after dedup).
        self.simulations_run = 0
        #: Requests answered by batch-level deduplication.
        self.deduplicated = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, batch: Sequence[SimJob]) -> List[SimulationResult]:
        """Run every job in ``batch``; results in request order."""
        keys = [job_key(job) for job in batch]
        unique: Dict[str, SimJob] = {}
        for key, job in zip(keys, batch):
            unique.setdefault(key, job)
        self.deduplicated += len(batch) - len(unique)

        results: Dict[str, SimulationResult] = {}
        misses: List[Tuple[str, SimJob]] = []
        for key, job in unique.items():
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                results[key] = cached
            else:
                misses.append((key, job))

        if misses:
            self.simulations_run += len(misses)
            workers = min(self.jobs, len(misses))
            if workers > 1:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    produced = list(pool.map(_execute_entry, misses))
            else:
                produced = [_execute_entry(entry) for entry in misses]
            for key, result in produced:
                results[key] = result
                if self.cache is not None:
                    self.cache.put(key, result)

        return [results[key] for key in keys]

    def run_one(self, job: SimJob) -> SimulationResult:
        """Run a single job (inline; still deduped against the cache)."""
        return self.run([job])[0]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def summary(self) -> str:
        parts = [f"jobs={self.jobs}",
                 f"simulations={self.simulations_run}",
                 f"deduplicated={self.deduplicated}"]
        if self.cache is not None:
            parts.append(self.cache.stats.summary())
        else:
            parts.append("cache=off")
        return " ".join(parts)
