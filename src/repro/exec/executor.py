"""Parallel sweep executor: dedup, cache, batch, dispatch, reassemble.

Every evaluation in the repo reduces to a batch of independent,
deterministic (workload, config, budget) simulations.
:class:`SweepExecutor` is the *planner* for such a batch:

1. **deduplicates** it by content hash -- both within one call and across
   calls of the same executor (one suite submission), so a result requested
   by several figures (the Fig. 9 scatter reuses every Fig. 8 run) or by
   several sampled cells is simulated once even on a cold cache;
2. serves what it can from the **persistent result cache**
   (:mod:`repro.exec.cache`);
3. **groups** the remaining replay-mode misses by
   :func:`~repro.exec.jobs.batch_signature` into :class:`~repro.exec.jobs.
   BatchJob` units (``--batch`` / ``REPRO_BATCH``; see :mod:`repro.batch`),
   so N same-window configs walk their trace once instead of N times;
4. hands the resulting units to an :class:`~repro.exec.backend.
   ExecutionBackend` -- inline, a local process pool sized by ``--jobs`` /
   ``REPRO_JOBS``, or the shared job queue that ``repro worker``
   processes drain (``--backend`` / ``REPRO_BACKEND``);
5. returns results in request order, so callers are oblivious to
   scheduling *and* to which backend (or which host) simulated what.

Because each simulation is deterministic (seeded generators, fixed dynamic
stream) and batch members keep private microarchitectural state, a parallel,
cached, batched or queued run is *identical* to a serial fresh one -- the
property the backend-conformance suite pins down.  Every batch member keeps
its own job key, so warm-cache behavior is unchanged: cached members are
served before grouping and never re-simulated.

The default backend is the process pool, whose "a batch of one, or
``jobs=1``, runs inline in this process" rule keeps small calls like
``run_pair`` free of pool and pickling overhead.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.simulator import SimulationResult
from .backend import ExecutionBackend, ProcessPoolBackend, create_backend
from .cache import ResultCache, cache_enabled_by_env
from .jobs import SimJob, batch_signature, job_key

#: Default cap on members per batched replay unit.  Large enough to cover
#: a Fig. 10-style sweep in one walk, small enough that one unit does not
#: serialize a whole many-config sweep behind a single worker.
DEFAULT_BATCH_LIMIT = 16


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` if set and positive, else the CPUs
    *this process may actually use*.

    Containers and shared queue hosts routinely pin processes to a CPU
    subset (and some report ``os.cpu_count() is None``), so the
    affinity mask -- when the platform exposes one -- is the honest
    parallelism bound: trusting the raw CPU count oversubscribes every
    worker on the host.  Falls back to ``os.cpu_count()``, then 1.
    """
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            value = int(env)
            if value > 0:
                return value
        except ValueError:
            pass
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # non-Linux, or query refused
        return os.cpu_count() or 1


def default_batch_limit() -> int:
    """Batch cap: ``REPRO_BATCH`` if set and valid, else the default.

    ``0`` (or ``1``) disables batched grouping; invalid values fall back
    to :data:`DEFAULT_BATCH_LIMIT`, mirroring :func:`default_jobs`.
    """
    env = os.environ.get("REPRO_BATCH")
    if env is not None:
        try:
            value = int(env)
            if value >= 0:
                return value
        except ValueError:
            pass
    return DEFAULT_BATCH_LIMIT


_Entry = Tuple[str, SimJob]


class SweepExecutor:
    """Batch planner: dedup + cache + batching over a pluggable backend."""

    def __init__(self, jobs: Optional[int] = None,
                 cache: "Optional[ResultCache | bool]" = None,
                 batch: Optional[int] = None,
                 backend: "Optional[ExecutionBackend | str]" = None):
        """``jobs``: worker count (None -> :func:`default_jobs`).

        ``cache``: a :class:`ResultCache` to use, ``False`` to disable
        caching, or None to follow the environment policy (enabled unless
        ``REPRO_CACHE=0``, directory from ``REPRO_CACHE_DIR``).

        ``batch``: max members per batched replay unit; ``0`` or ``1``
        disables grouping, None follows ``REPRO_BATCH`` (default
        :data:`DEFAULT_BATCH_LIMIT`).

        ``backend``: where planned units execute -- an
        :class:`ExecutionBackend` instance, a registered spec name
        (``"inline"`` / ``"process"`` / ``"queue"``), or None to follow
        ``REPRO_BACKEND`` (default: the local process pool, which
        preserves the classic executor behavior bit for bit).
        """
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        self.batch = default_batch_limit() if batch is None \
            else max(0, int(batch))
        if isinstance(backend, ExecutionBackend):
            self.backend = backend
        else:
            self.backend = create_backend(backend, jobs=self.jobs)
        if cache is None:
            self.cache: Optional[ResultCache] = (
                ResultCache() if cache_enabled_by_env() else None)
        elif cache is False:
            self.cache = None
        elif cache is True:
            self.cache = ResultCache()
        else:
            self.cache = cache
        #: Simulations actually executed (cache misses after dedup).
        self.simulations_run = 0
        #: Requests answered by deduplication (same key in one call, or
        #: already produced by an earlier call of this executor).
        self.deduplicated = 0
        #: Batched replay units executed, and the jobs they covered.
        self.batches_run = 0
        self.batched_jobs = 0
        #: Results produced by this executor, keyed by job key: the
        #: within-submission dedup memo.  Two cells that hash identically
        #: simulate once even with the persistent cache cold or disabled.
        self._produced: Dict[str, SimulationResult] = {}

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _plan_units(self, misses: List[_Entry]) -> List[List[_Entry]]:
        """Group cache misses into execution units, request order kept.

        Replay jobs sharing a :func:`batch_signature` form one unit (up
        to ``self.batch`` members; larger groups split); live-mode jobs
        and singletons stay individual units.
        """
        if self.batch < 2:
            return [[entry] for entry in misses]
        sequence: List[List[_Entry]] = []
        buckets: Dict[str, List[_Entry]] = {}
        for entry in misses:
            signature = batch_signature(entry[1])
            if signature is None:
                sequence.append([entry])
                continue
            bucket = buckets.get(signature)
            if bucket is None:
                bucket = buckets[signature] = [entry]
                sequence.append(bucket)
            else:
                bucket.append(entry)
        units: List[List[_Entry]] = []
        for bucket in sequence:
            for i in range(0, len(bucket), self.batch):
                units.append(bucket[i:i + self.batch])
        return units

    def run(self, batch: Sequence[SimJob]) -> List[SimulationResult]:
        """Run every job in ``batch``; results in request order."""
        keys = [job_key(job) for job in batch]
        unique: Dict[str, SimJob] = {}
        for key, job in zip(keys, batch):
            unique.setdefault(key, job)
        self.deduplicated += len(batch) - len(unique)

        results: Dict[str, SimulationResult] = {}
        misses: List[_Entry] = []
        for key, job in unique.items():
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                results[key] = cached
                continue
            produced = self._produced.get(key)
            if produced is not None:
                results[key] = produced
                self.deduplicated += 1
                continue
            misses.append((key, job))

        if misses:
            self.simulations_run += len(misses)
            units = self._plan_units(misses)
            for unit in units:
                if len(unit) > 1:
                    self.batches_run += 1
                    self.batched_jobs += len(unit)
            produced_units = self.backend.run_units(units)
            for unit_results in produced_units:
                for key, result in unit_results:
                    results[key] = result
                    self._produced[key] = result
                    if self.cache is not None:
                        self.cache.put(key, result)

        return [results[key] for key in keys]

    def run_one(self, job: SimJob) -> SimulationResult:
        """Run a single job (inline; still deduped against the cache)."""
        return self.run([job])[0]

    def close(self) -> None:
        """Release the backend's held resources (pools, connections)."""
        self.backend.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def summary(self) -> str:
        parts = [f"jobs={self.jobs}",
                 f"simulations={self.simulations_run}",
                 f"deduplicated={self.deduplicated}"]
        if not isinstance(self.backend, ProcessPoolBackend):
            # The classic local pool stays implicit; anything else is
            # worth a word in the spend line.
            parts.insert(1, f"backend={self.backend.describe()}")
        if self.batch >= 2:
            parts.append(f"batched={self.batched_jobs}"
                         f"(in {self.batches_run} batches)")
        else:
            parts.append("batch=off")
        if self.cache is not None:
            parts.append(self.cache.stats.summary())
        else:
            parts.append("cache=off")
        return " ".join(parts)
