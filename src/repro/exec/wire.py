"""Versioned JSON wire codec for run requests, jobs and fabric payloads.

The distributed sweep fabric moves three kinds of values between
processes that do not share memory: queue payloads (``SimJob`` units a
``repro worker`` leases), serve-protocol messages (``RunRequest`` plus
machine configurations submitted by remote clients), and the CLI's
``--request-file`` input.  All three share one canonical serialization,
defined here, so a request round-trips bit-identically no matter which
transport carried it.

The codec is the reversible sibling of :func:`repro.exec.serialize.
canonicalize` (which is hash-oriented and one-way): dataclasses encode
as ``{"__dc__": "<module>:<qualname>", "fields": {...}}``, enums as
``{"__enum__": "<module>:<qualname>.<member>"}``, and tuples keep their
identity via ``{"__tuple__": [...]}`` so frozen dataclasses compare
equal after a round trip.  Decoding only ever imports modules inside
the ``repro`` package and only instantiates dataclasses/enums found
there -- a wire payload cannot name arbitrary callables the way a
pickle can, which is what makes the queue directory safe to share
between mutually untrusting hosts.

Every top-level payload travels in an envelope ``{"wire": <version>,
"kind": <payload kind>, "payload": ...}``.  ``WIRE_SCHEMA_VERSION``
bumps whenever the encoding itself changes shape; payload *content*
changes (new config fields) are already covered by dataclass field
defaults on decode being absent -- unknown fields raise, missing fields
fall back to the dataclass defaults, so old clients fail loudly and new
fields stay optional.
"""

from __future__ import annotations

import dataclasses
import enum
import importlib
import json
from typing import Any, Optional

#: Version of the wire encoding (envelope + marker scheme).  Distinct
#: from ``CACHE_SCHEMA_VERSION``: the cache version tracks *simulation
#: semantics*, this tracks the *serialization format* peers must agree
#: on before they can talk at all.
WIRE_SCHEMA_VERSION = 1

#: Only modules under this package may be imported while decoding.
_TRUSTED_PREFIX = "repro"

_DC_MARK = "__dc__"
_ENUM_MARK = "__enum__"
_TUPLE_MARK = "__tuple__"
_MARKS = (_DC_MARK, _ENUM_MARK, _TUPLE_MARK)


class WireError(ValueError):
    """A payload that cannot be encoded or decoded under this schema."""


def wire_encode(obj: Any) -> Any:
    """Render ``obj`` as a JSON-serializable, reversible structure."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        cls = type(obj)
        return {_ENUM_MARK: f"{cls.__module__}:{cls.__qualname__}.{obj.name}"}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        fields = {f.name: wire_encode(getattr(obj, f.name))
                  for f in dataclasses.fields(obj)}
        return {_DC_MARK: f"{cls.__module__}:{cls.__qualname__}",
                "fields": fields}
    if isinstance(obj, tuple):
        return {_TUPLE_MARK: [wire_encode(item) for item in obj]}
    if isinstance(obj, list):
        return [wire_encode(item) for item in obj]
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise WireError(
                    f"wire mappings need string keys, got {type(key).__name__}")
            if key in _MARKS or key == "fields":
                raise WireError(f"reserved mapping key on the wire: {key!r}")
            out[key] = wire_encode(value)
        return out
    raise WireError(f"cannot wire-encode {type(obj).__name__!r}")


def _resolve(path: str) -> Any:
    """Import ``module:QualName`` restricted to the repro package."""
    module_name, _, qualname = path.partition(":")
    if not qualname:
        raise WireError(f"malformed wire type reference: {path!r}")
    if module_name.partition(".")[0] != _TRUSTED_PREFIX:
        raise WireError(
            f"wire payloads may only reference {_TRUSTED_PREFIX}.* types, "
            f"got {path!r}")
    try:
        target = importlib.import_module(module_name)
        for part in qualname.split("."):
            target = getattr(target, part)
    except (ImportError, AttributeError) as exc:
        raise WireError(f"unknown wire type {path!r}: {exc}") from None
    return target


def wire_decode(data: Any) -> Any:
    """Reconstruct the value :func:`wire_encode` rendered as ``data``."""
    if data is None or isinstance(data, (bool, int, float, str)):
        return data
    if isinstance(data, list):
        return [wire_decode(item) for item in data]
    if isinstance(data, dict):
        if _ENUM_MARK in data:
            path, _, member = data[_ENUM_MARK].rpartition(".")
            target = _resolve(path)
            if not isinstance(target, enum.EnumMeta):
                raise WireError(f"{path!r} is not an enum")
            try:
                return target[member]
            except KeyError:
                raise WireError(
                    f"unknown enum member {member!r} of {path!r}") from None
        if _TUPLE_MARK in data:
            return tuple(wire_decode(item) for item in data[_TUPLE_MARK])
        if _DC_MARK in data:
            cls = _resolve(data[_DC_MARK])
            if not (dataclasses.is_dataclass(cls) and isinstance(cls, type)):
                raise WireError(f"{data[_DC_MARK]!r} is not a dataclass")
            fields = data.get("fields", {})
            known = {f.name for f in dataclasses.fields(cls)}
            unknown = set(fields) - known
            if unknown:
                raise WireError(
                    f"unknown field(s) for {cls.__qualname__}: "
                    f"{', '.join(sorted(unknown))}")
            try:
                return cls(**{name: wire_decode(value)
                              for name, value in fields.items()})
            except (TypeError, ValueError) as exc:
                raise WireError(
                    f"invalid {cls.__qualname__} payload: {exc}") from None
        return {key: wire_decode(value) for key, value in data.items()}
    raise WireError(f"cannot wire-decode {type(data).__name__!r}")


# ----------------------------------------------------------------------
# Envelopes
# ----------------------------------------------------------------------

def envelope(kind: str, payload: Any) -> dict:
    """Wrap an encoded payload with the schema version and its kind."""
    return {"wire": WIRE_SCHEMA_VERSION, "kind": kind,
            "payload": wire_encode(payload)}


def open_envelope(data: Any, kind: Optional[str] = None) -> Any:
    """Validate an envelope and decode its payload.

    ``kind`` pins the expected payload kind; a version or kind mismatch
    raises :class:`WireError` with the peer's version in the message,
    so a skewed fabric fails with "speak version N" instead of a deep
    attribute error.
    """
    if not isinstance(data, dict) or "wire" not in data:
        raise WireError("not a wire envelope (missing 'wire' version)")
    version = data["wire"]
    if version != WIRE_SCHEMA_VERSION:
        raise WireError(
            f"wire schema mismatch: peer speaks version {version!r}, "
            f"this side speaks {WIRE_SCHEMA_VERSION}")
    if kind is not None and data.get("kind") != kind:
        raise WireError(
            f"expected a {kind!r} payload, got {data.get('kind')!r}")
    return wire_decode(data.get("payload"))


def dumps(kind: str, payload: Any) -> str:
    """Compact one-line JSON text of an enveloped payload."""
    return json.dumps(envelope(kind, payload), sort_keys=True,
                      separators=(",", ":"))


def loads(text: str, kind: Optional[str] = None) -> Any:
    """Decode enveloped JSON ``text`` (see :func:`open_envelope`)."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise WireError(f"malformed wire JSON: {exc}") from None
    return open_envelope(data, kind)


__all__ = [
    "WIRE_SCHEMA_VERSION",
    "WireError",
    "dumps",
    "envelope",
    "loads",
    "open_envelope",
    "wire_decode",
    "wire_encode",
]
