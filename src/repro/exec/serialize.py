"""Canonical serialization and content hashing for simulation inputs.

The persistent result cache and the sweep executor's job deduplication both
need a *stable identity* for "the same simulation": two
:class:`~repro.core.config.ProcessorConfig` objects built independently with
equal fields must produce the same key, and any field change anywhere in the
nested configuration (FU pool, predictor geometry, cache hierarchy, PUBS
knobs, workload profile, budget) must produce a different key.

Identity is the SHA-256 hex digest of a canonical JSON rendering: dataclasses
serialize as ``{"<qualified class name>": {field: value, ...}}`` with fields
in declaration order, enums as their name, and mappings with sorted keys.
Hashing the *content* rather than the object (the old
``benchmarks/common.py`` keyed a dict on the config object itself) makes keys
stable across processes and sessions -- the property the on-disk cache needs.

``CACHE_SCHEMA_VERSION`` is folded into every job fingerprint.  Bump it
whenever the timing model changes behaviour (even bit-identical refactors
are safe to leave alone): every previously cached result is then invalidated
by construction, because no new key can collide with an old one.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any

#: Version of (timing model semantics x result layout) baked into every key.
#: Bump on any change that alters simulation results or SimulationResult's
#: shape; stale on-disk entries then simply stop being found.
#: v2: SimulationResult grew verification fields (verify_level,
#: verified_commits, invariant_sweeps) and ProcessorConfig grew the
#: verify_level/verify_interval knobs -- verified and unverified runs now
#: hash to distinct keys by construction.
#: v3: ProcessorConfig grew the frontend_mode knob (trace replay) and
#: SimulationResult grew frontend_mode -- live and replay runs hash to
#: distinct keys even though their stats are bit-identical, so a cache
#: hit always tells the truth about how the result was produced.
#: v4: ProcessorConfig grew replay_region (sampled region replay) and the
#: trace format gained interval checkpoints (v2) -- a sampled region is an
#: ordinary job whose key differs from the full run's, and every region of
#: a sampling plan caches independently.
#: v5: ProcessorConfig grew the smt interference knobs and SimStats grew
#: the stall-cause split, l1i_misses and smt_injections counters -- old
#: cached results lack the new fields, so every key rolls over.
#: v6: SimStats grew the td_* topdown slot buckets and the per-cause stall
#: counters became disjoint (priority stalls no longer double-count into
#: iq_full_stall_cycles) -- cached v5 stats would fail the new
#: topdown-cycle-accounting invariant, so every key rolls over.
CACHE_SCHEMA_VERSION = 6


def canonicalize(obj: Any) -> Any:
    """Render ``obj`` as a JSON-serializable canonical structure."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return {"__enum__": f"{type(obj).__qualname__}.{obj.name}"}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {f.name: canonicalize(getattr(obj, f.name))
                  for f in dataclasses.fields(obj)}
        return {type(obj).__qualname__: fields}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(item) for item in obj]
    if isinstance(obj, dict):
        return {str(k): canonicalize(v) for k, v in sorted(obj.items())}
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__!r} for cache hashing")


def canonical_json(obj: Any) -> str:
    """Deterministic JSON text for ``obj`` (sorted keys, no whitespace)."""
    return json.dumps(canonicalize(obj), sort_keys=True,
                      separators=(",", ":"))


def fingerprint(obj: Any) -> str:
    """SHA-256 content hash of ``obj``'s canonical rendering."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def config_fingerprint(config: Any) -> str:
    """Content hash of a processor configuration (equal configs == equal)."""
    return fingerprint(config)
