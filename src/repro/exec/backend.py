"""Pluggable execution backends: where planned simulation units run.

:class:`~repro.exec.executor.SweepExecutor` is the *planner* -- it
deduplicates jobs, consults the persistent cache, and groups replay
misses into batched units.  What happens to the units that survive
planning is this module's job: an :class:`ExecutionBackend` takes a list
of units (each a sequence of ``(job_key, SimJob)`` entries) and returns
their results, one result list per unit, in submission order.

Three backends ship:

* :class:`InlineBackend` -- run every unit in this process, in order.
  The reference semantics; every other backend must be bit-identical
  to it (the conformance suite in ``tests/test_exec_backends.py``
  pins this).
* :class:`ProcessPoolBackend` -- fan units across a local
  :class:`concurrent.futures.ProcessPoolExecutor`.  This reproduces the
  pre-backend executor behavior exactly, including its "a single unit
  or ``jobs=1`` runs inline, no pool" rule.
* ``QueueBackend`` (:mod:`repro.exec.queue`) -- push units onto a
  shared filesystem/SQLite job queue that ``repro worker`` processes
  (local or on other hosts pointed at the same directory) lease,
  execute and complete.

Backends register by name in :data:`BACKENDS`; :func:`create_backend`
turns a spec string (``"inline"`` / ``"process"`` / ``"queue"``, from
``--backend`` or ``REPRO_BACKEND``) into an instance.  Because every
simulation is deterministic and every unit carries content-addressed
keys, *which* backend ran a unit is unobservable in the results -- the
property that lets one sweep table be assembled from any mix of local
and remote execution.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.simulator import SimulationResult
from .jobs import SimJob, execute_unit

#: One planned execution unit: keyed jobs that run together (multi-entry
#: units share one batched trace walk).
Unit = Sequence[Tuple[str, SimJob]]
UnitResults = List[Tuple[str, SimulationResult]]


class ExecutionBackend(ABC):
    """Executes planned units; returns per-unit keyed results in order."""

    #: Registry name (set per subclass).
    name: str = "?"

    @abstractmethod
    def run_units(self, units: Sequence[Unit]) -> List[UnitResults]:
        """Run every unit; result lists in submission order.

        Implementations must preserve unit order in the returned list
        and entry order within each unit, and must raise (not drop
        units) on unrecoverable failure -- the planner owns retries at
        the sweep level, the queue owns retries at the lease level.
        """

    def close(self) -> None:
        """Release held resources (pools, connections).  Idempotent."""

    def describe(self) -> str:
        """One token for executor summaries (default: the name)."""
        return self.name


class InlineBackend(ExecutionBackend):
    """Run units sequentially in the calling process (the reference)."""

    name = "inline"

    def run_units(self, units: Sequence[Unit]) -> List[UnitResults]:
        return [execute_unit(unit) for unit in units]


class ProcessPoolBackend(ExecutionBackend):
    """Fan units across local worker processes.

    ``keep_pool=False`` (the default) reproduces the historical
    executor behavior exactly: a pool sized ``min(jobs, len(units))``
    is created per call and torn down after it, and a call that needs
    at most one worker runs inline -- no pool, no pickling.

    ``keep_pool=True`` holds one ``jobs``-wide pool across calls for
    callers that submit many small unit lists over time (the serve
    front end); :meth:`close` shuts it down.
    """

    name = "process"

    def __init__(self, jobs: Optional[int] = None,
                 keep_pool: bool = False) -> None:
        from .executor import default_jobs  # late: executor imports us
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        self.keep_pool = keep_pool
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def run_units(self, units: Sequence[Unit]) -> List[UnitResults]:
        units = list(units)
        if self.keep_pool:
            futures = [self._ensure_pool().submit(execute_unit, unit)
                       for unit in units]
            return [future.result() for future in futures]
        workers = min(self.jobs, len(units))
        if workers <= 1:
            return [execute_unit(unit) for unit in units]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(execute_unit, units))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

#: Backend factories by spec name.  Factories accept the keyword
#: arguments of :func:`create_backend` and ignore what they do not use.
BACKENDS: Dict[str, Callable[..., ExecutionBackend]] = {}


def register_backend(name: str,
                     factory: Callable[..., ExecutionBackend]) -> None:
    """Register a backend factory under ``name`` (last wins)."""
    BACKENDS[name] = factory


def backend_names() -> Tuple[str, ...]:
    """Registered backend spec names, sorted."""
    return tuple(sorted(BACKENDS))


def default_backend_spec() -> str:
    """Backend policy: ``REPRO_BACKEND`` if set and known, else process."""
    env = os.environ.get("REPRO_BACKEND")
    if env and env in BACKENDS:
        return env
    return "process"


def create_backend(spec: Optional[str] = None,
                   jobs: Optional[int] = None,
                   queue_dir: "Optional[str | os.PathLike]" = None,
                   ) -> ExecutionBackend:
    """Build the backend a spec names.

    ``spec`` is a registered name (None follows ``REPRO_BACKEND``, then
    the process default).  ``jobs`` sizes pool-like backends;
    ``queue_dir`` points the queue backend at a shared directory (None
    follows ``REPRO_QUEUE_DIR``, then the cache's ``queue`` namespace).
    """
    # The queue backend registers itself on first import.
    from . import queue as _queue  # noqa: F401  (registration side effect)
    name = default_backend_spec() if spec is None else spec
    factory = BACKENDS.get(name)
    if factory is None:
        raise ValueError(
            f"unknown execution backend {name!r} "
            f"(registered: {', '.join(backend_names())})")
    return factory(jobs=jobs, queue_dir=queue_dir)


register_backend(
    "inline", lambda jobs=None, queue_dir=None: InlineBackend())
register_backend(
    "process", lambda jobs=None, queue_dir=None: ProcessPoolBackend(jobs))


__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "InlineBackend",
    "ProcessPoolBackend",
    "Unit",
    "UnitResults",
    "backend_names",
    "create_backend",
    "default_backend_spec",
    "register_backend",
]
