"""Persistent on-disk simulation-result cache.

Results live one-per-file under a cache directory (first match wins):

1. an explicit ``cache_dir`` argument,
2. the ``REPRO_CACHE_DIR`` environment variable,
3. ``~/.cache/repro``.

Each entry is a pickle of ``{"schema", "key", "result"}``; the file name is
the job's content hash (see :mod:`repro.exec.serialize`), so lookups are a
single ``open``.  Writes go through a temporary file + :func:`os.replace`,
which keeps concurrent workers from ever exposing a torn entry.

Robustness rules:

* a corrupt entry counts as an *invalidation* (and is deleted), never an
  error -- the caller just re-simulates; a transient ``OSError`` (EACCES,
  EIO) is only a *miss*: the entry may be healthy, so it is kept;
* an entry recorded under a different ``CACHE_SCHEMA_VERSION`` is likewise
  invalidated (belt and braces: the schema version is also folded into the
  key, so such entries normally stop being addressed at all);
* if the cache directory cannot be created or written (read-only HOME,
  sandboxed CI), the cache degrades to a no-op rather than failing the run.

Hit/miss/store/invalidation counters are kept per instance and surfaced by
the ``repro cache stats`` CLI subcommand and the executor's summary.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional

from .serialize import CACHE_SCHEMA_VERSION

_ENTRY_SUFFIX = ".pkl"


def default_cache_dir() -> Path:
    """The cache directory the environment selects."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


def cache_enabled_by_env() -> bool:
    """Persistent caching policy: on unless ``REPRO_CACHE=0``."""
    return os.environ.get("REPRO_CACHE", "1") != "0"


@dataclass
class CacheStats:
    """Counters for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0

    def summary(self) -> str:
        return (f"hits={self.hits} misses={self.misses} "
                f"stores={self.stores} invalidations={self.invalidations}")


class ResultCache:
    """Content-addressed pickle store for :class:`SimulationResult`."""

    def __init__(self, cache_dir: "Optional[str | os.PathLike]" = None):
        self.directory = Path(cache_dir) if cache_dir else default_cache_dir()
        self.stats = CacheStats()
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._writable = os.access(self.directory, os.W_OK)
        except OSError:
            self._writable = False

    @classmethod
    def for_namespace(cls, namespace: str,
                      root: "Optional[str | os.PathLike]" = None
                      ) -> "ResultCache":
        """A cache living in ``<root>/<namespace>/``.

        Namespaces keep differently-shaped payloads (simulation results,
        traces, warm checkpoints) from sharing one directory, so ``repro
        cache clear`` and entry counting stay payload-specific.
        """
        base = Path(root) if root is not None else default_cache_dir()
        return cls(base / namespace)

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.directory / (key + _ENTRY_SUFFIX)

    def get(self, key: str):
        """The cached result for ``key``, or None (counted as a miss)."""
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            if (not isinstance(payload, dict)
                    or payload.get("schema") != CACHE_SCHEMA_VERSION
                    or "result" not in payload):
                raise ValueError("stale or malformed cache entry")
            self.stats.hits += 1
            return payload["result"]
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError:
            # Transient I/O failure (EACCES, EIO, a directory squatting on
            # the path): the entry may be perfectly healthy, so this is a
            # plain miss -- never an invalidation, and never an unlink.
            self.stats.misses += 1
            return None
        except Exception:
            # Corrupt, truncated, unpicklable or schema-stale entry: drop it.
            self.stats.invalidations += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, key: str, result) -> None:
        """Store ``result`` under ``key`` (atomic, best-effort)."""
        if not self._writable:
            return
        payload = {"schema": CACHE_SCHEMA_VERSION, "key": key,
                   "result": result}
        try:
            fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, self._path(key))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self.stats.stores += 1
        except OSError:
            pass  # disk full / permissions: caching is best-effort

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def entries(self) -> Iterator[Path]:
        try:
            yield from self.directory.glob("*" + _ENTRY_SUFFIX)
        except OSError:
            return

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def size_bytes(self) -> int:
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
