"""Shared job queue: SQLite-backed leases over a shareable directory.

The queue is one directory -- ``<dir>/queue.db`` holds job state, and
completed results land beside it as ordinary content-addressed
:class:`~repro.exec.cache.ResultCache` entries (``<key>.pkl``), so the
directory doubles as the fabric's network-shareable result namespace
(``repro cache stats`` reports it as the ``queue`` namespace).  Any
process that can see the directory can participate: submitters push
units, ``repro worker`` processes -- on this host or on many hosts
mounting the same path -- lease, execute and complete them.

**Lease protocol.**  A worker :meth:`~JobQueue.lease`\\ s the oldest
runnable job inside one ``BEGIN IMMEDIATE`` transaction: pending jobs,
or leased jobs whose deadline passed (the holder is presumed dead).
Leasing stamps the worker's owner id, bumps the attempt counter and
sets ``deadline = now + lease_ttl``; long units
:meth:`~JobQueue.heartbeat` to push the deadline out.  Completion and
failure are owner-checked, so a worker that lost its lease to a timeout
cannot clobber the re-lease -- its late result writes are harmless
anyway, because results are content-addressed and byte-identical.
A job that exhausts ``max_attempts`` parks as ``failed`` with the last
error recorded; everything else eventually reaches ``done``.

**Payloads** cross the wire as versioned JSON (:mod:`repro.exec.wire`),
never pickle: a queue directory shared between hosts must not be a code
-execution channel.  The job id is the content hash of the unit's job
keys, so resubmitting the same unit -- from the same client or another
one -- reuses the existing row and its result instead of simulating
twice.

:class:`QueueBackend` adapts the queue to the
:class:`~repro.exec.backend.ExecutionBackend` interface: submit all
units, optionally spawn local drain workers, poll until every job is
done, then assemble results from the cache namespace in order.
"""

from __future__ import annotations

import contextlib
import os
import sqlite3
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .backend import ExecutionBackend, Unit, UnitResults, register_backend
from .cache import ResultCache, default_cache_dir
from .jobs import SimJob, execute_unit
from .serialize import fingerprint
from .wire import WireError, dumps, loads

#: Seconds a lease lasts without a heartbeat before the job is presumed
#: abandoned and becomes leasable again.
DEFAULT_LEASE_TTL = 60.0
#: Lease attempts before a job parks as failed.
DEFAULT_MAX_ATTEMPTS = 3
#: Database file name inside a queue directory.
QUEUE_DB = "queue.db"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id        TEXT PRIMARY KEY,
    payload   TEXT NOT NULL,
    state     TEXT NOT NULL DEFAULT 'pending',
    owner     TEXT,
    deadline  REAL,
    attempts  INTEGER NOT NULL DEFAULT 0,
    error     TEXT,
    created   REAL NOT NULL,
    seq       INTEGER
);
CREATE INDEX IF NOT EXISTS jobs_state ON jobs (state, created);
"""


def default_queue_dir() -> Path:
    """The shared queue directory the environment selects.

    ``REPRO_QUEUE_DIR`` wins; otherwise the queue lives in the result
    cache's ``queue`` namespace, so local fabric runs need no setup and
    ``repro cache stats`` accounts for it.
    """
    env = os.environ.get("REPRO_QUEUE_DIR")
    if env:
        return Path(env).expanduser()
    return default_cache_dir() / "queue"


@dataclass(frozen=True)
class LeasedJob:
    """One leased unit: execute, heartbeat while long, then complete."""

    job_id: str
    unit: Tuple[Tuple[str, SimJob], ...]
    attempts: int


def _encode_unit(unit: Unit) -> str:
    return dumps("queue-unit", {
        "keys": [key for key, _ in unit],
        "jobs": [job for _, job in unit],
    })


def _decode_unit(text: str) -> Tuple[Tuple[str, SimJob], ...]:
    payload = loads(text, kind="queue-unit")
    keys, jobs = payload["keys"], payload["jobs"]
    if len(keys) != len(jobs):
        raise WireError("queue unit keys/jobs length mismatch")
    return tuple(zip(keys, jobs))


def unit_job_id(unit: Unit) -> str:
    """Content-addressed queue id: the hash of the unit's job keys."""
    return fingerprint({"queue-unit": [key for key, _ in unit]})


class JobQueue:
    """Lease-based job queue over one SQLite database."""

    def __init__(self, root: "Optional[str | os.PathLike]" = None,
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS) -> None:
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        self.root = Path(root) if root is not None else default_queue_dir()
        self.root.mkdir(parents=True, exist_ok=True)
        self.lease_ttl = float(lease_ttl)
        self.max_attempts = int(max_attempts)
        self._db = self.root / QUEUE_DB
        # Autocommit session: executescript force-commits any pending
        # transaction, so it must not run inside an explicit one.
        with self._session() as con:
            con.executescript(_SCHEMA)

    @contextlib.contextmanager
    def _session(self, write: bool = False):
        # A fresh connection per operation: trivially safe across
        # threads and fork, and cheap next to a simulation.  WAL lets
        # submitters and workers read concurrently; the busy timeout
        # rides out sibling writers instead of raising immediately.
        # ``write`` wraps the session in one immediate transaction, so
        # read-modify-write sequences (lease, fail) are atomic against
        # sibling workers.
        con = sqlite3.connect(self._db, timeout=30.0, isolation_level=None)
        try:
            con.execute("PRAGMA journal_mode=WAL")
            con.execute("PRAGMA busy_timeout=30000")
            if write:
                con.execute("BEGIN IMMEDIATE")
            try:
                yield con
            except BaseException:
                if write:
                    con.execute("ROLLBACK")
                raise
            if write:
                con.execute("COMMIT")
        finally:
            con.close()

    # ------------------------------------------------------------------
    # Submit side
    # ------------------------------------------------------------------

    def submit(self, unit: Unit) -> str:
        """Enqueue one unit; returns its content-addressed job id.

        Submitting an already-known unit is a no-op (``done`` rows keep
        their results; in-flight rows keep their lease) except that a
        ``failed`` row is given a fresh set of attempts -- an explicit
        resubmission is the operator saying "try again".
        """
        job_id = unit_job_id(unit)
        payload = _encode_unit(unit)
        with self._session(write=True) as con:
            con.execute(
                "INSERT OR IGNORE INTO jobs (id, payload, created)"
                " VALUES (?, ?, ?)",
                (job_id, payload, time.time()))
            con.execute(
                "UPDATE jobs SET state='pending', owner=NULL, deadline=NULL,"
                " attempts=0, error=NULL WHERE id=? AND state='failed'",
                (job_id,))
        return job_id

    def states(self, job_ids: Sequence[str]) -> Dict[str, str]:
        """Current state of each id (missing ids are absent)."""
        out: Dict[str, str] = {}
        with self._session() as con:
            for job_id in job_ids:
                row = con.execute(
                    "SELECT state FROM jobs WHERE id=?", (job_id,)).fetchone()
                if row is not None:
                    out[job_id] = row[0]
        return out

    def error_of(self, job_id: str) -> Optional[str]:
        with self._session() as con:
            row = con.execute(
                "SELECT error FROM jobs WHERE id=?", (job_id,)).fetchone()
        return row[0] if row else None

    def counts(self) -> Dict[str, int]:
        """Job counts by state (pending/leased/done/failed)."""
        with self._session() as con:
            rows = con.execute(
                "SELECT state, COUNT(*) FROM jobs GROUP BY state").fetchall()
        return {state: count for state, count in rows}

    def recent_done(self, limit: int = 8
                    ) -> "List[Tuple[str, Tuple[Tuple[str, SimJob], ...]]]":
        """The most recently created completed units, newest first.

        ``repro status`` decodes these to summarize what the fabric
        just produced (the results live in the directory's cache
        namespace under each unit's job keys).
        """
        with self._session() as con:
            rows = con.execute(
                "SELECT id, payload FROM jobs WHERE state='done'"
                " ORDER BY created DESC, id LIMIT ?",
                (max(0, int(limit)),)).fetchall()
        return [(job_id, _decode_unit(payload)) for job_id, payload in rows]

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def lease(self, owner: str) -> Optional[LeasedJob]:
        """Atomically claim the oldest runnable job, or None.

        Runnable = pending, or leased past its deadline (the holder is
        presumed dead; content-addressed results make its late writes
        harmless).  A job seen more than ``max_attempts`` times parks
        as failed instead of looping forever.
        """
        now = time.time()
        with self._session(write=True) as con:
            while True:
                row = con.execute(
                    "SELECT id, payload, attempts FROM jobs"
                    " WHERE state='pending'"
                    "    OR (state='leased' AND deadline < ?)"
                    " ORDER BY created, id LIMIT 1", (now,)).fetchone()
                if row is None:
                    return None
                job_id, payload, attempts = row
                if attempts >= self.max_attempts:
                    con.execute(
                        "UPDATE jobs SET state='failed', owner=NULL,"
                        " error=COALESCE(error, 'lease expired "
                        "max_attempts times') WHERE id=?", (job_id,))
                    continue
                con.execute(
                    "UPDATE jobs SET state='leased', owner=?, deadline=?,"
                    " attempts=? WHERE id=?",
                    (owner, now + self.lease_ttl, attempts + 1, job_id))
                return LeasedJob(job_id, _decode_unit(payload), attempts + 1)

    def heartbeat(self, job_id: str, owner: str) -> bool:
        """Extend a held lease; False means the lease was lost."""
        with self._session(write=True) as con:
            cur = con.execute(
                "UPDATE jobs SET deadline=? WHERE id=? AND owner=?"
                " AND state='leased'",
                (time.time() + self.lease_ttl, job_id, owner))
        return cur.rowcount == 1

    def complete(self, job_id: str, owner: str) -> bool:
        """Mark a held lease done; False means the lease was lost."""
        with self._session(write=True) as con:
            cur = con.execute(
                "UPDATE jobs SET state='done', owner=NULL, deadline=NULL,"
                " error=NULL WHERE id=? AND owner=? AND state='leased'",
                (job_id, owner))
        return cur.rowcount == 1

    def fail(self, job_id: str, owner: str, error: str) -> bool:
        """Record a failed attempt: retry while attempts remain.

        Under ``max_attempts`` the job returns to ``pending`` for any
        worker to retry; at the cap it parks as ``failed`` with the
        error preserved for :meth:`error_of`.
        """
        with self._session(write=True) as con:
            row = con.execute(
                "SELECT attempts FROM jobs WHERE id=? AND owner=?"
                " AND state='leased'", (job_id, owner)).fetchone()
            if row is None:
                return False
            state = "failed" if row[0] >= self.max_attempts else "pending"
            con.execute(
                "UPDATE jobs SET state=?, owner=NULL, deadline=NULL, error=?"
                " WHERE id=?", (state, error, job_id))
        return True

    def summary(self) -> str:
        counts = self.counts()
        total = sum(counts.values())
        parts = [f"jobs={total}"] + [
            f"{state}={counts[state]}"
            for state in ("pending", "leased", "done", "failed")
            if counts.get(state)]
        return " ".join(parts)


# ----------------------------------------------------------------------
# Worker loop
# ----------------------------------------------------------------------

def worker_id() -> str:
    """Owner id for this process's leases (host-qualified)."""
    import socket
    return f"{socket.gethostname()}:{os.getpid()}"


def run_worker(root: "Optional[str | os.PathLike]" = None,
               lease_ttl: float = DEFAULT_LEASE_TTL,
               max_attempts: int = DEFAULT_MAX_ATTEMPTS,
               poll: float = 0.1,
               drain: bool = False,
               idle_timeout: Optional[float] = None,
               max_jobs: Optional[int] = None,
               log=None) -> int:
    """Lease-execute-complete until stopped; returns units executed.

    ``drain`` exits as soon as no job is leasable; ``idle_timeout``
    exits after that many idle seconds; ``max_jobs`` caps the units one
    worker takes (crash-recovery tests lease one and stop).  With none
    of those set the worker serves forever.  Results are written to the
    queue directory's content-addressed namespace *before* the job is
    marked done, so a submitter that observes ``done`` always finds
    every result.
    """
    queue = JobQueue(root, lease_ttl=lease_ttl, max_attempts=max_attempts)
    results = ResultCache(queue.root)
    owner = worker_id()
    executed = 0
    idle_since = time.monotonic()
    while True:
        job = queue.lease(owner)
        if job is None:
            if drain:
                return executed
            if idle_timeout is not None \
                    and time.monotonic() - idle_since >= idle_timeout:
                return executed
            time.sleep(poll)
            continue
        idle_since = time.monotonic()
        if log:
            log(f"worker {owner}: lease {job.job_id[:12]} "
                f"({len(job.unit)} job(s), attempt {job.attempts})")
        try:
            queue.heartbeat(job.job_id, owner)
            for key, result in execute_unit(job.unit):
                results.put(key, result)
                queue.heartbeat(job.job_id, owner)
            queue.complete(job.job_id, owner)
            executed += 1
        except Exception as exc:  # noqa: BLE001 -- recorded, retried
            queue.fail(job.job_id, owner, f"{type(exc).__name__}: {exc}")
            if log:
                log(f"worker {owner}: {job.job_id[:12]} failed: {exc}")
        if max_jobs is not None and executed >= max_jobs:
            return executed


def spawn_worker(root: "str | os.PathLike",
                 drain: bool = True,
                 poll: float = 0.05) -> "subprocess.Popen[bytes]":
    """Start a ``repro worker`` subprocess against ``root``.

    Used by :class:`QueueBackend`'s local-worker convenience and the
    fabric tests; ensures the running checkout is importable in the
    child even when the parent was launched via ``PYTHONPATH``.
    """
    src = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p])
    argv = [sys.executable, "-m", "repro", "worker", "--queue-dir", str(root),
            "--poll", str(poll)]
    if drain:
        argv.append("--drain")
    return subprocess.Popen(argv, env=env, stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)


# ----------------------------------------------------------------------
# The backend adapter
# ----------------------------------------------------------------------

class QueueBackend(ExecutionBackend):
    """Run units through the shared queue (workers do the simulating).

    ``local_workers`` spawns that many drain-mode worker subprocesses
    per :meth:`run_units` call -- the zero-setup local fabric ``repro
    submit --local-workers N`` and the conformance tests use; 0 (the
    default) relies on externally started ``repro worker`` processes.
    ``timeout`` bounds the wait for the whole submission (None waits
    forever, the right default when remote workers may be slow).
    """

    name = "queue"

    def __init__(self, root: "Optional[str | os.PathLike]" = None,
                 local_workers: int = 0,
                 poll: float = 0.05,
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 timeout: Optional[float] = None) -> None:
        self.queue = JobQueue(root, lease_ttl=lease_ttl,
                              max_attempts=max_attempts)
        self.results = ResultCache(self.queue.root)
        self.local_workers = max(0, int(local_workers))
        self.poll = poll
        self.timeout = timeout

    def describe(self) -> str:
        return f"queue:{self.queue.root}"

    def run_units(self, units: Sequence[Unit]) -> List[UnitResults]:
        units = [list(unit) for unit in units]
        ids = [self.queue.submit(unit) for unit in units]
        workers = [spawn_worker(self.queue.root, poll=self.poll)
                   for _ in range(self.local_workers)]
        try:
            self._wait(ids)
        finally:
            for proc in workers:
                proc.wait()
        out: List[UnitResults] = []
        for unit in units:
            unit_results: UnitResults = []
            for key, _job in unit:
                result = self.results.get(key)
                if result is None:
                    raise RuntimeError(
                        f"queue job done but result {key[:12]}... missing "
                        f"from {self.queue.root} -- namespace cleared "
                        "between completion and collection?")
                unit_results.append((key, result))
            out.append(unit_results)
        return out

    def _wait(self, ids: Sequence[str]) -> None:
        deadline = None if self.timeout is None \
            else time.monotonic() + self.timeout
        pending = list(dict.fromkeys(ids))
        while pending:
            states = self.queue.states(pending)
            failed = [job_id for job_id in pending
                      if states.get(job_id) == "failed"]
            if failed:
                reasons = "; ".join(
                    f"{job_id[:12]}...: {self.queue.error_of(job_id)}"
                    for job_id in failed)
                raise RuntimeError(f"queue job(s) failed permanently: "
                                   f"{reasons}")
            pending = [job_id for job_id in pending
                       if states.get(job_id) != "done"]
            if not pending:
                return
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"{len(pending)} queue job(s) still "
                    f"{self.queue.summary()} after {self.timeout}s -- "
                    "are any workers attached to this queue directory?")
            time.sleep(self.poll)


register_backend(
    "queue",
    lambda jobs=None, queue_dir=None: QueueBackend(root=queue_dir))


__all__ = [
    "DEFAULT_LEASE_TTL",
    "DEFAULT_MAX_ATTEMPTS",
    "JobQueue",
    "LeasedJob",
    "QueueBackend",
    "default_queue_dir",
    "run_worker",
    "spawn_worker",
    "unit_job_id",
    "worker_id",
]
