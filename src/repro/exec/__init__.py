"""Parallel execution, persistent result caching and the sweep fabric.

The subsystem every sweep runs on: content-addressed simulation jobs
(:mod:`repro.exec.jobs`), an on-disk result cache keyed by a canonical
serialization of the full simulation input (:mod:`repro.exec.serialize`,
:mod:`repro.exec.cache`), a deduplicating planner
(:mod:`repro.exec.executor`) and the pluggable execution backends it
dispatches to (:mod:`repro.exec.backend`): inline, a local process
pool, or the shared lease-based job queue (:mod:`repro.exec.queue`)
that ``repro worker`` processes drain.  Requests and queue payloads
cross process boundaries as versioned JSON (:mod:`repro.exec.wire`).

Environment knobs:

* ``REPRO_JOBS``      -- worker processes (default: the CPU-affinity
  count, falling back to ``os.cpu_count()``)
* ``REPRO_CACHE_DIR`` -- cache directory (default: ``~/.cache/repro``)
* ``REPRO_CACHE``     -- set to ``0`` to disable the persistent cache
* ``REPRO_BATCH``     -- max members per batched replay unit
  (default: 16; ``0`` disables batching)
* ``REPRO_BACKEND``   -- execution backend spec
  (``inline`` / ``process`` / ``queue``; default: ``process``)
* ``REPRO_QUEUE_DIR`` -- shared queue directory (default: the cache's
  ``queue`` namespace)
"""

from .backend import (
    BACKENDS,
    ExecutionBackend,
    InlineBackend,
    ProcessPoolBackend,
    backend_names,
    create_backend,
    default_backend_spec,
    register_backend,
)
from .cache import (
    CacheStats,
    ResultCache,
    cache_enabled_by_env,
    default_cache_dir,
)
from .executor import (
    DEFAULT_BATCH_LIMIT,
    SweepExecutor,
    default_batch_limit,
    default_jobs,
)
from .jobs import (
    BatchJob,
    SimJob,
    batch_signature,
    execute_batch,
    execute_job,
    execute_unit,
    job_key,
)
from .queue import (
    DEFAULT_LEASE_TTL,
    DEFAULT_MAX_ATTEMPTS,
    JobQueue,
    LeasedJob,
    QueueBackend,
    default_queue_dir,
    run_worker,
    spawn_worker,
    unit_job_id,
)
from .serialize import (
    CACHE_SCHEMA_VERSION,
    canonical_json,
    canonicalize,
    config_fingerprint,
    fingerprint,
)
from .wire import (
    WIRE_SCHEMA_VERSION,
    WireError,
    wire_decode,
    wire_encode,
)

__all__ = [
    "BACKENDS",
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_BATCH_LIMIT",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_MAX_ATTEMPTS",
    "BatchJob",
    "CacheStats",
    "ExecutionBackend",
    "InlineBackend",
    "JobQueue",
    "LeasedJob",
    "ProcessPoolBackend",
    "QueueBackend",
    "ResultCache",
    "SimJob",
    "SweepExecutor",
    "WIRE_SCHEMA_VERSION",
    "WireError",
    "backend_names",
    "batch_signature",
    "cache_enabled_by_env",
    "canonical_json",
    "canonicalize",
    "config_fingerprint",
    "create_backend",
    "default_backend_spec",
    "default_batch_limit",
    "default_cache_dir",
    "default_jobs",
    "default_queue_dir",
    "execute_batch",
    "execute_job",
    "execute_unit",
    "fingerprint",
    "job_key",
    "register_backend",
    "run_worker",
    "spawn_worker",
    "unit_job_id",
    "wire_decode",
    "wire_encode",
]
