"""Parallel execution and persistent result caching.

The subsystem every sweep runs on: content-addressed simulation jobs
(:mod:`repro.exec.jobs`), an on-disk result cache keyed by a canonical
serialization of the full simulation input (:mod:`repro.exec.serialize`,
:mod:`repro.exec.cache`), and a deduplicating process-pool executor
(:mod:`repro.exec.executor`).

Environment knobs:

* ``REPRO_JOBS``      -- worker processes (default: ``os.cpu_count()``)
* ``REPRO_CACHE_DIR`` -- cache directory (default: ``~/.cache/repro``)
* ``REPRO_CACHE``     -- set to ``0`` to disable the persistent cache
* ``REPRO_BATCH``     -- max members per batched replay unit
  (default: 16; ``0`` disables batching)
"""

from .cache import (
    CacheStats,
    ResultCache,
    cache_enabled_by_env,
    default_cache_dir,
)
from .executor import (
    DEFAULT_BATCH_LIMIT,
    SweepExecutor,
    default_batch_limit,
    default_jobs,
)
from .jobs import (
    BatchJob,
    SimJob,
    batch_signature,
    execute_batch,
    execute_job,
    job_key,
)
from .serialize import (
    CACHE_SCHEMA_VERSION,
    canonical_json,
    canonicalize,
    config_fingerprint,
    fingerprint,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_BATCH_LIMIT",
    "BatchJob",
    "CacheStats",
    "ResultCache",
    "SimJob",
    "SweepExecutor",
    "batch_signature",
    "cache_enabled_by_env",
    "canonical_json",
    "canonicalize",
    "config_fingerprint",
    "default_batch_limit",
    "default_cache_dir",
    "default_jobs",
    "execute_batch",
    "execute_job",
    "fingerprint",
    "job_key",
]
