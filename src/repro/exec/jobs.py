"""Simulation jobs: the unit of work the sweep executor schedules.

A :class:`SimJob` fully describes one timing simulation -- workload profile,
machine configuration, and instruction budget.  Jobs are immutable, picklable
(so they can cross a process boundary into a worker), and content-addressed
via :func:`job_key`, which is what both the deduplicator and the persistent
cache key on.

:func:`execute_job` is the single place a job turns into a result; it is a
module-level function so :class:`concurrent.futures.ProcessPoolExecutor`
can ship it to workers.  It deliberately reproduces
:func:`repro.analysis.runner.run_workload`'s exact recipe (same program
builder, same ``mem_seed``) so a job result is bit-identical to a direct
call -- the determinism contract the parallel path is tested against.

The key hashes the *entire* ``ProcessorConfig``, so knobs that change how
a result is produced without changing its value -- ``verify_level``,
``frontend_mode`` -- still produce distinct keys: a cache hit always tells
the truth about the run's provenance.  Replay-mode jobs reach the shared
:class:`~repro.trace.store.TraceStore` through the same ``REPRO_CACHE_DIR``
root in every worker process, so the capture pass runs once per workload,
not once per worker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from ..core.config import ProcessorConfig
from ..core.pipeline import _front_warm_config
from ..core.simulator import SimulationResult, simulate
from ..workloads.generator import build_program
from ..workloads.profiles import WorkloadProfile, get_profile
from .serialize import CACHE_SCHEMA_VERSION, fingerprint


@dataclass(frozen=True)
class SimJob:
    """One (workload, config, budget) simulation request."""

    profile: WorkloadProfile
    config: ProcessorConfig
    instructions: int
    skip: int

    @staticmethod
    def make(workload: Union[str, WorkloadProfile],
             config: Optional[ProcessorConfig],
             instructions: int, skip: int) -> "SimJob":
        """Resolve a workload name and a possibly-None config into a job."""
        profile = get_profile(workload) if isinstance(workload, str) else workload
        return SimJob(profile, config or ProcessorConfig.cortex_a72_like(),
                      instructions, skip)


def job_key(job: SimJob) -> str:
    """Content hash identifying ``job`` (includes the cache schema version)."""
    return fingerprint({
        "schema": CACHE_SCHEMA_VERSION,
        "profile": job.profile,
        "config": job.config,
        "instructions": job.instructions,
        "skip": job.skip,
    })


def execute_job(job: SimJob) -> SimulationResult:
    """Run one job to completion (in this process)."""
    program = build_program(job.profile)
    return simulate(
        program,
        job.config,
        max_instructions=job.instructions,
        skip_instructions=job.skip,
        mem_seed=job.profile.mem_seed,
    )


def batch_signature(job: SimJob) -> Optional[str]:
    """Content hash of the state a batched replay run may share, or None.

    Two jobs may ride in one batch exactly when this signature matches:
    same workload, budget and replay window, same memory configuration
    and same warmup-trained front-end slice
    (:func:`~repro.core.pipeline._front_warm_config` -- the
    warm-checkpoint equivalence class from the trace store).  Everything
    *outside* the signature only steers per-member timing state
    (priority entries, stall policy, mode switching, IQ organization,
    window sizes, verification level), which each batch member keeps
    privately.  Live-mode jobs return None: they have no shared trace
    to walk.
    """
    cfg = job.config
    if cfg.frontend_mode != "replay":
        return None
    return fingerprint({
        "batch": CACHE_SCHEMA_VERSION,
        "profile": job.profile,
        "instructions": job.instructions,
        "skip": job.skip,
        "region": cfg.replay_region,
        "memory": cfg.memory,
        "front": _front_warm_config(cfg),
    })


@dataclass(frozen=True)
class BatchJob:
    """Several same-signature replay jobs sharing one trace walk.

    Each member keeps its own :func:`job_key` -- and therefore its own
    persistent cache entry -- so warm-cache behavior is identical to
    running the members individually; the executor drops already-cached
    members from the batch before simulation.
    """

    jobs: Tuple[SimJob, ...]

    def __post_init__(self) -> None:
        if not self.jobs:
            raise ValueError("a batch needs at least one job")
        signatures = {batch_signature(job) for job in self.jobs}
        if None in signatures:
            raise ValueError("batched execution requires replay-mode jobs")
        if len(signatures) > 1:
            raise ValueError(
                "batch members must share workload, budget, replay window, "
                "memory configuration and warm front-end configuration")

    @property
    def signature(self) -> str:
        return batch_signature(self.jobs[0])


def execute_batch(batch: BatchJob) -> List[SimulationResult]:
    """Run a batch to completion (in this process), one walk of the trace."""
    from ..batch import run_batch  # deferred: repro.batch builds on repro.exec
    return run_batch(batch.jobs)


def execute_unit(unit) -> "List[Tuple[str, SimulationResult]]":
    """Run one planned unit of keyed jobs (module-level for pickling).

    The primitive every execution backend -- and every ``repro
    worker`` -- runs: a unit is one or more ``(job_key, SimJob)``
    entries; multi-job units share one batched trace walk, single-job
    units run exactly as a direct :func:`execute_job` call.
    """
    entries = list(unit)
    if len(entries) == 1:
        key, job = entries[0]
        return [(key, execute_job(job))]
    results = execute_batch(BatchJob(tuple(job for _, job in entries)))
    return list(zip((key for key, _ in entries), results))
