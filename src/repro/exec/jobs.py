"""Simulation jobs: the unit of work the sweep executor schedules.

A :class:`SimJob` fully describes one timing simulation -- workload profile,
machine configuration, and instruction budget.  Jobs are immutable, picklable
(so they can cross a process boundary into a worker), and content-addressed
via :func:`job_key`, which is what both the deduplicator and the persistent
cache key on.

:func:`execute_job` is the single place a job turns into a result; it is a
module-level function so :class:`concurrent.futures.ProcessPoolExecutor`
can ship it to workers.  It deliberately reproduces
:func:`repro.analysis.runner.run_workload`'s exact recipe (same program
builder, same ``mem_seed``) so a job result is bit-identical to a direct
call -- the determinism contract the parallel path is tested against.

The key hashes the *entire* ``ProcessorConfig``, so knobs that change how
a result is produced without changing its value -- ``verify_level``,
``frontend_mode`` -- still produce distinct keys: a cache hit always tells
the truth about the run's provenance.  Replay-mode jobs reach the shared
:class:`~repro.trace.store.TraceStore` through the same ``REPRO_CACHE_DIR``
root in every worker process, so the capture pass runs once per workload,
not once per worker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..core.config import ProcessorConfig
from ..core.simulator import SimulationResult, simulate
from ..workloads.generator import build_program
from ..workloads.profiles import WorkloadProfile, get_profile
from .serialize import CACHE_SCHEMA_VERSION, fingerprint


@dataclass(frozen=True)
class SimJob:
    """One (workload, config, budget) simulation request."""

    profile: WorkloadProfile
    config: ProcessorConfig
    instructions: int
    skip: int

    @staticmethod
    def make(workload: Union[str, WorkloadProfile],
             config: Optional[ProcessorConfig],
             instructions: int, skip: int) -> "SimJob":
        """Resolve a workload name and a possibly-None config into a job."""
        profile = get_profile(workload) if isinstance(workload, str) else workload
        return SimJob(profile, config or ProcessorConfig.cortex_a72_like(),
                      instructions, skip)


def job_key(job: SimJob) -> str:
    """Content hash identifying ``job`` (includes the cache schema version)."""
    return fingerprint({
        "schema": CACHE_SCHEMA_VERSION,
        "profile": job.profile,
        "config": job.config,
        "instructions": job.instructions,
        "skip": job.skip,
    })


def execute_job(job: SimJob) -> SimulationResult:
    """Run one job to completion (in this process)."""
    program = build_program(job.profile)
    return simulate(
        program,
        job.config,
        max_instructions=job.instructions,
        skip_instructions=job.skip,
        mem_seed=job.profile.mem_seed,
    )
