"""Logical register file definition.

The paper's cost analysis (Sec. IV) assumes 64 logical registers, which it
uses to size ``def_tab`` ("we prepare a full size table ... because the
number of logical registers is small (i.e., 64)").  We mirror that: 32
integer registers followed by 32 floating-point registers, addressed by a
single flat logical index 0..63 so that ``def_tab`` can be one full-size
table exactly as in the paper.
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32
NUM_LOGICAL_REGS = NUM_INT_REGS + NUM_FP_REGS

#: First logical index of the floating-point register file.
FP_BASE = NUM_INT_REGS


def int_reg(n: int) -> int:
    """Logical index of integer register ``r<n>``."""
    if not 0 <= n < NUM_INT_REGS:
        raise ValueError(f"integer register index out of range: {n}")
    return n


def fp_reg(n: int) -> int:
    """Logical index of floating-point register ``f<n>``."""
    if not 0 <= n < NUM_FP_REGS:
        raise ValueError(f"fp register index out of range: {n}")
    return FP_BASE + n


def is_fp_reg(index: int) -> bool:
    """Whether a flat logical index names a floating-point register."""
    if not 0 <= index < NUM_LOGICAL_REGS:
        raise ValueError(f"logical register index out of range: {index}")
    return index >= FP_BASE


def reg_name(index: int) -> str:
    """Human-readable name (``r7`` / ``f3``) for a flat logical index."""
    if is_fp_reg(index):
        return f"f{index - FP_BASE}"
    return f"r{index}"
