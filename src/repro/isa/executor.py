"""Functional (architectural) execution of programs.

The timing simulator in :mod:`repro.core` is trace-driven on the correct
path: a :class:`FunctionalExecutor` runs the program architecturally and
produces the true dynamic instruction stream (branch outcomes, memory
addresses).  Wrong-path instructions are fetched from the static code by the
timing model itself and never touch architectural state, exactly as in a
conventional oracle-assisted simulator.

Memory is sparse and word-addressed; unwritten locations read a deterministic
hash of their address, so pointer-chasing workloads see stable but
effectively random data without materializing gigabytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional

from .instruction import Program, StaticInst
from .opcodes import Opcode
from .registers import NUM_LOGICAL_REGS

_MASK64 = (1 << 64) - 1
#: Addresses are confined to 48 bits and 8-byte aligned.
_ADDR_MASK = (1 << 48) - 8


def mix64(x: int) -> int:
    """Deterministic 64-bit mixer (splitmix64 finalizer).

    Used both as the default content of unwritten memory and by workload
    generators that need reproducible pseudo-random data values.
    """
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def to_signed(x: int) -> int:
    """Interpret a 64-bit unsigned value as signed."""
    return x - (1 << 64) if x >= (1 << 63) else x


class SparseMemory:
    """Word-granular (8-byte) sparse memory with deterministic defaults."""

    def __init__(self, seed: int = 0):
        self._seed = seed & _MASK64
        self._words: Dict[int, int] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def words(self) -> Dict[int, int]:
        """Snapshot of every word ever written (verification/state diffing)."""
        return dict(self._words)

    def read(self, addr: int) -> int:
        addr &= _ADDR_MASK
        word = self._words.get(addr)
        if word is None:
            return mix64(addr ^ self._seed)
        return word

    def write(self, addr: int, value: int) -> None:
        self._words[addr & _ADDR_MASK] = value & _MASK64

    def __len__(self) -> int:
        """Number of words ever written."""
        return len(self._words)


@dataclass
class DynamicOp:
    """One architecturally-executed instruction (a trace record)."""

    __slots__ = ("seq", "inst", "taken", "next_pc", "mem_addr")

    seq: int  #: dynamic sequence number, 0-based
    inst: StaticInst
    taken: bool  #: branch outcome (False for non-branches)
    next_pc: int  #: architectural successor PC
    mem_addr: Optional[int]  #: effective address of loads/stores, else None


class FunctionalExecutor:
    """Steps a :class:`Program` architecturally, yielding the true trace."""

    def __init__(self, program: Program, mem_seed: int = 0):
        self.program = program
        self.regs: List[int] = [0] * NUM_LOGICAL_REGS
        self.memory = SparseMemory(seed=mem_seed)
        self.pc = program.entry_pc
        self._seq = 0

    @classmethod
    def from_state(cls, program: Program, mem_seed: int,
                   regs: "Iterable[int]", pc: int, seq: int,
                   mem_words: Dict[int, int]) -> "FunctionalExecutor":
        """An executor resumed mid-stream from a captured state.

        Execution is deterministic, so an executor restored from the state
        after record ``seq`` produces exactly the records a fresh executor
        would produce from that point on (this is what makes architectural
        checkpoints and trace extension sound).
        """
        executor = cls(program, mem_seed=mem_seed)
        executor.regs[:] = regs
        executor.pc = pc
        executor._seq = seq
        executor.memory._words = dict(mem_words)
        return executor

    @property
    def seq(self) -> int:
        """Dynamic sequence number of the *next* instruction to execute."""
        return self._seq

    def step(self) -> DynamicOp:
        """Execute one instruction and return its trace record."""
        inst = self.program.at(self.pc)
        regs = self.regs
        op = inst.opcode
        taken = False
        mem_addr: Optional[int] = None
        next_pc = self.pc + 4
        if not self.program.contains(next_pc):
            next_pc = self.program.entry_pc

        if op is Opcode.NOP:
            pass
        elif op is Opcode.MOVI or op is Opcode.FMOVI:
            regs[inst.dest] = inst.imm & _MASK64
        elif op is Opcode.ADD or op is Opcode.FADD:
            regs[inst.dest] = (regs[inst.src1] + regs[inst.src2]) & _MASK64
        elif op is Opcode.SUB or op is Opcode.FSUB:
            regs[inst.dest] = (regs[inst.src1] - regs[inst.src2]) & _MASK64
        elif op is Opcode.AND:
            regs[inst.dest] = regs[inst.src1] & regs[inst.src2]
        elif op is Opcode.OR:
            regs[inst.dest] = regs[inst.src1] | regs[inst.src2]
        elif op is Opcode.XOR:
            regs[inst.dest] = regs[inst.src1] ^ regs[inst.src2]
        elif op is Opcode.SHL:
            regs[inst.dest] = (regs[inst.src1] << (regs[inst.src2] & 63)) & _MASK64
        elif op is Opcode.SHR:
            regs[inst.dest] = regs[inst.src1] >> (regs[inst.src2] & 63)
        elif op is Opcode.ADDI:
            regs[inst.dest] = (regs[inst.src1] + inst.imm) & _MASK64
        elif op is Opcode.SUBI:
            regs[inst.dest] = (regs[inst.src1] - inst.imm) & _MASK64
        elif op is Opcode.ANDI:
            regs[inst.dest] = regs[inst.src1] & (inst.imm & _MASK64)
        elif op is Opcode.XORI:
            regs[inst.dest] = regs[inst.src1] ^ (inst.imm & _MASK64)
        elif op is Opcode.MUL or op is Opcode.FMUL:
            regs[inst.dest] = (regs[inst.src1] * regs[inst.src2]) & _MASK64
        elif op is Opcode.DIV or op is Opcode.FDIV:
            divisor = regs[inst.src2]
            regs[inst.dest] = regs[inst.src1] // divisor if divisor else 0
        elif op is Opcode.LOAD:
            mem_addr = (regs[inst.src1] + inst.imm) & _ADDR_MASK
            regs[inst.dest] = self.memory.read(mem_addr)
        elif op is Opcode.STORE:
            mem_addr = (regs[inst.src2] + inst.imm) & _ADDR_MASK
            self.memory.write(mem_addr, regs[inst.src1])
        elif op is Opcode.JUMP:
            taken = True
            next_pc = inst.target
        elif op is Opcode.BEQ:
            taken = regs[inst.src1] == regs[inst.src2]
        elif op is Opcode.BNE:
            taken = regs[inst.src1] != regs[inst.src2]
        elif op is Opcode.BLT:
            taken = to_signed(regs[inst.src1]) < to_signed(regs[inst.src2])
        elif op is Opcode.BGE:
            taken = to_signed(regs[inst.src1]) >= to_signed(regs[inst.src2])
        elif op is Opcode.BEQZ:
            taken = regs[inst.src1] == 0
        elif op is Opcode.BNEZ:
            taken = regs[inst.src1] != 0
        else:  # pragma: no cover - enum is exhaustive
            raise NotImplementedError(op)

        if inst.is_conditional_branch and taken:
            next_pc = inst.target

        record = DynamicOp(self._seq, inst, taken, next_pc, mem_addr)
        self._seq += 1
        self.pc = next_pc
        return record

    def run(self, count: int) -> List[DynamicOp]:
        """Execute ``count`` instructions and return their records."""
        return [self.step() for _ in range(count)]

    def trace(self) -> Iterator[DynamicOp]:
        """Endless iterator over the dynamic instruction stream."""
        while True:
            yield self.step()


class TraceCursor:
    """Random-access window over a functional trace.

    The timing model consumes trace records mostly sequentially but must
    *rewind* after a branch misprediction (re-fetching the squashed
    correct-path instructions).  The cursor materializes records on demand
    and retains them until :meth:`release` advances the low-water mark
    (called at commit), bounding memory to the in-flight window.
    """

    def __init__(self, executor: FunctionalExecutor):
        self._executor = executor
        self._buffer: List[DynamicOp] = []
        self._base = 0  # seq number of _buffer[0]

    def get(self, seq: int) -> DynamicOp:
        """The trace record with dynamic sequence number ``seq``."""
        if seq < self._base:
            raise IndexError(
                f"trace record {seq} already released (base={self._base})"
            )
        while seq >= self._base + len(self._buffer):
            self._buffer.append(self._executor.step())
        return self._buffer[seq - self._base]

    def release(self, seq: int) -> None:
        """Discard records with sequence numbers below ``seq``.

        ``seq`` may run ahead of what has been materialized (the skip-phase
        steps the executor directly); the low-water mark then simply jumps
        forward to match the executor's position.
        """
        if seq <= self._base:
            return
        drop = seq - self._base
        if drop >= len(self._buffer):
            self._buffer.clear()
        else:
            del self._buffer[:drop]
        self._base = seq

    @property
    def retained(self) -> int:
        """Number of records currently buffered (for tests)."""
        return len(self._buffer)
