"""Opcodes, function-unit classes, and execution latencies.

The ISA is a small load/store register machine, rich enough to express the
workloads the paper evaluates: integer ALU chains, multiplies/divides,
loads/stores, floating-point arithmetic, and conditional branches whose
outcome depends on computed register values (so branch slices are real
dataflow, not annotations).

Latencies follow common SimpleScalar-era defaults; the function-unit mix the
timing model enforces (2 iALU, 1 iMULT/DIV, 2 Ld/St, 2 FPU) comes from the
paper's Table I (ARM Cortex-A72-like).
"""

from __future__ import annotations

import enum


class FuClass(enum.IntEnum):
    """Function-unit class an opcode issues to (Table I's FU mix)."""

    IALU = 0  #: integer ALU; also executes branches
    IMULT = 1  #: integer multiply/divide
    LDST = 2  #: load/store port (address generation + cache access)
    FPU = 3  #: floating-point unit


class Opcode(enum.IntEnum):
    """All opcodes of the reproduction ISA."""

    NOP = 0
    # Integer register-register / register-immediate.
    MOVI = 1  # dest <- imm
    ADD = 2
    SUB = 3
    AND = 4
    OR = 5
    XOR = 6
    SHL = 7
    SHR = 8
    ADDI = 9
    SUBI = 10
    ANDI = 11
    XORI = 12
    MUL = 13
    DIV = 14
    # Memory.
    LOAD = 15  # dest <- mem[src1 + imm]
    STORE = 16  # mem[src2 + imm] <- src1
    # Floating point (modeled on 64-bit integer payloads; the timing model
    # only cares about the FU class and latency).
    FADD = 17
    FSUB = 18
    FMUL = 19
    FDIV = 20
    FMOVI = 21
    # Control flow.  Conditional branches test register values; JUMP is
    # unconditional direct.
    BEQ = 22  # taken iff src1 == src2
    BNE = 23
    BLT = 24  # signed less-than
    BGE = 25
    BEQZ = 26  # taken iff src1 == 0
    BNEZ = 27
    JUMP = 28


_CONDITIONAL_BRANCHES = frozenset(
    {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BEQZ, Opcode.BNEZ}
)
_BRANCHES = _CONDITIONAL_BRANCHES | {Opcode.JUMP}

_FU_CLASS = {
    Opcode.NOP: FuClass.IALU,
    Opcode.MOVI: FuClass.IALU,
    Opcode.ADD: FuClass.IALU,
    Opcode.SUB: FuClass.IALU,
    Opcode.AND: FuClass.IALU,
    Opcode.OR: FuClass.IALU,
    Opcode.XOR: FuClass.IALU,
    Opcode.SHL: FuClass.IALU,
    Opcode.SHR: FuClass.IALU,
    Opcode.ADDI: FuClass.IALU,
    Opcode.SUBI: FuClass.IALU,
    Opcode.ANDI: FuClass.IALU,
    Opcode.XORI: FuClass.IALU,
    Opcode.MUL: FuClass.IMULT,
    Opcode.DIV: FuClass.IMULT,
    Opcode.LOAD: FuClass.LDST,
    Opcode.STORE: FuClass.LDST,
    Opcode.FADD: FuClass.FPU,
    Opcode.FSUB: FuClass.FPU,
    Opcode.FMUL: FuClass.FPU,
    Opcode.FDIV: FuClass.FPU,
    Opcode.FMOVI: FuClass.FPU,
    Opcode.BEQ: FuClass.IALU,
    Opcode.BNE: FuClass.IALU,
    Opcode.BLT: FuClass.IALU,
    Opcode.BGE: FuClass.IALU,
    Opcode.BEQZ: FuClass.IALU,
    Opcode.BNEZ: FuClass.IALU,
    Opcode.JUMP: FuClass.IALU,
}

#: Execution latency in cycles once issued (loads add cache access time on
#: top of this address-generation cycle).
_LATENCY = {
    Opcode.MUL: 3,
    Opcode.DIV: 12,
    Opcode.FADD: 3,
    Opcode.FSUB: 3,
    Opcode.FMUL: 4,
    Opcode.FDIV: 12,
    Opcode.FMOVI: 1,
}


def is_branch(op: Opcode) -> bool:
    """True for all control-transfer opcodes (conditional and JUMP)."""
    return op in _BRANCHES


def is_conditional_branch(op: Opcode) -> bool:
    """True for conditional branches only (the ones PUBS cares about)."""
    return op in _CONDITIONAL_BRANCHES


def is_load(op: Opcode) -> bool:
    return op is Opcode.LOAD


def is_store(op: Opcode) -> bool:
    return op is Opcode.STORE


def is_mem(op: Opcode) -> bool:
    return op is Opcode.LOAD or op is Opcode.STORE


def fu_class(op: Opcode) -> FuClass:
    """The function-unit class ``op`` issues to."""
    return _FU_CLASS[op]


def latency(op: Opcode) -> int:
    """Base execution latency of ``op`` in cycles (1 unless overridden)."""
    return _LATENCY.get(op, 1)
