"""Instruction set architecture of the reproduction.

Public surface: opcodes and their properties, the register file layout,
static instructions / programs / the program builder, and the functional
executor that generates architectural traces for the timing model.
"""

from .executor import (
    DynamicOp,
    FunctionalExecutor,
    SparseMemory,
    TraceCursor,
    mix64,
    to_signed,
)
from .instruction import INST_BYTES, Program, ProgramBuilder, StaticInst
from .opcodes import (
    FuClass,
    Opcode,
    fu_class,
    is_branch,
    is_conditional_branch,
    is_load,
    is_mem,
    is_store,
    latency,
)
from .registers import (
    FP_BASE,
    NUM_FP_REGS,
    NUM_INT_REGS,
    NUM_LOGICAL_REGS,
    fp_reg,
    int_reg,
    is_fp_reg,
    reg_name,
)

__all__ = [
    "DynamicOp",
    "FunctionalExecutor",
    "SparseMemory",
    "TraceCursor",
    "mix64",
    "to_signed",
    "INST_BYTES",
    "Program",
    "ProgramBuilder",
    "StaticInst",
    "FuClass",
    "Opcode",
    "fu_class",
    "is_branch",
    "is_conditional_branch",
    "is_load",
    "is_mem",
    "is_store",
    "latency",
    "FP_BASE",
    "NUM_FP_REGS",
    "NUM_INT_REGS",
    "NUM_LOGICAL_REGS",
    "fp_reg",
    "int_reg",
    "is_fp_reg",
    "reg_name",
]
