"""Static instruction and program representations.

A :class:`Program` is a flat list of :class:`StaticInst` with PCs assigned
4 bytes apart, mirroring a fixed-width RISC encoding (the paper's SimpleScalar
setup uses the Alpha ISA).  Branch targets are PCs into the same program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .opcodes import Opcode, is_branch, is_conditional_branch, is_load, is_mem, is_store
from .registers import NUM_LOGICAL_REGS, reg_name

#: Byte distance between consecutive instructions.
INST_BYTES = 4


@dataclass(frozen=True)
class StaticInst:
    """One static instruction.

    ``dest`` and the sources are flat logical register indices (0..63) or
    ``None``.  ``imm`` is the immediate operand (also the address offset of
    loads/stores).  ``target`` is the taken-path PC of branches.
    """

    pc: int
    opcode: Opcode
    dest: Optional[int] = None
    src1: Optional[int] = None
    src2: Optional[int] = None
    imm: int = 0
    target: Optional[int] = None

    def __post_init__(self) -> None:
        for r in (self.dest, self.src1, self.src2):
            if r is not None and not 0 <= r < NUM_LOGICAL_REGS:
                raise ValueError(f"register index out of range: {r}")
        if is_branch(self.opcode) and self.target is None:
            raise ValueError(f"branch at pc={self.pc:#x} lacks a target")
        if self.target is not None and not is_branch(self.opcode):
            raise ValueError(f"non-branch at pc={self.pc:#x} has a target")

    @property
    def is_branch(self) -> bool:
        return is_branch(self.opcode)

    @property
    def is_conditional_branch(self) -> bool:
        return is_conditional_branch(self.opcode)

    @property
    def is_load(self) -> bool:
        return is_load(self.opcode)

    @property
    def is_store(self) -> bool:
        return is_store(self.opcode)

    @property
    def is_mem(self) -> bool:
        return is_mem(self.opcode)

    def sources(self) -> Tuple[int, ...]:
        """The logical source registers, in operand order."""
        srcs = []
        if self.src1 is not None:
            srcs.append(self.src1)
        if self.src2 is not None:
            srcs.append(self.src2)
        return tuple(srcs)

    def __str__(self) -> str:
        parts = [f"{self.pc:#06x}: {self.opcode.name.lower()}"]
        if self.dest is not None:
            parts.append(reg_name(self.dest))
        for s in self.sources():
            parts.append(reg_name(s))
        if self.imm:
            parts.append(f"#{self.imm}")
        if self.target is not None:
            parts.append(f"-> {self.target:#06x}")
        return " ".join(parts)


class Program:
    """A fully-resolved program: instructions with PCs and branch targets.

    Construction validates that every branch target lands on an instruction
    boundary inside the program, so the fetch engine can always decode a
    wrong-path walk without bounds checks.
    """

    def __init__(self, name: str, insts: List[StaticInst],
                 warm_regions: Optional[List[Tuple[int, int]]] = None):
        if not insts:
            raise ValueError("a program needs at least one instruction")
        self.name = name
        self.insts: List[StaticInst] = list(insts)
        #: (start address, size) data regions a simulator may pre-warm into
        #: large caches before timing starts (checkpoint-style warm-up).
        self.warm_regions: List[Tuple[int, int]] = list(warm_regions or [])
        self._by_pc: Dict[int, StaticInst] = {}
        for i, inst in enumerate(self.insts):
            expected_pc = i * INST_BYTES
            if inst.pc != expected_pc:
                raise ValueError(
                    f"instruction {i} has pc {inst.pc:#x}, expected {expected_pc:#x}"
                )
            self._by_pc[inst.pc] = inst
        for inst in self.insts:
            if inst.target is not None and inst.target not in self._by_pc:
                raise ValueError(
                    f"branch at {inst.pc:#x} targets {inst.target:#x}, "
                    "which is outside the program"
                )

    def __len__(self) -> int:
        return len(self.insts)

    def __iter__(self):
        return iter(self.insts)

    @property
    def entry_pc(self) -> int:
        return self.insts[0].pc

    @property
    def last_pc(self) -> int:
        return self.insts[-1].pc

    def at(self, pc: int) -> StaticInst:
        """The instruction at ``pc`` (raises ``KeyError`` when outside)."""
        return self._by_pc[pc]

    def contains(self, pc: int) -> bool:
        return pc in self._by_pc

    def next_pc(self, pc: int) -> int:
        """Fall-through successor of ``pc`` (wraps to the entry at the end)."""
        nxt = pc + INST_BYTES
        return nxt if nxt in self._by_pc else self.entry_pc

    def listing(self) -> str:
        """Full disassembly, one instruction per line."""
        return "\n".join(str(inst) for inst in self.insts)


@dataclass
class ProgramBuilder:
    """Incremental builder that assigns PCs and patches branch targets.

    Branches may be emitted with a label instead of a concrete target;
    ``mark_label`` later binds the label to the next emitted instruction.
    """

    name: str
    _insts: List[StaticInst] = field(default_factory=list)
    _labels: Dict[str, int] = field(default_factory=dict)
    _patches: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def next_pc(self) -> int:
        return len(self._insts) * INST_BYTES

    def mark_label(self, label: str) -> None:
        if label in self._labels:
            raise ValueError(f"label defined twice: {label}")
        self._labels[label] = self.next_pc

    def emit(
        self,
        opcode: Opcode,
        dest: Optional[int] = None,
        src1: Optional[int] = None,
        src2: Optional[int] = None,
        imm: int = 0,
        target_label: Optional[str] = None,
    ) -> int:
        """Append an instruction; returns its PC."""
        pc = self.next_pc
        if target_label is not None:
            # Temporary self-target, patched at build() time.
            self._patches.append((len(self._insts), target_label))
            inst = StaticInst(pc, opcode, dest, src1, src2, imm, target=pc)
        else:
            inst = StaticInst(pc, opcode, dest, src1, src2, imm)
        self._insts.append(inst)
        return pc

    def build(self, warm_regions: Optional[List[Tuple[int, int]]] = None) -> Program:
        insts = list(self._insts)
        for index, label in self._patches:
            if label not in self._labels:
                raise ValueError(f"undefined label: {label}")
            old = insts[index]
            insts[index] = StaticInst(
                old.pc, old.opcode, old.dest, old.src1, old.src2, old.imm,
                target=self._labels[label],
            )
        return Program(self.name, insts, warm_regions=warm_regions)
