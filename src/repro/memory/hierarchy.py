"""Two-level memory hierarchy with a stream prefetcher (Table I).

Geometry and latencies default to the paper's base configuration:

* L1 I-cache: 32 KB, 8-way, 64 B lines
* L1 D-cache: 32 KB, 8-way, 64 B lines, 2-cycle hit, non-blocking
* L2 (LLC):   2 MB, 16-way, 64 B lines, 12-cycle hit
* Memory:     300-cycle minimum latency, 8 B/cycle fill bandwidth
* Prefetch:   stream-based, 32 streams, 16-line distance, 2-line degree,
  prefetching into the L2

Timing model: the hierarchy is consulted with the current cycle and returns
the access latency.  Outstanding fills are tracked per level in pending-fill
maps (the MSHR analogue); a second access to an in-flight line merges and
waits for the same fill, and does not count as an additional miss.  The fill
bus serializes 64-byte line transfers at 8 B/cycle, so heavy miss bursts see
queueing on top of the 300-cycle base latency -- this is what makes MLP
exploitation (and hence the paper's mode switch) matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .cache import CacheConfig, SetAssocCache
from .prefetcher import StreamPrefetcher


@dataclass(frozen=True)
class MemoryConfig:
    """Full hierarchy configuration."""

    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1I", 32 * 1024, 8, 64, hit_latency=1)
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1D", 32 * 1024, 8, 64, hit_latency=2)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig("L2", 2 * 1024 * 1024, 16, 64, hit_latency=12)
    )
    memory_latency: int = 300
    memory_bytes_per_cycle: int = 8
    prefetch_streams: int = 32
    prefetch_distance: int = 16
    prefetch_degree: int = 2
    prefetch_enabled: bool = True


@dataclass
class HierarchyStats:
    """Demand-miss counters used for MPKI classification."""

    l1i_accesses: int = 0
    l1i_misses: int = 0
    l1d_accesses: int = 0
    l1d_misses: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0  #: demand LLC misses (drives LLC MPKI / mode switch)
    prefetches_issued: int = 0
    prefetch_hits: int = 0  #: demand accesses that merged into a prefetch fill


class MemoryHierarchy:
    """Composed L1I/L1D/L2/memory with MSHR merging and prefetch."""

    def __init__(self, config: MemoryConfig = None):
        self.config = config or MemoryConfig()
        self.l1i = SetAssocCache(self.config.l1i)
        self.l1d = SetAssocCache(self.config.l1d)
        self.l2 = SetAssocCache(self.config.l2)
        self.stats = HierarchyStats()
        self.prefetcher = StreamPrefetcher(
            self.config.prefetch_streams,
            self.config.prefetch_distance,
            self.config.prefetch_degree,
            self.config.l2.line_bytes,
        )
        self._line_cycles = max(
            1, self.config.l2.line_bytes // self.config.memory_bytes_per_cycle
        )
        self._bus_free = 0
        # line address -> fill-complete cycle
        self._pending_l1i: Dict[int, int] = {}
        self._pending_l1d: Dict[int, int] = {}
        self._pending_l2: Dict[int, int] = {}
        self._pending_l2_prefetch: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Pending-fill bookkeeping
    # ------------------------------------------------------------------

    @staticmethod
    def _drain(pending: Dict[int, int], cache: SetAssocCache, cycle: int) -> None:
        if not pending:
            return
        done = [line for line, ready in pending.items() if ready <= cycle]
        for line in done:
            cache.install(line)
            del pending[line]

    def _memory_fill(self, cycle: int) -> int:
        """Schedule one line fill from memory; returns its completion cycle."""
        start = cycle if cycle > self._bus_free else self._bus_free
        self._bus_free = start + self._line_cycles
        return start + self.config.memory_latency + self._line_cycles

    # ------------------------------------------------------------------
    # L2 (shared) access
    # ------------------------------------------------------------------

    def _access_l2(self, cycle: int, line: int) -> int:
        """Demand access arriving at the L2 at ``cycle``; returns the cycle
        the line is available to the requesting L1."""
        self._drain(self._pending_l2, self.l2, cycle)
        self._drain(self._pending_l2_prefetch, self.l2, cycle)
        self.stats.l2_accesses += 1
        # The stream detector trains on every demand access reaching the L2
        # (the L1 already filtered intra-line locality); training only on
        # misses would starve a stream as soon as its prefetches cover it.
        if self.config.prefetch_enabled:
            self._issue_prefetches(cycle, line)
        if self.l2.lookup(line):
            return cycle + self.config.l2.hit_latency
        ready = self._pending_l2.get(line)
        if ready is not None:
            self.stats.l2_misses += 1  # merged demand miss, fill in flight
            return ready
        ready = self._pending_l2_prefetch.get(line)
        if ready is not None:
            # Late prefetch: the demand access waits for the prefetch fill
            # but we do not count an extra LLC miss (the prefetcher already
            # paid for the fill).
            self.stats.prefetch_hits += 1
            return ready
        self.stats.l2_misses += 1
        ready = self._memory_fill(cycle + self.config.l2.hit_latency)
        self._pending_l2[line] = ready
        return ready

    def _issue_prefetches(self, cycle: int, line: int) -> None:
        for pf_line in self.prefetcher.observe_access(line):
            if self.l2.probe(pf_line):
                continue
            if pf_line in self._pending_l2 or pf_line in self._pending_l2_prefetch:
                continue
            self.stats.prefetches_issued += 1
            self._pending_l2_prefetch[pf_line] = self._memory_fill(cycle)

    # ------------------------------------------------------------------
    # Public access points
    # ------------------------------------------------------------------

    def load(self, cycle: int, addr: int) -> int:
        """Data load at ``cycle``; returns the access latency in cycles."""
        return self._l1_access(cycle, addr, self.l1d, self._pending_l1d, False)

    def store(self, cycle: int, addr: int) -> int:
        """Data store (write-allocate); latency is informational -- the
        pipeline retires stores through a store buffer."""
        return self._l1_access(cycle, addr, self.l1d, self._pending_l1d, False,
                               is_store=True)

    def ifetch(self, cycle: int, addr: int) -> int:
        """Instruction fetch of the line containing ``addr``."""
        return self._l1_access(cycle, addr, self.l1i, self._pending_l1i, True)

    def _l1_access(self, cycle: int, addr: int, cache: SetAssocCache,
                   pending: Dict[int, int], is_ifetch: bool,
                   is_store: bool = False) -> int:
        line = cache.line_addr(addr)
        self._drain(pending, cache, cycle)
        if is_ifetch:
            self.stats.l1i_accesses += 1
        else:
            self.stats.l1d_accesses += 1
        if cache.lookup(line):
            return cache.config.hit_latency
        if is_ifetch:
            self.stats.l1i_misses += 1
        else:
            self.stats.l1d_misses += 1
        ready = pending.get(line)
        if ready is None:
            ready = self._access_l2(cycle + cache.config.hit_latency, line)
            pending[line] = ready
        latency = ready - cycle
        hit_latency = cache.config.hit_latency
        return latency if latency > hit_latency else hit_latency

    # ------------------------------------------------------------------
    # Warm-up (no timing, no stats)
    # ------------------------------------------------------------------

    def warm_data(self, addr: int) -> None:
        """Install the line containing ``addr`` into L1D and L2.

        Used by the skip/fast-forward phase so timing starts from a
        representative cache state instead of a cold one.
        """
        line = self.l1d.line_addr(addr)
        self.l1d.install(line)
        self.l2.install(line)

    def warm_ifetch(self, pc: int) -> None:
        """Install the line containing ``pc`` into L1I and L2."""
        line = self.l1i.line_addr(pc)
        self.l1i.install(line)
        self.l2.install(line)

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------

    def llc_mpki(self, committed_instructions: int) -> float:
        """Demand LLC misses per kilo-instruction."""
        if committed_instructions <= 0:
            return 0.0
        return 1000.0 * self.stats.l2_misses / committed_instructions
