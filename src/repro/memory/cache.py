"""Set-associative cache with true-LRU replacement.

This is the timing-model cache: it tracks tags only (data values come from
the functional oracle) and exposes probe/install primitives that the
hierarchy composes with MSHR-style pending-fill tracking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str
    size_bytes: int
    assoc: int
    line_bytes: int = 64
    hit_latency: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.assoc <= 0 or self.line_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line size must be a power of two")
        if self.size_bytes % (self.assoc * self.line_bytes):
            raise ValueError("size must be a multiple of assoc * line size")
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("number of sets must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssocCache:
    """Tag store of one cache level (LRU, write-allocate, no dirty state).

    Writebacks carry no timing in this model: the paper's evaluation is
    latency-bound (300-cycle memory) and its bandwidth model is a simple
    8 B/cycle fill bus, which the hierarchy models at the memory side.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheStats()
        self._line_shift = config.line_bytes.bit_length() - 1
        self._set_mask = config.num_sets - 1
        # Each set is an MRU-first list of tags.
        self._sets: List[List[int]] = [[] for _ in range(config.num_sets)]

    def line_addr(self, addr: int) -> int:
        """The line-aligned address containing ``addr``."""
        return addr >> self._line_shift << self._line_shift

    def _locate(self, addr: int):
        line = addr >> self._line_shift
        return self._sets[line & self._set_mask], line >> self.config.num_sets.bit_length() - 1

    def probe(self, addr: int) -> bool:
        """Hit test *without* LRU update or stats (used by prefetch filters)."""
        ways, tag = self._locate(addr)
        return tag in ways

    def lookup(self, addr: int) -> bool:
        """Hit test with LRU update but *no* stats.

        The hierarchy uses this and accounts misses itself so that accesses
        merged into an outstanding fill (MSHR hits) are not double-counted
        as misses.
        """
        ways, tag = self._locate(addr)
        try:
            i = ways.index(tag)
        except ValueError:
            return False
        if i:
            ways.insert(0, ways.pop(i))
        return True

    def access(self, addr: int) -> bool:
        """Standalone demand access: returns hit, updates LRU and stats."""
        self.stats.accesses += 1
        if self.lookup(addr):
            return True
        self.stats.misses += 1
        return False

    def install(self, addr: int) -> Optional[int]:
        """Fill the line containing ``addr``; returns the evicted line address
        (or None).  Installing an already-present line just refreshes LRU."""
        ways, tag = self._locate(addr)
        if tag in ways:
            ways.remove(tag)
            ways.insert(0, tag)
            return None
        ways.insert(0, tag)
        if len(ways) > self.config.assoc:
            victim_tag = ways.pop()
            set_index = (addr >> self._line_shift) & self._set_mask
            victim_line = (
                victim_tag << self.config.num_sets.bit_length() - 1 | set_index
            )
            return victim_line << self._line_shift
        return None

    def invalidate_all(self) -> None:
        """Drop every line (used by tests and phase-reset experiments)."""
        for ways in self._sets:
            ways.clear()
