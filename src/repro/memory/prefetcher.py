"""Stream-based hardware prefetcher.

Table I: "stream-based: 32-stream tracked, 16-line distance, 2-line degree,
prefetch to L2 cache".  The prefetcher watches demand misses, detects
ascending or descending unit-stride line streams, and once a stream is
confirmed issues ``degree`` prefetches running ``distance`` lines ahead of
the demand stream.  Prefetches are returned to the hierarchy, which installs
them into the L2 after the memory latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass
class _Stream:
    last_line: int
    direction: int  # +1 ascending, -1 descending, 0 unconfirmed
    confirmations: int
    last_use: int  # for LRU stream replacement


class StreamPrefetcher:
    """Unit-stride multi-stream prefetcher."""

    def __init__(self, num_streams: int = 32, distance: int = 16, degree: int = 2,
                 line_bytes: int = 64):
        if num_streams < 1 or distance < 1 or degree < 1:
            raise ValueError("prefetcher parameters must be positive")
        self.num_streams = num_streams
        self.distance = distance
        self.degree = degree
        self.line_bytes = line_bytes
        self._streams: List[_Stream] = []
        self._clock = 0
        self.issued = 0

    def observe_access(self, line_addr: int) -> List[int]:
        """Feed one demand line address (the L2 access stream); returns line
        addresses to prefetch (possibly empty).

        Training on the full demand stream (not just misses) keeps a stream
        alive once its own prefetches start covering it."""
        self._clock += 1
        line = line_addr // self.line_bytes
        # Try to extend an existing stream (hit window: within 2 lines of the
        # stream head in either direction while unconfirmed, or exactly the
        # next line once a direction is locked).
        for stream in self._streams:
            delta = line - stream.last_line
            if stream.direction == 0 and delta in (-2, -1, 1, 2):
                stream.direction = 1 if delta > 0 else -1
                stream.confirmations = 1
                stream.last_line = line
                stream.last_use = self._clock
                return self._emit(stream)
            if stream.direction != 0 and 0 < delta * stream.direction <= 2:
                stream.confirmations += 1
                stream.last_line = line
                stream.last_use = self._clock
                return self._emit(stream)
        # Allocate a new stream, evicting the least-recently-used.
        stream = _Stream(last_line=line, direction=0, confirmations=0,
                         last_use=self._clock)
        self._streams.append(stream)
        if len(self._streams) > self.num_streams:
            lru = min(range(len(self._streams)), key=lambda i: self._streams[i].last_use)
            self._streams.pop(lru)
        return []

    def _emit(self, stream: _Stream) -> List[int]:
        if stream.confirmations < 1:
            return []
        base = stream.last_line + stream.direction * self.distance
        lines = []
        for k in range(self.degree):
            line = base + stream.direction * k
            if line >= 0:
                lines.append(line * self.line_bytes)
        self.issued += len(lines)
        return lines

    @property
    def active_streams(self) -> int:
        return len(self._streams)
