"""Memory hierarchy substrate: caches, stream prefetcher, composed hierarchy."""

from .cache import CacheConfig, CacheStats, SetAssocCache
from .hierarchy import HierarchyStats, MemoryConfig, MemoryHierarchy
from .prefetcher import StreamPrefetcher

__all__ = [
    "CacheConfig",
    "CacheStats",
    "SetAssocCache",
    "HierarchyStats",
    "MemoryConfig",
    "MemoryHierarchy",
    "StreamPrefetcher",
]
