"""Stable high-level entry points: the one import for running things.

Examples, the CLI and downstream scripts should import from here
instead of deep module paths -- the deep layout (``repro.analysis.
runner``, ``repro.sampling.run``, ...) is free to keep refactoring, and
this facade is the surface that stays put.  Everything shares one
keyword vocabulary:

``jobs``
    parallel worker processes (None -> ``REPRO_JOBS`` -> serial);
``cache``
    persistent result cache (None -> ``REPRO_CACHE`` policy);
``frontend``
    correct-path supply, ``"live"`` / ``"replay"``
    (None -> ``REPRO_FRONTEND`` -> the config's own mode);
``sampling``
    ``"off"`` / ``"fixed"`` / ``"adaptive"``
    (None -> ``REPRO_SAMPLING`` -> off);
``batch``
    max replay configs sharing one batched trace walk
    (None -> ``REPRO_BATCH`` -> 16; 0/1 disables batching);
``backend``
    where planned units execute: ``"inline"`` / ``"process"`` /
    ``"queue"`` (None -> ``REPRO_BACKEND`` -> the local process pool);
    every backend is bit-identical by construction, so this only
    changes *where* the work runs;
``paired``
    report sampled comparisons with the common-regions paired CI
    (None -> ``REPRO_PAIRED`` -> on; off combines in quadrature);
``table_budget``
    adaptive suites spend the escalation budget table-wide -- on the
    workload with the worst CI-to-target ratio -- instead of driving
    every cell to its own target (None -> ``REPRO_TABLE_BUDGET`` -> on);
``request``
    a :class:`RunRequest` bundling all of the above -- explicit
    keywords override its fields, the environment fills what is left,
    and library defaults apply last.

Quick start::

    from repro.api import RunRequest, run_suite

    req = RunRequest(sampling="adaptive", ci_target=0.05)
    table = run_suite({"base": base, "pubs": pubs}, ["mcf", "sjeng"],
                      request=req)
    cell = table["pubs"]["mcf"]          # a WorkloadRun estimate
    print(cell.cpi, cell.cpi_ci95)
"""

from .analysis.runner import (
    PairedRun,
    WorkloadRun,
    run_pair,
    run_suite,
    run_workload,
)
from .analysis.topdown import (
    TopdownBreakdown,
    TopdownDelta,
    breakdown_of,
    compare_topdown,
)
from .batch import run_batch
from .core.config import ProcessorConfig, RunRequest
from .exec import (
    ExecutionBackend,
    JobQueue,
    QueueBackend,
    SweepExecutor,
    backend_names,
    create_backend,
    run_worker,
)
from .sampling.adaptive import (
    AdaptiveRun,
    AdaptiveSession,
    sample_workload_adaptive,
    sample_workload_adaptive_many,
)
from .sampling.controller import TableController
from .sampling.paired import PairedEstimate, paired_speedup
from .sampling.run import SampledRun, sample_workload, sample_workload_many

__all__ = [
    "AdaptiveRun",
    "AdaptiveSession",
    "ExecutionBackend",
    "JobQueue",
    "PairedEstimate",
    "PairedRun",
    "ProcessorConfig",
    "QueueBackend",
    "RunRequest",
    "SampledRun",
    "SweepExecutor",
    "TableController",
    "TopdownBreakdown",
    "TopdownDelta",
    "WorkloadRun",
    "backend_names",
    "breakdown_of",
    "compare_topdown",
    "create_backend",
    "paired_speedup",
    "run_worker",
    "run_batch",
    "run_pair",
    "run_suite",
    "run_workload",
    "sample_workload",
    "sample_workload_adaptive",
    "sample_workload_adaptive_many",
    "sample_workload_many",
]
