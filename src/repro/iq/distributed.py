"""Distributed issue queue (Sec. III-C2).

AMD Zen distributes the IQ among integer function units: each unit owns a
small dedicated queue, simplifying the select logic (per-queue, narrow) at
the cost of capacity efficiency -- a full per-unit queue stalls dispatch
even while other queues have room.  The paper notes PUBS carries over:
"each IQ is partitioned into priority and normal entries".

:class:`DistributedIssueQueue` models one queue per function-unit class,
sized proportionally to the class's unit count, each a random queue with
its own priority partition.  :class:`DistributedSelectLogic` arbitrates
per-queue with position priority (grants per class bounded by the class's
unit count, total bounded by the machine's issue width).

Entry handles are ``(fu_class_value, slot)`` pairs, opaque to the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..isa.opcodes import FuClass
from .queue import IssueQueue
from .select import FuPool, SelectStats

Handle = Tuple[int, int]


class DistributedIssueQueue:
    """One random queue per FU class, each with a PUBS partition."""

    def __init__(self, total_size: int, fu_pool: FuPool,
                 priority_entries: int = 0, seed: int = 0):
        if total_size < 4 * len(FuClass):
            raise ValueError("distributed IQ needs at least 4 entries/class")
        counts = fu_pool.as_dict()
        total_units = sum(counts.values())
        self.queues: Dict[FuClass, IssueQueue] = {}
        remaining = total_size
        classes = list(FuClass)
        for i, fu in enumerate(classes):
            if i == len(classes) - 1:
                size = remaining
            else:
                size = max(4, round(total_size * counts[fu] / total_units))
                size = min(size, remaining - 4 * (len(classes) - 1 - i))
            remaining -= size
            # Each queue gets a full-size priority partition (capped to a
            # third of the queue): unconfident slices are not spread evenly
            # across classes -- integer slices would starve on a partition
            # sized by the class's share of function units.
            per_queue_priority = 0
            if priority_entries:
                per_queue_priority = min(priority_entries, size // 3)
                per_queue_priority = max(1, min(per_queue_priority, size - 1))
            self.queues[fu] = IssueQueue(size, per_queue_priority,
                                         seed=seed + fu.value)
        self.priority_entries = priority_entries

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        return sum(q.size for q in self.queues.values())

    @property
    def occupancy(self) -> int:
        return sum(q.occupancy for q in self.queues.values())

    @property
    def dispatches(self) -> int:
        return sum(q.dispatches for q in self.queues.values())

    @property
    def priority_dispatches(self) -> int:
        return sum(q.priority_dispatches for q in self.queues.values())

    def is_full(self) -> bool:
        return all(q.is_full() for q in self.queues.values())

    def has_free(self, priority: bool, fu: Optional[FuClass] = None) -> bool:
        if fu is None:
            return any(q.has_free(priority) for q in self.queues.values())
        return self.queues[fu].has_free(priority)

    # ------------------------------------------------------------------
    # Dispatch / release -- same protocol as IssueQueue, composite handles
    # ------------------------------------------------------------------

    def dispatch(self, uop, priority: bool) -> Optional[Handle]:
        """Dispatch into the queue owning ``uop.fu``; None if it is full
        (a per-queue structural stall: the capacity-efficiency cost)."""
        queue = self.queues[uop.fu]
        slot = queue.dispatch(uop, priority)
        if slot is None:
            return None
        return (uop.fu.value, slot)

    def dispatch_uniform(self, uop) -> Optional[Handle]:
        queue = self.queues[uop.fu]
        slot = queue.dispatch_uniform(uop)
        if slot is None:
            return None
        return (uop.fu.value, slot)

    def release(self, handle: Handle) -> None:
        fu_value, slot = handle
        self.queues[FuClass(fu_value)].release(slot)

    def flush(self, keep) -> None:
        for queue in self.queues.values():
            queue.flush(keep)

    def occupied(self) -> Iterator[Tuple[Handle, object]]:
        """All entries, per class then per slot (each queue's own position
        order is what its select logic sees)."""
        for fu, queue in self.queues.items():
            for slot, uop in queue.occupied():
                yield (fu.value, slot), uop

    def at(self, handle: Handle):
        fu_value, slot = handle
        return self.queues[FuClass(fu_value)].at(slot)


@dataclass
class DistributedSelectLogic:
    """Per-queue position-priority select for the distributed IQ.

    Within each class queue the lowest slots win (so the PUBS priority
    partition keeps its meaning); grants per class are bounded by the
    class's unit count and the total by the machine's issue width.
    """

    issue_width: int
    fu_pool: FuPool

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise ValueError("issue width must be positive")
        self.stats = SelectStats()
        # List indexed by FuClass (an IntEnum starting at 0).
        self._fu_counts = [self.fu_pool.ialu, self.fu_pool.imult,
                           self.fu_pool.ldst, self.fu_pool.fpu]

    def select(self, requests: Sequence[Tuple[Handle, object]]
               ) -> List[Tuple[Handle, object]]:
        self.stats.cycles += 1
        self.stats.requests += len(requests)
        if not requests:
            return []
        avail = self._fu_counts.copy()
        granted: List[Tuple[Handle, object]] = []
        # Requests arrive grouped by class and slot-ordered (occupied()'s
        # order); a stable pass therefore implements per-queue position
        # priority directly.
        for handle, uop in sorted(requests, key=lambda r: r[0]):
            if len(granted) >= self.issue_width:
                break
            if avail[uop.fu] > 0:
                avail[uop.fu] -= 1
                granted.append((handle, uop))
        self.stats.grants += len(granted)
        self.stats.conflict_denials += len(requests) - len(granted)
        return granted
