"""The issue queue: a random queue with an optional priority partition.

Sec. III-B1: modern IQs are *random queues* -- instructions dispatch into
whatever entries are free ("holes"), and the select logic's priority is
fixed by entry position (closer to the head = higher priority).  PUBS
(Sec. III-B2) reserves the first ``priority_entries`` positions for
instructions in unconfident branch slices by splitting the free list in two.

When the mode switch disables PUBS, dispatch draws from the two free lists
with a random choice weighted by the entry ratio (Sec. III-B3), so the
reserved capacity is fully usable and "there is no penalty for mode
switching".

The queue stores opaque micro-op objects owned by the pipeline; entry
position is the integer slot index, which is also the select priority.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Iterator, List, Optional, Tuple


class IssueQueue:
    """Random-queue IQ with split priority/normal free lists."""

    __slots__ = (
        "size", "priority_entries", "_slots", "_free_priority",
        "_free_normal", "_release_tick", "_tick", "_rng",
        "dispatches", "priority_dispatches",
    )

    def __init__(self, size: int, priority_entries: int = 0, seed: int = 0):
        if size < 1:
            raise ValueError("IQ size must be positive")
        if not 0 <= priority_entries <= size:
            raise ValueError("priority_entries must be within the IQ size")
        self.size = size
        self.priority_entries = priority_entries
        self._slots: List[Optional[object]] = [None] * size
        # Free slots recycle FIFO, which over time randomizes the mapping
        # from age to position -- the "random queue" behaviour.
        self._free_priority = deque(range(priority_entries))
        self._free_normal = deque(range(priority_entries, size))
        # Monotonic release order, so mode-switch-disabled dispatch can keep
        # the exact FIFO hole-reuse discipline of an unpartitioned queue.
        self._release_tick: List[int] = list(range(size))
        self._tick = size
        self._rng = random.Random(seed)
        self.dispatches = 0
        self.priority_dispatches = 0

    # ------------------------------------------------------------------
    # Capacity queries
    # ------------------------------------------------------------------

    @property
    def occupancy(self) -> int:
        return self.size - len(self._free_priority) - len(self._free_normal)

    @property
    def free_priority_count(self) -> int:
        return len(self._free_priority)

    @property
    def free_normal_count(self) -> int:
        return len(self._free_normal)

    def is_full(self) -> bool:
        return self.occupancy == self.size

    def has_free(self, priority: bool) -> bool:
        """Whether a dispatch into the given partition can proceed."""
        if priority:
            return bool(self._free_priority)
        return bool(self._free_normal)

    # ------------------------------------------------------------------
    # Dispatch / release
    # ------------------------------------------------------------------

    def dispatch(self, uop: object, priority: bool) -> Optional[int]:
        """Write ``uop`` into a free entry of the requested partition.

        Returns the slot index, or None if that partition is full (the
        caller implements the stall or non-stall policy).
        """
        free = self._free_priority if priority else self._free_normal
        if not free:
            return None
        slot = free.popleft()
        self._slots[slot] = uop
        self.dispatches += 1
        if priority:
            self.priority_dispatches += 1
        return slot

    def dispatch_uniform(self, uop: object) -> Optional[int]:
        """Mode-switch-disabled dispatch: both free lists used uniformly.

        Sec. III-B3 selects between the two free lists with a random number
        weighted by the entry ratio, so that a disabled-PUBS queue behaves
        like the unpartitioned random queue.  Our unpartitioned base queue
        recycles holes FIFO, so "behaves like the base" here means merging
        the two lists in release order (oldest hole first), which makes the
        disabled mode *exactly* the base queue and keeps the paper's "no
        penalty for mode switching" property.  (A hardware implementation
        would use the weighted random pick; for a truly random queue the
        two disciplines are statistically identical.)
        """
        fp, fn = self._free_priority, self._free_normal
        if fp and fn:
            ticks = self._release_tick
            free = fp if ticks[fp[0]] < ticks[fn[0]] else fn
        else:
            free = fp if fp else fn
        if not free:
            return None
        slot = free.popleft()
        self._slots[slot] = uop
        self.dispatches += 1
        return slot

    def release(self, slot: int) -> None:
        """Free an entry (at issue)."""
        if self._slots[slot] is None:
            raise ValueError(f"releasing an empty IQ slot: {slot}")
        self._slots[slot] = None
        self._release_tick[slot] = self._tick
        self._tick += 1
        if slot < self.priority_entries:
            self._free_priority.append(slot)
        else:
            self._free_normal.append(slot)

    def flush(self, keep) -> None:
        """Squash entries whose uop fails the ``keep`` predicate."""
        for slot, uop in enumerate(self._slots):
            if uop is not None and not keep(uop):
                self.release(slot)

    # ------------------------------------------------------------------
    # Select-side view
    # ------------------------------------------------------------------

    def occupied(self) -> Iterator[Tuple[int, object]]:
        """(slot, uop) pairs in ascending slot order == descending priority."""
        for slot, uop in enumerate(self._slots):
            if uop is not None:
                yield slot, uop

    def at(self, slot: int) -> Optional[object]:
        return self._slots[slot]
