"""Issue-queue substrate: random queue, priority partition, select, age matrix."""

from .age_matrix import AGE_MATRIX_IQ_DELAY_FACTOR, AgeMatrix
from .distributed import DistributedIssueQueue, DistributedSelectLogic
from .ordered import CircularQueue, ShiftingQueue
from .queue import IssueQueue
from .select import FuPool, SelectLogic, SelectStats

__all__ = [
    "AGE_MATRIX_IQ_DELAY_FACTOR",
    "AgeMatrix",
    "CircularQueue",
    "DistributedIssueQueue",
    "DistributedSelectLogic",
    "ShiftingQueue",
    "IssueQueue",
    "FuPool",
    "SelectLogic",
    "SelectStats",
]
