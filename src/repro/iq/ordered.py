"""The other two IQ organizations of Sec. III-B1: shifting and circular.

The paper's taxonomy:

* **shifting queue** (DEC Alpha 21264): instructions stay physically
  age-ordered from head to tail; issued entries leave "holes" that a
  compaction circuit closes while preserving order.  Position-based select
  priority then *is* age priority, so IPC is the best of the three -- but
  the compaction circuit sits on the IQ critical path, which is why the
  organization died with small IQs.
* **circular queue**: a circular buffer, age-ordered but never compacted.
  Holes linger (capacity inefficiency) and the wrap-around point *reverses*
  the position-priority order for the wrapped suffix, both costing IPC.
* **random queue** (modern processors; :class:`~repro.iq.queue.IssueQueue`):
  dispatch into any hole; position priority is uncorrelated with age.

These organizations exist in the reproduction so the paper's Sec. III-B1
claims can be measured (``benchmarks/bench_ablation_iq_orgs.py``): shifting
beats random in IPC, and the circular queue suffers from holes and
wrap-around.  They expose the same protocol as :class:`IssueQueue`
(``dispatch`` / ``release`` / ``flush`` / ``occupied``) so the pipeline can
swap them in; neither supports a PUBS partition (the paper applies PUBS to
the random queue only).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple


class ShiftingQueue:
    """Age-compacting IQ: physical position == age rank, always."""

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("IQ size must be positive")
        self.size = size
        self.priority_entries = 0
        self._entries: List[object] = []  # index 0 = oldest
        self.dispatches = 0
        self.priority_dispatches = 0

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def is_full(self) -> bool:
        return len(self._entries) >= self.size

    def has_free(self, priority: bool) -> bool:
        return not self.is_full()

    def dispatch(self, uop: object, priority: bool = False) -> Optional[int]:
        """Append at the tail (youngest); returns the current position."""
        if self.is_full():
            return None
        self._entries.append(uop)
        self.dispatches += 1
        return len(self._entries) - 1

    def dispatch_uniform(self, uop: object) -> Optional[int]:
        return self.dispatch(uop)

    def release(self, slot: int) -> None:
        """Remove the entry at ``slot``; younger entries compact down.

        This models the compaction circuit: the physical position of every
        younger instruction decreases, keeping age order intact.
        """
        if not 0 <= slot < len(self._entries):
            raise ValueError(f"releasing an empty IQ slot: {slot}")
        self._entries.pop(slot)

    def release_uop(self, uop: object) -> None:
        """Release by identity (positions shift, so callers track uops)."""
        self._entries.remove(uop)

    def flush(self, keep) -> None:
        self._entries = [u for u in self._entries if keep(u)]

    def occupied(self) -> Iterator[Tuple[int, object]]:
        """(position, uop) oldest-first == highest-priority-first."""
        return enumerate(self._entries)

    def at(self, slot: int) -> Optional[object]:
        if 0 <= slot < len(self._entries):
            return self._entries[slot]
        return None


class CircularQueue:
    """Circular-buffer IQ: age-ordered modulo wrap-around, holes linger.

    Entries allocate at a tail pointer and are only *reclaimed* at the head
    pointer: an issued entry in the middle leaves a hole that stays
    unusable until everything older has issued too (the capacity
    inefficiency the paper describes).  Select priority is physical
    position, so the wrapped portion of the queue -- physically below the
    head -- is mis-prioritized (the "reversed issue priority" problem).
    """

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("IQ size must be positive")
        self.size = size
        self.priority_entries = 0
        self._slots: List[Optional[object]] = [None] * size
        self._head = 0  # oldest possibly-live slot
        self._tail = 0  # next slot to allocate
        self._live = 0  # slots between head and tail (incl. holes)
        self.dispatches = 0
        self.priority_dispatches = 0

    @property
    def occupancy(self) -> int:
        """Valid instructions (excludes holes)."""
        return sum(1 for s in self._slots if s is not None)

    @property
    def reserved(self) -> int:
        """Slots consumed, holes included -- what limits dispatch."""
        return self._live

    def is_full(self) -> bool:
        return self._live >= self.size

    def has_free(self, priority: bool) -> bool:
        return not self.is_full()

    def dispatch(self, uop: object, priority: bool = False) -> Optional[int]:
        if self.is_full():
            return None
        slot = self._tail
        self._slots[slot] = uop
        self._tail = (self._tail + 1) % self.size
        self._live += 1
        self.dispatches += 1
        return slot

    def dispatch_uniform(self, uop: object) -> Optional[int]:
        return self.dispatch(uop)

    def release(self, slot: int) -> None:
        """Issue the entry at ``slot``: it becomes a hole; space is
        reclaimed only when the head pointer sweeps past it."""
        if self._slots[slot] is None:
            raise ValueError(f"releasing an empty IQ slot: {slot}")
        self._slots[slot] = None
        self._reclaim()

    def _reclaim(self) -> None:
        while self._live and self._slots[self._head] is None:
            self._head = (self._head + 1) % self.size
            self._live -= 1

    def flush(self, keep) -> None:
        for slot, uop in enumerate(self._slots):
            if uop is not None and not keep(uop):
                self._slots[slot] = None
        self._reclaim()

    def occupied(self) -> Iterator[Tuple[int, object]]:
        """(physical slot, uop) in ascending *physical* order -- which is
        what a position-based select sees, wrap-around reversal included."""
        for slot, uop in enumerate(self._slots):
            if uop is not None:
                yield slot, uop

    def at(self, slot: int) -> Optional[object]:
        return self._slots[slot]
