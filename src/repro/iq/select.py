"""Select logic: position-based arbitration with per-FU structural limits.

The select logic grants at most ``issue_width`` requests per cycle out of
the ready instructions, honouring the function-unit mix (Table I: 2 iALU,
1 iMULT/DIV, 2 Ld/St, 2 FPU).  Priority is fixed by entry position -- the
property PUBS exploits by parking unconfident-slice instructions in the
lowest-numbered entries.  An optional age matrix (Sec. V-G1) pre-grants the
single oldest ready instruction before the position-based pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..isa.opcodes import FuClass
from .age_matrix import AgeMatrix


@dataclass(frozen=True)
class FuPool:
    """Per-class function-unit counts (the per-cycle issue constraint)."""

    ialu: int = 2
    imult: int = 1
    ldst: int = 2
    fpu: int = 2

    def as_dict(self) -> Dict[FuClass, int]:
        return {
            FuClass.IALU: self.ialu,
            FuClass.IMULT: self.imult,
            FuClass.LDST: self.ldst,
            FuClass.FPU: self.fpu,
        }

    def scaled(self, factor: float) -> "FuPool":
        """A pool with every class scaled (>=1 each); for Table IV models."""
        return FuPool(
            ialu=max(1, round(self.ialu * factor)),
            imult=max(1, round(self.imult * factor)),
            ldst=max(1, round(self.ldst * factor)),
            fpu=max(1, round(self.fpu * factor)),
        )


@dataclass
class SelectStats:
    cycles: int = 0
    grants: int = 0
    requests: int = 0
    conflict_denials: int = 0  #: ready requests denied by width/FU limits
    age_grants: int = 0  #: grants that came from the age matrix

    @property
    def average_grants_per_cycle(self) -> float:
        return self.grants / self.cycles if self.cycles else 0.0


class SelectLogic:
    """Position-priority arbiter, optionally augmented with an age matrix."""

    __slots__ = ("issue_width", "fu_pool", "age_matrix", "stats",
                 "_fu_counts")

    def __init__(self, issue_width: int, fu_pool: FuPool,
                 age_matrix: Optional[AgeMatrix] = None):
        if issue_width < 1:
            raise ValueError("issue width must be positive")
        self.issue_width = issue_width
        self.fu_pool = fu_pool
        self.age_matrix = age_matrix
        self.stats = SelectStats()
        # FuClass is an IntEnum starting at 0, so per-class availability
        # lives in a plain list indexed by ``uop.fu``.
        self._fu_counts = [fu_pool.ialu, fu_pool.imult,
                           fu_pool.ldst, fu_pool.fpu]

    def select(self, requests: Sequence[Tuple[int, object]]) -> List[Tuple[int, object]]:
        """Grant up to ``issue_width`` of the ready requests.

        ``requests`` are (slot, uop) pairs in ascending slot order; each uop
        exposes ``fu`` (its :class:`FuClass`).  Returns the granted pairs.
        The age matrix, when present, grants the single oldest request first
        (highest priority), then the position-based pass fills the rest --
        the arrangement of Fig. 14(b).
        """
        stats = self.stats
        stats.cycles += 1
        stats.requests += len(requests)
        if not requests:
            return []
        avail = self._fu_counts.copy()
        granted: List[Tuple[int, object]] = []
        width = self.issue_width

        if self.age_matrix is None:
            # Common case: a single priority-ordered pass; no pre-grant
            # means no duplicate to track.
            for slot, uop in requests:
                fu = uop.fu
                if avail[fu] > 0:
                    avail[fu] = avail[fu] - 1
                    granted.append((slot, uop))
                    if len(granted) >= width:
                        break
        else:
            granted_slots = set()
            oldest_slot = self.age_matrix.oldest([slot for slot, _ in requests])
            if oldest_slot is not None:
                for slot, uop in requests:
                    if slot == oldest_slot:
                        if avail[uop.fu] > 0:
                            avail[uop.fu] -= 1
                            granted.append((slot, uop))
                            granted_slots.add(slot)
                            stats.age_grants += 1
                        break
            for slot, uop in requests:
                if len(granted) >= width:
                    break
                if slot in granted_slots:
                    continue
                if avail[uop.fu] > 0:
                    avail[uop.fu] -= 1
                    granted.append((slot, uop))
                    granted_slots.add(slot)

        stats.grants += len(granted)
        stats.conflict_denials += len(requests) - len(granted)
        granted.sort(key=lambda pair: pair[0])
        return granted
