"""Age matrix (Sec. V-G1; Preston et al., ISSCC 2002; Sassone et al. 2007).

A random queue loses the age ordering a shifting queue had; the age matrix
restores an *oldest-ready-first* grant for one instruction per cycle.  Each
row/column pair corresponds to an IQ entry; cell (r, c) is 1 iff the
instruction in entry r is older than the instruction in entry c.  ANDing a
row with the (transposed) issue-request vector tells whether any older
instruction is also requesting: the entry whose row ANDs to zero is the
oldest requester.

Rows are stored as Python ints used as bit vectors, exactly mirroring the
hardware's per-row bit cells.  The paper's LSI evaluation found the matrix
lengthens the IQ critical path by 13%; that figure is applied analytically
in the Fig. 15(b) analysis (:mod:`repro.analysis`), since circuit delay is
outside a cycle-level model.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

#: IQ delay increase caused by the age matrix per the paper's HSPICE/LSI
#: design study (Sec. V-G1), applied as a clock-period factor in Fig. 15(b).
AGE_MATRIX_IQ_DELAY_FACTOR = 1.13


class AgeMatrix:
    """Bit-matrix tracking relative dispatch age of IQ entries."""

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("age matrix size must be positive")
        self.size = size
        # _older_mask[r]: bit c set iff entry c holds an older instruction
        # than entry r.
        self._older_mask: List[int] = [0] * size
        self._valid = 0  # bit r set iff entry r currently holds an instruction

    def insert(self, slot: int) -> None:
        """Record a dispatch into ``slot``: it is younger than every
        currently-valid entry."""
        if not 0 <= slot < self.size:
            raise IndexError(f"slot out of range: {slot}")
        bit = 1 << slot
        if self._valid & bit:
            raise ValueError(f"slot already valid in age matrix: {slot}")
        self._older_mask[slot] = self._valid
        # Existing entries are all older; nothing to update in their rows.
        self._valid |= bit

    def remove(self, slot: int) -> None:
        """Clear ``slot`` on issue/flush; it no longer ages anyone."""
        bit = 1 << slot
        if not self._valid & bit:
            raise ValueError(f"slot not valid in age matrix: {slot}")
        self._valid &= ~bit
        self._older_mask[slot] = 0
        clear = ~bit
        for r in range(self.size):
            self._older_mask[r] &= clear

    def oldest(self, request_slots: Iterable[int]) -> Optional[int]:
        """The requesting slot with no older requester (hardware row-AND)."""
        request_vector = 0
        for slot in request_slots:
            request_vector |= 1 << slot
        request_vector &= self._valid
        if not request_vector:
            return None
        for slot in range(self.size):
            bit = 1 << slot
            if request_vector & bit and not self._older_mask[slot] & request_vector:
                return slot
        return None  # pragma: no cover - one requester always wins

    def is_valid(self, slot: int) -> bool:
        return bool(self._valid & (1 << slot))

    @property
    def valid_count(self) -> int:
        return bin(self._valid).count("1")
