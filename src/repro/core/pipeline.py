"""Cycle-level out-of-order superscalar pipeline.

The machine of Table I: in-order front end (fetch through dispatch), a
random-queue IQ with position-based select (optionally partitioned for PUBS
and/or augmented with an age matrix), out-of-order issue constrained by the
function-unit mix, a reorder buffer committing in order, a load/store queue
with store-to-load forwarding, checkpointed misprediction recovery, and the
two-level cache hierarchy with a stream prefetcher.

Execution is oracle-assisted trace-driven: a :class:`~repro.isa.executor.
TraceCursor` supplies the architecturally-correct instruction stream; on a
branch misprediction the front end walks the *static* code along the
predicted path, injecting wrong-path uops that occupy rename registers, IQ
entries, LSQ entries and function units until recovery -- the resource
contention that makes issue priority matter.  Wrong-path branches never
redirect fetch themselves and wrong-path memory ops do not touch the cache
(standard trace-driven simplifications; see DESIGN.md).

With ``config.frontend_mode == "replay"`` the live functional executor is
replaced by a :class:`~repro.trace.replay.TraceReplayFrontEnd` over a
recorded trace (DESIGN.md §9): correct-path records come from typed
arrays, warmup restores cached post-skip checkpoints of the memory
hierarchy and the predictor complex instead of re-training them, and only
wrong-path fetch stays live (it is config-dependent, so it can never be
part of a shared trace).  Replay is bit-identical to live execution --
the golden-stats tests run both modes against the same expected stats.

Per-cycle processing order is commit, writeback, issue, dispatch, fetch, so
results written back in cycle ``c`` can feed an issue in cycle ``c`` only
through the pre-scheduled ready cycles (producers set their consumers'
earliest issue cycle at their own issue), giving back-to-back issue of
dependent single-cycle operations.

The issue stage keeps an *incremental ready set* instead of re-scanning the
whole IQ every cycle: at dispatch each uop either gets a known ready cycle
(all producers already scheduled) or registers as a waiter on its
not-yet-scheduled source registers; a producer's issue wakes its waiters.
This is valid because, while a uop is IQ-resident, each source's ready
cycle makes exactly one transition (unscheduled -> a fixed cycle): sources
cannot be re-renamed under a resident consumer (their registers are freed
only at the commit of a younger writer, which retires after the consumer),
and recovery only squashes uops younger than the branch.  The shifting and
circular organizations compact entry positions on release, so they keep
the legacy full-scan loop (slots there are not stable handles).
"""

from __future__ import annotations

from collections import deque
from operator import itemgetter
from typing import Deque, Dict, List, Optional

from ..branch.base import BranchPredictor
from ..branch.btb import BranchTargetBuffer
from ..branch.classic import BimodePredictor, GsharePredictor, TournamentPredictor
from ..branch.perceptron import PerceptronPredictor
from ..iq.age_matrix import AgeMatrix
from ..iq.distributed import DistributedIssueQueue, DistributedSelectLogic
from ..iq.ordered import CircularQueue, ShiftingQueue
from ..iq.queue import IssueQueue
from ..iq.select import SelectLogic
from ..isa.executor import FunctionalExecutor, TraceCursor
from ..isa.instruction import INST_BYTES, Program
from ..isa.opcodes import Opcode, latency as op_latency
from ..memory.hierarchy import MemoryHierarchy
from ..pubs.mode_switch import ModeSwitch
from ..pubs.slice_tracker import SliceTracker
from .config import ProcessorConfig
from .lsq import LoadStoreQueue
from .rename import Renamer
from .rob import ReorderBuffer
from .stats import SimStats
from .uop import NEVER, Uop

_slot_of = itemgetter(0)


def build_predictor(config: ProcessorConfig) -> BranchPredictor:
    """Instantiate the configured direction predictor."""
    p = config.predictor
    if p.kind == "perceptron":
        return PerceptronPredictor(p.history_length, p.table_size)
    if p.kind == "gshare":
        return GsharePredictor(p.table_size, p.history_length)
    if p.kind == "bimode":
        return BimodePredictor(p.table_size, p.history_length)
    if p.kind == "tournament":
        return TournamentPredictor()
    raise ValueError(f"unknown predictor kind: {p.kind}")


def _front_warm_config(config: ProcessorConfig) -> dict:
    """The configuration slice that shapes warmup-trained front-end state.

    The predictor and BTB are shaped by ``config.predictor``; the slice
    tracker's warm state additionally depends on the PUBS fields that size
    its tables or gate its training -- and, because training consumes each
    warm prediction outcome, on the predictor configuration too, which is
    why the three are checkpointed as one component.  Fields that only
    steer dispatch at *timing* time (priority entries, stall policy, mode
    switching) are deliberately excluded so sweeps over them share warm
    state.
    """
    p = config.pubs
    return {
        "predictor": config.predictor,
        "pubs": {
            "enabled": p.enabled,
            "blind": p.blind,
            "conf_counter_bits": p.conf_counter_bits,
            "conf_sets": p.conf_sets,
            "conf_assoc": p.conf_assoc,
            "conf_fold_width": p.conf_fold_width,
            "brslice_sets": p.brslice_sets,
            "brslice_assoc": p.brslice_assoc,
            "brslice_fold_width": p.brslice_fold_width,
            "word_width": p.word_width,
        },
    }


class DeadlockError(RuntimeError):
    """The pipeline made no commit progress for an implausible interval."""


class Pipeline:
    """One simulated core running one program."""

    def __init__(self, program: Program, config: ProcessorConfig = None,
                 mem_seed: int = 0, trace_source=None):
        self.config = config or ProcessorConfig.cortex_a72_like()
        cfg = self.config
        self.program = program
        self.mem_seed = mem_seed
        #: Optional :class:`~repro.trace.store.TraceStore` override for
        #: replay mode (tests inject a temp-dir store; None => the shared
        #: environment-selected store).  Ignored in live mode.
        self._trace_source = trace_source
        if cfg.frontend_mode == "replay":
            # No live executor: the cursor is built in run(), once the
            # required trace length (skip + sample + margin) is known.
            self.executor = None
            self.cursor = None
        else:
            self.executor = FunctionalExecutor(program, mem_seed=mem_seed)
            self.cursor = TraceCursor(self.executor)
        self.predictor = build_predictor(cfg)
        self.btb = BranchTargetBuffer(cfg.predictor.btb_sets, cfg.predictor.btb_assoc)
        self.hierarchy = MemoryHierarchy(cfg.memory)
        self.slice_tracker = SliceTracker(cfg.pubs)
        self.mode_switch = ModeSwitch(
            cfg.pubs.mode_switch_threshold_mpki,
            cfg.pubs.mode_switch_interval,
            enabled=cfg.pubs.enabled and cfg.pubs.mode_switch_enabled,
        )
        priority_entries = cfg.pubs.priority_entries if cfg.pubs.enabled else 0
        self.age_matrix = AgeMatrix(cfg.iq_size) if cfg.use_age_matrix else None
        if cfg.distributed_iq:
            self.iq = DistributedIssueQueue(cfg.iq_size, cfg.fu_pool,
                                            priority_entries, seed=cfg.seed)
            self.select_logic = DistributedSelectLogic(cfg.issue_width, cfg.fu_pool)
        elif cfg.iq_organization == "shifting":
            self.iq = ShiftingQueue(cfg.iq_size)
            self.select_logic = SelectLogic(cfg.issue_width, cfg.fu_pool)
        elif cfg.iq_organization == "circular":
            self.iq = CircularQueue(cfg.iq_size)
            self.select_logic = SelectLogic(cfg.issue_width, cfg.fu_pool)
        else:
            self.iq = IssueQueue(cfg.iq_size, priority_entries, seed=cfg.seed)
            self.select_logic = SelectLogic(cfg.issue_width, cfg.fu_pool,
                                            self.age_matrix)
        self.renamer = Renamer(cfg.int_phys_regs, cfg.fp_phys_regs)
        self.rob = ReorderBuffer(cfg.rob_size)
        self.lsq = LoadStoreQueue(cfg.lsq_size)
        self.stats = SimStats()

        self.cycle = 0
        self._next_seq = 0
        self._next_trace_seq = 0
        self._wrong_path_pc: Optional[int] = None  # None => fetching the trace
        self._fetch_resume_cycle = 0  # recovery redirect / I-miss stall
        #: Why fetch is stalled while ``cycle < _fetch_resume_cycle``
        #: ("recovery" or "l1i"); drives topdown bubble attribution.
        self._fetch_stall_reason = "fetch"
        #: Why the front end is empty when dispatch finds nothing: keeps
        #: the last stall's reason until a dispatch succeeds, so the
        #: pipeline-refill bubbles after a recovery or an I-miss are
        #: attributed to their cause, not to generic fetch bandwidth.
        self._bubble_reason = "fetch"
        #: Set by :meth:`_allocate_iq_slot` when the stall policy blocked
        #: dispatch on a full *priority* partition (vs. a full IQ), so
        #: the dispatch loop books the stall under the right cause.
        self._priority_blocked = False
        self._last_ifetch_line = -1
        self._frontend: Deque[Uop] = deque()
        self._frontend_capacity = cfg.fetch_width * (cfg.frontend_depth + 2)
        self._events: Dict[int, List[Uop]] = {}
        # Incremental ready-set state (see the module docstring).  Entry
        # handles are stable only in the random organizations (single or
        # distributed); shifting/circular compact positions on release, so
        # they fall back to the legacy full-scan issue loop.
        self._incremental_issue = cfg.distributed_iq or cfg.iq_organization == "random"
        self._wakeup: Dict[int, List[Uop]] = {}  # phys reg -> waiting uops
        self._ready_now: List[Uop] = []  # ready_at <= cycle, unissued
        self._ready_buckets: Dict[int, List[Uop]] = {}  # cycle -> uops
        self._forward_latency = 2  # store-to-load forwarding (L1-hit-like)
        self._commit_limit: Optional[int] = None
        #: Sampled-region detailed warmup still owed before measurement
        #: (consumed by the first ``run`` on a region config).
        self._pending_detail = 0
        #: Set by the batched replay front end (:mod:`repro.batch`) after
        #: it has installed the shared cursor and warm state externally;
        #: the next ``run`` then skips :meth:`_prepare_replay` once.
        self._replay_prepared = False
        #: Hierarchy-counter baselines at the measurement start, so
        #: region stats report the measured window, not the warm phases.
        self._mem_stats_base = (0, 0, 0)
        #: Optional callback invoked with every committing uop (fidelity
        #: checks, tracing).  Keep it cheap: it runs on the commit path.
        self.commit_hook = None
        #: Timeline records of the most recent misprediction recoveries:
        #: (pc, fetch, dispatch, issue, complete) cycles per Fig. 1.
        self.misprediction_log: Deque[tuple] = deque(maxlen=64)
        self._last_data_addr = 1 << 30  # for wrong-path address synthesis
        #: Runtime verification (repro.verify): a differential oracle at
        #: every commit and, at "full" level, periodic invariant sweeps.
        #: None when cfg.verify_level == "off" -- the unverified hot path
        #: pays one attribute check per cycle and per commit, nothing more.
        self.verifier = None
        if cfg.verify_level != "off":
            from ..verify import PipelineVerifier  # deferred: import cycle
            self.verifier = PipelineVerifier(
                self, cfg.verify_level, cfg.verify_interval,
                mem_seed=mem_seed)
        #: SMT-interference co-runner (repro.core.smt): None when disabled
        #: -- the uncontended hot path pays one attribute check per commit.
        #: Injects only during timed commits (never the warm phase), so
        #: live and replay runs see identical injection points.
        self._smt = None
        if cfg.smt.enabled:
            from .smt import SmtInterference
            self._smt = SmtInterference(cfg.smt)

    # ==================================================================
    # Public driver
    # ==================================================================

    def run(self, max_instructions: int, skip_instructions: int = 0,
            max_cycles: Optional[int] = None) -> SimStats:
        """Simulate until ``max_instructions`` commit.

        ``skip_instructions`` fast-forwards the functional executor before
        timing starts (the paper skips 16G instructions before its 100M
        sample).  ``max_cycles`` bounds runaway simulations; a run that
        exhausts it raises :class:`DeadlockError`.
        """
        if max_instructions < 1:
            raise ValueError("max_instructions must be positive")
        if self.config.frontend_mode == "replay":
            if self._replay_prepared:
                self._replay_prepared = False
            else:
                self._prepare_replay(max_instructions, skip_instructions)
        else:
            self._prewarm_regions()
            for _ in range(skip_instructions):
                self._warm(self.executor.step())
                self._next_trace_seq += 1
            self.cursor.release(self._next_trace_seq)
        if self.verifier is not None:
            self.verifier.on_skip(skip_instructions)
        if self._pending_detail:
            self._run_detail(self._pending_detail)
            self._pending_detail = 0
        self._commit_limit = self.stats.committed + max_instructions
        limit = max_cycles if max_cycles is not None else 500 * max_instructions + 100_000
        limit += self.cycle  # detail warmup spent cycles before measurement
        while self.stats.committed < self._commit_limit:
            self.step()
            if self.cycle > limit:
                raise DeadlockError(
                    f"no completion after {self.cycle} cycles "
                    f"({self.stats.committed} committed)"
                )
        self._finalize_stats()
        if self.verifier is not None:
            self.verifier.on_run_end()
        return self.stats

    def _run_detail(self, detail: int) -> None:
        """Run the region's detailed-warmup records, then discard stats.

        SMARTS-style: the ``detail`` records before the measured window
        go through the full timing model so measurement starts from a
        filled pipeline (in-flight ROB/IQ/LSQ contents, outstanding
        misses), not the cold one a fast-forwarded seat leaves behind.
        Their cycles and commits are discarded; only the warm state --
        including the instructions still in flight -- carries over.
        """
        self._commit_limit = self.stats.committed + detail
        limit = self.cycle + 500 * detail + 100_000
        while self.stats.committed < self._commit_limit:
            self.step()
            if self.cycle > limit:
                raise DeadlockError(
                    f"no completion during detailed warmup after "
                    f"{self.cycle} cycles ({self.stats.committed} committed)"
                )
        # Measurement starts here: fresh counters, and remember the
        # hierarchy's absolute miss counts so _finalize_stats reports
        # only the measured window's misses.
        self.stats = SimStats()
        self._mem_stats_base = (self.hierarchy.stats.l2_misses,
                                self.hierarchy.stats.l1d_misses,
                                self.hierarchy.stats.l1i_misses)

    def _prewarm_regions(self) -> None:
        """Install the program's cacheable data regions into the L2.

        Models resuming from a warmed checkpoint: regions are warmed oldest-
        first while they cumulatively fit in 3/4 of the LLC (their steady
        state); larger regions stay cold because their steady state *is*
        missing.
        """
        l2 = self.hierarchy.l2
        budget = l2.config.size_bytes * 3 // 4
        line = l2.config.line_bytes
        warmed = 0
        for start, size in self.program.warm_regions:
            if warmed + size > budget:
                continue
            warmed += size
            for addr in range(start, start + size, line):
                l2.install(addr)

    def _warm(self, record) -> None:
        """Train warm-state structures with one skipped instruction.

        The skip phase models fast-forwarding from a checkpoint: caches,
        the branch predictor, the BTB and the confidence table see the
        skipped stream (functionally, without timing), so timing starts
        from a representative microarchitectural state.
        """
        inst = record.inst
        line = inst.pc >> 6
        if line != self._last_ifetch_line:
            self.hierarchy.warm_ifetch(inst.pc)
            self._last_ifetch_line = line
        if record.mem_addr is not None:
            self.hierarchy.warm_data(record.mem_addr)
        elif inst.is_conditional_branch:
            predicted = self.predictor.predict(inst.pc)
            self.predictor.update(inst.pc, record.taken, predicted)
            if record.taken:
                self.btb.install(inst.pc, record.next_pc)
            if self.config.pubs.enabled:
                self.slice_tracker.on_branch_resolved(
                    inst.pc, correct=predicted == record.taken
                )

    # ------------------------------------------------------------------
    # Replay front end (frontend_mode == "replay")
    # ------------------------------------------------------------------

    def _prepare_replay(self, max_instructions: int,
                        skip_instructions: int) -> None:
        """Acquire the trace and fast-forward warmup for a replay run.

        Mirrors the live skip phase exactly.  On a fresh run the trained
        post-skip state of the memory hierarchy and of the predictor
        complex is restored from (or recorded into) the warm-checkpoint
        store, so a sweep trains each component once, not once per config.
        On a resumed run (``run`` called again) warm training continues
        from the replay position on the live structures, as in live mode.
        """
        from ..trace.replay import TraceReplayFrontEnd  # deferred: import cycle
        from ..trace.store import REPLAY_MARGIN, shared_store
        store = self._trace_source if self._trace_source is not None \
            else shared_store()
        fresh = (self.cycle == 0 and self.stats.committed == 0
                 and self._next_trace_seq == 0)
        region = self.config.replay_region
        if region is not None and fresh:
            if skip_instructions:
                raise ValueError(
                    "replay_region and skip_instructions are mutually "
                    "exclusive: the region's warmup already positions "
                    "the timed window")
            needed = region.start + max_instructions + REPLAY_MARGIN
            trace = store.acquire(self.program, self.mem_seed, needed)
            self.cursor = TraceReplayFrontEnd(trace, self.program)
            # Timing (the discarded detail window first) starts at
            # ``seat``; warm microarchitectural state fast-forwards only
            # over the warmup residue before it, and the differential
            # oracle (when enabled) restarts from the nearest
            # ArchCheckpoint <= the seat instead of re-executing the
            # whole prefix.
            seat = region.start - region.detail
            if region.warmup == seat and seat > 0:
                # Full-prefix warmup is exactly the skip path's warm
                # phase, so share its warm-checkpoint store: state at
                # this seat is trained once and restored by every other
                # config sampling the same window.
                self._restore_or_train_warm(store, trace, seat)
            else:
                self._prewarm_regions()
                self._warm_mem_span(trace, seat - region.warmup, seat)
                self._warm_front_span(trace, seat - region.warmup, seat)
            self._next_trace_seq = seat
            self._pending_detail = region.detail
            if self.verifier is not None:
                self.verifier.on_region(trace, seat)
            self.cursor.release(seat)
            return
        start = 0 if fresh else self.cursor.high
        needed = start + skip_instructions + max_instructions + REPLAY_MARGIN
        trace = store.acquire(self.program, self.mem_seed, needed,
                              skip_hint=skip_instructions if fresh else 0)
        if self.cursor is None:
            self.cursor = TraceReplayFrontEnd(trace, self.program)
        elif trace is not self.cursor.trace:
            self.cursor.attach(trace)
        if fresh and skip_instructions:
            self._restore_or_train_warm(store, trace, skip_instructions)
            self._next_trace_seq = skip_instructions
        else:
            self._prewarm_regions()
            self._warm_mem_span(trace, start, start + skip_instructions)
            self._warm_front_span(trace, start, start + skip_instructions)
            self._next_trace_seq += skip_instructions
        self.cursor.release(self._next_trace_seq)

    def _restore_or_train_warm(self, store, trace, skip: int) -> None:
        """Restore warm components from checkpoints, training on a miss."""
        cfg = self.config
        mem_key = store.warm_key(self.program, self.mem_seed, skip, "mem",
                                 cfg.memory)
        warm = store.get_warm(mem_key)
        if warm is not None:
            (self.hierarchy,) = warm
        else:
            self._prewarm_regions()
            self._warm_mem_span(trace, 0, skip)
            store.put_warm(mem_key, (self.hierarchy,))
        front_key = store.warm_key(self.program, self.mem_seed, skip,
                                   "front", _front_warm_config(cfg))
        warm = store.get_warm(front_key)
        if warm is not None:
            self.predictor, self.btb, self.slice_tracker = warm
            # Geometry-equal by key; rebind so later field reads see the
            # run's own config object, not the snapshot's.
            self.slice_tracker.config = cfg.pubs
        else:
            self._warm_front_span(trace, 0, skip)
            store.put_warm(front_key,
                           (self.predictor, self.btb, self.slice_tracker))
        self._last_ifetch_line = trace.pcs[skip - 1] >> 6

    def _warm_mem_span(self, trace, start: int, end: int) -> None:
        """:meth:`_warm`'s memory-hierarchy half over trace records.

        Most records are neither an I-line change nor a memory access;
        when numpy is available the warm events are extracted
        vectorized, so the Python loop only visits records that touch
        the hierarchy -- same calls in the same order, so the resulting
        warm state is bit-identical to the per-record walk.
        """
        from ..trace.format import FLAG_MEM  # deferred: import cycle
        if end <= start:
            return
        pcs = trace.pcs
        flags = trace.flags
        mem_addrs = trace.mem_addrs
        hierarchy = self.hierarchy
        try:
            import numpy as np
        except ImportError:
            np = None
        if np is not None:
            lines = np.frombuffer(pcs, dtype=np.uint32)[start:end] >> 6
            chg = np.empty(len(lines), dtype=bool)
            chg[0] = lines[0] != self._last_ifetch_line
            np.not_equal(lines[1:], lines[:-1], out=chg[1:])
            mem = (np.frombuffer(flags, dtype=np.uint8)[start:end]
                   & FLAG_MEM) != 0
            for off in np.nonzero(chg | mem)[0].tolist():
                i = start + off
                if chg[off]:
                    hierarchy.warm_ifetch(pcs[i])
                if mem[off]:
                    hierarchy.warm_data(mem_addrs[i])
            self._last_ifetch_line = int(lines[-1])
            return
        last_line = self._last_ifetch_line
        for i in range(start, end):
            pc = pcs[i]
            line = pc >> 6
            if line != last_line:
                hierarchy.warm_ifetch(pc)
                last_line = line
            if flags[i] & FLAG_MEM:
                hierarchy.warm_data(mem_addrs[i])
        self._last_ifetch_line = last_line

    def _warm_front_span(self, trace, start: int, end: int) -> None:
        """:meth:`_warm`'s predictor-complex half over trace records.

        Vectorizes the branch-record scan like :meth:`_warm_mem_span`:
        only conditional branches train the predictor complex, so the
        Python loop skips straight to them.
        """
        from ..trace.format import FLAG_COND_BRANCH, FLAG_TAKEN  # deferred
        pcs = trace.pcs
        flags = trace.flags
        next_pcs = trace.next_pcs
        predictor = self.predictor
        btb = self.btb
        tracker = self.slice_tracker
        pubs_on = self.config.pubs.enabled
        try:
            import numpy as np
        except ImportError:
            np = None
        if np is not None and end > start:
            seg = np.frombuffer(flags, dtype=np.uint8)[start:end]
            indices = np.nonzero(seg & FLAG_COND_BRANCH)[0].tolist()
        else:
            indices = (i - start for i in range(start, end)
                       if flags[i] & FLAG_COND_BRANCH)
        for off in indices:
            i = start + off
            f = flags[i]
            pc = pcs[i]
            taken = bool(f & FLAG_TAKEN)
            predicted = predictor.predict(pc)
            predictor.update(pc, taken, predicted)
            if taken:
                btb.install(pc, next_pcs[i])
            if pubs_on:
                tracker.on_branch_resolved(pc,
                                           correct=predicted == taken)

    def step(self) -> None:
        """Advance one clock cycle."""
        self.cycle += 1
        self.stats.cycles += 1
        self._commit()
        self._writeback()
        self._issue()
        self._dispatch()
        self._fetch()
        self.stats.iq_occupancy_sum += self.iq.occupancy
        if self.verifier is not None:
            self.verifier.on_cycle()

    def _finalize_stats(self) -> None:
        base_llc, base_l1d, base_l1i = self._mem_stats_base
        self.stats.llc_misses = self.hierarchy.stats.l2_misses - base_llc
        self.stats.l1d_misses = self.hierarchy.stats.l1d_misses - base_l1d
        self.stats.l1i_misses = self.hierarchy.stats.l1i_misses - base_l1i

    # ==================================================================
    # Commit
    # ==================================================================

    def _commit(self) -> None:
        cycle = self.cycle
        rob = self.rob
        renamer = self.renamer
        stats = self.stats
        limit = self._commit_limit
        verifier = self.verifier
        smt = self._smt
        for _ in range(self.config.commit_width):
            if limit is not None and stats.committed >= limit:
                break
            uop = rob.head()
            if uop is None or not uop.completed:
                break
            rob.pop_head()
            renamer.release_committed(uop)
            if uop.in_lsq:
                self.lsq.remove_committed(uop)
                if uop.inst.is_store and uop.mem_addr is not None:
                    self.hierarchy.store(cycle, uop.mem_addr)
            if uop.inst.is_conditional_branch:
                stats.cond_branches += 1
                if uop.mispredicted:
                    stats.mispredictions += 1
                self.slice_tracker.on_branch_resolved(
                    uop.inst.pc, correct=not uop.mispredicted
                )
            stats.committed += 1
            if smt is not None:
                smt.on_commit(self)
            if verifier is not None:
                verifier.on_commit(uop)
            if self.commit_hook is not None:
                self.commit_hook(uop)
            if uop.trace_seq >= 0:
                self.cursor.release(uop.trace_seq)
        self.mode_switch.observe(stats.committed, self.hierarchy.stats.l2_misses)

    # ==================================================================
    # Writeback / branch resolution
    # ==================================================================

    def _writeback(self) -> None:
        completing = self._events.pop(self.cycle, None)
        if not completing:
            return
        for uop in completing:
            if uop.squashed:
                continue
            uop.completed = True
            uop.complete_cycle = self.cycle
            if uop.mispredicted and uop.on_correct_path:
                self._recover(uop)

    def _recover(self, branch: Uop) -> None:
        """Branch misprediction recovery (flush + checkpoint restore)."""
        cycle = self.cycle
        penalty = cycle - branch.fetch_cycle
        self.stats.missspec_penalty_cycles += penalty
        self.stats.missspec_frontend_cycles += branch.dispatch_cycle - branch.fetch_cycle
        self.stats.missspec_iq_wait_cycles += branch.issue_cycle - branch.dispatch_cycle
        self.stats.missspec_execute_cycles += cycle - branch.issue_cycle
        self.misprediction_log.append(
            (branch.inst.pc, branch.fetch_cycle, branch.dispatch_cycle,
             branch.issue_cycle, cycle)
        )

        seq = branch.seq
        for uop in self._frontend:
            uop.squashed = True
        self._frontend.clear()
        for slot, uop in list(self.iq.occupied()):
            if uop.seq > seq:
                uop.squashed = True
                if self.age_matrix is not None:
                    self.age_matrix.remove(slot)
        self.iq.flush(keep=lambda uop: not uop.squashed)
        for uop in self.rob.squash_younger(seq):
            uop.squashed = True
            self.renamer.release_squashed(uop)
        for uop in self.lsq.squash_younger(seq):
            uop.squashed = True
        self.renamer.restore(branch.checkpoint)
        branch.checkpoint = None

        self._next_trace_seq = branch.trace_seq + 1
        self._wrong_path_pc = None
        self._fetch_resume_cycle = cycle + self.config.recovery_penalty
        self._fetch_stall_reason = "recovery"
        self._bubble_reason = "recovery"
        self._last_ifetch_line = -1

    # ==================================================================
    # Issue
    # ==================================================================

    def _issue(self) -> None:
        if self._incremental_issue:
            self._issue_incremental()
        else:
            self._issue_scan()

    def _schedule_dispatched(self, uop: Uop) -> None:
        """Register a freshly-dispatched uop with the ready-set machinery.

        Sources with a known ready cycle contribute to ``uop.ready_at``;
        each source whose producer has not yet issued adds a pending count
        and a wakeup registration (duplicate source registers register --
        and are later decremented -- once per occurrence).
        """
        ready_cycle = self.renamer.ready_cycle
        ready_at = 0
        pending = 0
        for phys in uop.src_phys:
            rc = ready_cycle[phys]
            if rc == NEVER:
                pending += 1
                waiters = self._wakeup.get(phys)
                if waiters is None:
                    self._wakeup[phys] = [uop]
                else:
                    waiters.append(uop)
            elif rc > ready_at:
                ready_at = rc
        uop.ready_at = ready_at  # partial max while sources are pending
        uop.pending_srcs = pending
        if pending:
            return
        if ready_at <= self.cycle:
            self._ready_now.append(uop)
        else:
            bucket = self._ready_buckets.get(ready_at)
            if bucket is None:
                self._ready_buckets[ready_at] = [uop]
            else:
                bucket.append(uop)

    def _wake_consumers(self, phys: int, when: int) -> None:
        """A producer issued: schedule its register's waiting consumers.

        ``when`` is at least ``cycle + 1`` (execution latencies are >= 1),
        so a fully-woken consumer always lands in a future bucket, never in
        the current cycle's already-drained one -- exactly matching the
        scan loop, which could not have seen the value ready this cycle
        either.  Waiters squashed since registering are dropped lazily.
        """
        waiters = self._wakeup.pop(phys, None)
        if waiters is None:
            return
        buckets = self._ready_buckets
        for uop in waiters:
            if when > uop.ready_at:
                uop.ready_at = when
            uop.pending_srcs -= 1
            if uop.pending_srcs == 0 and not uop.squashed:
                bucket = buckets.get(uop.ready_at)
                if bucket is None:
                    buckets[uop.ready_at] = [uop]
                else:
                    bucket.append(uop)

    def _issue_incremental(self) -> None:
        """Issue from the incrementally-maintained ready set.

        Equivalent to :meth:`_issue_scan` (validated by the golden-stats
        tests) without touching the uops that cannot issue this cycle:
        per-cycle work is O(ready + granted), not O(IQ occupancy).
        """
        cycle = self.cycle
        ready = self._ready_now
        bucket = self._ready_buckets.pop(cycle, None)
        if bucket is not None:
            ready.extend(bucket)
        live: List[Uop] = []
        requests = []
        for uop in ready:
            if uop.squashed or uop.issue_cycle >= 0:
                continue
            live.append(uop)
            dep = uop.store_dep
            if dep is not None and dep.issue_cycle < 0 and not dep.squashed:
                continue  # stays live; retried once the store issues
            requests.append((uop.iq_slot, uop))
        if not requests:
            self.select_logic.stats.cycles += 1
            self._ready_now = live
            return
        # Dispatch order into the ready set is not slot order; the select
        # logic's position priority needs ascending slots/handles (the
        # order the scan loop produced by construction).
        requests.sort(key=_slot_of)
        granted = self.select_logic.select(requests)
        iq_release = self.iq.release
        age_matrix = self.age_matrix
        for slot, _ in sorted(granted, reverse=True):
            iq_release(slot)
            if age_matrix is not None:
                age_matrix.remove(slot)
        renamer = self.renamer
        events = self._events
        for slot, uop in granted:
            uop.issue_cycle = cycle
            uop.iq_slot = -1
            lat = self._execution_latency(uop)
            done = cycle + lat
            dest = uop.dest_phys
            if dest >= 0:
                renamer.set_ready(dest, done)
                self._wake_consumers(dest, done)
            bucket = events.get(done)
            if bucket is None:
                events[done] = [uop]
            else:
                bucket.append(uop)
        self._ready_now = [u for u in live if u.issue_cycle < 0]

    def _issue_scan(self) -> None:
        """Legacy full-IQ scan, kept for the compacting organizations."""
        cycle = self.cycle
        renamer = self.renamer
        requests = []
        for slot, uop in self.iq.occupied():
            dep = uop.store_dep
            if dep is not None and not (dep.issued or dep.squashed):
                continue
            if renamer.sources_ready(uop, cycle):
                requests.append((slot, uop))
        if not requests:
            self.select_logic.stats.cycles += 1
            return
        granted = self.select_logic.select(requests)
        # Release highest slots first: in the shifting queue, removing an
        # entry compacts the positions above it, so descending order keeps
        # the remaining grant slots valid.
        for slot, _ in sorted(granted, reverse=True):
            self.iq.release(slot)
            if self.age_matrix is not None:
                self.age_matrix.remove(slot)
        for slot, uop in granted:
            uop.issue_cycle = cycle
            uop.iq_slot = -1
            lat = self._execution_latency(uop)
            if uop.dest_phys >= 0:
                renamer.set_ready(uop.dest_phys, cycle + lat)
            self._events.setdefault(cycle + lat, []).append(uop)

    def _execution_latency(self, uop: Uop) -> int:
        inst = uop.inst
        if inst.is_load:
            dep = uop.store_dep
            if dep is not None and not dep.squashed:
                return 1 + self._forward_latency
            if uop.on_correct_path and uop.mem_addr is not None:
                self._last_data_addr = uop.mem_addr
                return 1 + self.hierarchy.load(self.cycle, uop.mem_addr)
            if self.config.wrong_path_memory == "pollute":
                # Wrong-path loads have no architectural address; real ones
                # usually land near recently-touched data, so synthesize a
                # deterministic address within 4 KB of the last correct-path
                # access (cache pollution and spurious prefetch training).
                addr = self._last_data_addr + (((inst.pc >> 2) * 0x61) & 0xFF8)
                return 1 + self.hierarchy.load(self.cycle, addr)
            # Wrong-path loads ("idle"): L1-hit time, no cache side effects.
            return 1 + self.hierarchy.l1d.config.hit_latency
        if inst.is_store:
            return 1  # address/data capture; memory written at commit
        return op_latency(inst.opcode)

    # ==================================================================
    # Dispatch (decode + rename + IQ/ROB/LSQ allocation)
    # ==================================================================

    def _dispatch(self) -> None:
        cfg = self.config
        cycle = self.cycle
        earliest = cycle - cfg.frontend_depth
        pubs_on = cfg.pubs.enabled
        frontend = self._frontend
        rob = self.rob
        lsq = self.lsq
        renamer = self.renamer
        stats = self.stats
        age_matrix = self.age_matrix
        incremental = self._incremental_issue
        dispatched = 0
        # Topdown slot accounting (DESIGN.md §15): every loop exit books
        # the cycle's unfilled decode slots into exactly one bucket, so
        # the td_* counters sum to decode_width * cycles by construction.
        stall_bucket = None
        while dispatched < cfg.decode_width and frontend:
            uop = frontend[0]
            if uop.fetch_cycle > earliest:
                break
            if not uop.decoded:
                # The decode stage proper: PUBS slice tracking.
                uop.decoded = True
                if pubs_on:
                    uop.unconfident = self.slice_tracker.on_decode(uop.inst)
            if rob.is_full():
                stats.dispatch_stall_cycles += 1
                stats.rob_full_stall_cycles += 1
                stall_bucket = "rob"
                break
            if uop.inst.is_mem and lsq.is_full():
                stats.dispatch_stall_cycles += 1
                stats.lsq_full_stall_cycles += 1
                stall_bucket = "lsq"
                break
            if not renamer.can_rename(uop):
                stats.dispatch_stall_cycles += 1
                stats.regs_full_stall_cycles += 1
                stall_bucket = "regs"
                break
            slot = self._allocate_iq_slot(uop)
            if slot is None:
                stats.dispatch_stall_cycles += 1
                if self._priority_blocked:
                    # The stall policy blocked on the priority partition
                    # while the rest of the IQ may have space: a distinct
                    # cause, kept disjoint from iq_full so the per-cause
                    # split sums to dispatch_stall_cycles.
                    self._priority_blocked = False
                    stats.priority_stall_cycles += 1
                    stall_bucket = "priority"
                else:
                    stats.iq_full_stall_cycles += 1
                    stall_bucket = "iq"
                break
            frontend.popleft()
            renamer.rename(uop)
            if uop.mispredicted and uop.on_correct_path:
                uop.checkpoint = renamer.checkpoint()
            uop.dispatch_cycle = cycle
            uop.iq_slot = slot
            rob.append(uop)
            if uop.inst.is_mem:
                lsq.insert(uop)
            if age_matrix is not None:
                age_matrix.insert(slot)
            if incremental:
                self._schedule_dispatched(uop)
            if uop.on_correct_path:
                stats.td_retire_slots += 1
            else:
                stats.td_wrongpath_slots += 1
            dispatched += 1
        if dispatched:
            self._bubble_reason = "fetch"
        leftover = cfg.decode_width - dispatched
        if not leftover:
            return
        if stall_bucket is None:
            # Front end empty (or its head still too young): a frontend
            # bubble.  While a fetch stall is active the reason is exact;
            # afterwards the refill bubbles keep the stall's reason until
            # the first dispatch resets it to plain fetch bandwidth.
            reason = self._fetch_stall_reason \
                if cycle < self._fetch_resume_cycle else self._bubble_reason
            if reason == "recovery":
                stats.td_recovery_slots += leftover
            elif reason == "l1i":
                stats.td_fe_l1i_slots += leftover
            else:
                stats.td_fe_fetch_slots += leftover
        elif stall_bucket == "rob":
            stats.td_be_rob_slots += leftover
        elif stall_bucket == "iq":
            stats.td_be_iq_slots += leftover
        elif stall_bucket == "lsq":
            stats.td_be_lsq_slots += leftover
        elif stall_bucket == "regs":
            stats.td_be_regs_slots += leftover
        else:
            stats.td_be_priority_slots += leftover

    def _allocate_iq_slot(self, uop: Uop) -> Optional[int]:
        """IQ entry allocation implementing the PUBS dispatch policies."""
        cfg = self.config.pubs
        if not cfg.enabled:
            return self.iq.dispatch(uop, priority=False)
        if not self.mode_switch.pubs_active:
            return self.iq.dispatch_uniform(uop)
        if uop.unconfident:
            self.stats.unconfident_dispatches += 1
            slot = self.iq.dispatch(uop, priority=True)
            if slot is not None:
                self.stats.priority_dispatches += 1
                return slot
            if cfg.stall_policy:
                self._priority_blocked = True
                return None
            return self.iq.dispatch(uop, priority=False)
        return self.iq.dispatch(uop, priority=False)

    # ==================================================================
    # Fetch
    # ==================================================================

    def _fetch(self) -> None:
        cycle = self.cycle
        if cycle < self._fetch_resume_cycle:
            return
        cfg = self.config
        fetched = 0
        while fetched < cfg.fetch_width:
            if len(self._frontend) >= self._frontend_capacity:
                break
            on_trace = self._wrong_path_pc is None
            if on_trace:
                record = self.cursor.get(self._next_trace_seq)
                inst = record.inst
            else:
                record = None
                inst = self.program.at(self._wrong_path_pc)
            # Instruction cache: one access per new line.
            line = inst.pc >> 6
            if line != self._last_ifetch_line:
                lat = self.hierarchy.ifetch(cycle, inst.pc)
                self._last_ifetch_line = line
                if lat > self.hierarchy.l1i.config.hit_latency:
                    self._fetch_resume_cycle = cycle + lat
                    self._fetch_stall_reason = "l1i"
                    self._bubble_reason = "l1i"
                    self._last_ifetch_line = -1  # re-check after the fill
                    break
            uop = Uop(self._next_seq, inst, cycle, on_trace,
                      record.seq if on_trace else -1)
            self._next_seq += 1
            next_pc = self._next_fetch_pc(uop, record)
            self._frontend.append(uop)
            self.stats.fetched += 1
            if not on_trace:
                self.stats.wrong_path_fetched += 1
            fetched += 1
            if on_trace and uop.mispredicted:
                self._wrong_path_pc = next_pc
                self._next_trace_seq += 1
                break  # the front end redirects; stop this fetch group
            if on_trace:
                self._next_trace_seq += 1
            else:
                self._wrong_path_pc = next_pc
            if next_pc != inst.pc + INST_BYTES:
                break  # taken-transfer fetch break

    def _next_fetch_pc(self, uop: Uop, record) -> int:
        """Branch prediction at fetch; returns the PC fetch continues at."""
        inst = uop.inst
        pc = inst.pc
        if inst.is_conditional_branch:
            predicted_taken = self.predictor.predict(pc)
            target = None
            if predicted_taken:
                target = self.btb.lookup(pc)
                if target is None:
                    predicted_taken = False  # BTB miss: cannot redirect
                    self.stats.btb_misses_taken += 1
            predicted_next = target if predicted_taken else pc + INST_BYTES
            if predicted_next == pc + INST_BYTES and not self.program.contains(predicted_next):
                predicted_next = self.program.entry_pc
            uop.predicted_taken = predicted_taken
            uop.predicted_next_pc = predicted_next
            if record is not None:  # correct path: train with the truth
                self.predictor.update(pc, record.taken, predicted_taken)
                if record.taken:
                    self.btb.install(pc, record.next_pc)
                uop.actual_taken = record.taken
                uop.actual_next_pc = record.next_pc
                uop.mispredicted = predicted_next != record.next_pc
                return record.next_pc if not uop.mispredicted else predicted_next
            return predicted_next
        if inst.opcode is Opcode.JUMP:
            uop.predicted_taken = True
            uop.predicted_next_pc = inst.target
            if record is not None:
                uop.actual_taken = True
                uop.actual_next_pc = record.next_pc
            return inst.target
        if uop.inst.is_mem and record is not None:
            uop.mem_addr = record.mem_addr
        if record is not None:
            return record.next_pc
        return self.program.next_pc(pc)
