"""In-flight micro-op: the unit the pipeline tracks from fetch to commit."""

from __future__ import annotations

from typing import Optional, Tuple

from ..isa.instruction import StaticInst
from ..isa.opcodes import FuClass, fu_class

#: Sentinel ready-cycle for a value that is not yet scheduled to be ready.
NEVER = 1 << 60


class Uop:
    """One in-flight instruction.

    ``seq`` is a global fetch-order sequence number covering both correct-
    and wrong-path instructions (age == dispatch order == seq order, since
    fetch and dispatch are in order).  ``trace_seq`` indexes the functional
    trace for correct-path uops and is -1 on the wrong path.
    """

    __slots__ = (
        "seq", "inst", "fu", "on_correct_path", "trace_seq",
        "fetch_cycle", "dispatch_cycle", "issue_cycle", "complete_cycle",
        "completed", "squashed",
        "src_phys", "dest_phys", "prev_phys",
        "decoded", "unconfident", "iq_slot",
        "predicted_taken", "predicted_next_pc", "actual_taken",
        "actual_next_pc", "mispredicted", "checkpoint",
        "mem_addr", "store_dep", "in_lsq",
        "ready_at", "pending_srcs",
    )

    def __init__(self, seq: int, inst: StaticInst, fetch_cycle: int,
                 on_correct_path: bool, trace_seq: int = -1):
        self.seq = seq
        self.inst = inst
        self.fu: FuClass = fu_class(inst.opcode)
        self.on_correct_path = on_correct_path
        self.trace_seq = trace_seq
        self.fetch_cycle = fetch_cycle
        self.dispatch_cycle = -1
        self.issue_cycle = -1
        self.complete_cycle = -1
        self.completed = False
        self.squashed = False
        self.src_phys: Tuple[int, ...] = ()
        self.dest_phys = -1
        self.prev_phys = -1
        self.decoded = False
        self.unconfident = False
        self.iq_slot = -1
        self.predicted_taken = False
        self.predicted_next_pc = -1
        self.actual_taken = False
        self.actual_next_pc = -1
        self.mispredicted = False
        self.checkpoint: Optional[tuple] = None
        self.mem_addr: Optional[int] = None
        self.store_dep: Optional["Uop"] = None
        self.in_lsq = False
        #: Earliest cycle every renamed source is ready (the wakeup-computed
        #: schedule); NEVER while some producer has not issued yet.
        self.ready_at = NEVER
        #: Number of sources still awaiting a producer's issue.
        self.pending_srcs = 0

    @property
    def issued(self) -> bool:
        return self.issue_cycle >= 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        path = "C" if self.on_correct_path else "W"
        return (
            f"Uop(seq={self.seq}, {self.inst.opcode.name}@{self.inst.pc:#x}, "
            f"{path}, fetch={self.fetch_cycle}, issue={self.issue_cycle})"
        )
