"""Lightweight SMT-interference model: a co-runner polluting shared tables.

A second hardware context on an SMT core shares the branch predictor, the
BTB and (for a PUBS machine) the confidence/slice tables with the primary
thread.  The co-runner's branches steal table capacity and corrupt the
global history the perceptron correlates on, so the primary thread's
prediction -- and PUBS's confidence estimate -- degrade even though its own
instruction stream is unchanged (Durbhakula's multithreaded
branch-optimization studies measure exactly this coupling).

This module models only that coupling, not a second timed pipeline: every
``interleave`` commits of the primary thread, :class:`SmtInterference`
resolves a ``burst`` of co-runner conditional branches against the shared
structures -- a predictor lookup + update, a BTB install on taken, and a
confidence-table training event when PUBS is on -- exactly the calls the
pipeline's own warm path makes for a real branch.  Outcomes come from a
private deterministic LCG, so a run with interference is exactly as
reproducible as one without; the commit stream is identical in live and
replay mode, so injection points (and therefore all stats) are
bit-identical across front ends.

Co-runner branch PCs sit far above any generated program (programs start
at 0 and span a few hundred KB at most) but alias into the same
predictor/BTB/confidence sets, because all of those index with low PC
bits: distinct tags, shared capacity -- the SMT sharing model.

:class:`SmtConfig` rides inside :class:`~repro.core.config.ProcessorConfig`
and is hashed into exec job keys, so interference sweeps cache and batch
like any other configuration axis.  It deliberately does *not* enter
:func:`~repro.exec.jobs.batch_signature` or the warm-checkpoint key:
injection happens only during the timed phase, so members differing only
in their SMT knobs still share warm state and a batched trace walk.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.instruction import INST_BYTES

#: Base PC of the co-runner's branch sites: far outside any generated
#: program, but low-bit-aliasing into the shared predictor/BTB/conf sets.
CORUNNER_PC_BASE = 1 << 26

#: 64-bit MMIX LCG constants (same family the workload generator uses).
_LCG_MULT = 6364136223846793005
_LCG_INC = 1442695040888963407
_MASK64 = (1 << 64) - 1


@dataclass(frozen=True)
class SmtConfig:
    """Co-runner interference knobs (disabled by default).

    ``interleave`` commits of the primary thread separate consecutive
    co-runner bursts; each burst resolves ``burst`` branches drawn
    round-robin from ``sites`` distinct PCs, taken with probability
    ``2**-bias_bits`` (1 => 50/50, maximally history-corrupting).
    """

    enabled: bool = False
    interleave: int = 64
    burst: int = 4
    sites: int = 64
    bias_bits: int = 1
    seed: int = 0xC0FFEE

    def __post_init__(self) -> None:
        for n in ("interleave", "burst", "sites", "bias_bits"):
            if getattr(self, n) < 1:
                raise ValueError(f"smt {n} must be positive")


class SmtInterference:
    """The co-runner: injects branch resolutions into shared structures."""

    def __init__(self, config: SmtConfig):
        self.config = config
        self._lcg = (config.seed * 2 + 1) & _MASK64
        self._since_burst = 0
        self._site = 0

    def on_commit(self, pipeline) -> None:
        """Called once per committed primary-thread instruction.

        Reads the shared structures off ``pipeline`` at injection time
        (never caches them): batched replay swaps a member's warm
        predictor/BTB/tracker in after construction, and this must always
        pollute the objects the member actually predicts with.
        """
        self._since_burst += 1
        cfg = self.config
        if self._since_burst < cfg.interleave:
            return
        self._since_burst = 0
        predictor = pipeline.predictor
        btb = pipeline.btb
        tracker = pipeline.slice_tracker
        pubs_on = pipeline.config.pubs.enabled
        mask = (1 << cfg.bias_bits) - 1
        lcg = self._lcg
        site = self._site
        stats = pipeline.stats
        for _ in range(cfg.burst):
            lcg = (lcg * _LCG_MULT + _LCG_INC) & _MASK64
            pc = CORUNNER_PC_BASE + site * INST_BYTES
            site += 1
            if site >= cfg.sites:
                site = 0
            taken = ((lcg >> 32) & mask) == 0
            predicted = predictor.predict(pc)
            predictor.update(pc, taken, predicted)
            if taken:
                btb.install(pc, CORUNNER_PC_BASE)
            if pubs_on:
                tracker.on_branch_resolved(pc, correct=predicted == taken)
            stats.smt_injections += 1
        self._lcg = lcg
        self._site = site


__all__ = ["CORUNNER_PC_BASE", "SmtConfig", "SmtInterference"]
