"""Simulation statistics.

Everything the evaluation needs: IPC, branch MPKI (classifies D-BP vs E-BP
at the paper's 3.0 threshold), LLC MPKI (compute- vs memory-intensive at
1.0), the decomposed misspeculation penalty, and pipeline utilization
counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Paper's thresholds (Sec. V-A and Fig. 9).
D_BP_BRANCH_MPKI_THRESHOLD = 3.0
MEMORY_INTENSIVE_LLC_MPKI_THRESHOLD = 1.0


@dataclass
class SimStats:
    """Counters accumulated by one timing-simulation run."""

    cycles: int = 0
    committed: int = 0
    fetched: int = 0  #: includes wrong-path fetches
    wrong_path_fetched: int = 0

    # Branch behaviour (committed conditional branches only).
    cond_branches: int = 0
    mispredictions: int = 0
    btb_misses_taken: int = 0

    # Misspeculation penalty (Sec. II-A): fetch -> end of execution of each
    # mispredicted branch, decomposed into front-end, IQ-wait and execute.
    missspec_penalty_cycles: int = 0
    missspec_frontend_cycles: int = 0
    missspec_iq_wait_cycles: int = 0
    missspec_execute_cycles: int = 0

    # Dispatch behaviour.  The aggregate stall counter splits by cause:
    # which full structure blocked the head of the dispatch group.
    dispatch_stall_cycles: int = 0
    rob_full_stall_cycles: int = 0
    iq_full_stall_cycles: int = 0  #: includes priority-partition stalls
    lsq_full_stall_cycles: int = 0
    regs_full_stall_cycles: int = 0  #: no free physical register
    priority_stall_cycles: int = 0  #: stalls caused by a full priority partition
    priority_dispatches: int = 0
    unconfident_dispatches: int = 0

    # IQ occupancy (sampled every cycle).
    iq_occupancy_sum: int = 0

    # Memory (filled in from the hierarchy at the end of the run).
    llc_misses: int = 0
    l1d_misses: int = 0
    l1i_misses: int = 0

    # SMT interference (repro.core.smt): co-runner branches resolved
    # against the shared predictor/BTB/confidence tables this run.
    smt_injections: int = 0

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def branch_mpki(self) -> float:
        if self.committed == 0:
            return 0.0
        return 1000.0 * self.mispredictions / self.committed

    @property
    def llc_mpki(self) -> float:
        if self.committed == 0:
            return 0.0
        return 1000.0 * self.llc_misses / self.committed

    @property
    def l1i_mpki(self) -> float:
        if self.committed == 0:
            return 0.0
        return 1000.0 * self.l1i_misses / self.committed

    @property
    def prediction_accuracy(self) -> float:
        if self.cond_branches == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.cond_branches

    @property
    def avg_missspec_penalty(self) -> float:
        """Average cycles from fetch to execution end per misprediction."""
        if self.mispredictions == 0:
            return 0.0
        return self.missspec_penalty_cycles / self.mispredictions

    @property
    def avg_missspec_iq_wait(self) -> float:
        """The component PUBS attacks: IQ waiting cycles per misprediction."""
        if self.mispredictions == 0:
            return 0.0
        return self.missspec_iq_wait_cycles / self.mispredictions

    @property
    def avg_iq_occupancy(self) -> float:
        return self.iq_occupancy_sum / self.cycles if self.cycles else 0.0

    @property
    def is_difficult_branch_prediction(self) -> bool:
        """D-BP classification (branch MPKI >= 3.0, Sec. V-A)."""
        return self.branch_mpki >= D_BP_BRANCH_MPKI_THRESHOLD

    @property
    def is_memory_intensive(self) -> bool:
        """Memory-intensity classification (LLC MPKI >= 1.0, Fig. 9)."""
        return self.llc_mpki >= MEMORY_INTENSIVE_LLC_MPKI_THRESHOLD

    def summary(self) -> str:
        """A compact human-readable report."""
        return (
            f"cycles={self.cycles} committed={self.committed} "
            f"IPC={self.ipc:.3f} brMPKI={self.branch_mpki:.2f} "
            f"llcMPKI={self.llc_mpki:.2f} "
            f"missspec/branch={self.avg_missspec_penalty:.1f}cy "
            f"(IQ wait {self.avg_missspec_iq_wait:.1f}cy)"
        )
