"""Simulation statistics.

Everything the evaluation needs: IPC, branch MPKI (classifies D-BP vs E-BP
at the paper's 3.0 threshold), LLC MPKI (compute- vs memory-intensive at
1.0), the decomposed misspeculation penalty, and pipeline utilization
counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Paper's thresholds (Sec. V-A and Fig. 9).
D_BP_BRANCH_MPKI_THRESHOLD = 3.0
MEMORY_INTENSIVE_LLC_MPKI_THRESHOLD = 1.0


@dataclass
class SimStats:
    """Counters accumulated by one timing-simulation run."""

    cycles: int = 0
    committed: int = 0
    fetched: int = 0  #: includes wrong-path fetches
    wrong_path_fetched: int = 0

    # Branch behaviour (committed conditional branches only).
    cond_branches: int = 0
    mispredictions: int = 0
    btb_misses_taken: int = 0

    # Misspeculation penalty (Sec. II-A): fetch -> end of execution of each
    # mispredicted branch, decomposed into front-end, IQ-wait and execute.
    missspec_penalty_cycles: int = 0
    missspec_frontend_cycles: int = 0
    missspec_iq_wait_cycles: int = 0
    missspec_execute_cycles: int = 0

    # Dispatch behaviour.  The aggregate stall counter splits by cause:
    # which full structure blocked the head of the dispatch group.  The
    # causes are disjoint (a priority-partition stall is *not* also an
    # iq-full stall), so they sum to ``dispatch_stall_cycles`` exactly --
    # the topdown-cycle-accounting invariant checks this every sweep.
    dispatch_stall_cycles: int = 0
    rob_full_stall_cycles: int = 0
    iq_full_stall_cycles: int = 0  #: whole IQ full (priority stalls excluded)
    lsq_full_stall_cycles: int = 0
    regs_full_stall_cycles: int = 0  #: no free physical register
    priority_stall_cycles: int = 0  #: stalls caused by a full priority partition
    priority_dispatches: int = 0
    unconfident_dispatches: int = 0

    # Top-down slot accounting (DESIGN.md §15).  Every cycle the dispatch
    # stage accounts exactly ``decode_width`` issue slots into exactly one
    # of these buckets, so their sum equals ``decode_width * cycles`` by
    # construction (checked by the topdown-cycle-accounting invariant).
    td_retire_slots: int = 0  #: correct-path uops dispatched (will retire)
    td_wrongpath_slots: int = 0  #: wrong-path uops dispatched (bad speculation)
    td_recovery_slots: int = 0  #: bubbles from misprediction recovery/refill
    td_fe_fetch_slots: int = 0  #: fetch-redirect / front-end bandwidth bubbles
    td_fe_l1i_slots: int = 0  #: bubbles while an L1I miss blocks fetch
    td_be_rob_slots: int = 0  #: slots lost to a full ROB
    td_be_iq_slots: int = 0  #: slots lost to a full IQ
    td_be_lsq_slots: int = 0  #: slots lost to a full LSQ
    td_be_regs_slots: int = 0  #: slots lost to register-file exhaustion
    td_be_priority_slots: int = 0  #: slots lost to a full priority partition

    # IQ occupancy (sampled every cycle).
    iq_occupancy_sum: int = 0

    # Memory (filled in from the hierarchy at the end of the run).
    llc_misses: int = 0
    l1d_misses: int = 0
    l1i_misses: int = 0

    # SMT interference (repro.core.smt): co-runner branches resolved
    # against the shared predictor/BTB/confidence tables this run.
    smt_injections: int = 0

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def branch_mpki(self) -> float:
        if self.committed == 0:
            return 0.0
        return 1000.0 * self.mispredictions / self.committed

    @property
    def llc_mpki(self) -> float:
        if self.committed == 0:
            return 0.0
        return 1000.0 * self.llc_misses / self.committed

    @property
    def l1i_mpki(self) -> float:
        if self.committed == 0:
            return 0.0
        return 1000.0 * self.l1i_misses / self.committed

    @property
    def prediction_accuracy(self) -> float:
        if self.cond_branches == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.cond_branches

    @property
    def avg_missspec_penalty(self) -> float:
        """Average cycles from fetch to execution end per misprediction."""
        if self.mispredictions == 0:
            return 0.0
        return self.missspec_penalty_cycles / self.mispredictions

    @property
    def avg_missspec_iq_wait(self) -> float:
        """The component PUBS attacks: IQ waiting cycles per misprediction."""
        if self.mispredictions == 0:
            return 0.0
        return self.missspec_iq_wait_cycles / self.mispredictions

    @property
    def avg_missspec_frontend(self) -> float:
        """Fetch-to-dispatch cycles per misprediction (Sec. II-A)."""
        if self.mispredictions == 0:
            return 0.0
        return self.missspec_frontend_cycles / self.mispredictions

    @property
    def avg_missspec_execute(self) -> float:
        """Issue-to-completion cycles per misprediction (Sec. II-A)."""
        if self.mispredictions == 0:
            return 0.0
        return self.missspec_execute_cycles / self.mispredictions

    @property
    def avg_iq_occupancy(self) -> float:
        return self.iq_occupancy_sum / self.cycles if self.cycles else 0.0

    @property
    def is_difficult_branch_prediction(self) -> bool:
        """D-BP classification (branch MPKI >= 3.0, Sec. V-A)."""
        return self.branch_mpki >= D_BP_BRANCH_MPKI_THRESHOLD

    @property
    def is_memory_intensive(self) -> bool:
        """Memory-intensity classification (LLC MPKI >= 1.0, Fig. 9)."""
        return self.llc_mpki >= MEMORY_INTENSIVE_LLC_MPKI_THRESHOLD

    def summary(self) -> str:
        """A compact human-readable report.

        The misspeculation penalty shows all three Sec. II-A components
        (front end, IQ wait, execute); they sum to the per-branch total.
        """
        return (
            f"cycles={self.cycles} committed={self.committed} "
            f"IPC={self.ipc:.3f} brMPKI={self.branch_mpki:.2f} "
            f"llcMPKI={self.llc_mpki:.2f} "
            f"missspec/branch={self.avg_missspec_penalty:.1f}cy "
            f"(FE {self.avg_missspec_frontend:.1f} + "
            f"IQ {self.avg_missspec_iq_wait:.1f} + "
            f"EX {self.avg_missspec_execute:.1f})"
        )
