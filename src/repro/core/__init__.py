"""Cycle-level out-of-order core: configuration, pipeline, simulation API."""

from .config import (PredictorConfig, ProcessorConfig, RunRequest,
                     size_models)
from .lsq import LoadStoreQueue
from .pipeline import DeadlockError, Pipeline, build_predictor
from .rename import RenameError, Renamer
from .rob import ReorderBuffer
from .simulator import SimulationResult, simulate
from .smt import SmtConfig, SmtInterference
from .stats import (
    D_BP_BRANCH_MPKI_THRESHOLD,
    MEMORY_INTENSIVE_LLC_MPKI_THRESHOLD,
    SimStats,
)
from .uop import NEVER, Uop

__all__ = [
    "PredictorConfig",
    "ProcessorConfig",
    "RunRequest",
    "size_models",
    "LoadStoreQueue",
    "DeadlockError",
    "Pipeline",
    "build_predictor",
    "RenameError",
    "Renamer",
    "ReorderBuffer",
    "SimulationResult",
    "simulate",
    "SmtConfig",
    "SmtInterference",
    "D_BP_BRANCH_MPKI_THRESHOLD",
    "MEMORY_INTENSIVE_LLC_MPKI_THRESHOLD",
    "SimStats",
    "NEVER",
    "Uop",
]
