"""Processor configuration (the paper's Tables I, II and IV).

:meth:`ProcessorConfig.cortex_a72_like` is the paper's base machine: 4-wide
pipeline, 64-entry IQ, 128-entry ROB, 64-entry LSQ, 128+128 physical
registers, 2 iALU / 1 iMULT-DIV / 2 Ld-St / 2 FPU, perceptron predictor
(34-bit history, 256-entry weight table), 2K-set 4-way BTB, 10-cycle state
recovery penalty, and the Table I memory hierarchy.

:func:`size_models` provides the four scaled processors of Table IV /
Fig. 16.  The paper scales seven parameters (window structures and issue
resources); window capacity grows faster than issue bandwidth, which is why
issue conflicts -- and the value of criticality-aware selection -- grow with
processor size.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from ..iq.select import FuPool
from ..memory.hierarchy import MemoryConfig
from ..pubs.config import PubsConfig
from .smt import SmtConfig


@dataclass(frozen=True)
class ReplayRegion:
    """One sampled (warmup, measure) window of a replayed trace.

    ``start`` is the dynamic sequence number where *measurement* begins.
    Two warmup phases precede it, SMARTS-style: ``warmup`` records train
    the microarchitectural state functionally (caches, predictor, BTB,
    slice tracker -- fast, no timing), then ``detail`` records run
    through the full timing model with the statistics discarded, so the
    measured window starts from a filled pipeline/ROB/IQ instead of a
    cold one (the dominant short-window bias).  The measured length is
    the run's ``max_instructions`` budget, so a region is fully
    described by (start, warmup, detail) -- and, riding inside
    :class:`ProcessorConfig`, it is hashed into the exec job key, which
    makes every region an independently cached simulation job
    (SimPoint/SMARTS-style sampling; see DESIGN.md §10).
    """

    start: int
    warmup: int
    detail: int = 0

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("region start must be non-negative")
        if self.warmup < 0 or self.detail < 0:
            raise ValueError("region warmup/detail must be non-negative")
        if self.warmup + self.detail > self.start:
            raise ValueError(
                f"region warmup {self.warmup} + detail {self.detail} must "
                f"fit between record 0 and the region start {self.start}")


@dataclass(frozen=True)
class PredictorConfig:
    """Direction predictor + BTB configuration."""

    kind: str = "perceptron"  #: perceptron | gshare | bimode | tournament
    history_length: int = 34
    table_size: int = 256
    btb_sets: int = 2048
    btb_assoc: int = 4

    def enlarged(self) -> "PredictorConfig":
        """Fig. 13's enlarged perceptron: 36-bit history, 512-entry table."""
        return replace(self, history_length=36, table_size=512)


@dataclass(frozen=True)
class ProcessorConfig:
    """Complete machine configuration."""

    name: str = "medium"
    fetch_width: int = 4
    decode_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    #: Cycles from fetch to earliest possible dispatch (front-end depth).
    frontend_depth: int = 5
    rob_size: int = 128
    iq_size: int = 64
    lsq_size: int = 64
    int_phys_regs: int = 128
    fp_phys_regs: int = 128
    #: State recovery penalty on a branch misprediction (Table I).
    recovery_penalty: int = 10
    fu_pool: FuPool = field(default_factory=FuPool)
    predictor: PredictorConfig = field(default_factory=PredictorConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    #: Add the age matrix to the IQ (the AGE / PUBS+AGE models of Sec. V-G).
    use_age_matrix: bool = False
    #: IQ organization (Sec. III-B1 taxonomy): "random" (modern baseline,
    #: the only one PUBS and the age matrix apply to), "shifting"
    #: (age-compacting, Alpha 21264 style) or "circular".
    iq_organization: str = "random"
    #: Distribute the IQ among function-unit classes (Sec. III-C2, AMD Zen
    #: style).  Composes with PUBS (each per-class queue gets its own
    #: priority partition) but not with the age matrix or the non-random
    #: organizations.
    distributed_iq: bool = False
    #: Wrong-path load handling: "idle" charges L1-hit latency without
    #: touching the cache (the standard trace-driven simplification);
    #: "pollute" synthesizes near-recent-data addresses and really accesses
    #: the hierarchy, modelling wrong-path cache pollution/prefetch effects.
    wrong_path_memory: str = "idle"
    #: Correct-path instruction supply: "live" steps a
    #: :class:`~repro.isa.executor.FunctionalExecutor` alongside the timing
    #: model; "replay" feeds the pipeline from a recorded trace with cached
    #: post-warmup checkpoints (bit-identical results, much faster sweeps;
    #: see DESIGN.md §9).  Part of the configuration hash, so the two modes
    #: never share a cached result even though their stats are identical.
    frontend_mode: str = "live"
    #: Replay a single sampled (warmup, measure) window instead of the
    #: trace prefix: timing starts at ``replay_region.start`` after
    #: fast-forwarding warm state over the warmup residue.  Requires
    #: ``frontend_mode="replay"`` (a live executor cannot jump).  None
    #: replays from the beginning as usual.
    replay_region: Optional[ReplayRegion] = None
    pubs: PubsConfig = field(default_factory=PubsConfig.disabled)
    seed: int = 1
    #: Runtime verification (:mod:`repro.verify`): "off" (no checking, the
    #: default), "commit-only" (differential oracle on every commit plus the
    #: end-of-run architectural state diff) or "full" (oracle + machine
    #: invariant sweeps every ``verify_interval`` cycles).  Part of the
    #: configuration hash, so verified and unverified runs never share a
    #: cached result.
    verify_level: str = "off"
    #: Cycle interval between invariant sweeps at ``verify_level="full"``.
    verify_interval: int = 256
    #: SMT-interference co-runner (:mod:`repro.core.smt`): when enabled, a
    #: second context's branches pollute the shared predictor, BTB and PUBS
    #: confidence/slice tables on a configurable interleave.  Part of the
    #: configuration hash, so interference sweeps cache like any other
    #: config axis; excluded from the batch signature and warm-checkpoint
    #: keys because injection happens only during the timed phase.
    smt: SmtConfig = field(default_factory=SmtConfig)

    def __post_init__(self) -> None:
        for n in ("fetch_width", "decode_width", "issue_width", "commit_width",
                  "frontend_depth", "rob_size", "iq_size", "lsq_size",
                  "int_phys_regs", "fp_phys_regs"):
            if getattr(self, n) < 1:
                raise ValueError(f"{n} must be positive")
        if self.recovery_penalty < 0:
            raise ValueError("recovery_penalty must be non-negative")
        if self.pubs.enabled and self.pubs.priority_entries >= self.iq_size:
            raise ValueError("priority entries must leave normal IQ entries")
        if self.iq_organization not in ("random", "shifting", "circular"):
            raise ValueError(f"unknown IQ organization: {self.iq_organization}")
        if self.iq_organization != "random" and self.pubs.enabled:
            raise ValueError("PUBS applies to the random queue only (Sec. III-B)")
        if self.iq_organization != "random" and self.use_age_matrix:
            raise ValueError("the age matrix augments the random queue only")
        if self.distributed_iq and self.iq_organization != "random":
            raise ValueError("the distributed IQ uses random per-class queues")
        if self.distributed_iq and self.use_age_matrix:
            raise ValueError("the age matrix is a unified-IQ circuit")
        if self.wrong_path_memory not in ("idle", "pollute"):
            raise ValueError(
                f"unknown wrong-path memory policy: {self.wrong_path_memory}")
        if self.frontend_mode not in ("live", "replay"):
            raise ValueError(
                f"unknown frontend mode: {self.frontend_mode}")
        if self.replay_region is not None and self.frontend_mode != "replay":
            raise ValueError(
                "replay_region requires frontend_mode='replay' (a live "
                "functional executor cannot start mid-stream)")
        if self.verify_level == "commit":  # accepted spelling of commit-only
            object.__setattr__(self, "verify_level", "commit-only")
        if self.verify_level not in ("off", "commit-only", "full"):
            raise ValueError(
                f"unknown verification level: {self.verify_level}")
        if self.verify_interval < 1:
            raise ValueError("verify_interval must be positive")

    # ------------------------------------------------------------------
    # Named configurations
    # ------------------------------------------------------------------

    @staticmethod
    def cortex_a72_like(**overrides) -> "ProcessorConfig":
        """The paper's Table I base processor (no PUBS, no age matrix)."""
        return ProcessorConfig(**overrides)

    def with_pubs(self, pubs: PubsConfig = None) -> "ProcessorConfig":
        """This machine with PUBS enabled (default Table II parameters)."""
        return replace(self, pubs=pubs or PubsConfig())

    def with_age_matrix(self) -> "ProcessorConfig":
        """This machine with the age matrix added to the IQ."""
        return replace(self, use_age_matrix=True)

    def with_verification(self, level: str = "full",
                          interval: int = None) -> "ProcessorConfig":
        """This machine with runtime verification enabled."""
        kwargs = {"verify_level": level}
        if interval is not None:
            kwargs["verify_interval"] = interval
        return replace(self, **kwargs)

    def with_frontend(self, mode: str) -> "ProcessorConfig":
        """This machine with the given correct-path instruction supply."""
        return replace(self, frontend_mode=mode)

    def with_smt(self, smt: SmtConfig = None, **knobs) -> "ProcessorConfig":
        """This machine with SMT interference enabled.

        ``knobs`` override individual :class:`SmtConfig` fields when no
        explicit config is given (e.g. ``with_smt(interleave=32)``).
        """
        return replace(self, smt=smt or SmtConfig(enabled=True, **knobs))

    def with_region(self, start: int, warmup: int,
                    detail: int = 0) -> "ProcessorConfig":
        """This machine replaying one sampled region (implies replay)."""
        return replace(self, frontend_mode="replay",
                       replay_region=ReplayRegion(start, warmup, detail))

    def with_overrides(self, **kwargs) -> "ProcessorConfig":
        return replace(self, **kwargs)


#: Recognised :attr:`RunRequest.sampling` modes: ``"off"`` simulates the
#: whole timed span, ``"fixed"`` samples a fixed SimPoint representative
#: set, ``"adaptive"`` escalates representatives until the CI target.
SAMPLING_MODES = ("off", "fixed", "adaptive")


@dataclass(frozen=True)
class RunRequest:
    """How to run an experiment, separate from *what machine* runs it.

    :class:`ProcessorConfig` describes the simulated processor;
    ``RunRequest`` carries everything about the run itself -- budgets,
    execution policy (worker count, result cache, frontend) and the
    sampling mode -- so the high-level entry points
    (:mod:`repro.api`) share one plan object instead of re-growing the
    same keyword list.

    Every field defaults to ``None`` = *unset*: :meth:`resolved` fills
    unset execution fields from the environment, and the runner applies
    the library defaults last, giving the precedence **explicit value >
    environment > default** everywhere.  ``jobs``, ``cache`` and
    ``batch`` stay ``None`` through resolution when unset -- the
    executor layer already owns their ``REPRO_JOBS`` / ``REPRO_CACHE`` /
    ``REPRO_BATCH`` policy.
    """

    #: Timed instruction budget (None -> the caller's library default).
    instructions: Optional[int] = None
    #: Functional fast-forward before timing starts.
    skip: Optional[int] = None
    #: Parallel worker processes (None -> ``REPRO_JOBS`` -> serial).
    jobs: Optional[int] = None
    #: Persistent result cache (None -> ``REPRO_CACHE`` policy).
    cache: Optional[bool] = None
    #: Max members per batched replay unit (None -> ``REPRO_BATCH`` ->
    #: the executor default; 0 or 1 disables batched grouping).
    batch: Optional[int] = None
    #: Execution backend spec: ``"inline"`` / ``"process"`` / ``"queue"``
    #: (None -> ``REPRO_BACKEND`` -> the local process pool).  The
    #: executor layer resolves the name; an unknown spec fails there
    #: with the registered names listed.
    backend: Optional[str] = None
    #: Correct-path supply, "live"/"replay" (None -> ``REPRO_FRONTEND``).
    frontend: Optional[str] = None
    #: One of :data:`SAMPLING_MODES` (None -> ``REPRO_SAMPLING`` -> off).
    sampling: Optional[str] = None
    #: Relative CI half-width adaptive sampling drives toward
    #: (None -> ``REPRO_CI_TARGET`` -> the adaptive default).
    ci_target: Optional[float] = None
    #: Region-count cap for the sampled modes.
    regions: Optional[int] = None
    #: Measured records per sampled window.
    measure: Optional[int] = None
    #: Functional-warmup records per sampled window.
    warmup: Optional[int] = None
    #: Detailed-warmup records per sampled window.
    detail: Optional[int] = None
    #: Cap on the fraction of the span the sampled modes may simulate.
    max_fraction: Optional[float] = None
    #: Trace checkpoint spacing for sampled replays.
    checkpoint_interval: Optional[int] = None
    #: Report sampled comparisons with the common-regions paired CI
    #: (None -> ``REPRO_PAIRED`` -> on).  Off falls back to quadrature.
    paired: Optional[bool] = None
    #: Spend the adaptive suite budget table-wide -- escalate whichever
    #: workload has the worst CI-to-target ratio -- instead of each cell
    #: chasing its own target (None -> ``REPRO_TABLE_BUDGET`` -> on).
    table_budget: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.sampling is not None and self.sampling not in SAMPLING_MODES:
            raise ValueError(
                f"unknown sampling mode: {self.sampling!r} "
                f"(expected one of {', '.join(SAMPLING_MODES)})")
        if self.frontend is not None and self.frontend not in ("live",
                                                               "replay"):
            raise ValueError(f"unknown frontend mode: {self.frontend!r}")
        if self.backend is not None and not isinstance(self.backend, str):
            raise ValueError("backend must be a registered spec name")
        if self.ci_target is not None:
            if self.ci_target <= 0:
                raise ValueError("ci_target must be positive")
            if self.sampling is not None and self.sampling != "adaptive":
                raise ValueError(
                    "ci_target applies to adaptive sampling only")
        for n in ("instructions", "jobs", "regions", "measure"):
            value = getattr(self, n)
            if value is not None and value < 1:
                raise ValueError(f"{n} must be positive")
        for n in ("skip", "warmup", "detail", "batch"):
            value = getattr(self, n)
            if value is not None and value < 0:
                raise ValueError(f"{n} must be non-negative")
        if self.max_fraction is not None and not 0 < self.max_fraction <= 1:
            raise ValueError("max_fraction must be in (0, 1]")
        if self.checkpoint_interval is not None \
                and self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be positive")

    def resolved(self) -> "RunRequest":
        """This request with unset fields filled from the environment.

        Reads ``REPRO_SAMPLING`` and ``REPRO_CI_TARGET`` (per call, so
        tests and benches can flip them); explicit field values always
        win.  The returned request re-validates, so e.g. an environment
        sampling mode of ``off`` combined with an explicit ``ci_target``
        fails here instead of being silently ignored.
        """
        updates = {}
        if self.sampling is None:
            updates["sampling"] = os.environ.get("REPRO_SAMPLING") or "off"
        if self.ci_target is None:
            raw = os.environ.get("REPRO_CI_TARGET")
            if raw:
                updates["ci_target"] = float(raw)
        for name, env in (("paired", "REPRO_PAIRED"),
                          ("table_budget", "REPRO_TABLE_BUDGET")):
            if getattr(self, name) is None:
                raw = os.environ.get(env)
                if raw is not None:
                    updates[name] = raw.strip().lower() not in (
                        "0", "false", "off", "")
        return replace(self, **updates) if updates else self

    def with_overrides(self, **kwargs) -> "RunRequest":
        """A copy with the given fields replaced (None leaves a field)."""
        changed = {k: v for k, v in kwargs.items() if v is not None}
        return replace(self, **changed) if changed else self

    # ------------------------------------------------------------------
    # Wire codec (DESIGN.md §16): the canonical serialization for queue
    # payloads, the serve protocol and the CLI --request-file flag.
    # ------------------------------------------------------------------

    def to_wire(self) -> dict:
        """This request as a versioned wire envelope (JSON-ready)."""
        from ..exec.wire import envelope  # late: repro.exec imports core
        return envelope("RunRequest", self)

    @classmethod
    def from_wire(cls, data: dict) -> "RunRequest":
        """Decode a :meth:`to_wire` envelope (validates version + kind)."""
        from ..exec.wire import WireError, open_envelope
        request = open_envelope(data, kind="RunRequest")
        if not isinstance(request, cls):
            raise WireError(
                f"RunRequest envelope carried {type(request).__name__}")
        return request

    def to_json(self) -> str:
        """Compact one-line JSON text of :meth:`to_wire`."""
        import json
        return json.dumps(self.to_wire(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "RunRequest":
        """Decode :meth:`to_json` output (or a ``--request-file`` body)."""
        import json

        from ..exec.wire import WireError
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise WireError(f"malformed request JSON: {exc}") from None
        return cls.from_wire(data)


def size_models() -> Dict[str, ProcessorConfig]:
    """The four processor sizes of Table IV (Fig. 16's sweep).

    Window capacity (IQ/LSQ/ROB/registers) doubles from one end to the
    other while issue width and FU counts grow sub-linearly, so larger
    models see more issue conflicts, as in the paper.
    """
    return {
        "small": ProcessorConfig(
            name="small", fetch_width=3, decode_width=3, issue_width=3,
            commit_width=3, iq_size=32, lsq_size=32, rob_size=64,
            int_phys_regs=96, fp_phys_regs=96,
            fu_pool=FuPool(ialu=2, imult=1, ldst=1, fpu=1),
        ),
        "medium": ProcessorConfig(name="medium"),
        "large": ProcessorConfig(
            name="large", fetch_width=5, decode_width=5, issue_width=5,
            commit_width=5, iq_size=96, lsq_size=96, rob_size=192,
            int_phys_regs=192, fp_phys_regs=192,
            fu_pool=FuPool(ialu=3, imult=1, ldst=2, fpu=2),
        ),
        "huge": ProcessorConfig(
            name="huge", fetch_width=6, decode_width=6, issue_width=6,
            commit_width=6, iq_size=128, lsq_size=128, rob_size=256,
            int_phys_regs=256, fp_phys_regs=256,
            fu_pool=FuPool(ialu=3, imult=2, ldst=3, fpu=3),
        ),
    }
