"""Reorder buffer: in-order dispatch append, in-order commit, tail squash."""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from .uop import Uop


class ReorderBuffer:
    """A bounded FIFO of in-flight uops in fetch order."""

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("ROB size must be positive")
        self.size = size
        self._entries: Deque[Uop] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def is_full(self) -> bool:
        return len(self._entries) >= self.size

    @property
    def free_entries(self) -> int:
        return self.size - len(self._entries)

    def append(self, uop: Uop) -> None:
        if self.is_full():
            raise OverflowError("ROB overflow")
        if self._entries and uop.seq <= self._entries[-1].seq:
            raise ValueError("ROB entries must arrive in fetch order")
        self._entries.append(uop)

    def head(self) -> Optional[Uop]:
        return self._entries[0] if self._entries else None

    def pop_head(self) -> Uop:
        return self._entries.popleft()

    def squash_younger(self, seq: int):
        """Remove and return all uops with sequence number greater than
        ``seq`` (youngest first removal, returned oldest-first)."""
        squashed = []
        while self._entries and self._entries[-1].seq > seq:
            squashed.append(self._entries.pop())
        squashed.reverse()
        return squashed
