"""Register renaming: map table, physical register files, checkpoints.

Physical registers live in one flat space: integer physical registers first
(``[0, int_phys)``), floating-point after (``[int_phys, int_phys+fp_phys)``).
The first 32 of each class back the initial architectural mapping; the rest
start on the free lists.  Each physical register carries a *ready cycle*
(the cycle its value becomes usable by a consumer issuing that cycle);
``NEVER`` marks an in-flight producer.

Conditional branches checkpoint the whole map (64 entries); recovery
restores the checkpoint and returns squashed uops' destination registers to
the free lists, the scheme used by checkpoint-recovery processors.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from ..isa.registers import FP_BASE, NUM_LOGICAL_REGS
from .uop import NEVER, Uop


class RenameError(Exception):
    """Internal invariant violation in the rename machinery."""


class Renamer:
    """Map table + free lists + physical ready state."""

    def __init__(self, int_phys: int, fp_phys: int):
        if int_phys < 32 or fp_phys < 32:
            raise ValueError(
                "need at least 32 physical registers per class to back the "
                "architectural state"
            )
        self.int_phys = int_phys
        self.fp_phys = fp_phys
        self.num_phys = int_phys + fp_phys
        self._fp_base = int_phys
        # Architectural mapping: int logical r -> phys r; fp logical f ->
        # phys int_phys + f.
        self.map: List[int] = [
            r if r < FP_BASE else self._fp_base + (r - FP_BASE)
            for r in range(NUM_LOGICAL_REGS)
        ]
        self.ready_cycle: List[int] = [0] * self.num_phys
        self._free_int: Deque[int] = deque(range(32, int_phys))
        self._free_fp: Deque[int] = deque(range(self._fp_base + 32, self.num_phys))

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------

    def _free_list_for(self, logical: int) -> Deque[int]:
        return self._free_fp if logical >= FP_BASE else self._free_int

    def can_rename(self, uop: Uop) -> bool:
        dest = uop.inst.dest
        if dest is None:
            return True
        return bool(self._free_list_for(dest))

    @property
    def free_int_count(self) -> int:
        return len(self._free_int)

    @property
    def free_fp_count(self) -> int:
        return len(self._free_fp)

    # ------------------------------------------------------------------
    # Rename / checkpoint / recovery / commit
    # ------------------------------------------------------------------

    def rename(self, uop: Uop) -> None:
        """Rename ``uop`` in program order (caller checked capacity)."""
        inst = uop.inst
        uop.src_phys = tuple(self.map[src] for src in inst.sources())
        dest = inst.dest
        if dest is None:
            return
        free = self._free_list_for(dest)
        if not free:
            raise RenameError("rename called without a free physical register")
        phys = free.popleft()
        uop.prev_phys = self.map[dest]
        uop.dest_phys = phys
        self.map[dest] = phys
        self.ready_cycle[phys] = NEVER

    def checkpoint(self) -> Tuple[int, ...]:
        """Snapshot of the map table (taken at each conditional branch)."""
        return tuple(self.map)

    def restore(self, checkpoint: Tuple[int, ...]) -> None:
        self.map = list(checkpoint)

    def release_squashed(self, uop: Uop) -> None:
        """Return a squashed uop's destination register to its free list."""
        phys = uop.dest_phys
        if phys < 0:
            return
        if phys < self._fp_base:
            self._free_int.append(phys)
        else:
            self._free_fp.append(phys)
        uop.dest_phys = -1

    def release_committed(self, uop: Uop) -> None:
        """At commit, the previous mapping of the destination dies."""
        phys = uop.prev_phys
        if phys < 0:
            return
        if phys < self._fp_base:
            self._free_int.append(phys)
        else:
            self._free_fp.append(phys)
        uop.prev_phys = -1

    # ------------------------------------------------------------------
    # Ready state
    # ------------------------------------------------------------------

    def set_ready(self, phys: int, cycle: int) -> None:
        self.ready_cycle[phys] = cycle

    def sources_ready(self, uop: Uop, cycle: int) -> bool:
        for phys in uop.src_phys:
            if self.ready_cycle[phys] > cycle:
                return False
        return True

    def invariant_free_disjoint(self) -> bool:
        """Sanity: no register is simultaneously free and mapped (tests)."""
        free = set(self._free_int) | set(self._free_fp)
        return not free.intersection(self.map)
