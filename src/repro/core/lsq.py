"""Load/store queue with oracle disambiguation and store-to-load forwarding.

Memory uops occupy an LSQ entry from dispatch to commit.  Correct-path
addresses come from the functional oracle at dispatch time, giving *perfect
memory disambiguation*: a load that overlaps an older in-flight store (same
8-byte word) takes a dependence on that store and, once the store has
issued, forwards its data at L1-hit latency without accessing the cache.
Wrong-path memory uops carry no meaningful address and never forward.

This idealization is deliberate and documented in DESIGN.md: the paper's
mechanism concerns issue priority, not disambiguation aggressiveness, and
SimpleScalar's default configuration is similarly ideal.
"""

from __future__ import annotations

from typing import List, Optional

from .uop import Uop

#: Byte shift to the 8-byte word a forwarding check compares on.
_WORD_SHIFT = 3


class LoadStoreQueue:
    """Bounded in-order list of in-flight memory uops."""

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("LSQ size must be positive")
        self.size = size
        self._entries: List[Uop] = []
        self.forwards = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def is_full(self) -> bool:
        return len(self._entries) >= self.size

    @property
    def free_entries(self) -> int:
        return self.size - len(self._entries)

    def insert(self, uop: Uop) -> None:
        """Dispatch-time entry allocation (in fetch order)."""
        if self.is_full():
            raise OverflowError("LSQ overflow")
        if self._entries and uop.seq <= self._entries[-1].seq:
            raise ValueError("LSQ entries must arrive in fetch order")
        if uop.inst.is_load and uop.on_correct_path and uop.mem_addr is not None:
            dep = self._youngest_older_store(uop)
            if dep is not None:
                uop.store_dep = dep
                self.forwards += 1
        self._entries.append(uop)
        uop.in_lsq = True

    def _youngest_older_store(self, load: Uop) -> Optional[Uop]:
        word = load.mem_addr >> _WORD_SHIFT
        for uop in reversed(self._entries):
            if (
                uop.inst.is_store
                and uop.on_correct_path
                and uop.mem_addr is not None
                and uop.mem_addr >> _WORD_SHIFT == word
            ):
                return uop
        return None

    def remove_committed(self, uop: Uop) -> None:
        """Commit-time deallocation (always the oldest entry)."""
        if not self._entries or self._entries[0] is not uop:
            raise ValueError("LSQ commit must release the oldest entry")
        self._entries.pop(0)
        uop.in_lsq = False

    def squash_younger(self, seq: int) -> List[Uop]:
        """Drop all entries younger than ``seq``; returns them."""
        keep = []
        dropped = []
        for uop in self._entries:
            if uop.seq > seq:
                uop.in_lsq = False
                dropped.append(uop)
            else:
                keep.append(uop)
        self._entries = keep
        return dropped
