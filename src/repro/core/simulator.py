"""Top-level simulation entry point.

``simulate(program, config, n)`` builds a :class:`Pipeline`, runs it for
``n`` committed instructions, and returns a :class:`SimulationResult`
bundling the core counters with the side structures' statistics -- the
single call every example and benchmark goes through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..isa.instruction import Program
from ..pubs.slice_tracker import SliceTrackerStats
from .config import ProcessorConfig
from .pipeline import Pipeline
from .stats import SimStats


@dataclass
class SimulationResult:
    """Everything one run produced."""

    program_name: str
    config: ProcessorConfig
    stats: SimStats
    tracker_stats: SliceTrackerStats
    predictor_accuracy: float
    btb_hit_rate: float
    mode_switch_disabled_fraction: float
    iq_priority_dispatches: int
    lsq_forwards: int
    select_avg_grants: float
    #: Verification level the run executed under ("off" when unchecked).
    verify_level: str = "off"
    #: Commits cross-checked by the differential oracle (0 when unchecked).
    verified_commits: int = 0
    #: Invariant sweeps performed (verify_level="full" only).
    invariant_sweeps: int = 0
    #: How the correct path was supplied: "live" functional execution or
    #: trace "replay" (bit-identical stats; recorded for provenance).
    frontend_mode: str = "live"

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    @property
    def branch_mpki(self) -> float:
        return self.stats.branch_mpki

    @property
    def llc_mpki(self) -> float:
        return self.stats.llc_mpki

    @property
    def unconfident_branch_rate(self) -> float:
        return self.tracker_stats.unconfident_branch_rate

    def summary(self) -> str:
        return f"{self.program_name} [{self.config.name}]: {self.stats.summary()}"


def result_from_pipeline(pipeline: Pipeline, stats) -> SimulationResult:
    """Assemble a :class:`SimulationResult` from a finished pipeline.

    Shared by :func:`simulate` and the batched replay runner
    (:mod:`repro.batch`), so a batch member's result is assembled by the
    exact code a sequential run uses.
    """
    verifier = pipeline.verifier
    return SimulationResult(
        program_name=pipeline.program.name,
        config=pipeline.config,
        stats=stats,
        tracker_stats=pipeline.slice_tracker.stats,
        predictor_accuracy=pipeline.predictor.stats.accuracy,
        btb_hit_rate=pipeline.btb.hit_rate,
        mode_switch_disabled_fraction=pipeline.mode_switch.stats.disabled_fraction,
        iq_priority_dispatches=pipeline.iq.priority_dispatches,
        lsq_forwards=pipeline.lsq.forwards,
        select_avg_grants=pipeline.select_logic.stats.average_grants_per_cycle,
        verify_level=pipeline.config.verify_level,
        verified_commits=verifier.commits_checked if verifier else 0,
        invariant_sweeps=verifier.invariant_sweeps if verifier else 0,
        frontend_mode=pipeline.config.frontend_mode,
    )


def simulate(
    program: Program,
    config: Optional[ProcessorConfig] = None,
    max_instructions: int = 10_000,
    skip_instructions: int = 0,
    mem_seed: int = 0,
    max_cycles: Optional[int] = None,
    trace_source=None,
) -> SimulationResult:
    """Run one program on one machine configuration.

    ``trace_source`` optionally injects a :class:`~repro.trace.store.
    TraceStore` for ``frontend_mode="replay"`` runs (tests point it at a
    temporary directory); None uses the shared environment-selected store.
    """
    pipeline = Pipeline(program, config, mem_seed=mem_seed,
                        trace_source=trace_source)
    stats = pipeline.run(max_instructions, skip_instructions, max_cycles)
    return result_from_pipeline(pipeline, stats)
