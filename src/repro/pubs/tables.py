"""The three PUBS tables: ``def_tab``, ``brslice_tab`` and ``conf_tab``.

Organization follows Sec. III-A and the cost-reduced implementation of
Sec. IV:

* ``def_tab`` -- full-size (one row per logical register, 64 rows).  Row
  ``r`` holds the *pointer* ``p_B = i_B || t_B`` derived from the PC of the
  most recent instruction that writes ``r``; i.e. where that instruction's
  ``brslice_tab`` entry would live.
* ``brslice_tab`` -- set-associative.  The entry for instruction PC ``p``
  holds ``p``'s own hashed tag ``t_B`` plus a pointer ``p_C = i_C || t_C``
  to the ``conf_tab`` entry of the branch whose slice ``p`` belongs to.
* ``conf_tab`` -- set-associative.  The entry for branch PC ``b`` holds
  ``b``'s hashed tag ``t_C`` and a saturating *resetting* confidence
  counter.

All tags are XOR-folded (S=8 for ``brslice_tab``, S=4 for ``conf_tab`` by
default), so both tables can alias -- an instruction may be spuriously
considered part of a slice, or a branch may read another branch's
confidence.  That is the hardware the paper costs at 4.0 KB, and the tables
reproduce it bit-for-bit, including LRU replacement within a set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..branch.confidence import ResettingConfidenceCounter
from ..isa.registers import NUM_LOGICAL_REGS
from .hashing import hashed_tag, split_pc, xor_fold

#: Instruction-word width assumed by the cost analysis (64-bit PC minus the
#: two alignment bits, as in the paper's "55 = 62 - 7" example).
PC_WORD_WIDTH = 62


@dataclass(frozen=True)
class Pointer:
    """A cost-reduced table pointer ``index || hashed_tag``."""

    index: int
    tag: int


class PointerCodec:
    """Derives (index, hashed tag) pointers from PCs for one table geometry.

    Pointer computation is memoized per PC: the synthetic programs have at
    most a few thousand static instructions, and the fold would otherwise be
    recomputed at every decode.
    """

    def __init__(self, num_sets: int, fold_width: int, word_width: int = PC_WORD_WIDTH):
        if num_sets < 1 or num_sets & (num_sets - 1):
            raise ValueError("num_sets must be a power of two")
        self.num_sets = num_sets
        self.index_bits = num_sets.bit_length() - 1
        self.fold_width = fold_width
        self.word_width = word_width
        self._cache: Dict[int, Pointer] = {}

    def pointer(self, pc: int) -> Pointer:
        ptr = self._cache.get(pc)
        if ptr is None:
            index, tag = split_pc(pc, self.index_bits, self.word_width)
            ptr = Pointer(index, xor_fold(tag, self.fold_width))
            self._cache[pc] = ptr
        return ptr

    @property
    def pointer_bits(self) -> int:
        """Width of one stored pointer: index bits plus hashed-tag bits."""
        return self.index_bits + self.fold_width


class DefTab:
    """Full-size last-writer table: logical register -> brslice pointer.

    Sec. III-A2: "The index of the def tab is the logical destination
    register number of a decoding instruction, and each entry has the PC of
    the instruction" -- in the cost-reduced form the stored datum is the
    pointer ``p_B`` generated from that PC.
    """

    def __init__(self, num_regs: int = NUM_LOGICAL_REGS):
        self.num_regs = num_regs
        self._entries: List[Optional[Pointer]] = [None] * num_regs

    def record_writer(self, reg: int, pointer: Pointer) -> None:
        self._entries[reg] = pointer

    def writer_of(self, reg: int) -> Optional[Pointer]:
        return self._entries[reg]

    def clear(self) -> None:
        self._entries = [None] * self.num_regs


class BrsliceTab:
    """Set-associative branch-slice table: instruction PC -> conf pointer."""

    def __init__(self, num_sets: int = 256, assoc: int = 4, fold_width: int = 8,
                 word_width: int = PC_WORD_WIDTH):
        if assoc < 1:
            raise ValueError("assoc must be positive")
        self.codec = PointerCodec(num_sets, fold_width, word_width)
        self.assoc = assoc
        # Each set: MRU-first list of (hashed_tag, conf_pointer).
        self._sets: List[List[Tuple[int, Pointer]]] = [[] for _ in range(num_sets)]
        self.lookups = 0
        self.hits = 0

    def lookup(self, pc: int) -> Optional[Pointer]:
        """The conf_tab pointer linked to instruction ``pc`` (None on miss)."""
        self.lookups += 1
        ptr = self.codec.pointer(pc)
        ways = self._sets[ptr.index]
        for i, (tag, conf_ptr) in enumerate(ways):
            if tag == ptr.tag:
                if i:
                    ways.insert(0, ways.pop(i))
                self.hits += 1
                return conf_ptr
        return None

    def link(self, slot: Pointer, conf_pointer: Pointer) -> None:
        """Write ``conf_pointer`` into the entry addressed by ``slot``.

        ``slot`` is a ``def_tab`` pointer (the producer instruction's
        ``p_B``): writes go through pointers, not PCs, exactly as the
        hardware would address the table.
        """
        ways = self._sets[slot.index]
        for i, (tag, _) in enumerate(ways):
            if tag == slot.tag:
                ways.pop(i)
                break
        ways.insert(0, (slot.tag, conf_pointer))
        if len(ways) > self.assoc:
            ways.pop()

    def clear(self) -> None:
        for ways in self._sets:
            ways.clear()


class ConfTab:
    """Set-associative confidence table: branch PC -> resetting counter."""

    def __init__(self, num_sets: int = 256, assoc: int = 4, fold_width: int = 4,
                 counter_bits: int = 6, word_width: int = PC_WORD_WIDTH):
        if assoc < 1:
            raise ValueError("assoc must be positive")
        if counter_bits < 1:
            raise ValueError("counter width must be at least 1 bit")
        self.codec = PointerCodec(num_sets, fold_width, word_width)
        self.assoc = assoc
        self.counter_bits = counter_bits
        # Each set: MRU-first list of (hashed_tag, counter).
        self._sets: List[List[Tuple[int, ResettingConfidenceCounter]]] = [
            [] for _ in range(num_sets)
        ]

    def _find(self, index: int, tag: int) -> Optional[ResettingConfidenceCounter]:
        ways = self._sets[index]
        for i, (t, counter) in enumerate(ways):
            if t == tag:
                if i:
                    ways.insert(0, ways.pop(i))
                return counter
        return None

    def counter_for_pc(self, pc: int) -> Optional[ResettingConfidenceCounter]:
        """The counter allocated to branch ``pc`` (None if unallocated)."""
        ptr = self.codec.pointer(pc)
        return self._find(ptr.index, ptr.tag)

    def counter_for_pointer(self, pointer: Pointer) -> Optional[ResettingConfidenceCounter]:
        """Dereference a stored ``p_C`` pointer (brslice_tab lookups)."""
        return self._find(pointer.index, pointer.tag)

    def is_confident_pc(self, pc: int) -> bool:
        """Sec. III-A3 step 1: unallocated or saturated => confident."""
        counter = self.counter_for_pc(pc)
        return counter is None or counter.confident

    def is_confident_pointer(self, pointer: Pointer) -> bool:
        """Sec. III-A3 step 2: follow a brslice pointer to its counter."""
        counter = self.counter_for_pointer(pointer)
        return counter is None or counter.confident

    def train(self, pc: int, correct: bool) -> None:
        """Resolution-time update with allocation policy of Sec. III-A1."""
        ptr = self.codec.pointer(pc)
        counter = self._find(ptr.index, ptr.tag)
        if counter is not None:
            counter.train(correct)
            return
        counter = ResettingConfidenceCounter(self.counter_bits)
        if correct:
            counter.reset_to_correct()
        else:
            counter.reset_to_incorrect()
        ways = self._sets[ptr.index]
        ways.insert(0, (ptr.tag, counter))
        if len(ways) > self.assoc:
            ways.pop()

    def pointer(self, pc: int) -> Pointer:
        """The ``p_C`` pointer for branch ``pc`` (what brslice entries store)."""
        return self.codec.pointer(pc)

    def clear(self) -> None:
        for ways in self._sets:
            ways.clear()
