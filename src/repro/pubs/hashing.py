"""XOR-fold tag hashing (Sec. IV, Fig. 7).

A straightforward set-associative ``brslice_tab``/``conf_tab`` would store
the full PC tag (e.g. 55 bits for a 128-row table over a 62-bit instruction
word), dominating the hardware cost.  The paper folds the tag by XORing its
successive S-bit portions into a single S-bit hashed tag; S=8 for
``brslice_tab`` and S=4 for ``conf_tab`` "hardly degrade the performance".
The fold introduces the (rare, accepted) possibility of tag aliasing, which
our tables faithfully exhibit.
"""

from __future__ import annotations


def xor_fold(value: int, width: int) -> int:
    """Fold ``value`` into ``width`` bits by XORing its width-bit chunks."""
    if width < 1:
        raise ValueError("fold width must be positive")
    mask = (1 << width) - 1
    folded = 0
    v = value
    while v:
        folded ^= v & mask
        v >>= width
    return folded


def split_pc(pc: int, index_bits: int, word_width: int = 62) -> "tuple[int, int]":
    """Split an instruction PC into (set index, full tag).

    The PC's two alignment bits are dropped first (instructions are 4-byte
    aligned), leaving a ``word_width``-bit instruction word as in the paper's
    Sec. IV example (62 = 64 - 2).
    """
    if index_bits < 0:
        raise ValueError("index_bits must be non-negative")
    word = (pc >> 2) & ((1 << word_width) - 1)
    index = word & ((1 << index_bits) - 1)
    tag = word >> index_bits
    return index, tag


def hashed_tag(pc: int, index_bits: int, fold_width: int, word_width: int = 62) -> int:
    """The S-bit hashed tag of ``pc`` for a table with ``2**index_bits`` rows."""
    _, tag = split_pc(pc, index_bits, word_width)
    return xor_fold(tag, fold_width)
