"""PUBS configuration (the paper's Table II parameters).

Defaults are the paper's chosen operating point: 6 priority entries with the
stall dispatch policy, 6-bit resetting confidence counters, set-associative
tables with XOR-folded tags (S=8 / S=4), and LLC-MPKI-driven mode switching.
The table geometry (256 sets x 4 ways for both ``brslice_tab`` and
``conf_tab``) lands the total hardware cost at ~3.9 KB, matching the paper's
4.0 KB Table III budget.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class PubsConfig:
    """All knobs of the PUBS scheme."""

    enabled: bool = True
    #: Number of IQ entries reserved at the head for unconfident-slice
    #: instructions (Fig. 10's sweep; optimum 6).
    priority_entries: int = 6
    #: Stall dispatch when no priority entry is free (True, the paper's
    #: default) vs. spill to a normal entry (False).
    stall_policy: bool = True
    #: Fig. 11's "blind" model: treat every branch as unconfident and every
    #: brslice hit as unconfident-slice membership; eliminates conf_tab.
    blind: bool = False

    # conf_tab geometry (Sec. IV).
    conf_counter_bits: int = 6
    conf_sets: int = 256
    conf_assoc: int = 4
    conf_fold_width: int = 4

    # brslice_tab geometry (Sec. IV).
    brslice_sets: int = 256
    brslice_assoc: int = 4
    brslice_fold_width: int = 8

    #: Instruction-word width used for tag extraction and costing.
    word_width: int = 62

    # Mode switching (Sec. III-B3).
    mode_switch_enabled: bool = True
    #: PUBS stays enabled while observed LLC MPKI is below this threshold.
    #: The paper calls the threshold "predetermined" without a number; it
    #: must sit well above Fig. 9's 1.0-MPKI memory-intensity *classifier*
    #: (blue-dot programs still show PUBS gains there) but below the
    #: mcf/soplex regime where MLP dominates.  10 MPKI separates the two.
    mode_switch_threshold_mpki: float = 10.0
    #: Observation window, in committed instructions.  Short enough that
    #: even reduced-length simulations see several decision points.
    mode_switch_interval: int = 2048

    def __post_init__(self) -> None:
        if self.priority_entries < 0:
            raise ValueError("priority_entries must be non-negative")
        if self.conf_counter_bits < 1:
            raise ValueError("conf_counter_bits must be at least 1")
        for n, v in (
            ("conf_sets", self.conf_sets),
            ("brslice_sets", self.brslice_sets),
        ):
            if v < 1 or v & (v - 1):
                raise ValueError(f"{n} must be a power of two")
        for n, v in (
            ("conf_assoc", self.conf_assoc),
            ("brslice_assoc", self.brslice_assoc),
            ("conf_fold_width", self.conf_fold_width),
            ("brslice_fold_width", self.brslice_fold_width),
            ("mode_switch_interval", self.mode_switch_interval),
        ):
            if v < 1:
                raise ValueError(f"{n} must be positive")

    def with_overrides(self, **kwargs) -> "PubsConfig":
        """A copy with the given fields replaced (sweep helper)."""
        return replace(self, **kwargs)

    @staticmethod
    def disabled() -> "PubsConfig":
        """The base processor: no PUBS."""
        return PubsConfig(enabled=False)
