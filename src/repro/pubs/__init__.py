"""PUBS: Prioritizing Unconfident Branch Slices (the paper's contribution).

This package implements the decode-side machinery (Sec. III-A and IV): the
``def_tab`` / ``brslice_tab`` / ``conf_tab`` tables with XOR-folded hashed
tags, the slice tracker that predicts unconfident-slice membership, the
LLC-MPKI mode switch (Sec. III-B3), and the Table III hardware cost model.
The IQ-side priority partition lives in :mod:`repro.iq`.
"""

from .config import PubsConfig
from .cost import CostBreakdown, pubs_hardware_cost, unhashed_cost
from .hashing import hashed_tag, split_pc, xor_fold
from .mode_switch import ModeSwitch, ModeSwitchStats
from .slice_tracker import SliceTracker, SliceTrackerStats
from .tables import BrsliceTab, ConfTab, DefTab, Pointer, PointerCodec

__all__ = [
    "PubsConfig",
    "CostBreakdown",
    "pubs_hardware_cost",
    "unhashed_cost",
    "hashed_tag",
    "split_pc",
    "xor_fold",
    "ModeSwitch",
    "ModeSwitchStats",
    "SliceTracker",
    "SliceTrackerStats",
    "BrsliceTab",
    "ConfTab",
    "DefTab",
    "Pointer",
    "PointerCodec",
]
