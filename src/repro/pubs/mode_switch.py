"""LLC-MPKI-driven mode switching (Sec. III-B3).

Reserving priority entries wastes IQ capacity in memory-bound phases, where
memory-level parallelism (issuing as many loads as possible) matters more
than branch-misprediction penalty.  The mode switch observes LLC misses per
kilo-instruction over a fixed committed-instruction window and disables PUBS
while the observed MPKI is at or above a threshold.  While disabled, the IQ
has no reserved entries: dispatch draws from the priority and normal free
lists at random, weighted by their entry ratio (implemented in
:mod:`repro.iq.priority_queue`), so the full capacity is usable with "no
penalty for mode switching".
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ModeSwitchStats:
    windows: int = 0
    disabled_windows: int = 0

    @property
    def disabled_fraction(self) -> float:
        return self.disabled_windows / self.windows if self.windows else 0.0


class ModeSwitch:
    """Periodic LLC-MPKI observer gating the PUBS priority partition."""

    def __init__(self, threshold_mpki: float = 1.0, interval: int = 8192,
                 enabled: bool = True):
        if interval < 1:
            raise ValueError("observation interval must be positive")
        if threshold_mpki < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold_mpki = threshold_mpki
        self.interval = interval
        self.enabled = enabled
        #: Whether PUBS is currently active (True at reset: optimistic start).
        self.pubs_active = True
        self.stats = ModeSwitchStats()
        self._window_start_committed = 0
        self._window_start_misses = 0
        self.last_window_mpki = 0.0

    def observe(self, committed: int, llc_misses: int) -> bool:
        """Feed progress counters; returns the (possibly updated) PUBS state.

        Call as often as convenient (e.g. every commit group); a decision is
        only taken when a full observation window has elapsed.
        """
        if not self.enabled:
            return self.pubs_active
        elapsed = committed - self._window_start_committed
        if elapsed < self.interval:
            return self.pubs_active
        window_misses = llc_misses - self._window_start_misses
        self.last_window_mpki = 1000.0 * window_misses / elapsed
        self.pubs_active = self.last_window_mpki < self.threshold_mpki
        self.stats.windows += 1
        if not self.pubs_active:
            self.stats.disabled_windows += 1
        self._window_start_committed = committed
        self._window_start_misses = llc_misses
        return self.pubs_active
