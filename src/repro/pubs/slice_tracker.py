"""Decode-stage unconfident-branch-slice prediction (Sec. III-A).

The tracker is consulted once per decoded instruction, in program (decode)
order -- including wrong-path instructions, since the real hardware cannot
know it is on the wrong path.  It answers one question: *does this
instruction belong to an unconfident branch slice?*  The answer steers
dispatch into the IQ's priority or normal partition.

Per Sec. III-A the machinery is:

1. every decoded instruction with a destination records itself in
   ``def_tab`` as the last writer of that logical register;
2. a decoding *branch* looks up the producers of its source registers in
   ``def_tab`` and links their ``brslice_tab`` entries to its own
   ``conf_tab`` pointer (step 1 of the linking algorithm);
3. a decoding *non-branch* that hits in ``brslice_tab`` propagates the
   stored conf pointer to its own producers (steps 2-3: the transitive
   closure builds up over repeated executions of the slice);
4. membership in an *unconfident* slice requires the linked confidence
   counter to exist and be below saturation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.instruction import StaticInst
from .config import PubsConfig
from .tables import BrsliceTab, ConfTab, DefTab


@dataclass
class SliceTrackerStats:
    """Decode- and resolution-side counters (Fig. 11 uses the branch rate)."""

    decoded: int = 0
    branch_decodes: int = 0
    unconfident_branch_decodes: int = 0
    slice_hits: int = 0  #: non-branch decodes that hit in brslice_tab
    unconfident_marks: int = 0  #: instructions steered to priority entries
    trainings: int = 0

    @property
    def unconfident_branch_rate(self) -> float:
        """Fraction of dynamic branches estimated unconfident (Fig. 11)."""
        if self.branch_decodes == 0:
            return 0.0
        return self.unconfident_branch_decodes / self.branch_decodes


class SliceTracker:
    """The complete decode-side PUBS predictor."""

    def __init__(self, config: PubsConfig = None):
        self.config = config or PubsConfig()
        c = self.config
        self.def_tab = DefTab()
        self.brslice_tab = BrsliceTab(
            c.brslice_sets, c.brslice_assoc, c.brslice_fold_width, c.word_width
        )
        self.conf_tab = ConfTab(
            c.conf_sets, c.conf_assoc, c.conf_fold_width, c.conf_counter_bits,
            c.word_width,
        )
        self.stats = SliceTrackerStats()

    def on_decode(self, inst: StaticInst) -> bool:
        """Process one decoding instruction; True if it belongs to an
        unconfident branch slice (=> dispatch to a priority entry)."""
        self.stats.decoded += 1
        unconfident = False
        if inst.is_conditional_branch:
            self.stats.branch_decodes += 1
            conf_ptr = self.conf_tab.pointer(inst.pc)
            for src in inst.sources():
                slot = self.def_tab.writer_of(src)
                if slot is not None:
                    self.brslice_tab.link(slot, conf_ptr)
            if self.config.blind:
                unconfident = True
            else:
                unconfident = not self.conf_tab.is_confident_pc(inst.pc)
            if unconfident:
                self.stats.unconfident_branch_decodes += 1
        elif not inst.is_branch:  # unconditional jumps carry no condition slice
            conf_ptr = self.brslice_tab.lookup(inst.pc)
            if conf_ptr is not None:
                self.stats.slice_hits += 1
                for src in inst.sources():
                    slot = self.def_tab.writer_of(src)
                    if slot is not None:
                        self.brslice_tab.link(slot, conf_ptr)
                if self.config.blind:
                    unconfident = True
                else:
                    unconfident = not self.conf_tab.is_confident_pointer(conf_ptr)
        if inst.dest is not None:
            self.def_tab.record_writer(
                inst.dest, self.brslice_tab.codec.pointer(inst.pc)
            )
        if unconfident:
            self.stats.unconfident_marks += 1
        return unconfident

    def on_branch_resolved(self, pc: int, correct: bool) -> None:
        """Train the confidence counter with a resolved correct-path branch."""
        if self.config.blind:
            return  # the blind model has no conf_tab to train
        self.stats.trainings += 1
        self.conf_tab.train(pc, correct)

    def reset_tables(self) -> None:
        """Clear all three tables (keeps stats); for phase experiments."""
        self.def_tab.clear()
        self.brslice_tab.clear()
        self.conf_tab.clear()
