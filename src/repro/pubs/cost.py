"""Hardware cost model for the PUBS tables (Sec. IV / Table III).

Entry layouts (Fig. 6), with ``i_X`` = log2(rows of table X) index bits and
``S_X``-bit XOR-folded hashed tags:

* ``def_tab``     entry: ``p_B = i_B || t_B``                 (full-size, 64 rows)
* ``brslice_tab`` entry: ``t_B`` and ``p_C = i_C || t_C``
* ``conf_tab``    entry: ``t_C`` and the confidence counter

With the default geometry (256 sets x 4 ways for both set-associative
tables, S_B = 8, S_C = 4, 6-bit counters) the total is ~3.9 KB, matching the
paper's reported 4.0 KB.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import PubsConfig


@dataclass(frozen=True)
class CostBreakdown:
    """Per-table storage in bits, with KB accessors (Table III)."""

    def_tab_bits: int
    brslice_tab_bits: int
    conf_tab_bits: int

    @staticmethod
    def _kib(bits: int) -> float:
        return bits / 8 / 1024

    @property
    def def_tab_kib(self) -> float:
        return self._kib(self.def_tab_bits)

    @property
    def brslice_tab_kib(self) -> float:
        return self._kib(self.brslice_tab_bits)

    @property
    def conf_tab_kib(self) -> float:
        return self._kib(self.conf_tab_bits)

    @property
    def total_bits(self) -> int:
        return self.def_tab_bits + self.brslice_tab_bits + self.conf_tab_bits

    @property
    def total_kib(self) -> float:
        return self._kib(self.total_bits)

    def rows(self):
        """(name, KB) rows in Table III order plus the total."""
        return [
            ("def_tab", self.def_tab_kib),
            ("brslice_tab", self.brslice_tab_kib),
            ("conf_tab", self.conf_tab_kib),
            ("total", self.total_kib),
        ]


def unhashed_cost(config: PubsConfig = None, num_logical_regs: int = 64) -> CostBreakdown:
    """Cost with full (unhashed) tags -- the strawman Sec. IV improves on."""
    c = config or PubsConfig()
    i_b = c.brslice_sets.bit_length() - 1
    i_c = c.conf_sets.bit_length() - 1
    t_b = c.word_width - i_b  # full tag widths
    t_c = c.word_width - i_c
    p_b = i_b + t_b
    p_c = i_c + t_c
    return CostBreakdown(
        def_tab_bits=num_logical_regs * p_b,
        brslice_tab_bits=c.brslice_sets * c.brslice_assoc * (t_b + p_c),
        conf_tab_bits=c.conf_sets * c.conf_assoc * (t_c + c.conf_counter_bits),
    )


def pubs_hardware_cost(config: PubsConfig = None, num_logical_regs: int = 64) -> CostBreakdown:
    """Cost with XOR-folded hashed tags (the paper's Table III)."""
    c = config or PubsConfig()
    i_b = c.brslice_sets.bit_length() - 1
    i_c = c.conf_sets.bit_length() - 1
    t_b = c.brslice_fold_width
    t_c = c.conf_fold_width
    p_b = i_b + t_b
    p_c = i_c + t_c
    return CostBreakdown(
        def_tab_bits=num_logical_regs * p_b,
        brslice_tab_bits=c.brslice_sets * c.brslice_assoc * (t_b + p_c),
        conf_tab_bits=c.conf_sets * c.conf_assoc * (t_c + c.conf_counter_bits),
    )
