"""Common interface for conditional-branch direction predictors.

All predictors speculate at fetch time and are updated at branch resolution
with the true outcome.  Global-history predictors additionally maintain a
speculative history that the timing model checkpoints and restores on
misprediction recovery; to keep the interface simple (and because the paper
evaluates predictor *accuracy* trends, not deep speculative-history effects)
we update the history non-speculatively at resolution, which is the
SimpleScalar default behaviour.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass


@dataclass
class PredictorStats:
    """Aggregate accuracy counters, updated by :meth:`BranchPredictor.update`."""

    predictions: int = 0
    mispredictions: int = 0

    @property
    def accuracy(self) -> float:
        if self.predictions == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions

    def record(self, correct: bool) -> None:
        self.predictions += 1
        if not correct:
            self.mispredictions += 1


class BranchPredictor(abc.ABC):
    """Direction predictor for conditional branches."""

    def __init__(self) -> None:
        self.stats = PredictorStats()

    @abc.abstractmethod
    def predict(self, pc: int) -> bool:
        """Predicted direction (True = taken) for the branch at ``pc``."""

    @abc.abstractmethod
    def update(self, pc: int, taken: bool, predicted: bool) -> None:
        """Train with the resolved outcome.

        Implementations must call ``self.stats.record(taken == predicted)``.
        """

    @abc.abstractmethod
    def storage_bits(self) -> int:
        """Hardware budget of the predictor in bits (for Fig. 13's costing)."""

    def storage_kib(self) -> float:
        """Hardware budget in KiB."""
        return self.storage_bits() / 8 / 1024


class AlwaysTakenPredictor(BranchPredictor):
    """Degenerate predictor used as a baseline in tests."""

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool, predicted: bool) -> None:
        self.stats.record(taken == predicted)

    def storage_bits(self) -> int:
        return 0
