"""Two-bit saturating counters, the shared building block of the classic
table predictors (gshare, bimode, tournament) used for the paper's
footnote-1 cross-check of astar's extraordinary branch MPKI.
"""

from __future__ import annotations

from typing import List


class CounterTable:
    """A table of 2-bit saturating up/down counters."""

    STRONG_NOT_TAKEN = 0
    WEAK_NOT_TAKEN = 1
    WEAK_TAKEN = 2
    STRONG_TAKEN = 3

    def __init__(self, size: int, init: int = WEAK_NOT_TAKEN):
        if size < 1 or size & (size - 1):
            raise ValueError("counter table size must be a power of two")
        if not 0 <= init <= 3:
            raise ValueError("2-bit counter init out of range")
        self.size = size
        self._counters: List[int] = [init] * size

    def index_mask(self) -> int:
        return self.size - 1

    def taken(self, index: int) -> bool:
        return self._counters[index & (self.size - 1)] >= self.WEAK_TAKEN

    def value(self, index: int) -> int:
        return self._counters[index & (self.size - 1)]

    def train(self, index: int, taken: bool) -> None:
        i = index & (self.size - 1)
        c = self._counters[i]
        if taken:
            if c < self.STRONG_TAKEN:
                self._counters[i] = c + 1
        elif c > self.STRONG_NOT_TAKEN:
            self._counters[i] = c - 1

    def storage_bits(self) -> int:
        return 2 * self.size
