"""Classic table-based direction predictors: gshare, bimode, tournament.

The paper's footnote 1 validates its astar branch-MPKI observation against
"other branch predictors (e.g., gshare, bimode, and tournament predictors)";
we provide the same trio so the reproduction can run the same cross-check
(`benchmarks/bench_ablation_predictors.py`).
"""

from __future__ import annotations

from .base import BranchPredictor
from .twobit import CounterTable


class GsharePredictor(BranchPredictor):
    """PC xor global-history indexed 2-bit counter table (McFarling 1993)."""

    def __init__(self, table_size: int = 4096, history_length: int = 12):
        super().__init__()
        self.table = CounterTable(table_size)
        self.history_length = history_length
        self._history = 0
        self._hmask = (1 << history_length) - 1

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self.table.index_mask()

    def predict(self, pc: int) -> bool:
        return self.table.taken(self._index(pc))

    def update(self, pc: int, taken: bool, predicted: bool) -> None:
        self.stats.record(taken == predicted)
        self.table.train(self._index(pc), taken)
        self._history = ((self._history << 1) | int(taken)) & self._hmask

    def storage_bits(self) -> int:
        return self.table.storage_bits() + self.history_length


class BimodePredictor(BranchPredictor):
    """Bi-mode predictor (Lee, Chen & Mudge, MICRO 1997).

    A choice table selects between a taken-biased and a not-taken-biased
    direction table, both gshare-indexed; only the selected table trains
    (plus the choicer, unless it disagrees while the outcome was predicted
    correctly).
    """

    def __init__(self, table_size: int = 2048, history_length: int = 11):
        super().__init__()
        self.taken_table = CounterTable(table_size, init=CounterTable.WEAK_TAKEN)
        self.not_taken_table = CounterTable(table_size, init=CounterTable.WEAK_NOT_TAKEN)
        self.choice_table = CounterTable(table_size)
        self.history_length = history_length
        self._history = 0
        self._hmask = (1 << history_length) - 1

    def _direction_index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self.taken_table.index_mask()

    def _choice_index(self, pc: int) -> int:
        return (pc >> 2) & self.choice_table.index_mask()

    def _select(self, pc: int) -> CounterTable:
        if self.choice_table.taken(self._choice_index(pc)):
            return self.taken_table
        return self.not_taken_table

    def predict(self, pc: int) -> bool:
        return self._select(pc).taken(self._direction_index(pc))

    def update(self, pc: int, taken: bool, predicted: bool) -> None:
        self.stats.record(taken == predicted)
        chooser_taken = self.choice_table.taken(self._choice_index(pc))
        selected = self.taken_table if chooser_taken else self.not_taken_table
        direction_correct = selected.taken(self._direction_index(pc)) == taken
        # Bi-mode update rule: the chooser is not trained when it steered to
        # a table that predicted correctly against the chooser's own bias.
        if not (direction_correct and chooser_taken != taken):
            self.choice_table.train(self._choice_index(pc), taken)
        selected.train(self._direction_index(pc), taken)
        self._history = ((self._history << 1) | int(taken)) & self._hmask

    def storage_bits(self) -> int:
        return (
            self.taken_table.storage_bits()
            + self.not_taken_table.storage_bits()
            + self.choice_table.storage_bits()
            + self.history_length
        )


class TournamentPredictor(BranchPredictor):
    """Alpha 21264-style tournament of a local and a global predictor."""

    def __init__(
        self,
        local_table_size: int = 1024,
        local_history_length: int = 10,
        global_table_size: int = 4096,
        global_history_length: int = 12,
    ):
        super().__init__()
        self.local_histories = [0] * local_table_size
        self.local_table = CounterTable(1 << local_history_length)
        self.global_table = CounterTable(global_table_size)
        self.choice_table = CounterTable(global_table_size)
        self.local_history_length = local_history_length
        self.global_history_length = global_history_length
        self._lmask = (1 << local_history_length) - 1
        self._history = 0
        self._hmask = (1 << global_history_length) - 1

    def _local_predict(self, pc: int) -> bool:
        hist = self.local_histories[(pc >> 2) % len(self.local_histories)]
        return self.local_table.taken(hist)

    def _global_predict(self) -> bool:
        return self.global_table.taken(self._history)

    def predict(self, pc: int) -> bool:
        if self.choice_table.taken(self._history):
            return self._global_predict()
        return self._local_predict(pc)

    def update(self, pc: int, taken: bool, predicted: bool) -> None:
        self.stats.record(taken == predicted)
        local_pred = self._local_predict(pc)
        global_pred = self._global_predict()
        if local_pred != global_pred:
            self.choice_table.train(self._history, global_pred == taken)
        slot = (pc >> 2) % len(self.local_histories)
        self.local_table.train(self.local_histories[slot], taken)
        self.local_histories[slot] = (
            (self.local_histories[slot] << 1) | int(taken)
        ) & self._lmask
        self.global_table.train(self._history, taken)
        self._history = ((self._history << 1) | int(taken)) & self._hmask

    def storage_bits(self) -> int:
        return (
            len(self.local_histories) * self.local_history_length
            + self.local_table.storage_bits()
            + self.global_table.storage_bits()
            + self.choice_table.storage_bits()
            + self.global_history_length
        )
