"""Branch target buffer.

Table I specifies a 2K-set 4-way BTB.  The BTB caches the taken-path target
of branches; a predicted-taken branch that misses in the BTB cannot redirect
fetch and is treated as not-taken by the front end (the usual SimpleScalar
behaviour), which resolves as a misprediction if the branch was taken.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class BranchTargetBuffer:
    """Set-associative, true-LRU branch target buffer."""

    def __init__(self, num_sets: int = 2048, assoc: int = 4):
        if num_sets < 1 or num_sets & (num_sets - 1):
            raise ValueError("num_sets must be a power of two")
        if assoc < 1:
            raise ValueError("assoc must be positive")
        self.num_sets = num_sets
        self.assoc = assoc
        # Each set is an MRU-ordered list of (tag, target) pairs.
        self._sets: List[List[Tuple[int, int]]] = [[] for _ in range(num_sets)]
        self.lookups = 0
        self.hits = 0

    def _index_tag(self, pc: int) -> Tuple[int, int]:
        word = pc >> 2
        return word & (self.num_sets - 1), word >> self.num_sets.bit_length() - 1

    def lookup(self, pc: int) -> Optional[int]:
        """The cached taken-target of ``pc``, or None on a BTB miss."""
        self.lookups += 1
        index, tag = self._index_tag(pc)
        ways = self._sets[index]
        for i, (t, target) in enumerate(ways):
            if t == tag:
                if i:
                    ways.insert(0, ways.pop(i))
                self.hits += 1
                return target
        return None

    def install(self, pc: int, target: int) -> None:
        """Record (or refresh) the taken-target of ``pc``."""
        index, tag = self._index_tag(pc)
        ways = self._sets[index]
        for i, (t, _) in enumerate(ways):
            if t == tag:
                ways.pop(i)
                break
        ways.insert(0, (tag, target))
        if len(ways) > self.assoc:
            ways.pop()

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 1.0
