"""Branch-prediction confidence estimation.

Sec. III-A1 of the paper estimates confidence with *saturating resetting
counters* (Jacobsen, Rotenberg & Smith, MICRO 1996): a per-branch counter
increments on every correct prediction, saturates at its maximum, and resets
to zero on any misprediction.  A branch is **confident** only while its
counter sits at the maximum; a branch with no allocated counter is treated as
confident ("the confidence counter is not obtained or it indicates the
maximum confidence" -- Sec. III-A3).

:class:`ResettingConfidenceCounter` is the counter itself; the
set-associative, hashed-tag ``conf_tab`` that stores one per branch PC lives
in :mod:`repro.pubs.tables`.  :class:`IdealConfidenceEstimator` is the
unbounded-table reference used by unit tests and the tagless ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class ResettingConfidenceCounter:
    """A single saturating resetting counter of ``bits`` width."""

    bits: int
    value: int = 0

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError("counter width must be at least 1 bit")
        if not 0 <= self.value <= self.maximum:
            raise ValueError("counter value out of range")

    @property
    def maximum(self) -> int:
        return (1 << self.bits) - 1

    @property
    def confident(self) -> bool:
        """Confident only at saturation (Sec. III-A1)."""
        return self.value == self.maximum

    def reset_to_correct(self) -> None:
        """Initialization on allocation after a correct prediction."""
        self.value = self.maximum

    def reset_to_incorrect(self) -> None:
        """Initialization on allocation after a misprediction."""
        self.value = 0

    def train(self, correct: bool) -> None:
        """Post-allocation update: +1 saturating on correct, reset on wrong."""
        if correct:
            if self.value < self.maximum:
                self.value += 1
        else:
            self.value = 0


class IdealConfidenceEstimator:
    """Reference estimator with one counter per branch PC, no conflicts.

    Mirrors the allocation policy of Sec. III-A1: the first resolution of a
    branch initializes its counter to the maximum on a correct prediction and
    to zero otherwise; later resolutions train the counter.
    """

    def __init__(self, counter_bits: int = 6):
        if counter_bits < 1:
            raise ValueError("counter width must be at least 1 bit")
        self.counter_bits = counter_bits
        self._counters: Dict[int, ResettingConfidenceCounter] = {}
        self.queries = 0
        self.unconfident_queries = 0

    def is_confident(self, pc: int) -> bool:
        """Confidence of the branch at ``pc`` (unallocated => confident)."""
        self.queries += 1
        counter = self._counters.get(pc)
        confident = counter is None or counter.confident
        if not confident:
            self.unconfident_queries += 1
        return confident

    def train(self, pc: int, correct: bool) -> None:
        """Update with a resolved prediction outcome."""
        counter = self._counters.get(pc)
        if counter is None:
            counter = ResettingConfidenceCounter(self.counter_bits)
            if correct:
                counter.reset_to_correct()
            else:
                counter.reset_to_incorrect()
            self._counters[pc] = counter
        else:
            counter.train(correct)

    @property
    def unconfident_rate(self) -> float:
        """Fraction of queries that returned "unconfident" (Fig. 11's line)."""
        return self.unconfident_queries / self.queries if self.queries else 0.0
