"""Perceptron branch predictor (Jimenez & Lin, HPCA 2001).

The paper's base processor uses a perceptron predictor with a 34-bit global
history and a 256-entry weight table (Table I); the enlarged predictor of
Fig. 13 uses a 36-bit history and a 512-entry table (+8.4 KB).  Both are
instances of this class.

Prediction: the weight vector selected by ``pc mod table_size`` is dotted
with the global history (encoded as +1 for taken, -1 for not-taken) plus a
bias weight; a non-negative output predicts taken.  Training: on a
misprediction, or when ``|output| <= theta``, each weight moves toward the
outcome.  ``theta = floor(1.93 * history_length + 14)`` is the threshold from
the original paper, and weights saturate at the 8-bit signed range used
there.
"""

from __future__ import annotations

from .base import BranchPredictor

_WEIGHT_MAX = 127
_WEIGHT_MIN = -128


class PerceptronPredictor(BranchPredictor):
    """Global-history perceptron predictor."""

    def __init__(self, history_length: int = 34, table_size: int = 256):
        super().__init__()
        if history_length < 1:
            raise ValueError("history_length must be positive")
        if table_size < 1:
            raise ValueError("table_size must be positive")
        self.history_length = history_length
        self.table_size = table_size
        self.theta = int(1.93 * history_length + 14)
        # weights[i][0] is the bias; weights[i][1..h] pair with history bits.
        self._weights = [[0] * (history_length + 1) for _ in range(table_size)]
        # History as +/-1 ints, most recent last.
        self._history = [-1] * history_length

    def _row(self, pc: int) -> list:
        return self._weights[(pc >> 2) % self.table_size]

    def _output(self, pc: int) -> int:
        w = self._row(pc)
        h = self._history
        total = w[0]
        for i in range(self.history_length):
            total += w[i + 1] * h[i]
        return total

    def predict(self, pc: int) -> bool:
        return self._output(pc) >= 0

    def update(self, pc: int, taken: bool, predicted: bool) -> None:
        self.stats.record(taken == predicted)
        output = self._output(pc)
        t = 1 if taken else -1
        if (output >= 0) != taken or abs(output) <= self.theta:
            w = self._row(pc)
            b = w[0] + t
            w[0] = _WEIGHT_MAX if b > _WEIGHT_MAX else (_WEIGHT_MIN if b < _WEIGHT_MIN else b)
            h = self._history
            for i in range(self.history_length):
                v = w[i + 1] + (t if h[i] > 0 else -t)
                w[i + 1] = _WEIGHT_MAX if v > _WEIGHT_MAX else (
                    _WEIGHT_MIN if v < _WEIGHT_MIN else v
                )
        self._history.pop(0)
        self._history.append(t)

    def storage_bits(self) -> int:
        # 8-bit weights, (history_length + 1) per entry, plus the history
        # register itself.
        return self.table_size * (self.history_length + 1) * 8 + self.history_length
