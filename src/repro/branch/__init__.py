"""Branch prediction substrate: direction predictors, BTB, and confidence.

The base processor (Table I) uses a perceptron direction predictor with a
2K-set 4-way BTB; confidence is estimated with saturating resetting
counters.  Classic predictors (gshare / bimode / tournament) are included
for the paper's footnote-1 cross-check.
"""

from .base import AlwaysTakenPredictor, BranchPredictor, PredictorStats
from .btb import BranchTargetBuffer
from .classic import BimodePredictor, GsharePredictor, TournamentPredictor
from .confidence import IdealConfidenceEstimator, ResettingConfidenceCounter
from .perceptron import PerceptronPredictor
from .twobit import CounterTable

__all__ = [
    "AlwaysTakenPredictor",
    "BranchPredictor",
    "PredictorStats",
    "BranchTargetBuffer",
    "BimodePredictor",
    "GsharePredictor",
    "TournamentPredictor",
    "IdealConfidenceEstimator",
    "ResettingConfidenceCounter",
    "PerceptronPredictor",
    "CounterTable",
]
