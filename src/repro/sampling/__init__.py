"""SimPoint/SMARTS-style sampled simulation over recorded traces.

See DESIGN.md §10.  Public surface:

* :func:`~repro.sampling.regions.plan_representative_regions` --
  SimPoint-style planning: cluster the span's windows on trace-derived
  behavior signatures (:mod:`repro.sampling.signature`) and schedule
  one weighted representative per cluster;
* :func:`~repro.sampling.regions.plan_regions` /
  :class:`~repro.sampling.regions.RegionPlan` -- systematic
  (SMARTS-style) evenly spaced windows over the same span;
* :func:`~repro.sampling.run.sample_workload` /
  :class:`~repro.sampling.run.SampledRun` -- fan the windows out as
  independently cached exec jobs and aggregate;
* :func:`~repro.sampling.adaptive.sample_workload_adaptive` /
  :class:`~repro.sampling.adaptive.AdaptiveRun` -- variance-driven
  escalation: start from a small representative set and split clusters
  until the CI half-width meets ``ci_target`` or the region cap;
* :class:`~repro.sampling.aggregate.SampledEstimate` -- weighted
  whole-span point estimate with per-region spread (reuses
  :class:`~repro.analysis.robustness.SweepSummary`'s n>=2 honesty rule);
* :func:`~repro.sampling.paired.paired_speedup` /
  :class:`~repro.sampling.paired.PairedEstimate` -- common-regions
  paired-jackknife speedup CI over two runs' shared windows;
* :class:`~repro.sampling.controller.TableController` /
  :class:`~repro.sampling.adaptive.AdaptiveSession` -- whole-table
  budget control: escalate whichever workload has the worst
  CI-to-target ratio until the table meets the target.
"""

from .adaptive import (
    DEFAULT_ADAPTIVE_CAP,
    DEFAULT_BATCH,
    DEFAULT_CI_TARGET,
    DEFAULT_START_REGIONS,
    AdaptiveRound,
    AdaptiveRun,
    AdaptiveSession,
    sample_workload_adaptive,
    sample_workload_adaptive_many,
)
from .controller import TableController
from .paired import (
    PairedEstimate,
    paired_speedup,
    shared_schedule,
)
from .aggregate import (
    CI_RELATIVE_FLOOR,
    CI_Z,
    SampledEstimate,
    estimate_cpi,
    estimate_misspec_penalty,
    weighted_counter,
    weighted_ratio,
)
from .regions import (
    DEFAULT_DETAIL,
    DEFAULT_MAX_FRACTION,
    DEFAULT_MEASURE,
    DEFAULT_REGIONS,
    DEFAULT_WARMUP,
    Region,
    RegionPlan,
    plan_regions,
    plan_representative_regions,
)
from .run import (
    CPI_ERROR_GATE,
    SampledRun,
    acquire_span_trace,
    region_jobs,
    sample_workload,
    sample_workload_many,
    sampled_vs_full_error,
)
from .signature import (
    assign_windows,
    cluster_windows,
    signature_distance,
    window_signature,
)

__all__ = [
    "CI_RELATIVE_FLOOR",
    "CI_Z",
    "CPI_ERROR_GATE",
    "DEFAULT_ADAPTIVE_CAP",
    "DEFAULT_BATCH",
    "DEFAULT_CI_TARGET",
    "DEFAULT_DETAIL",
    "DEFAULT_MAX_FRACTION",
    "DEFAULT_MEASURE",
    "DEFAULT_REGIONS",
    "DEFAULT_START_REGIONS",
    "DEFAULT_WARMUP",
    "AdaptiveRound",
    "AdaptiveRun",
    "AdaptiveSession",
    "PairedEstimate",
    "Region",
    "RegionPlan",
    "SampledEstimate",
    "SampledRun",
    "TableController",
    "acquire_span_trace",
    "assign_windows",
    "cluster_windows",
    "estimate_cpi",
    "estimate_misspec_penalty",
    "plan_regions",
    "plan_representative_regions",
    "region_jobs",
    "sample_workload",
    "sample_workload_adaptive",
    "sample_workload_adaptive_many",
    "paired_speedup",
    "sample_workload_many",
    "sampled_vs_full_error",
    "shared_schedule",
    "signature_distance",
    "weighted_counter",
    "weighted_ratio",
    "window_signature",
]
