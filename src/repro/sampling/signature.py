"""Window signatures and representative selection (the SimPoint half).

Systematic placement alone cannot hit the 3% accuracy gate on
phase-structured workloads: per-window CPI varies by 10-30% around the
span mean, so a handful of evenly spaced windows is at the mercy of
which phases the stride happens to land on.  SimPoint (Sherwood et al.,
ASPLOS 2002) fixes this by *clustering* the windows on a cheap
execution signature and simulating one representative per cluster,
weighting each representative by its cluster's population.

The signature here is a per-window sparse feature vector computed from
the recorded trace arrays alone -- no simulation:

* ``pc`` buckets (``pc >> 6``): the classic basic-block-vector stand-in,
  what code the window runs;
* ``mem`` buckets of effective addresses (``addr >> 10``): what data it
  touches, which separates cache-friendly from cache-hostile phases the
  code signature cannot see;
* per-branch-site outcomes (``(pc, taken)``) and the window's overall
  taken rate: data-dependent control behavior, which separates
  predictable from unpredictable phases of the *same* code.

Counts are normalized by the window length, so the L1 distance between
two signatures is a fraction-of-execution overlap measure.  Clustering
is k-medoids with deterministic farthest-point seeding: no randomness,
so a (trace, parameters) pair always yields the same plan -- and
therefore the same exec job keys, which is what makes sampled regions
cacheable.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence, Tuple

try:  # optional fast path; the image ships numpy but nothing requires it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

from ..trace.format import FLAG_COND_BRANCH, FLAG_MEM, FLAG_TAKEN

#: Instruction-bucket granularity (64 B of code per feature).
PC_SHIFT = 6
#: Data-bucket granularity (1 KiB of address space per feature).
ADDR_SHIFT = 10

Signature = Dict[tuple, float]


def window_signature(trace, start: int, length: int) -> Signature:
    """The signature of ``trace`` records ``[start, start + length)``."""
    if _np is not None:
        return _signature_numpy(trace, start, length)
    return _signature_python(trace, start, length)


def _signature_python(trace, start: int, length: int) -> Signature:
    counts: Counter = Counter()
    pcs, flags, addrs = trace.pcs, trace.flags, trace.mem_addrs
    branches = taken = 0
    for i in range(start, start + length):
        counts[("pc", pcs[i] >> PC_SHIFT)] += 1
        f = flags[i]
        if f & FLAG_MEM:
            counts[("mem", addrs[i] >> ADDR_SHIFT)] += 1
        elif f & FLAG_COND_BRANCH:
            outcome = bool(f & FLAG_TAKEN)
            branches += 1
            taken += outcome
            counts[("br", pcs[i], outcome)] += 1
    sig = {key: value / length for key, value in counts.items()}
    if branches:
        sig[("taken-rate",)] = taken / branches
    return sig


def _signature_numpy(trace, start: int, length: int) -> Signature:
    end = start + length
    pcs = _np.frombuffer(trace.pcs, dtype=_np.uint32)[start:end]
    flags = _np.frombuffer(trace.flags, dtype=_np.uint8)[start:end]
    addrs = _np.frombuffer(trace.mem_addrs, dtype=_np.uint64)[start:end]
    sig: Signature = {}
    buckets, counts = _np.unique(pcs >> PC_SHIFT, return_counts=True)
    for bucket, count in zip(buckets.tolist(), counts.tolist()):
        sig[("pc", bucket)] = count / length
    is_mem = (flags & FLAG_MEM) != 0
    buckets, counts = _np.unique(addrs[is_mem] >> _np.uint64(ADDR_SHIFT),
                                 return_counts=True)
    for bucket, count in zip(buckets.tolist(), counts.tolist()):
        sig[("mem", bucket)] = count / length
    is_branch = ~is_mem & ((flags & FLAG_COND_BRANCH) != 0)
    branch_pcs = pcs[is_branch]
    outcomes = (flags[is_branch] & FLAG_TAKEN) != 0
    if branch_pcs.size:
        pairs = _np.stack([branch_pcs.astype(_np.int64),
                           outcomes.astype(_np.int64)], axis=1)
        uniq, counts = _np.unique(pairs, axis=0, return_counts=True)
        for (pc, outcome), count in zip(uniq.tolist(), counts.tolist()):
            sig[("br", pc, bool(outcome))] = count / length
        sig[("taken-rate",)] = float(outcomes.mean())
    return sig


def signature_distance(a: Signature, b: Signature) -> float:
    """L1 distance; 0 for identical behavior, up to ~2+ for disjoint."""
    total = 0.0
    for key, value in a.items():
        total += abs(value - b.get(key, 0.0))
    for key, value in b.items():
        if key not in a:
            total += value
    return total


def cluster_windows(signatures: Sequence[Signature], k: int,
                    max_iterations: int = 32,
                    ) -> Tuple[List[int], List[int]]:
    """K-medoids over window signatures, fully deterministic.

    Returns ``(medoids, weights)``: the indices of the representative
    windows and how many windows each one stands for.  Seeding is
    farthest-point from window 0, refinement is classic alternating
    assignment / medoid update; ties break toward the lower index, so
    the same input always produces the same clustering.
    """
    n = len(signatures)
    if n == 0:
        raise ValueError("cannot cluster zero windows")
    k = min(k, n)
    # Farthest-point seeding: start at the first window, repeatedly add
    # the window farthest from every current medoid.
    medoids = [0]
    nearest = [signature_distance(signatures[i], signatures[0])
               for i in range(n)]
    while len(medoids) < k:
        far = max(range(n), key=lambda i: nearest[i])
        medoids.append(far)
        for i in range(n):
            d = signature_distance(signatures[i], signatures[far])
            if d < nearest[i]:
                nearest[i] = d
    for _ in range(max_iterations):
        assignment = assign_windows(signatures, medoids)
        updated = []
        for j in range(len(medoids)):
            members = [i for i, a in enumerate(assignment) if a == j]
            if not members:
                updated.append(medoids[j])
                continue
            updated.append(min(
                members,
                key=lambda i: (sum(signature_distance(signatures[i],
                                                      signatures[x])
                                   for x in members), i)))
        if updated == medoids:
            break
        medoids = updated
    assignment = assign_windows(signatures, medoids)
    weights = [0] * len(medoids)
    for a in assignment:
        weights[a] += 1
    return medoids, weights


def assign_windows(signatures: Sequence[Signature],
                   medoids: Sequence[int]) -> List[int]:
    """Index of each window's nearest medoid (ties toward the lower slot)."""
    return [min(range(len(medoids)),
                key=lambda j: (signature_distance(s, signatures[medoids[j]]),
                               j))
            for s in signatures]


__all__ = [
    "ADDR_SHIFT",
    "PC_SHIFT",
    "Signature",
    "assign_windows",
    "cluster_windows",
    "signature_distance",
    "window_signature",
]
