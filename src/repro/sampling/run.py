"""Sampled workload runs: plan, fan out region jobs, aggregate.

:func:`sample_workload` is the sampling analogue of
:func:`repro.analysis.runner.run_workload`: instead of one simulation
over the whole timed span it schedules (warmup, measure) windows
(:mod:`repro.sampling.regions`), runs each as an independent
:class:`~repro.exec.jobs.SimJob` through a
:class:`~repro.exec.executor.SweepExecutor` -- the region rides inside
the job's :class:`~repro.core.config.ProcessorConfig`, so every window
has its own content-addressed job key and caches like any other
simulation -- and combines the per-window stats into whole-span
estimates (:mod:`repro.sampling.aggregate`).

The trace is captured once up front into the shared
:class:`~repro.trace.store.TraceStore` (covering the furthest region
plus the replay margin), so pool workers find it on disk instead of
re-recording; the store's cross-process claim makes even a cold parallel
start record it exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..core.config import ProcessorConfig
from ..core.simulator import SimulationResult
from ..exec.executor import SweepExecutor
from ..exec.jobs import SimJob
from ..trace.store import REPLAY_MARGIN, TraceStore, shared_store
from ..workloads.generator import build_program
from ..workloads.profiles import WorkloadProfile, get_profile
from .aggregate import SampledEstimate, estimate_cpi, estimate_misspec_penalty
from .regions import RegionPlan, plan_regions, plan_representative_regions

#: Sampled CPI must land within this relative error of the full run --
#: SimPoint's headline accuracy, and the CI gate's threshold.
CPI_ERROR_GATE = 0.03


@dataclass(frozen=True)
class SampledRun:
    """Everything one sampled workload run produced."""

    workload: str
    config: ProcessorConfig  #: base config (regions are derived from it)
    plan: RegionPlan
    results: Tuple[SimulationResult, ...]  #: one per region, plan order
    cpi: SampledEstimate
    misspec_penalty: SampledEstimate

    @property
    def simulated_records(self) -> int:
        """Timed records actually simulated (the <= 1/3 coverage gate).

        Includes each region's detailed-warmup records: they run through
        the full timing model even though their stats are discarded.
        """
        return self.plan.simulated_records

    @property
    def coverage(self) -> float:
        return self.plan.coverage


def region_jobs(workload: Union[str, WorkloadProfile],
                config: Optional[ProcessorConfig],
                plan: RegionPlan) -> List[SimJob]:
    """One replay job per scheduled region, in plan order.

    Each job's config carries the region via ``with_region``, so its
    exec job key -- and therefore its persistent cache entry -- is
    specific to (workload, config, window): re-sampling with an
    overlapping plan reuses the windows it shares.
    """
    profile = get_profile(workload) if isinstance(workload, str) else workload
    base = config or ProcessorConfig.cortex_a72_like()
    return [SimJob(profile, base.with_region(r.start, r.warmup, r.detail),
                   r.measure, 0)
            for r in plan.regions]


def acquire_span_trace(profile: WorkloadProfile, instructions: int,
                       skip: int, checkpoint_interval: Optional[int] = None,
                       store: Optional[TraceStore] = None):
    """Capture (or load) the trace covering one sampled span.

    Acquisition happens once, up front, before any region jobs fan out:
    the planners read the trace, and pool workers then find it on disk
    instead of re-recording (the store's cross-process claim makes even
    a cold parallel start record it exactly once).  The capture covers
    the whole span plus the replay margin, so every schedulable region
    replays from it.
    """
    trace_store = store if store is not None else shared_store()
    program = build_program(profile)
    return trace_store.acquire(
        program, profile.mem_seed, skip + instructions + REPLAY_MARGIN,
        **({"checkpoint_interval": checkpoint_interval}
           if checkpoint_interval is not None else {}))


def sample_workload_many(workload: Union[str, WorkloadProfile],
                         configs: "Sequence[Optional[ProcessorConfig]]",
                         instructions: int = 20_000,
                         skip: int = 2_000,
                         strategy: str = "simpoint",
                         measure: Optional[int] = None,
                         warmup: Optional[int] = None,
                         detail: Optional[int] = None,
                         regions: Optional[int] = None,
                         max_fraction: Optional[float] = None,
                         checkpoint_interval: Optional[int] = None,
                         ci_target: Optional[float] = None,
                         executor: Optional[SweepExecutor] = None,
                         jobs: Optional[int] = None,
                         cache: "Optional[bool]" = None,
                         store: Optional[TraceStore] = None
                         ) -> List[SampledRun]:
    """:func:`sample_workload` for several configs of one workload.

    The plan derives from the trace alone, so every config samples the
    *same* windows; submitting all configs' region jobs in one executor
    call lets the batched replay path (:mod:`repro.batch`) walk each
    region window once for every config sharing its warm class.
    Returns one :class:`SampledRun` per config, in ``configs`` order --
    each identical to what a separate :func:`sample_workload` call
    would produce.
    """
    if strategy not in ("simpoint", "systematic", "adaptive"):
        raise ValueError(f"unknown sampling strategy: {strategy}")
    if ci_target is not None and strategy != "adaptive":
        raise ValueError("ci_target applies to the adaptive strategy")
    if not configs:
        return []
    profile = get_profile(workload) if isinstance(workload, str) else workload
    if strategy == "adaptive":
        from .adaptive import DEFAULT_CI_TARGET, sample_workload_adaptive_many
        return sample_workload_adaptive_many(
            profile, configs, instructions=instructions, skip=skip,
            ci_target=DEFAULT_CI_TARGET if ci_target is None else ci_target,
            measure=measure,
            **({} if warmup is None else {"warmup": warmup}),
            detail=detail, regions=regions, max_fraction=max_fraction,
            checkpoint_interval=checkpoint_interval,
            executor=executor, jobs=jobs, cache=cache, store=store)
    plan_kwargs = {}
    if measure is not None:
        plan_kwargs["measure"] = measure
    if warmup is not None:
        plan_kwargs["warmup"] = warmup
    if detail is not None:
        plan_kwargs["detail"] = detail
    if regions is not None:
        if strategy != "simpoint":
            raise ValueError("regions cap applies to the simpoint strategy")
        plan_kwargs["regions"] = regions
    if max_fraction is not None:
        plan_kwargs["max_fraction"] = max_fraction
    if checkpoint_interval is not None:
        plan_kwargs["checkpoint_interval"] = checkpoint_interval

    trace = acquire_span_trace(profile, instructions, skip,
                               checkpoint_interval, store)

    if strategy == "simpoint":
        plan = plan_representative_regions(trace, instructions, skip,
                                           **plan_kwargs)
    else:
        plan = plan_regions(instructions, skip, **plan_kwargs)

    batch = [job for config in configs
             for job in region_jobs(profile, config, plan)]
    runner = executor if executor is not None \
        else SweepExecutor(jobs=jobs, cache=cache)
    flat = runner.run(batch)
    weights = [r.weight for r in plan.regions]
    per_config = len(plan.regions)
    runs = []
    for i, config in enumerate(configs):
        results = flat[i * per_config:(i + 1) * per_config]
        runs.append(SampledRun(
            workload=profile.name,
            config=config or ProcessorConfig.cortex_a72_like(),
            plan=plan,
            results=tuple(results),
            cpi=estimate_cpi(results, weights),
            misspec_penalty=estimate_misspec_penalty(results, weights),
        ))
    return runs


def sample_workload(workload: Union[str, WorkloadProfile],
                    config: Optional[ProcessorConfig] = None,
                    instructions: int = 20_000,
                    skip: int = 2_000,
                    strategy: str = "simpoint",
                    measure: Optional[int] = None,
                    warmup: Optional[int] = None,
                    detail: Optional[int] = None,
                    regions: Optional[int] = None,
                    max_fraction: Optional[float] = None,
                    checkpoint_interval: Optional[int] = None,
                    ci_target: Optional[float] = None,
                    executor: Optional[SweepExecutor] = None,
                    jobs: Optional[int] = None,
                    cache: "Optional[bool]" = None,
                    store: Optional[TraceStore] = None) -> SampledRun:
    """Estimate a full run's metrics from sampled regions.

    ``instructions``/``skip`` describe the *full* run being estimated;
    the plan simulates at most ``max_fraction`` of its timed records.
    ``strategy`` picks the scheduler: ``"simpoint"`` (default) clusters
    the span's windows on trace-derived behavior signatures and
    simulates one weighted representative per cluster;
    ``"systematic"`` spaces unweighted windows evenly (SMARTS-style);
    ``"adaptive"`` (:mod:`repro.sampling.adaptive`) starts from a small
    representative set and escalates until the estimate's CI half-width
    drops below ``ci_target`` (relative; default
    :data:`~repro.sampling.adaptive.DEFAULT_CI_TARGET`) or the region
    cap is hit -- returning an :class:`~repro.sampling.adaptive.
    AdaptiveRun`.
    ``store`` overrides the trace store used for the up-front capture
    (pool workers always resolve theirs from the environment, so pass a
    custom store only together with ``jobs=1``).
    """
    return sample_workload_many(
        workload, [config], instructions=instructions, skip=skip,
        strategy=strategy, measure=measure, warmup=warmup, detail=detail,
        regions=regions, max_fraction=max_fraction,
        checkpoint_interval=checkpoint_interval, ci_target=ci_target,
        executor=executor, jobs=jobs, cache=cache, store=store)[0]


def sampled_vs_full_error(sampled: SampledRun,
                          full: SimulationResult) -> float:
    """Relative CPI error of the sampled estimate against a full run."""
    full_cpi = full.stats.cycles / full.stats.committed
    return abs(sampled.cpi.point - full_cpi) / full_cpi


__all__ = [
    "CPI_ERROR_GATE",
    "SampledRun",
    "region_jobs",
    "sample_workload",
    "sample_workload_many",
    "sampled_vs_full_error",
]
