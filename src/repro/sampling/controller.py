"""Whole-table budget control for adaptive sampled suites.

The per-cell adaptive loop (:mod:`repro.sampling.adaptive`) spends until
*every* ``(config, workload)`` cell's own CPI CI meets the target -- a
sensible contract for one cell, but wasteful for a table whose
deliverable is a column of *speedups*: on shared windows the paired
estimator (:mod:`repro.sampling.paired`) usually meets the target with
far fewer regions than either side's CPI needs, and the workloads that
remain loose differ wildly (Constantinou et al.'s cross-workload
variance).  Uniform escalation buys precision where the table already
has it.

:class:`TableController` spends the budget where the table is weakest
instead.  Each workload is an :class:`~repro.sampling.adaptive.
AdaptiveSession` escalating all its configs in lockstep (so windows stay
shared and the paired estimator stays applicable); after every round the
controller re-scores all still-open workloads by their worst
CI-to-target ratio -- the paired speedup CI of each variant against the
first config when pairing is on, the per-cell CPI CIs otherwise -- and
the single worst workload receives the next escalation batch.  The loop
stops when every workload meets the target or nothing can escalate
(region caps, nothing left to split).

Determinism and cache identity are preserved: the controller never
alters *what* a session simulates, only *how far* each one walks its own
deterministic split sequence.  Every schedule it produces is a prefix of
the standalone per-cell schedule, so all region jobs hit the same
content-addressed cache entries a ``sample_workload_adaptive_many`` call
would create.
"""

from __future__ import annotations

import math
from typing import Dict, List

from .adaptive import AdaptiveRun, AdaptiveSession
from .paired import paired_speedup


class TableController:
    """Rank open workloads by worst CI-to-target ratio; escalate there.

    Sessions join via :meth:`add` (construct the
    :class:`AdaptiveSession` yourself -- its constructor acquires the
    trace, so per-workload capture failures surface at add time where
    the caller can fall back that one workload without losing the
    table).  :meth:`run` drives the whole table to the target;
    :meth:`results` returns each workload's per-config runs with
    convergence judged on the *table's* criterion.
    """

    def __init__(self, ci_target: float, paired: bool = True) -> None:
        if ci_target <= 0:
            raise ValueError("ci_target must be positive")
        self.ci_target = ci_target
        self.paired = paired
        self._names: List[str] = []
        self._sessions: Dict[str, AdaptiveSession] = {}

    def add(self, name: str, session: AdaptiveSession) -> None:
        if name in self._sessions:
            raise ValueError(f"duplicate workload: {name!r}")
        self._names.append(name)
        self._sessions[name] = session

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------

    def _criterion(self, session: AdaptiveSession) -> float:
        """The workload's worst relative CI under the table's criterion.

        With pairing on and at least two configs: the paired speedup CI
        of every variant against the first config (the deliverable of a
        comparison table).  Otherwise: the worst per-cell CPI CI.  An
        undefined CI (too few shared windows, degenerate estimate) is
        +inf -- an open claim the controller must keep spending on.
        """
        runs = session.runs()
        if self.paired and len(runs) >= 2:
            rels = []
            for variant in runs[1:]:
                estimate = paired_speedup(runs[0], variant)
                rels.append(math.inf if estimate is None
                            else estimate.relative_error)
        else:
            rels = [run.cpi.relative_error for run in runs]
        worst = max(rels)
        return math.inf if math.isnan(worst) else worst

    def _ratio(self, session: AdaptiveSession) -> float:
        return self._criterion(session) / self.ci_target

    # ------------------------------------------------------------------
    # The spend loop
    # ------------------------------------------------------------------

    def run(self) -> None:
        """Escalate the worst open workload until the table converges.

        Each round: measure everything pending, score every workload
        still above target that can still grow, and hand the next
        lockstep batch to the single worst one.  ``max`` keeps the
        first maximum, and the candidate list follows insertion order,
        so the spend sequence is deterministic.
        """
        for name in self._names:
            self._sessions[name].measure_all()
        while True:
            candidates = [name for name in self._names
                          if self._ratio(self._sessions[name]) > 1.0
                          and self._sessions[name].can_escalate]
            if not candidates:
                return
            worst = max(candidates,
                        key=lambda name: self._ratio(self._sessions[name]))
            session = self._sessions[worst]
            session.escalate_all()
            session.measure_all()

    # ------------------------------------------------------------------
    # Results and spend accounting
    # ------------------------------------------------------------------

    def results(self) -> "Dict[str, List[AdaptiveRun]]":
        """Per-workload runs, convergence judged on the table criterion.

        Every config of one workload shares a flag: the table either
        met its criterion for that workload (the paired speedup CIs, or
        every cell's CPI CI) or it did not -- per-cell CPI convergence
        would claim precision the controller deliberately did not buy.
        """
        out = {}
        for name in self._names:
            session = self._sessions[name]
            flag = self._ratio(session) <= 1.0
            out[name] = session.runs(
                converged=[flag] * len(session.states))
        return out

    @property
    def simulated_records(self) -> int:
        """Timed records planned across the whole table."""
        return sum(session.simulated_records
                   for session in self._sessions.values())

    @property
    def regions(self) -> int:
        """Scheduled regions across the whole table."""
        return sum(session.regions for session in self._sessions.values())


__all__ = ["TableController"]
