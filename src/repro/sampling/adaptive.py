"""Adaptive variance-driven sampling: escalate until the CI converges.

Fixed-count SimPoint planning (:func:`~repro.sampling.regions.
plan_representative_regions`) spends ``DEFAULT_REGIONS`` representatives
on every workload, however its behavior is distributed -- wasteful on a
homogeneous trace whose estimate is tight after three windows, and
under-provisioned on a phase-heavy one that still swings past the
accuracy gate at eight.  The adaptive scheduler lets each workload's own
spread set its budget (Constantinou et al. document exactly this
cross-workload variance in misprediction behavior):

1. cluster the span's windows on their behavior signatures and simulate
   a *small* starting set of representatives (one exec-job batch through
   the cached parallel executor);
2. re-aggregate; if the weighted estimate's ~95% CI half-width is within
   ``ci_target`` of the point, stop -- converged;
3. otherwise *split* the most behaviorally dispersed clusters: the
   member farthest from its medoid becomes a new representative and the
   cluster's population is re-divided between the two, so every previous
   simulation (and its persistent cache entry) stays valid;
4. fan the new representatives out as the next batch and repeat until
   convergence, the region cap, or no cluster left to split.

Everything is deterministic -- seeding, dispersion ranking, farthest-
member selection and tie-breaks -- so a (trace, parameters) pair always
escalates through the same region sequence and therefore the same
cached job keys.  The convergence metric is
:attr:`SampledEstimate.relative_error`: the delete-one jackknife CI of
the weighted ratio estimate, floored by the tiling-truncation bias
allowance (see :mod:`repro.sampling.aggregate`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.config import ProcessorConfig
from ..core.simulator import SimulationResult
from ..exec.executor import SweepExecutor
from ..exec.jobs import SimJob
from ..trace.store import TraceStore
from ..workloads.profiles import WorkloadProfile, get_profile
from .aggregate import estimate_cpi, estimate_misspec_penalty
from .regions import (
    DEFAULT_MAX_FRACTION,
    DEFAULT_MEASURE,
    DEFAULT_WARMUP,
    Region,
    RegionPlan,
)
from .run import SampledRun, acquire_span_trace
from .signature import (
    assign_windows,
    cluster_windows,
    signature_distance,
    window_signature,
)

#: Default relative CI half-width the escalation drives toward.  Chosen
#: empirically on the gated trio at the bench budget: a homogeneous
#: workload (mcf) is an order of magnitude inside it at three regions, a
#: moderate one (sjeng) converges around three to five, and a
#: phase-heavy one (gcc) keeps escalating past the fixed-count default
#: -- the spend-follows-variance behavior this module exists for.
DEFAULT_CI_TARGET = 0.05

#: Representatives the escalation starts from.  Three is the smallest
#: set with a non-degenerate jackknife spread (two leave-one-out points
#: tell you nothing about curvature).
DEFAULT_START_REGIONS = 3

#: Clusters split per escalation round; each split adds one region, so
#: every round fans this many fresh jobs through the executor.
DEFAULT_BATCH = 2

#: Default cap on adaptive representatives -- twice the fixed default,
#: because the whole point is letting high-variance workloads overshoot
#: it; the ``max_fraction`` simulated-records budget still binds first
#: on short spans.
DEFAULT_ADAPTIVE_CAP = 16


@dataclass(frozen=True)
class AdaptiveRound:
    """One escalation step's aggregate state, for reporting."""

    regions: int  #: representatives simulated so far
    simulated_records: int  #: timed records (measure + detail) so far
    relative_ci: float  #: CI half-width / point after this round


@dataclass(frozen=True)
class AdaptiveRun(SampledRun):
    """A :class:`SampledRun` produced by the escalation loop."""

    ci_target: float = DEFAULT_CI_TARGET
    converged: bool = False  #: CI target met (vs cap / nothing to split)
    rounds: Tuple[AdaptiveRound, ...] = ()

    @property
    def relative_ci(self) -> float:
        return self.cpi.relative_error


@dataclass
class _Cluster:
    """One behavior cluster: its representative and the windows it covers."""

    medoid: int  #: window index of the representative
    members: List[int]  #: window indices, medoid included

    def dispersion(self, signatures) -> float:
        """Total signature distance of the members to the medoid."""
        center = signatures[self.medoid]
        return sum(signature_distance(signatures[i], center)
                   for i in self.members)


def _split_cluster(cluster: _Cluster, signatures) -> Tuple[_Cluster, _Cluster]:
    """Divide ``cluster`` between its medoid and its farthest member.

    The farthest member (ties toward the lower window index) becomes the
    new representative; the remaining members go to whichever of the two
    is nearer (ties toward the old medoid).  The old medoid keeps its
    simulated region, so a split never invalidates prior work.
    """
    center = signatures[cluster.medoid]
    others = [i for i in cluster.members if i != cluster.medoid]
    far = max(others,
              key=lambda i: (signature_distance(signatures[i], center), -i))
    kept, moved = [cluster.medoid], [far]
    for i in others:
        if i == far:
            continue
        d_old = signature_distance(signatures[i], center)
        d_new = signature_distance(signatures[i], signatures[far])
        (kept if d_old <= d_new else moved).append(i)
    return _Cluster(cluster.medoid, kept), _Cluster(far, moved)


def _next_split(clusters: List[_Cluster], signatures) -> Optional[int]:
    """Index of the cluster to split next, or None if none is splittable.

    The most behaviorally dispersed cluster first (it contributes the
    most unexplained variance to the estimate); ties break toward the
    larger population, then the lower medoid index.  Single-member
    clusters cannot be split.
    """
    best = None
    best_rank = None
    for idx, cluster in enumerate(clusters):
        if len(cluster.members) < 2:
            continue
        rank = (cluster.dispersion(signatures), len(cluster.members),
                -cluster.medoid)
        if best_rank is None or rank > best_rank:
            best, best_rank = idx, rank
    return best


def _window_region(index: int, measure: int, skip: int,
                   warmup: "int | None", detail: int, weight: int) -> Region:
    """The :class:`Region` replaying tiled window ``index``."""
    start = skip + index * measure
    d = min(detail, start)
    full_prefix = start - d
    return Region(start=start,
                  warmup=full_prefix if warmup is None
                  else min(warmup, full_prefix),
                  measure=measure, detail=d, weight=weight)


@dataclass
class _EscalationState:
    """One config's private escalation state in a lockstep multi run."""

    base: ProcessorConfig
    clusters: List[_Cluster]
    simulated: Dict[int, SimulationResult]
    rounds: List[AdaptiveRound]
    converged: bool = False
    active: bool = True


def _validate_schedule_params(ci_target: float, start_regions: int,
                              batch: int, regions: Optional[int],
                              instructions: int, skip: int) -> None:
    """The parameter checks that precede any trace or profile work."""
    if ci_target <= 0:
        raise ValueError("ci_target must be positive")
    if start_regions < 2:
        raise ValueError("start_regions must be at least 2 (a single "
                         "region supports no CI claim)")
    if batch < 1:
        raise ValueError("batch must be positive")
    if regions is not None and regions < start_regions:
        raise ValueError("regions cap must cover the starting set")
    if instructions < 1:
        raise ValueError("instructions must be positive")
    if skip < 0:
        raise ValueError("skip must be non-negative")


class AdaptiveSession:
    """One workload's lockstep escalation state across several configs.

    Owns everything the escalation loop walks -- the trace-derived
    window signatures, each config's cluster set, the simulated regions
    and the per-round history -- and exposes it at two grains:

    * :meth:`run_per_cell` -- the classic loop: every config escalates
      until its *own* CPI CI meets ``ci_target`` (or the cap binds).
      :func:`sample_workload_adaptive_many` is exactly this.
    * :meth:`measure_all` / :meth:`escalate_all` -- one round at a
      time, all configs advancing in strict lockstep regardless of
      their individual CPI CIs, for an external budget controller
      (:mod:`repro.sampling.controller`) that decides *where* the next
      batch is spent.  Lockstep keeps every config on the identical
      region schedule, which is what keeps the windows shared for the
      paired estimator (:mod:`repro.sampling.paired`).

    Both grains walk the same deterministic split sequence and submit
    the same region jobs, so their cache keys are interchangeable: a
    controller-driven table re-uses (and pre-warms) the entries a
    standalone adaptive run would hit, and vice versa.
    """

    def __init__(self,
                 workload: Union[str, WorkloadProfile],
                 configs: "Sequence[Optional[ProcessorConfig]]",
                 instructions: int = 20_000,
                 skip: int = 2_000,
                 ci_target: float = DEFAULT_CI_TARGET,
                 measure: Optional[int] = None,
                 warmup: Optional[int] = DEFAULT_WARMUP,
                 detail: Optional[int] = None,
                 start_regions: int = DEFAULT_START_REGIONS,
                 batch: int = DEFAULT_BATCH,
                 regions: Optional[int] = None,
                 max_fraction: Optional[float] = None,
                 checkpoint_interval: Optional[int] = None,
                 executor: Optional[SweepExecutor] = None,
                 jobs: Optional[int] = None,
                 cache: "Optional[bool]" = None,
                 store: Optional[TraceStore] = None) -> None:
        _validate_schedule_params(ci_target, start_regions, batch, regions,
                                  instructions, skip)
        if not configs:
            raise ValueError("an adaptive session needs at least one config")
        self.profile = get_profile(workload) if isinstance(workload, str) \
            else workload
        bases = [config or ProcessorConfig.cortex_a72_like()
                 for config in configs]
        max_fraction = DEFAULT_MAX_FRACTION if max_fraction is None \
            else max_fraction
        if not 0 < max_fraction <= 1:
            raise ValueError("max_fraction must be in (0, 1]")
        budget = max(1, int(instructions * max_fraction))
        measure = DEFAULT_MEASURE if measure is None else measure
        if measure < 1:
            raise ValueError("measure must be positive")
        measure = min(measure, budget)
        detail = measure // 4 if detail is None else detail
        if detail < 0:
            raise ValueError("detail must be non-negative")
        detail = min(detail, budget - measure)
        if warmup is not None and warmup < 0:
            raise ValueError("warmup must be non-negative")

        self.instructions = instructions
        self.skip = skip
        self.ci_target = ci_target
        self.batch = batch
        self._measure = measure
        self._warmup = warmup
        self._detail = detail

        self._trace = acquire_span_trace(self.profile, instructions, skip,
                                         checkpoint_interval, store)
        windows = max(1, instructions // measure)
        self.cap = min(regions if regions is not None else DEFAULT_ADAPTIVE_CAP,
                       max(1, budget // (measure + detail)),
                       windows)
        self._signatures = [
            window_signature(self._trace, skip + i * measure, measure)
            for i in range(windows)]

        medoids, _ = cluster_windows(self._signatures,
                                     min(start_regions, self.cap))
        assignment = assign_windows(self._signatures, medoids)
        initial = [(m, [i for i, a in enumerate(assignment) if a == slot])
                   for slot, m in enumerate(medoids)]
        self._runner = executor if executor is not None \
            else SweepExecutor(jobs=jobs, cache=cache)
        self.states = [_EscalationState(
            base=base,
            clusters=[_Cluster(m, list(members)) for m, members in initial],
            simulated={}, rounds=[]) for base in bases]

    # ------------------------------------------------------------------
    # Shared round machinery
    # ------------------------------------------------------------------

    def _region(self, window: int, weight: int = 1) -> Region:
        return _window_region(window, self._measure, self.skip,
                              self._warmup, self._detail, weight)

    def _planned_records(self, state: _EscalationState) -> int:
        """Timed records of the state's planned regions, clamps included.

        Derived from the actual :class:`Region` objects, so the
        early-window ``detail`` clamp (a window too close to record 0
        cannot fit the full detailed warmup before it) is reflected
        instead of the nominal ``regions * (measure + detail)``.
        """
        return sum(self._measure + self._region(c.medoid).detail
                   for c in state.clusters)

    def _simulate_pending(self,
                          states: "Sequence[_EscalationState]") -> None:
        """One executor submission for every unsimulated medoid."""
        requests: List[Tuple[_EscalationState, int]] = []
        for state in states:
            requests.extend(
                (state, c.medoid) for c in state.clusters
                if c.medoid not in state.simulated)
        if not requests:
            return
        jobs_batch = [
            SimJob(self.profile,
                   state.base.with_region(r.start, r.warmup, r.detail),
                   r.measure, 0)
            for state, r in ((state, self._region(m))
                             for state, m in requests)]
        for (state, m), result in zip(requests, self._runner.run(jobs_batch)):
            state.simulated[m] = result

    def _evaluate(self, state: _EscalationState) -> float:
        """Aggregate one state's regions and append its round record."""
        ordered = sorted(state.clusters, key=lambda c: c.medoid)
        results = [state.simulated[c.medoid] for c in ordered]
        weights = [len(c.members) for c in ordered]
        relative = estimate_cpi(results, weights).relative_error
        state.rounds.append(AdaptiveRound(
            regions=len(state.clusters),
            simulated_records=self._planned_records(state),
            relative_ci=relative))
        return relative

    def _split(self, state: _EscalationState) -> bool:
        """Split up to ``batch`` clusters; False when nothing split."""
        split_any = False
        for _ in range(min(self.batch, self.cap - len(state.clusters))):
            target = _next_split(state.clusters, self._signatures)
            if target is None:
                break
            kept, new = _split_cluster(state.clusters[target],
                                       self._signatures)
            state.clusters[target] = kept
            state.clusters.append(new)
            split_any = True
        return split_any

    # ------------------------------------------------------------------
    # Per-cell loop (the classic adaptive contract)
    # ------------------------------------------------------------------

    def run_per_cell(self) -> None:
        """Escalate until every config meets its own CI target or cap."""
        while any(state.active for state in self.states):
            self._simulate_pending([s for s in self.states if s.active])
            for state in self.states:
                if not state.active:
                    continue
                relative = self._evaluate(state)
                if relative == relative and relative <= self.ci_target:
                    state.converged = True
                    state.active = False
                    continue
                if len(state.clusters) >= self.cap:
                    state.active = False
                    continue
                if not self._split(state):
                    state.active = False

    # ------------------------------------------------------------------
    # Controller interface (lockstep rounds, external stop decision)
    # ------------------------------------------------------------------

    def measure_all(self) -> None:
        """Simulate every pending region and record one round per config."""
        self._simulate_pending(self.states)
        for state in self.states:
            self._evaluate(state)

    def escalate_all(self) -> bool:
        """Split every config's clusters one batch, in lockstep.

        Every config splits identically (splitting is signature-driven,
        not result-driven), so the schedules stay window-for-window
        aligned.  Returns False when no config could split -- the cap
        binds or no cluster has two members -- which closes the session
        for the controller.  Call :meth:`measure_all` afterwards to
        simulate the new representatives.
        """
        split_any = False
        for state in self.states:
            if len(state.clusters) >= self.cap:
                continue
            split_any |= self._split(state)
        return split_any

    @property
    def can_escalate(self) -> bool:
        """True while another lockstep round could add regions."""
        return any(len(state.clusters) < self.cap
                   and _next_split(state.clusters, self._signatures)
                   is not None
                   for state in self.states)

    @property
    def simulated_records(self) -> int:
        """Timed records planned across every config, clamps included."""
        return sum(self._planned_records(state) for state in self.states)

    @property
    def regions(self) -> int:
        """Scheduled regions summed across configs."""
        return sum(len(state.clusters) for state in self.states)

    def runs(self, converged: "Optional[Sequence[bool]]" = None
             ) -> List[AdaptiveRun]:
        """The per-config :class:`AdaptiveRun`\\ s for the current state.

        ``converged`` overrides the per-state flags (the controller
        judges convergence on the *table's* criterion, not each cell's
        own CPI CI).
        """
        runs = []
        flags = [state.converged for state in self.states] \
            if converged is None else list(converged)
        for state, flag in zip(self.states, flags):
            ordered = sorted(state.clusters, key=lambda c: c.medoid)
            plan = RegionPlan(
                instructions=self.instructions, skip=self.skip,
                checkpoint_interval=self._trace.checkpoint_interval,
                regions=tuple(self._region(c.medoid, len(c.members))
                              for c in ordered))
            results = tuple(state.simulated[c.medoid] for c in ordered)
            weights = [r.weight for r in plan.regions]
            runs.append(AdaptiveRun(
                workload=self.profile.name,
                config=state.base,
                plan=plan,
                results=results,
                cpi=estimate_cpi(results, weights),
                misspec_penalty=estimate_misspec_penalty(results, weights),
                ci_target=self.ci_target,
                converged=flag,
                rounds=tuple(state.rounds),
            ))
        return runs


def sample_workload_adaptive_many(
        workload: Union[str, WorkloadProfile],
        configs: "Sequence[Optional[ProcessorConfig]]",
        instructions: int = 20_000,
        skip: int = 2_000,
        ci_target: float = DEFAULT_CI_TARGET,
        measure: Optional[int] = None,
        warmup: Optional[int] = DEFAULT_WARMUP,
        detail: Optional[int] = None,
        start_regions: int = DEFAULT_START_REGIONS,
        batch: int = DEFAULT_BATCH,
        regions: Optional[int] = None,
        max_fraction: Optional[float] = None,
        checkpoint_interval: Optional[int] = None,
        executor: Optional[SweepExecutor] = None,
        jobs: Optional[int] = None,
        cache: "Optional[bool]" = None,
        store: Optional[TraceStore] = None) -> List[AdaptiveRun]:
    """Escalate several configs of one workload in lockstep rounds.

    Splitting is signature-driven and therefore config-independent, so
    every config escalates through the *same* region sequence; only the
    stop decision (its own CI) differs.  Running the loops in lockstep
    lets each round submit every still-escalating config's new region
    jobs as one executor call -- all configs of one region window
    become one batched trace walk (:mod:`repro.batch`).  Each returned
    :class:`AdaptiveRun` is identical to what a separate
    :func:`sample_workload_adaptive` call for that config would
    produce (same deterministic schedule, same cached job keys).
    """
    _validate_schedule_params(ci_target, start_regions, batch, regions,
                              instructions, skip)
    if not configs:
        return []
    session = AdaptiveSession(
        workload, configs, instructions=instructions, skip=skip,
        ci_target=ci_target, measure=measure, warmup=warmup, detail=detail,
        start_regions=start_regions, batch=batch, regions=regions,
        max_fraction=max_fraction, checkpoint_interval=checkpoint_interval,
        executor=executor, jobs=jobs, cache=cache, store=store)
    session.run_per_cell()
    return session.runs()


def sample_workload_adaptive(
        workload: Union[str, WorkloadProfile],
        config: Optional[ProcessorConfig] = None,
        instructions: int = 20_000,
        skip: int = 2_000,
        ci_target: float = DEFAULT_CI_TARGET,
        measure: Optional[int] = None,
        warmup: Optional[int] = DEFAULT_WARMUP,
        detail: Optional[int] = None,
        start_regions: int = DEFAULT_START_REGIONS,
        batch: int = DEFAULT_BATCH,
        regions: Optional[int] = None,
        max_fraction: Optional[float] = None,
        checkpoint_interval: Optional[int] = None,
        executor: Optional[SweepExecutor] = None,
        jobs: Optional[int] = None,
        cache: "Optional[bool]" = None,
        store: Optional[TraceStore] = None) -> AdaptiveRun:
    """Sampled estimate whose region count follows the workload's variance.

    Parameters mirror :func:`~repro.sampling.run.sample_workload`;
    ``regions`` caps the representatives (default
    :data:`DEFAULT_ADAPTIVE_CAP`, further bounded by the
    ``max_fraction`` simulated-records budget), ``ci_target`` is the
    relative CI half-width that stops the escalation, and
    ``start_regions``/``batch`` shape the schedule.  See the module
    docstring for the algorithm.
    """
    return sample_workload_adaptive_many(
        workload, [config], instructions=instructions, skip=skip,
        ci_target=ci_target, measure=measure, warmup=warmup, detail=detail,
        start_regions=start_regions, batch=batch, regions=regions,
        max_fraction=max_fraction, checkpoint_interval=checkpoint_interval,
        executor=executor, jobs=jobs, cache=cache, store=store)[0]


__all__ = [
    "DEFAULT_ADAPTIVE_CAP",
    "DEFAULT_BATCH",
    "DEFAULT_CI_TARGET",
    "DEFAULT_START_REGIONS",
    "AdaptiveRound",
    "AdaptiveRun",
    "sample_workload_adaptive",
    "sample_workload_adaptive_many",
]
