"""Adaptive variance-driven sampling: escalate until the CI converges.

Fixed-count SimPoint planning (:func:`~repro.sampling.regions.
plan_representative_regions`) spends ``DEFAULT_REGIONS`` representatives
on every workload, however its behavior is distributed -- wasteful on a
homogeneous trace whose estimate is tight after three windows, and
under-provisioned on a phase-heavy one that still swings past the
accuracy gate at eight.  The adaptive scheduler lets each workload's own
spread set its budget (Constantinou et al. document exactly this
cross-workload variance in misprediction behavior):

1. cluster the span's windows on their behavior signatures and simulate
   a *small* starting set of representatives (one exec-job batch through
   the cached parallel executor);
2. re-aggregate; if the weighted estimate's ~95% CI half-width is within
   ``ci_target`` of the point, stop -- converged;
3. otherwise *split* the most behaviorally dispersed clusters: the
   member farthest from its medoid becomes a new representative and the
   cluster's population is re-divided between the two, so every previous
   simulation (and its persistent cache entry) stays valid;
4. fan the new representatives out as the next batch and repeat until
   convergence, the region cap, or no cluster left to split.

Everything is deterministic -- seeding, dispersion ranking, farthest-
member selection and tie-breaks -- so a (trace, parameters) pair always
escalates through the same region sequence and therefore the same
cached job keys.  The convergence metric is
:attr:`SampledEstimate.relative_error`: the delete-one jackknife CI of
the weighted ratio estimate, floored by the tiling-truncation bias
allowance (see :mod:`repro.sampling.aggregate`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.config import ProcessorConfig
from ..core.simulator import SimulationResult
from ..exec.executor import SweepExecutor
from ..exec.jobs import SimJob
from ..trace.store import TraceStore
from ..workloads.profiles import WorkloadProfile, get_profile
from .aggregate import estimate_cpi, estimate_misspec_penalty
from .regions import (
    DEFAULT_MAX_FRACTION,
    DEFAULT_MEASURE,
    DEFAULT_WARMUP,
    Region,
    RegionPlan,
)
from .run import SampledRun, acquire_span_trace
from .signature import (
    assign_windows,
    cluster_windows,
    signature_distance,
    window_signature,
)

#: Default relative CI half-width the escalation drives toward.  Chosen
#: empirically on the gated trio at the bench budget: a homogeneous
#: workload (mcf) is an order of magnitude inside it at three regions, a
#: moderate one (sjeng) converges around three to five, and a
#: phase-heavy one (gcc) keeps escalating past the fixed-count default
#: -- the spend-follows-variance behavior this module exists for.
DEFAULT_CI_TARGET = 0.05

#: Representatives the escalation starts from.  Three is the smallest
#: set with a non-degenerate jackknife spread (two leave-one-out points
#: tell you nothing about curvature).
DEFAULT_START_REGIONS = 3

#: Clusters split per escalation round; each split adds one region, so
#: every round fans this many fresh jobs through the executor.
DEFAULT_BATCH = 2

#: Default cap on adaptive representatives -- twice the fixed default,
#: because the whole point is letting high-variance workloads overshoot
#: it; the ``max_fraction`` simulated-records budget still binds first
#: on short spans.
DEFAULT_ADAPTIVE_CAP = 16


@dataclass(frozen=True)
class AdaptiveRound:
    """One escalation step's aggregate state, for reporting."""

    regions: int  #: representatives simulated so far
    simulated_records: int  #: timed records (measure + detail) so far
    relative_ci: float  #: CI half-width / point after this round


@dataclass(frozen=True)
class AdaptiveRun(SampledRun):
    """A :class:`SampledRun` produced by the escalation loop."""

    ci_target: float = DEFAULT_CI_TARGET
    converged: bool = False  #: CI target met (vs cap / nothing to split)
    rounds: Tuple[AdaptiveRound, ...] = ()

    @property
    def relative_ci(self) -> float:
        return self.cpi.relative_error


@dataclass
class _Cluster:
    """One behavior cluster: its representative and the windows it covers."""

    medoid: int  #: window index of the representative
    members: List[int]  #: window indices, medoid included

    def dispersion(self, signatures) -> float:
        """Total signature distance of the members to the medoid."""
        center = signatures[self.medoid]
        return sum(signature_distance(signatures[i], center)
                   for i in self.members)


def _split_cluster(cluster: _Cluster, signatures) -> Tuple[_Cluster, _Cluster]:
    """Divide ``cluster`` between its medoid and its farthest member.

    The farthest member (ties toward the lower window index) becomes the
    new representative; the remaining members go to whichever of the two
    is nearer (ties toward the old medoid).  The old medoid keeps its
    simulated region, so a split never invalidates prior work.
    """
    center = signatures[cluster.medoid]
    others = [i for i in cluster.members if i != cluster.medoid]
    far = max(others,
              key=lambda i: (signature_distance(signatures[i], center), -i))
    kept, moved = [cluster.medoid], [far]
    for i in others:
        if i == far:
            continue
        d_old = signature_distance(signatures[i], center)
        d_new = signature_distance(signatures[i], signatures[far])
        (kept if d_old <= d_new else moved).append(i)
    return _Cluster(cluster.medoid, kept), _Cluster(far, moved)


def _next_split(clusters: List[_Cluster], signatures) -> Optional[int]:
    """Index of the cluster to split next, or None if none is splittable.

    The most behaviorally dispersed cluster first (it contributes the
    most unexplained variance to the estimate); ties break toward the
    larger population, then the lower medoid index.  Single-member
    clusters cannot be split.
    """
    best = None
    best_rank = None
    for idx, cluster in enumerate(clusters):
        if len(cluster.members) < 2:
            continue
        rank = (cluster.dispersion(signatures), len(cluster.members),
                -cluster.medoid)
        if best_rank is None or rank > best_rank:
            best, best_rank = idx, rank
    return best


def _window_region(index: int, measure: int, skip: int,
                   warmup: "int | None", detail: int, weight: int) -> Region:
    """The :class:`Region` replaying tiled window ``index``."""
    start = skip + index * measure
    d = min(detail, start)
    full_prefix = start - d
    return Region(start=start,
                  warmup=full_prefix if warmup is None
                  else min(warmup, full_prefix),
                  measure=measure, detail=d, weight=weight)


@dataclass
class _EscalationState:
    """One config's private escalation state in a lockstep multi run."""

    base: ProcessorConfig
    clusters: List[_Cluster]
    simulated: Dict[int, SimulationResult]
    rounds: List[AdaptiveRound]
    converged: bool = False
    active: bool = True


def sample_workload_adaptive_many(
        workload: Union[str, WorkloadProfile],
        configs: "Sequence[Optional[ProcessorConfig]]",
        instructions: int = 20_000,
        skip: int = 2_000,
        ci_target: float = DEFAULT_CI_TARGET,
        measure: Optional[int] = None,
        warmup: Optional[int] = DEFAULT_WARMUP,
        detail: Optional[int] = None,
        start_regions: int = DEFAULT_START_REGIONS,
        batch: int = DEFAULT_BATCH,
        regions: Optional[int] = None,
        max_fraction: Optional[float] = None,
        checkpoint_interval: Optional[int] = None,
        executor: Optional[SweepExecutor] = None,
        jobs: Optional[int] = None,
        cache: "Optional[bool]" = None,
        store: Optional[TraceStore] = None) -> List[AdaptiveRun]:
    """Escalate several configs of one workload in lockstep rounds.

    Splitting is signature-driven and therefore config-independent, so
    every config escalates through the *same* region sequence; only the
    stop decision (its own CI) differs.  Running the loops in lockstep
    lets each round submit every still-escalating config's new region
    jobs as one executor call -- all configs of one region window
    become one batched trace walk (:mod:`repro.batch`).  Each returned
    :class:`AdaptiveRun` is identical to what a separate
    :func:`sample_workload_adaptive` call for that config would
    produce (same deterministic schedule, same cached job keys).
    """
    if ci_target <= 0:
        raise ValueError("ci_target must be positive")
    if start_regions < 2:
        raise ValueError("start_regions must be at least 2 (a single "
                         "region supports no CI claim)")
    if batch < 1:
        raise ValueError("batch must be positive")
    if regions is not None and regions < start_regions:
        raise ValueError("regions cap must cover the starting set")
    if instructions < 1:
        raise ValueError("instructions must be positive")
    if skip < 0:
        raise ValueError("skip must be non-negative")
    if not configs:
        return []

    profile = get_profile(workload) if isinstance(workload, str) else workload
    bases = [config or ProcessorConfig.cortex_a72_like()
             for config in configs]
    max_fraction = DEFAULT_MAX_FRACTION if max_fraction is None else max_fraction
    if not 0 < max_fraction <= 1:
        raise ValueError("max_fraction must be in (0, 1]")
    budget = max(1, int(instructions * max_fraction))
    measure = DEFAULT_MEASURE if measure is None else measure
    if measure < 1:
        raise ValueError("measure must be positive")
    measure = min(measure, budget)
    detail = measure // 4 if detail is None else detail
    if detail < 0:
        raise ValueError("detail must be non-negative")
    detail = min(detail, budget - measure)
    if warmup is not None and warmup < 0:
        raise ValueError("warmup must be non-negative")

    trace = acquire_span_trace(profile, instructions, skip,
                               checkpoint_interval, store)

    windows = max(1, instructions // measure)
    cap = min(regions if regions is not None else DEFAULT_ADAPTIVE_CAP,
              max(1, budget // (measure + detail)),
              windows)
    signatures = [window_signature(trace, skip + i * measure, measure)
                  for i in range(windows)]

    medoids, _ = cluster_windows(signatures, min(start_regions, cap))
    assignment = assign_windows(signatures, medoids)
    initial = [(m, [i for i, a in enumerate(assignment) if a == slot])
               for slot, m in enumerate(medoids)]

    runner = executor if executor is not None \
        else SweepExecutor(jobs=jobs, cache=cache)
    states = [_EscalationState(
        base=base,
        clusters=[_Cluster(m, list(members)) for m, members in initial],
        simulated={}, rounds=[]) for base in bases]
    while any(state.active for state in states):
        requests: List[Tuple[_EscalationState, int]] = []
        for state in states:
            if not state.active:
                continue
            requests.extend(
                (state, c.medoid) for c in state.clusters
                if c.medoid not in state.simulated)
        if requests:
            jobs_batch = [
                SimJob(profile,
                       state.base.with_region(r.start, r.warmup, r.detail),
                       r.measure, 0)
                for state, r in (
                    (state,
                     _window_region(m, measure, skip, warmup, detail, 1))
                    for state, m in requests)]
            for (state, m), result in zip(requests, runner.run(jobs_batch)):
                state.simulated[m] = result

        for state in states:
            if not state.active:
                continue
            ordered = sorted(state.clusters, key=lambda c: c.medoid)
            results = [state.simulated[c.medoid] for c in ordered]
            weights = [len(c.members) for c in ordered]
            estimate = estimate_cpi(results, weights)
            relative = estimate.relative_error
            state.rounds.append(AdaptiveRound(
                regions=len(state.clusters),
                simulated_records=len(state.clusters) * (measure + detail),
                relative_ci=relative))
            if relative == relative and relative <= ci_target:  # not NaN
                state.converged = True
                state.active = False
                continue
            if len(state.clusters) >= cap:
                state.active = False
                continue
            split_any = False
            for _ in range(min(batch, cap - len(state.clusters))):
                target = _next_split(state.clusters, signatures)
                if target is None:
                    break
                kept, new = _split_cluster(state.clusters[target], signatures)
                state.clusters[target] = kept
                state.clusters.append(new)
                split_any = True
            if not split_any:
                state.active = False

    runs = []
    for state in states:
        ordered = sorted(state.clusters, key=lambda c: c.medoid)
        plan = RegionPlan(
            instructions=instructions, skip=skip,
            checkpoint_interval=trace.checkpoint_interval,
            regions=tuple(_window_region(c.medoid, measure, skip, warmup,
                                         detail, len(c.members))
                          for c in ordered))
        results = tuple(state.simulated[c.medoid] for c in ordered)
        weights = [r.weight for r in plan.regions]
        runs.append(AdaptiveRun(
            workload=profile.name,
            config=state.base,
            plan=plan,
            results=results,
            cpi=estimate_cpi(results, weights),
            misspec_penalty=estimate_misspec_penalty(results, weights),
            ci_target=ci_target,
            converged=state.converged,
            rounds=tuple(state.rounds),
        ))
    return runs


def sample_workload_adaptive(
        workload: Union[str, WorkloadProfile],
        config: Optional[ProcessorConfig] = None,
        instructions: int = 20_000,
        skip: int = 2_000,
        ci_target: float = DEFAULT_CI_TARGET,
        measure: Optional[int] = None,
        warmup: Optional[int] = DEFAULT_WARMUP,
        detail: Optional[int] = None,
        start_regions: int = DEFAULT_START_REGIONS,
        batch: int = DEFAULT_BATCH,
        regions: Optional[int] = None,
        max_fraction: Optional[float] = None,
        checkpoint_interval: Optional[int] = None,
        executor: Optional[SweepExecutor] = None,
        jobs: Optional[int] = None,
        cache: "Optional[bool]" = None,
        store: Optional[TraceStore] = None) -> AdaptiveRun:
    """Sampled estimate whose region count follows the workload's variance.

    Parameters mirror :func:`~repro.sampling.run.sample_workload`;
    ``regions`` caps the representatives (default
    :data:`DEFAULT_ADAPTIVE_CAP`, further bounded by the
    ``max_fraction`` simulated-records budget), ``ci_target`` is the
    relative CI half-width that stops the escalation, and
    ``start_regions``/``batch`` shape the schedule.  See the module
    docstring for the algorithm.
    """
    return sample_workload_adaptive_many(
        workload, [config], instructions=instructions, skip=skip,
        ci_target=ci_target, measure=measure, warmup=warmup, detail=detail,
        start_regions=start_regions, batch=batch, regions=regions,
        max_fraction=max_fraction, checkpoint_interval=checkpoint_interval,
        executor=executor, jobs=jobs, cache=cache, store=store)[0]


__all__ = [
    "DEFAULT_ADAPTIVE_CAP",
    "DEFAULT_BATCH",
    "DEFAULT_CI_TARGET",
    "DEFAULT_START_REGIONS",
    "AdaptiveRound",
    "AdaptiveRun",
    "sample_workload_adaptive",
    "sample_workload_adaptive_many",
]
