"""Combine per-region stats into whole-trace estimates with errors.

Each simulated region yields ordinary :class:`~repro.core.stats.SimStats`
over its measured window.  The whole-span point estimate of a ratio
metric is the ratio of the summed numerators and denominators -- e.g.
CPI = sum(w * cycles) / sum(w * committed) -- where ``w`` is the
region's weight: 1 for systematic plans (every window stands for its
own stride) and the cluster population for SimPoint plans (each
representative stands for every window of its behavior cluster).

Spread comes from the per-region values through
:class:`~repro.analysis.robustness.SweepSummary`, inheriting its honesty
rules: standard error is NaN below two regions, and
:attr:`SampledEstimate.significant` can never be claimed from a single
window -- the n>=2 rule the seed sweeps already enforce.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from ..analysis.robustness import SweepSummary
from ..core.simulator import SimulationResult

#: Two-sided ~95% normal quantile used for the confidence interval.
CI_Z = 1.96


@dataclass(frozen=True)
class SampledEstimate:
    """One whole-span metric estimated from sampled regions."""

    metric: str
    point: float  #: weighted whole-span estimate
    summary: SweepSummary  #: unweighted per-region values (spread)

    @property
    def stderr(self) -> float:
        """Standard error over regions; NaN when n < 2."""
        return self.summary.stderr

    @property
    def ci95(self) -> Tuple[float, float]:
        """~95% confidence interval around the point estimate.

        (NaN, NaN) when the standard error is undefined (single region):
        one window supports a point estimate but no error claim.
        """
        half = CI_Z * self.summary.stderr
        return (self.point - half, self.point + half)

    @property
    def relative_error(self) -> float:
        """Half-width of the CI as a fraction of the point (NaN if n<2)."""
        if not self.point:
            return math.nan
        return CI_Z * self.summary.stderr / abs(self.point)

    def __str__(self) -> str:
        if math.isnan(self.summary.stderr):
            return f"{self.metric}={self.point:.4f} (n={self.summary.n})"
        return (f"{self.metric}={self.point:.4f} "
                f"+/- {CI_Z * self.summary.stderr:.4f} "
                f"(n={self.summary.n})")


def _ratio(num: float, den: float) -> float:
    return num / den if den else math.nan


def _region_weights(results: Sequence[SimulationResult],
                    weights: "Sequence[int] | None") -> Sequence[int]:
    if weights is None:
        return (1,) * len(results)
    if len(weights) != len(results):
        raise ValueError(f"{len(weights)} weights for {len(results)} regions")
    return weights


def estimate_cpi(results: Sequence[SimulationResult],
                 weights: "Sequence[int] | None" = None) -> SampledEstimate:
    """Whole-span cycles-per-instruction from per-region windows."""
    weights = _region_weights(results, weights)
    cycles = sum(w * r.stats.cycles for w, r in zip(weights, results))
    committed = sum(w * r.stats.committed for w, r in zip(weights, results))
    per_region = tuple(_ratio(r.stats.cycles, r.stats.committed)
                       for r in results)
    return SampledEstimate("cpi", _ratio(cycles, committed),
                           SweepSummary(per_region))


def estimate_misspec_penalty(results: Sequence[SimulationResult],
                             weights: "Sequence[int] | None" = None,
                             ) -> SampledEstimate:
    """Whole-span average misspeculation penalty per mispredicted branch.

    Weighted by region weight times mispredictions (the metric's
    denominator): regions with no mispredictions contribute nothing to
    the point estimate and are excluded from the spread values -- their
    per-region penalty is undefined, not zero.
    """
    weights = _region_weights(results, weights)
    penalty = sum(w * r.stats.missspec_penalty_cycles
                  for w, r in zip(weights, results))
    mispredictions = sum(w * r.stats.mispredictions
                         for w, r in zip(weights, results))
    per_region = tuple(
        _ratio(r.stats.missspec_penalty_cycles, r.stats.mispredictions)
        for r in results if r.stats.mispredictions)
    return SampledEstimate("misspec_penalty",
                           _ratio(penalty, mispredictions),
                           SweepSummary(per_region) if per_region
                           else SweepSummary((math.nan,)))
