"""Combine per-region stats into whole-trace estimates with errors.

Each simulated region yields ordinary :class:`~repro.core.stats.SimStats`
over its measured window.  The whole-span point estimate of a ratio
metric is the ratio of the summed numerators and denominators -- e.g.
CPI = sum(w * cycles) / sum(w * committed) -- where ``w`` is the
region's weight: 1 for systematic plans (every window stands for its
own stride) and the cluster population for SimPoint plans (each
representative stands for every window of its behavior cluster).

Spread comes from the per-region values through
:class:`~repro.analysis.robustness.SweepSummary`, inheriting its honesty
rules: standard error is NaN below two regions, and
:attr:`SampledEstimate.significant` can never be claimed from a single
window -- the n>=2 rule the seed sweeps already enforce.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from ..analysis.robustness import SweepSummary
from ..core.simulator import SimulationResult

#: Two-sided ~95% normal quantile used for the confidence interval.
CI_Z = 1.96

#: Floor on the *relative* CI half-width of a weighted estimate.  The
#: window tiling truncates the span tail (``instructions mod measure``
#: records are represented by no window), a systematic bias the
#: between-region spread cannot see -- on a perfectly homogeneous
#: workload the jackknife CI collapses to ~0.1% while the truncation
#: bias sits around 0.3%.  The floor keeps the reported interval honest
#: about that bias; CI targets below it are unreachable by design.
CI_RELATIVE_FLOOR = 0.005


@dataclass(frozen=True)
class SampledEstimate:
    """One whole-span metric estimated from sampled regions."""

    metric: str
    point: float  #: weighted whole-span estimate
    summary: SweepSummary  #: unweighted per-region values (spread)
    #: Per-region weighted (numerator, denominator) terms of the ratio
    #: estimate.  When present, the standard error is the delete-one
    #: jackknife over these terms, which weighs each region by how much
    #: the whole-span estimate actually depends on it -- a small cluster
    #: with an outlier CPI perturbs the estimate (and hence the CI) far
    #: less than the unweighted per-region spread suggests.
    terms: Optional[Tuple[Tuple[float, float], ...]] = None

    @property
    def stderr(self) -> float:
        """Standard error of the estimate; NaN when n < 2.

        Delete-one jackknife over the weighted ratio terms when they are
        available, else the plain standard error of the unweighted
        per-region values.
        """
        jack = self._jackknife_stderr()
        if jack is not None:
            return jack
        return self.summary.stderr

    def _jackknife_stderr(self) -> Optional[float]:
        if self.terms is None:
            return None
        n = len(self.terms)
        if n < 2:
            return math.nan
        total_num = sum(t[0] for t in self.terms)
        total_den = sum(t[1] for t in self.terms)
        loo = []
        for num, den in self.terms:
            rest = total_den - den
            if rest <= 0:
                return math.nan
            loo.append((total_num - num) / rest)
        mean = sum(loo) / n
        var = (n - 1) / n * sum((v - mean) ** 2 for v in loo)
        return math.sqrt(var)

    @property
    def ci_halfwidth(self) -> float:
        """Half-width of the ~95% CI (NaN when the stderr is undefined).

        Weighted estimates never claim a half-width below
        :data:`CI_RELATIVE_FLOOR` of the point -- see the constant's
        rationale.
        """
        half = CI_Z * self.stderr
        if self.terms is not None and not math.isnan(half) \
                and not math.isnan(self.point):
            half = max(half, CI_RELATIVE_FLOOR * abs(self.point))
        return half

    @property
    def ci95(self) -> Tuple[float, float]:
        """~95% confidence interval around the point estimate.

        (NaN, NaN) when the standard error is undefined (single region):
        one window supports a point estimate but no error claim.
        """
        half = self.ci_halfwidth
        return (self.point - half, self.point + half)

    @property
    def relative_error(self) -> float:
        """Half-width of the CI as a fraction of the point.

        NaN when undefined: fewer than two regions (no stderr), or a
        point estimate of exactly 0.0 -- a zero denominator carries no
        relative-error claim, mirroring the n=1 stderr convention.
        Callers render NaN as ``n/a``.
        """
        if self.point == 0.0 or math.isnan(self.point):
            return math.nan
        return self.ci_halfwidth / abs(self.point)

    def __str__(self) -> str:
        if math.isnan(self.stderr):
            return f"{self.metric}={self.point:.4f} (n={self.summary.n})"
        return (f"{self.metric}={self.point:.4f} "
                f"+/- {self.ci_halfwidth:.4f} "
                f"(n={self.summary.n})")


def _ratio(num: float, den: float) -> float:
    return num / den if den else math.nan


def _region_weights(results: Sequence[SimulationResult],
                    weights: "Sequence[int] | None") -> Sequence[int]:
    if weights is None:
        return (1,) * len(results)
    if len(weights) != len(results):
        raise ValueError(f"{len(weights)} weights for {len(results)} regions")
    return weights


def weighted_ratio(results: Sequence[SimulationResult],
                   weights: "Sequence[int] | None",
                   num: Callable[[SimulationResult], float],
                   den: Callable[[SimulationResult], float],
                   scale: float = 1.0) -> float:
    """Whole-span point estimate of ``scale * sum(num) / sum(den)``."""
    weights = _region_weights(results, weights)
    total_num = sum(w * num(r) for w, r in zip(weights, results))
    total_den = sum(w * den(r) for w, r in zip(weights, results))
    return scale * _ratio(total_num, total_den)


def weighted_counter(results: Sequence[SimulationResult],
                     weights: "Sequence[int] | None",
                     fn: Callable[[SimulationResult], float]) -> float:
    """Weighted whole-span total of a per-region counter.

    The counter analogue of :func:`weighted_ratio`: each region's raw
    count scales by its plan weight, so topdown slot buckets (and any
    other additive counter) aggregate with the same honesty as CPI --
    a SimPoint representative stands for its whole cluster.
    """
    weights = _region_weights(results, weights)
    return float(sum(w * fn(r) for w, r in zip(weights, results)))


def estimate_cpi(results: Sequence[SimulationResult],
                 weights: "Sequence[int] | None" = None) -> SampledEstimate:
    """Whole-span cycles-per-instruction from per-region windows."""
    weights = _region_weights(results, weights)
    terms = tuple((w * r.stats.cycles, w * r.stats.committed)
                  for w, r in zip(weights, results))
    per_region = tuple(_ratio(r.stats.cycles, r.stats.committed)
                       for r in results)
    return SampledEstimate("cpi",
                           _ratio(sum(t[0] for t in terms),
                                  sum(t[1] for t in terms)),
                           SweepSummary(per_region), terms=terms)


def estimate_misspec_penalty(results: Sequence[SimulationResult],
                             weights: "Sequence[int] | None" = None,
                             ) -> SampledEstimate:
    """Whole-span average misspeculation penalty per mispredicted branch.

    Weighted by region weight times mispredictions (the metric's
    denominator): regions with no mispredictions contribute nothing to
    the point estimate and are excluded from the spread values -- their
    per-region penalty is undefined, not zero.
    """
    weights = _region_weights(results, weights)
    terms = tuple((w * r.stats.missspec_penalty_cycles,
                   w * r.stats.mispredictions)
                  for w, r in zip(weights, results))
    per_region = tuple(
        _ratio(r.stats.missspec_penalty_cycles, r.stats.mispredictions)
        for r in results if r.stats.mispredictions)
    return SampledEstimate("misspec_penalty",
                           _ratio(sum(t[0] for t in terms),
                                  sum(t[1] for t in terms)),
                           SweepSummary(per_region) if per_region
                           else SweepSummary((math.nan,)),
                           terms=terms)
