"""Region scheduling: slice a trace into (warmup, measure) windows.

Systematic sampling in the SMARTS style (Wunderlich et al., ISCA 2003):
the timed span ``[skip, skip + instructions)`` of a full run is divided
into equal strides, and one measurement window of ``measure`` records is
centered in each stride.  Detailed simulation covers only the windows
plus their warmup prefixes -- the whole-span estimate then comes from
weighting the per-window stats (:mod:`repro.sampling.aggregate`).

The scheduler is pure arithmetic over record counts; it never touches a
trace.  Each region becomes an ordinary exec job via
:meth:`~repro.core.config.ProcessorConfig.with_region`, so regions are
dispatched through the same process pool and persistent result cache as
any other simulation (see :mod:`repro.sampling.run`).

Warmup policy: each window is preceded by two warmup phases.  The
``warmup`` records train warm microarchitectural state (caches,
predictor, BTB, slice tracker) functionally -- that state cannot be
restored from the trace's architectural interval checkpoints, which
carry registers and memory words, not tables.  The ``detail`` records
then run through the full timing model with statistics discarded, so
measurement starts from a filled pipeline instead of an empty ROB/IQ
(the dominant bias of short windows; SMARTS calls this detailed
warming).  Detail records are fully simulated, so they count toward the
``max_fraction`` simulated-records budget; functional warmup does not.
The interval checkpoints instead let the differential oracle (and
capture extension) seat *architectural* state at the nearest checkpoint
at or below the region seat, paying only the residue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..trace.format import DEFAULT_CHECKPOINT_INTERVAL

#: Fraction of the timed span the sampled windows may cover, total.  The
#: acceptance gate for sampling is "within 3% of the full run at <= 1/3
#: of the simulated records"; the default plan honors the cap by
#: construction (measure + detail both count).
DEFAULT_MAX_FRACTION = 1.0 / 3.0

#: Default measurement-window length.
DEFAULT_MEASURE = 1024

#: Default detailed-warmup length (timed, discarded) before each window.
DEFAULT_DETAIL = DEFAULT_MEASURE // 4

#: Default cap on per-region functional warming.  Warm state carries
#: long history, so more warming is always more faithful -- but it costs
#: O(region start) per region, which would swamp the sampling speedup on
#: long traces.  16K records is empirically where the 3% accuracy gate
#: still holds while warming stays a minority of the sampled wall time.
DEFAULT_WARMUP = 16384

#: Default cap on SimPoint representative count.  Representatives cover
#: *behaviors*, not span length; past a handful, extra regions mostly
#: resample behaviors already covered while scaling cost linearly.
DEFAULT_REGIONS = 8


@dataclass(frozen=True)
class Region:
    """One scheduled (warmup, detail, measure) window."""

    start: int  #: dynamic sequence number where measurement begins
    warmup: int  #: untimed warm-training records before the detail phase
    measure: int  #: timed records
    detail: int = 0  #: timed-but-discarded records immediately before start
    weight: int = 1  #: windows this one represents (SimPoint cluster size)

    def __post_init__(self) -> None:
        if self.measure < 1:
            raise ValueError("region measure must be positive")
        if self.warmup < 0 or self.detail < 0:
            raise ValueError("region warmup/detail must be non-negative")
        if self.warmup + self.detail > self.start:
            raise ValueError("region warmup + detail must fit before start")
        if self.weight < 1:
            raise ValueError("region weight must be positive")

    @property
    def end(self) -> int:
        return self.start + self.measure


@dataclass(frozen=True)
class RegionPlan:
    """A full sampling schedule over one timed span."""

    instructions: int  #: timed-span length the plan estimates
    skip: int  #: records before the timed span (the full run's warmup)
    checkpoint_interval: int  #: trace cadence the plan assumes
    regions: Tuple[Region, ...]

    @property
    def measured_records(self) -> int:
        return sum(r.measure for r in self.regions)

    @property
    def detailed_records(self) -> int:
        return sum(r.detail for r in self.regions)

    @property
    def warm_records(self) -> int:
        return sum(r.warmup for r in self.regions)

    @property
    def simulated_records(self) -> int:
        """Records run through the timing model (measure + detail)."""
        return self.measured_records + self.detailed_records

    @property
    def coverage(self) -> float:
        """Fraction of the timed span run through the timing model."""
        return self.simulated_records / self.instructions

    def trace_records_needed(self, margin: int) -> int:
        """Minimum capture length so every region replays with margin."""
        return max(r.end for r in self.regions) + margin

    def __str__(self) -> str:
        first = self.regions[0] if self.regions else Region(0, 0, 1)
        return (f"{len(self.regions)} regions x {first.measure} measured "
                f"(+{first.warmup} warmup, +{first.detail} detail) "
                f"= {self.coverage:.1%} of {self.instructions:,} records")


def plan_regions(instructions: int, skip: int = 0,
                 measure: int = DEFAULT_MEASURE,
                 warmup: "int | None" = DEFAULT_WARMUP,
                 detail: "int | None" = None,
                 max_fraction: float = DEFAULT_MAX_FRACTION,
                 checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
                 ) -> RegionPlan:
    """Schedule systematic (warmup, detail, measure) windows over a span.

    ``instructions``/``skip`` describe the full run being estimated: the
    span ``[skip, skip + instructions)``.  ``measure`` sizes each window;
    ``detail`` (timed, discarded) defaults to a quarter of it.
    ``warmup`` caps the functional warm training before each detail
    phase (default :data:`DEFAULT_WARMUP`); pass ``None`` for
    continuous functional warming over the whole prefix -- maximally
    faithful cache/predictor state, at O(region start) cost per
    region.  Detail records are really simulated, so the number
    of windows is the largest that keeps measure + detail within
    ``max_fraction`` of the span -- at least one, with the window (then
    the detail) shrunk if even one would bust the cap.  Warmup and
    detail are clamped per-region to the records that exist before it.
    """
    if instructions < 1:
        raise ValueError("instructions must be positive")
    if skip < 0:
        raise ValueError("skip must be non-negative")
    if measure < 1:
        raise ValueError("measure must be positive")
    if not 0 < max_fraction <= 1:
        raise ValueError("max_fraction must be in (0, 1]")
    budget = max(1, int(instructions * max_fraction))
    if measure > budget:
        measure = budget
    if detail is None:
        detail = measure // 4
    if detail < 0:
        raise ValueError("detail must be non-negative")
    detail = min(detail, budget - measure)
    if warmup is not None and warmup < 0:
        raise ValueError("warmup must be non-negative")
    count = max(1, budget // (measure + detail))
    stride = instructions / count
    regions = []
    for i in range(count):
        # Center each window in its stride segment; int() keeps starts
        # deterministic and inside the span.
        start = skip + int(i * stride + (stride - measure) / 2)
        start = max(skip, min(start, skip + instructions - measure))
        d = min(detail, start)
        full_prefix = start - d
        regions.append(Region(start=start,
                              warmup=full_prefix if warmup is None
                              else min(warmup, full_prefix),
                              measure=measure,
                              detail=d))
    return RegionPlan(instructions=instructions, skip=skip,
                      checkpoint_interval=checkpoint_interval,
                      regions=tuple(regions))


def plan_representative_regions(trace, instructions: int, skip: int = 0,
                                measure: int = DEFAULT_MEASURE,
                                warmup: "int | None" = DEFAULT_WARMUP,
                                detail: "int | None" = None,
                                regions: "int | None" = DEFAULT_REGIONS,
                                max_fraction: float = DEFAULT_MAX_FRACTION,
                                checkpoint_interval: int =
                                DEFAULT_CHECKPOINT_INTERVAL,
                                ) -> RegionPlan:
    """SimPoint-style plan: cluster windows, simulate representatives.

    The span ``[skip, skip + instructions)`` is tiled with consecutive
    ``measure``-record windows, each summarized by a behavioral
    signature computed from the trace arrays alone
    (:mod:`repro.sampling.signature` -- code, data and branch-outcome
    features, no simulation).  K-medoids clustering picks the most
    central window of each behavior cluster as its representative; the
    plan schedules only those, carrying each cluster's population as the
    region's ``weight`` so the aggregator can reconstruct the whole-span
    mix.  The cluster count is the largest that keeps the simulated
    records (measure + detail per region) within ``max_fraction`` of
    the span, further capped by ``regions`` (default
    :data:`DEFAULT_REGIONS`; ``None`` lifts the cap) -- unlike
    systematic sampling, representatives cover *behaviors*, not span
    length, so a handful suffices however long the trace is.
    ``warmup`` defaults to the :data:`DEFAULT_WARMUP` cap; ``None``
    warms over each region's whole prefix.  The trace must cover
    ``skip + instructions`` records.

    Everything -- tiling, signatures, seeding, tie-breaks -- is
    deterministic, so a given (trace, parameters) pair always yields
    the same plan and therefore the same cached exec job keys.
    """
    from .signature import cluster_windows, window_signature
    if instructions < 1:
        raise ValueError("instructions must be positive")
    if skip < 0:
        raise ValueError("skip must be non-negative")
    if measure < 1:
        raise ValueError("measure must be positive")
    if not 0 < max_fraction <= 1:
        raise ValueError("max_fraction must be in (0, 1]")
    if len(trace) < skip + instructions:
        raise ValueError(
            f"trace has {len(trace)} records, need {skip + instructions}")
    budget = max(1, int(instructions * max_fraction))
    if measure > budget:
        measure = budget
    if detail is None:
        detail = measure // 4
    if detail < 0:
        raise ValueError("detail must be non-negative")
    detail = min(detail, budget - measure)
    if warmup is not None and warmup < 0:
        raise ValueError("warmup must be non-negative")
    if regions is not None and regions < 1:
        raise ValueError("regions must be positive")
    windows = max(1, instructions // measure)
    k = max(1, budget // (measure + detail))
    if regions is not None:
        k = min(k, regions)
    signatures = [window_signature(trace, skip + i * measure, measure)
                  for i in range(windows)]
    medoids, weights = cluster_windows(signatures, k)
    regions = []
    for index, weight in sorted(zip(medoids, weights)):
        start = skip + index * measure
        d = min(detail, start)
        full_prefix = start - d
        regions.append(Region(start=start,
                              warmup=full_prefix if warmup is None
                              else min(warmup, full_prefix),
                              measure=measure,
                              detail=d,
                              weight=weight))
    return RegionPlan(instructions=instructions, skip=skip,
                      checkpoint_interval=checkpoint_interval,
                      regions=tuple(regions))
