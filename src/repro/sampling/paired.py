"""Paired speedup estimation over shared region windows.

A sampled base-vs-variant comparison replays the *identical* region
windows of the same trace on both machines (the plans derive from the
trace alone, and the lockstep escalation keeps them aligned).  On a
common window the two CPIs move together -- a phase that is expensive on
the base machine is expensive on the variant too -- so the per-window
CPI *ratio* is far less variable than either CPI.  Combining the two
sides' independent jackknife CIs in quadrature throws that correlation
away and over-states the speedup uncertainty by the common-mode
variance both sides share.

:func:`paired_speedup` keeps it: the speedup point estimate is the
ratio of the two weighted whole-span CPI estimates (exactly what the
independent path reports), but its spread is a delete-one jackknife
that drops each shared window from *both* sides simultaneously.
Window-to-window variation that is common to base and variant cancels
inside every leave-one-out replicate, so only the variation of the
comparison itself -- the quantity actually being reported -- widens the
interval.

Two honesty rules carry over from :mod:`repro.sampling.aggregate`:

* fewer than two shared windows support a point estimate but no error
  claim (NaN half-width, rendered ``n/a``);
* the estimator only applies when the two runs really sampled the same
  schedule -- :func:`paired_speedup` returns ``None`` when the region
  schedules differ (different starts, lengths or weights), and the
  caller falls back to the quadrature combination.

Unlike the per-side CPI estimates there is no tiling-truncation floor:
the truncated span tail biases base and variant CPI the same way, so
the bias is common-mode and cancels in the ratio to first order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from .aggregate import CI_Z
from .run import SampledRun

#: One shared window's weighted contribution to both sides of the
#: ratio: (base cycles, base committed, variant cycles, variant
#: committed), each scaled by the window's cluster weight.
PairedTerm = Tuple[float, float, float, float]


@dataclass(frozen=True)
class PairedEstimate:
    """A speedup (base CPI / variant CPI) estimated from shared windows.

    ``point`` matches the ratio of the two independent weighted CPI
    estimates bit for bit -- pairing changes the error claim, never the
    headline number.
    """

    point: float  #: whole-span speedup estimate (variant IPC / base IPC)
    terms: Tuple[PairedTerm, ...]  #: per shared window, plan order

    @property
    def n(self) -> int:
        """Shared windows the estimate is built from."""
        return len(self.terms)

    @property
    def stderr(self) -> float:
        """Delete-one jackknife over shared windows; NaN when n < 2.

        Each leave-one-out replicate removes a window from base *and*
        variant, so common-mode window variation cancels inside every
        replicate and only the comparison's own variance remains.
        """
        n = len(self.terms)
        if n < 2:
            return math.nan
        tb_num = sum(t[0] for t in self.terms)
        tb_den = sum(t[1] for t in self.terms)
        tv_num = sum(t[2] for t in self.terms)
        tv_den = sum(t[3] for t in self.terms)
        loo = []
        for b_num, b_den, v_num, v_den in self.terms:
            rb_den = tb_den - b_den
            rv_den = tv_den - v_den
            rv_num = tv_num - v_num
            if rb_den <= 0 or rv_den <= 0 or rv_num <= 0:
                return math.nan
            loo.append(((tb_num - b_num) / rb_den) / (rv_num / rv_den))
        mean = sum(loo) / n
        var = (n - 1) / n * sum((v - mean) ** 2 for v in loo)
        return math.sqrt(var)

    @property
    def ci_halfwidth(self) -> float:
        """Half-width of the ~95% CI (NaN when the stderr is undefined)."""
        return CI_Z * self.stderr

    @property
    def ci95(self) -> Tuple[float, float]:
        half = self.ci_halfwidth
        return (self.point - half, self.point + half)

    @property
    def relative_error(self) -> float:
        """CI half-width as a fraction of the point; NaN when undefined."""
        if self.point == 0.0 or math.isnan(self.point):
            return math.nan
        return self.ci_halfwidth / abs(self.point)

    def __str__(self) -> str:
        if math.isnan(self.stderr):
            return f"speedup={self.point:.4f} (n={self.n})"
        return (f"speedup={self.point:.4f} +/- {self.ci_halfwidth:.4f} "
                f"(n={self.n})")


def shared_schedule(base: SampledRun, variant: SampledRun) -> bool:
    """True when the two runs sampled the identical region schedule.

    Pairing requires window-for-window agreement: same starts, measured
    lengths, detail phases and cluster weights, in the same order.  The
    functional ``warmup`` depth is deliberately ignored -- it shapes the
    warm state each side trains, not *which* records are measured, and
    both sides of one comparison always use the same warmup policy
    anyway.
    """
    return [(r.start, r.measure, r.detail, r.weight)
            for r in base.plan.regions] \
        == [(r.start, r.measure, r.detail, r.weight)
            for r in variant.plan.regions]


def paired_speedup(base: SampledRun,
                   variant: SampledRun) -> Optional[PairedEstimate]:
    """Paired speedup estimate, or None when the schedules differ.

    ``None`` tells the caller the runs are not window-for-window
    comparable (genuinely different region schedules); combine the two
    sides' own CIs in quadrature instead.  A single shared window
    returns an estimate whose CI is NaN -- a point with no error claim,
    not a refusal.
    """
    if not shared_schedule(base, variant):
        return None
    terms = tuple(
        (w * b.stats.cycles, w * b.stats.committed,
         w * v.stats.cycles, w * v.stats.committed)
        for w, b, v in zip((r.weight for r in base.plan.regions),
                           base.results, variant.results))
    tb_num = sum(t[0] for t in terms)
    tb_den = sum(t[1] for t in terms)
    tv_num = sum(t[2] for t in terms)
    tv_den = sum(t[3] for t in terms)
    if tb_den == 0 or tv_den == 0 or tv_num == 0:
        point = math.nan
    else:
        point = (tb_num / tb_den) / (tv_num / tv_den)
    return PairedEstimate(point=point, terms=terms)


__all__ = [
    "PairedEstimate",
    "PairedTerm",
    "paired_speedup",
    "shared_schedule",
]
