"""The trace-replay front end: feeds the pipeline from a recorded trace.

:class:`TraceReplayFrontEnd` is a drop-in replacement for
:class:`~repro.isa.executor.TraceCursor`: the pipeline's fetch stage asks
for correct-path records by dynamic sequence number (rewinding after
mispredictions), and commit advances a low-water mark through
:meth:`release`.  Instead of stepping a live functional executor, records
are materialized on demand from the trace's typed arrays -- a list index
and one :class:`~repro.isa.executor.DynamicOp` construction per record,
with no architectural execution on the hot path.

Wrong-path fetch is *not* served here: the pipeline keeps walking the
static code itself, exactly as in live mode, because wrong-path behaviour
depends on the machine configuration (predictor state, BTB contents) and
therefore cannot be part of a config-independent trace.
"""

from __future__ import annotations

import weakref
from typing import List, Optional, Tuple

from ..isa.executor import DynamicOp
from ..isa.instruction import INST_BYTES, Program, StaticInst
from .format import FLAG_MEM, FLAG_TAKEN, Trace

#: Program-keyed static-decode tables, shared by every front end replaying
#: the same program (weak so programs are not kept alive by the memo).
_DECODE_TABLES: "weakref.WeakKeyDictionary[Program, Tuple[StaticInst, ...]]" \
    = weakref.WeakKeyDictionary()


def static_decode_table(program: Program) -> Tuple[StaticInst, ...]:
    """PC-indexed decode table: ``table[pc // INST_BYTES]`` is the inst.

    Replay materializes one :class:`~repro.isa.executor.DynamicOp` per
    dynamic record; resolving its static instruction through a dense
    tuple index is measurably cheaper than the ``program.at`` dict lookup
    and method call on that hot path (delta recorded in the throughput
    bench).  Program PCs are dense multiples of ``INST_BYTES`` starting
    at 0, so the program's own instruction list *is* the table.
    """
    table = _DECODE_TABLES.get(program)
    if table is None:
        table = tuple(program.insts)
        _DECODE_TABLES[program] = table
    return table


class TraceExhaustedError(RuntimeError):
    """The pipeline requested a record beyond the captured stream.

    Should never fire when the trace was acquired through
    :meth:`repro.trace.store.TraceStore.acquire` with the pipeline's
    fetch-ahead margin; it exists so an undersized hand-built trace fails
    loudly instead of silently desynchronizing the simulation.
    """


class TraceReplayFrontEnd:
    """Cursor-compatible window over a recorded trace.

    Mirrors :class:`~repro.isa.executor.TraceCursor` exactly: records are
    materialized forward on demand, retained until :meth:`release`
    advances the low-water mark (bounding memory to the in-flight window),
    and random access below the mark is an error.
    """

    def __init__(self, trace: Trace, program: Program):
        self._trace = trace
        self._program = program
        self._decode = static_decode_table(program)
        self._buffer: List[DynamicOp] = []
        self._base = 0  # seq number of _buffer[0]

    @property
    def trace(self) -> Trace:
        return self._trace

    def attach(self, trace: Trace) -> None:
        """Swap in an extended trace (a superset of the current one)."""
        if len(trace) < len(self._trace):
            raise ValueError("an attached trace must extend the current one")
        self._trace = trace

    @property
    def high(self) -> int:
        """Sequence number just past the highest materialized record.

        The replay analogue of the live executor's position: warmup
        resumption and end-of-run accounting both key off it.
        """
        return self._base + len(self._buffer)

    def _materialize_next(self) -> None:
        trace = self._trace
        seq = self._base + len(self._buffer)
        if seq >= len(trace):
            raise TraceExhaustedError(
                f"trace exhausted at record {seq} "
                f"(captured {len(trace)}); acquire a longer trace")
        f = trace.flags[seq]
        pc = trace.pcs[seq]
        mem_addr: Optional[int] = trace.mem_addrs[seq] if f & FLAG_MEM else None
        self._buffer.append(DynamicOp(
            seq, self._decode[pc // INST_BYTES], bool(f & FLAG_TAKEN),
            trace.next_pcs[seq], mem_addr))

    def get(self, seq: int) -> DynamicOp:
        """The trace record with dynamic sequence number ``seq``."""
        if seq < self._base:
            raise IndexError(
                f"trace record {seq} already released (base={self._base})")
        while seq >= self._base + len(self._buffer):
            self._materialize_next()
        return self._buffer[seq - self._base]

    def release(self, seq: int) -> None:
        """Discard records with sequence numbers below ``seq``.

        As with the live cursor, ``seq`` may run ahead of what has been
        materialized (the warmup fast-forward skips whole prefixes); the
        low-water mark then simply jumps forward.
        """
        if seq <= self._base:
            return
        drop = seq - self._base
        if drop >= len(self._buffer):
            self._buffer.clear()
        else:
            del self._buffer[:drop]
        self._base = seq

    @property
    def retained(self) -> int:
        """Number of records currently buffered (for tests)."""
        return len(self._buffer)
