"""Compact versioned on-disk format for functional-execution traces.

A trace is the committed dynamic instruction stream of one (program,
``mem_seed``) pair, captured once by running the
:class:`~repro.isa.executor.FunctionalExecutor` and replayed by every
machine configuration in a sweep.  Records are stored as parallel typed
arrays rather than per-record objects:

* ``pcs``        -- ``array('I')``, the PC of record *i*;
* ``flags``      -- one byte per record (taken / conditional-branch /
  memory-op / has-writeback bits);
* ``next_pcs``   -- ``array('I')``, the architectural successor PC;
* ``mem_addrs``  -- ``array('Q')``, the effective address of loads and
  stores (0 for non-memory records; the flag bit disambiguates);
* ``wb_values``  -- ``array('Q')``, the register write-back value (0 for
  records without a destination; the flag bit disambiguates).

Architectural-state checkpoints ride along with the arrays: one taken
after the capture-time ``skip`` (warmup fast-forward), one at the end of
the captured stream, and -- since format version 2 -- one every
``checkpoint_interval`` records.  The end checkpoint makes a trace
*extendable* (a later request for more records resumes functional
execution from it instead of re-executing from scratch) and gives the
differential oracle a reference state to diff replayed runs against.
The interval checkpoints let a replayed run *start* anywhere: the
nearest checkpoint at or below a requested region start seats the
oracle, and only the residue up to the region needs fast-forwarding
(SimPoint/SMARTS-style mid-run sampling).

The serialized payload is a plain dict of primitives (arrays rendered as
bytes) so it pickles compactly, carries ``TRACE_FORMAT_VERSION``, and is
self-checking: a SHA-256 checksum over the record arrays detects
truncation or corruption at decode time.  Any mismatch raises
:class:`TraceFormatError`, which the store treats as a cache miss (clean
re-record), never as a crash.
"""

from __future__ import annotations

import hashlib
from array import array
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..isa.executor import FunctionalExecutor
from ..isa.instruction import Program

#: Bump whenever the record layout or checkpoint contents change; the
#: version is folded into every trace key *and* checked in the payload, so
#: stale entries stop being found and, belt-and-braces, fail decode.
#:
#: v2: interval checkpoints (``ArchCheckpoint`` every
#: ``checkpoint_interval`` records) for mid-run region sampling.
TRACE_FORMAT_VERSION = 2

#: Default spacing of interval checkpoints.  8192 records keeps the
#: checkpoint overhead small (one register/memory snapshot per ~200 KB of
#: record arrays) while bounding the oracle's fast-forward residue for
#: any region start.  0 disables interval checkpoints.
DEFAULT_CHECKPOINT_INTERVAL = 8192

#: Per-record flag bits.
FLAG_TAKEN = 1  #: branch outcome (conditional branches and jumps)
FLAG_COND_BRANCH = 2  #: the instruction is a conditional branch
FLAG_MEM = 4  #: the record carries an effective memory address
FLAG_WB = 8  #: the record carries a register write-back value


class TraceFormatError(ValueError):
    """A trace payload failed validation (version, checksum, layout)."""


@dataclass(frozen=True)
class ArchCheckpoint:
    """Complete architectural state at one point of the dynamic stream."""

    seq: int  #: dynamic sequence number the state corresponds to
    pc: int
    regs: Tuple[int, ...]
    mem_words: Dict[int, int]  #: every memory word written so far
    mem_seed: int

    @staticmethod
    def of(executor: FunctionalExecutor) -> "ArchCheckpoint":
        """Snapshot ``executor``'s architectural state."""
        return ArchCheckpoint(
            seq=executor.seq,
            pc=executor.pc,
            regs=tuple(executor.regs),
            mem_words=executor.memory.words(),
            mem_seed=executor.memory.seed,
        )

    def restore(self, program: Program) -> FunctionalExecutor:
        """A fresh executor resumed exactly at this checkpoint."""
        return FunctionalExecutor.from_state(
            program, self.mem_seed, self.regs, self.pc, self.seq,
            self.mem_words)


class Trace:
    """A decoded trace: record arrays plus the checkpoints.

    The object is program-agnostic (records reference instructions by PC);
    the replay front end binds it to a concrete :class:`Program` at use.
    """

    __slots__ = ("pcs", "flags", "next_pcs", "mem_addrs", "wb_values",
                 "skip_checkpoint", "end_checkpoint", "captured_skip",
                 "mem_seed", "checkpoint_interval", "interval_checkpoints")

    def __init__(self, pcs: array, flags: bytearray, next_pcs: array,
                 mem_addrs: array, wb_values: array,
                 skip_checkpoint: Optional[ArchCheckpoint],
                 end_checkpoint: ArchCheckpoint,
                 captured_skip: int, mem_seed: int,
                 checkpoint_interval: int = 0,
                 interval_checkpoints: Tuple[ArchCheckpoint, ...] = ()):
        self.pcs = pcs
        self.flags = flags
        self.next_pcs = next_pcs
        self.mem_addrs = mem_addrs
        self.wb_values = wb_values
        #: State after ``captured_skip`` records (None when skip was 0).
        self.skip_checkpoint = skip_checkpoint
        #: State after the final captured record (extension/verify anchor).
        self.end_checkpoint = end_checkpoint
        self.captured_skip = captured_skip
        self.mem_seed = mem_seed
        #: Spacing of :attr:`interval_checkpoints` (0 = none recorded).
        self.checkpoint_interval = checkpoint_interval
        #: Checkpoints at every positive multiple of the interval strictly
        #: inside the captured stream, ascending by ``seq``.
        self.interval_checkpoints = interval_checkpoints

    def __len__(self) -> int:
        return len(self.pcs)

    def checkpoint_at(self, seq: int) -> Optional[ArchCheckpoint]:
        """The nearest checkpoint with ``ckpt.seq <= seq``, or None.

        Considers the skip, interval, and end checkpoints.  ``None`` means
        no recorded state at or below ``seq``; the caller starts a fresh
        functional executor at sequence 0 and fast-forwards all of ``seq``.
        """
        best = None
        for ckpt in self.interval_checkpoints:
            if ckpt.seq > seq:
                break
            best = ckpt
        for ckpt in (self.skip_checkpoint, self.end_checkpoint):
            if ckpt is not None and ckpt.seq <= seq:
                if best is None or ckpt.seq > best.seq:
                    best = ckpt
        return best

    def payload_bytes(self) -> int:
        """Approximate in-memory size of the record arrays."""
        return (self.pcs.itemsize * len(self.pcs)
                + len(self.flags)
                + self.next_pcs.itemsize * len(self.next_pcs)
                + self.mem_addrs.itemsize * len(self.mem_addrs)
                + self.wb_values.itemsize * len(self.wb_values))


def _checksum(pcs: bytes, flags: bytes, next_pcs: bytes,
              mem_addrs: bytes, wb_values: bytes) -> str:
    h = hashlib.sha256()
    for chunk in (pcs, flags, next_pcs, mem_addrs, wb_values):
        h.update(len(chunk).to_bytes(8, "little"))
        h.update(chunk)
    return h.hexdigest()


def encode_trace(trace: Trace) -> dict:
    """Render ``trace`` as a picklable, self-checking payload dict."""
    pcs = trace.pcs.tobytes()
    flags = bytes(trace.flags)
    next_pcs = trace.next_pcs.tobytes()
    mem_addrs = trace.mem_addrs.tobytes()
    wb_values = trace.wb_values.tobytes()
    return {
        "format": TRACE_FORMAT_VERSION,
        "count": len(trace),
        "captured_skip": trace.captured_skip,
        "mem_seed": trace.mem_seed,
        "pcs": pcs,
        "flags": flags,
        "next_pcs": next_pcs,
        "mem_addrs": mem_addrs,
        "wb_values": wb_values,
        "checksum": _checksum(pcs, flags, next_pcs, mem_addrs, wb_values),
        "skip_checkpoint": trace.skip_checkpoint,
        "end_checkpoint": trace.end_checkpoint,
        "checkpoint_interval": trace.checkpoint_interval,
        "interval_checkpoints": tuple(trace.interval_checkpoints),
    }


def decode_trace(payload: dict) -> Trace:
    """Validate and decode a payload produced by :func:`encode_trace`.

    Raises :class:`TraceFormatError` on any inconsistency -- unknown
    version, checksum mismatch (truncation/corruption), or array-length
    disagreement with the recorded count.
    """
    if not isinstance(payload, dict):
        raise TraceFormatError("trace payload is not a mapping")
    if payload.get("format") != TRACE_FORMAT_VERSION:
        raise TraceFormatError(
            f"trace format version {payload.get('format')!r} != "
            f"{TRACE_FORMAT_VERSION}")
    try:
        count = payload["count"]
        raw = tuple(payload[k] for k in
                    ("pcs", "flags", "next_pcs", "mem_addrs", "wb_values"))
        checksum = payload["checksum"]
        skip_ckpt = payload["skip_checkpoint"]
        end_ckpt = payload["end_checkpoint"]
        captured_skip = payload["captured_skip"]
        mem_seed = payload["mem_seed"]
        interval = payload["checkpoint_interval"]
        interval_ckpts = tuple(payload["interval_checkpoints"])
    except KeyError as exc:
        raise TraceFormatError(f"trace payload lacks field {exc}") from exc
    if _checksum(*raw) != checksum:
        raise TraceFormatError("trace checksum mismatch (corrupt payload)")
    pcs = array("I")
    pcs.frombytes(raw[0])
    next_pcs = array("I")
    next_pcs.frombytes(raw[2])
    mem_addrs = array("Q")
    mem_addrs.frombytes(raw[3])
    wb_values = array("Q")
    wb_values.frombytes(raw[4])
    flags = bytearray(raw[1])
    if not (len(pcs) == len(flags) == len(next_pcs) == len(mem_addrs)
            == len(wb_values) == count):
        raise TraceFormatError("trace array lengths disagree with count")
    if not isinstance(end_ckpt, ArchCheckpoint) or end_ckpt.seq != count:
        raise TraceFormatError("trace end checkpoint out of position")
    if not isinstance(interval, int) or interval < 0:
        raise TraceFormatError("trace checkpoint interval invalid")
    prev = 0
    for ckpt in interval_ckpts:
        if not isinstance(ckpt, ArchCheckpoint):
            raise TraceFormatError("interval checkpoint has wrong type")
        if (not interval or ckpt.seq % interval != 0
                or not prev < ckpt.seq < count):
            raise TraceFormatError(
                f"interval checkpoint at seq {ckpt.seq} out of position")
        prev = ckpt.seq
    return Trace(pcs, flags, next_pcs, mem_addrs, wb_values,
                 skip_ckpt, end_ckpt, captured_skip, mem_seed,
                 interval, interval_ckpts)


def trace_metadata(payload: dict) -> dict:
    """Summarize a payload without materializing or checksumming arrays.

    Used by :meth:`~repro.trace.store.TraceStore.describe`: metadata reads
    (record count, checkpoint positions, byte sizes) must not pay the
    decode cost of multi-megabyte record arrays.  Raises
    :class:`TraceFormatError` on a wrong version or missing fields; it
    deliberately does *not* verify the checksum -- a later full decode
    still would.
    """
    if not isinstance(payload, dict):
        raise TraceFormatError("trace payload is not a mapping")
    if payload.get("format") != TRACE_FORMAT_VERSION:
        raise TraceFormatError(
            f"trace format version {payload.get('format')!r} != "
            f"{TRACE_FORMAT_VERSION}")
    try:
        skip_ckpt = payload["skip_checkpoint"]
        return {
            "records": payload["count"],
            "captured_skip": payload["captured_skip"],
            "mem_seed": payload["mem_seed"],
            "checkpoint_interval": payload["checkpoint_interval"],
            "skip_checkpoint_seq":
                skip_ckpt.seq if skip_ckpt is not None else None,
            "end_checkpoint_seq": payload["end_checkpoint"].seq,
            "interval_checkpoint_seqs": tuple(
                ckpt.seq for ckpt in payload["interval_checkpoints"]),
            "payload_bytes": sum(
                len(payload[k]) for k in
                ("pcs", "flags", "next_pcs", "mem_addrs", "wb_values")),
        }
    except (KeyError, AttributeError) as exc:
        raise TraceFormatError(f"trace payload lacks field {exc}") from exc
