"""Trace capture: one functional execution pass per (program, mem_seed).

:func:`capture_trace` steps a fresh :class:`~repro.isa.executor.
FunctionalExecutor` for ``length`` instructions and records each
:class:`~repro.isa.executor.DynamicOp` into the parallel arrays of
:class:`~repro.trace.format.Trace`, snapshotting the architectural state
after ``skip`` records and at the end.

:func:`extend_trace` grows an existing trace without re-executing its
prefix: it restores an executor from the end checkpoint and continues
stepping.  Functional execution is deterministic, so an extended trace is
bit-identical to a longer fresh capture (pinned by the format tests).
"""

from __future__ import annotations

from array import array

from ..isa.executor import FunctionalExecutor
from ..isa.instruction import Program
from .format import (
    FLAG_COND_BRANCH,
    FLAG_MEM,
    FLAG_TAKEN,
    FLAG_WB,
    ArchCheckpoint,
    Trace,
)


def _record_stream(executor: FunctionalExecutor, count: int,
                   pcs: array, flags: bytearray, next_pcs: array,
                   mem_addrs: array, wb_values: array) -> None:
    """Append ``count`` records of ``executor``'s stream to the arrays."""
    regs = executor.regs
    for _ in range(count):
        record = executor.step()
        inst = record.inst
        f = 0
        if record.taken:
            f |= FLAG_TAKEN
        if inst.is_conditional_branch:
            f |= FLAG_COND_BRANCH
        if record.mem_addr is not None:
            f |= FLAG_MEM
            mem_addrs.append(record.mem_addr)
        else:
            mem_addrs.append(0)
        if inst.dest is not None:
            f |= FLAG_WB
            wb_values.append(regs[inst.dest])
        else:
            wb_values.append(0)
        pcs.append(inst.pc)
        flags.append(f)
        next_pcs.append(record.next_pc)


def capture_trace(program: Program, mem_seed: int, length: int,
                  skip: int = 0) -> Trace:
    """Functionally execute ``length`` instructions and record them.

    ``skip`` positions the warmup checkpoint; it must not exceed
    ``length``.  A ``skip`` of 0 records no warmup checkpoint.
    """
    if length < 1:
        raise ValueError("trace length must be positive")
    if not 0 <= skip <= length:
        raise ValueError(f"skip {skip} outside trace length {length}")
    executor = FunctionalExecutor(program, mem_seed=mem_seed)
    pcs = array("I")
    flags = bytearray()
    next_pcs = array("I")
    mem_addrs = array("Q")
    wb_values = array("Q")
    skip_checkpoint = None
    _record_stream(executor, skip, pcs, flags, next_pcs, mem_addrs,
                   wb_values)
    if skip:
        skip_checkpoint = ArchCheckpoint.of(executor)
    _record_stream(executor, length - skip, pcs, flags, next_pcs,
                   mem_addrs, wb_values)
    return Trace(pcs, flags, next_pcs, mem_addrs, wb_values,
                 skip_checkpoint, ArchCheckpoint.of(executor), skip,
                 mem_seed)


def extend_trace(trace: Trace, program: Program, length: int) -> Trace:
    """A trace covering ``length`` records, reusing ``trace``'s prefix.

    Resumes functional execution from the end checkpoint; the existing
    arrays are copied, not mutated, so the input trace stays valid.
    """
    if length <= len(trace):
        return trace
    executor = trace.end_checkpoint.restore(program)
    pcs = array("I", trace.pcs)
    flags = bytearray(trace.flags)
    next_pcs = array("I", trace.next_pcs)
    mem_addrs = array("Q", trace.mem_addrs)
    wb_values = array("Q", trace.wb_values)
    _record_stream(executor, length - len(trace), pcs, flags, next_pcs,
                   mem_addrs, wb_values)
    return Trace(pcs, flags, next_pcs, mem_addrs, wb_values,
                 trace.skip_checkpoint, ArchCheckpoint.of(executor),
                 trace.captured_skip, trace.mem_seed)
