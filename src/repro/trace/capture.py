"""Trace capture: one functional execution pass per (program, mem_seed).

:func:`capture_trace` steps a fresh :class:`~repro.isa.executor.
FunctionalExecutor` for ``length`` instructions and records each
:class:`~repro.isa.executor.DynamicOp` into the parallel arrays of
:class:`~repro.trace.format.Trace`, snapshotting the architectural state
after ``skip`` records, at every positive multiple of
``checkpoint_interval`` inside the stream, and at the end.

:func:`extend_trace` grows an existing trace without re-executing its
prefix: it restores an executor from the end checkpoint and continues
stepping, carrying the interval-checkpoint cadence forward.  Functional
execution is deterministic, so an extended trace is bit-identical to a
longer fresh capture (pinned by the format tests).
"""

from __future__ import annotations

from array import array

from ..isa.executor import FunctionalExecutor
from ..isa.instruction import Program
from .format import (
    DEFAULT_CHECKPOINT_INTERVAL,
    FLAG_COND_BRANCH,
    FLAG_MEM,
    FLAG_TAKEN,
    FLAG_WB,
    ArchCheckpoint,
    Trace,
)


def _record_stream(executor: FunctionalExecutor, count: int,
                   pcs: array, flags: bytearray, next_pcs: array,
                   mem_addrs: array, wb_values: array) -> None:
    """Append ``count`` records of ``executor``'s stream to the arrays."""
    regs = executor.regs
    for _ in range(count):
        record = executor.step()
        inst = record.inst
        f = 0
        if record.taken:
            f |= FLAG_TAKEN
        if inst.is_conditional_branch:
            f |= FLAG_COND_BRANCH
        if record.mem_addr is not None:
            f |= FLAG_MEM
            mem_addrs.append(record.mem_addr)
        else:
            mem_addrs.append(0)
        if inst.dest is not None:
            f |= FLAG_WB
            wb_values.append(regs[inst.dest])
        else:
            wb_values.append(0)
        pcs.append(inst.pc)
        flags.append(f)
        next_pcs.append(record.next_pc)


def _snapshot_points(start: int, length: int, interval: int,
                     skip: int) -> list:
    """Sorted interior sequence numbers where a checkpoint is taken.

    Interval multiples strictly inside ``(start, length)`` plus ``skip``
    when it falls in ``(start, length]`` -- the end of the stream is
    snapshotted unconditionally by the callers.
    """
    points = set()
    if interval:
        first = (start // interval + 1) * interval
        points.update(range(first, length, interval))
    if start < skip <= length:
        points.add(skip)
    return sorted(points)


def capture_trace(program: Program, mem_seed: int, length: int,
                  skip: int = 0,
                  checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
                  ) -> Trace:
    """Functionally execute ``length`` instructions and record them.

    ``skip`` positions the warmup checkpoint; it must not exceed
    ``length``.  A ``skip`` of 0 records no warmup checkpoint.
    ``checkpoint_interval`` spaces the mid-stream checkpoints (0 records
    none).
    """
    if length < 1:
        raise ValueError("trace length must be positive")
    if not 0 <= skip <= length:
        raise ValueError(f"skip {skip} outside trace length {length}")
    if checkpoint_interval < 0:
        raise ValueError("checkpoint interval must be >= 0")
    executor = FunctionalExecutor(program, mem_seed=mem_seed)
    pcs = array("I")
    flags = bytearray()
    next_pcs = array("I")
    mem_addrs = array("Q")
    wb_values = array("Q")
    skip_checkpoint = None
    intervals = []
    pos = 0
    for point in _snapshot_points(0, length, checkpoint_interval, skip):
        _record_stream(executor, point - pos, pcs, flags, next_pcs,
                       mem_addrs, wb_values)
        ckpt = ArchCheckpoint.of(executor)
        if point == skip:
            skip_checkpoint = ckpt
        if checkpoint_interval and point % checkpoint_interval == 0 \
                and point < length:
            intervals.append(ckpt)
        pos = point
    _record_stream(executor, length - pos, pcs, flags, next_pcs,
                   mem_addrs, wb_values)
    end = ArchCheckpoint.of(executor)
    return Trace(pcs, flags, next_pcs, mem_addrs, wb_values,
                 skip_checkpoint, end, skip, mem_seed,
                 checkpoint_interval, tuple(intervals))


def adopt_skip_checkpoint(trace: Trace, skip_hint: int) -> Trace:
    """Fill in a missing skip checkpoint from an existing snapshot.

    When a trace first recorded with ``skip=0`` already carries a
    checkpoint exactly at ``skip_hint`` (an interval or end checkpoint),
    promote it to the skip checkpoint without re-executing anything.
    Returns ``trace`` unchanged when it already has a skip checkpoint,
    the hint is 0, or no snapshot sits exactly at the hint -- in that
    last case callers fall back to warm-training from the record arrays,
    which needs no architectural checkpoint.
    """
    if not skip_hint or trace.skip_checkpoint is not None:
        return trace
    ckpt = trace.checkpoint_at(skip_hint)
    if ckpt is None or ckpt.seq != skip_hint:
        return trace
    return Trace(trace.pcs, trace.flags, trace.next_pcs, trace.mem_addrs,
                 trace.wb_values, ckpt, trace.end_checkpoint, skip_hint,
                 trace.mem_seed, trace.checkpoint_interval,
                 trace.interval_checkpoints)


def extend_trace(trace: Trace, program: Program, length: int,
                 skip_hint: int = 0) -> Trace:
    """A trace covering ``length`` records, reusing ``trace``'s prefix.

    Resumes functional execution from the end checkpoint; the existing
    arrays are copied, not mutated, so the input trace stays valid.
    ``skip_hint`` requests a warmup checkpoint for a trace that lacks
    one: it is snapshotted live when the extension pass crosses it, or
    adopted from an existing interval checkpoint when it points into the
    already-captured prefix (see :func:`adopt_skip_checkpoint`).
    """
    if length <= len(trace):
        return adopt_skip_checkpoint(trace, skip_hint)
    start = len(trace)
    executor = trace.end_checkpoint.restore(program)
    pcs = array("I", trace.pcs)
    flags = bytearray(trace.flags)
    next_pcs = array("I", trace.next_pcs)
    mem_addrs = array("Q", trace.mem_addrs)
    wb_values = array("Q", trace.wb_values)
    interval = trace.checkpoint_interval
    intervals = list(trace.interval_checkpoints)
    # A fresh capture of ``length`` records snapshots the splice point
    # when it lands on an interval multiple; the old end checkpoint *is*
    # that state.
    if interval and start % interval == 0 \
            and (not intervals or intervals[-1].seq < start):
        intervals.append(trace.end_checkpoint)
    skip_checkpoint = trace.skip_checkpoint
    captured_skip = trace.captured_skip
    want_skip = skip_checkpoint is None and start < skip_hint <= length
    pos = start
    for point in _snapshot_points(start, length, interval,
                                  skip_hint if want_skip else 0):
        _record_stream(executor, point - pos, pcs, flags, next_pcs,
                       mem_addrs, wb_values)
        ckpt = ArchCheckpoint.of(executor)
        if want_skip and point == skip_hint:
            skip_checkpoint = ckpt
            captured_skip = skip_hint
        if interval and point % interval == 0 and point < length:
            intervals.append(ckpt)
        pos = point
    _record_stream(executor, length - pos, pcs, flags, next_pcs,
                   mem_addrs, wb_values)
    end = ArchCheckpoint.of(executor)
    extended = Trace(pcs, flags, next_pcs, mem_addrs, wb_values,
                     skip_checkpoint, end, captured_skip, trace.mem_seed,
                     interval, tuple(intervals))
    return adopt_skip_checkpoint(extended, skip_hint)
