"""Content-addressed stores for traces and warmup checkpoints.

Two kinds of state let a config sweep avoid redundant per-config work:

* **Traces** (:mod:`repro.trace.format`): the committed dynamic stream of
  one (program, ``mem_seed``) pair, captured once and replayed by every
  configuration.  Keyed by the *content* of the program (instructions,
  warm regions) plus the memory seed and the trace format version, so
  equal programs built independently share one capture.
* **Warm-component checkpoints**: pickled snapshots of the
  microarchitectural state that warmup training produces.  Warmup trains
  two independent groups -- the memory hierarchy, and the front-end
  predictor complex (direction predictor + BTB + PUBS slice tracker,
  which are coupled because slice-tracker training consumes each
  prediction outcome) -- so each group is checkpointed separately, keyed
  by the trace, the skip length and *only the configuration fields that
  shape its state*.  A sweep over, say, PUBS priority-entry counts then
  restores every warm component instead of re-training any of them
  (priority entries steer dispatch, not warmup training).

Both stores persist through :class:`~repro.exec.cache.ResultCache`
namespaces under the shared cache root (``REPRO_CACHE_DIR``), inheriting
its robustness rules: corrupt or stale entries are invalidated and
re-recorded, never crash, and ``REPRO_CACHE=0`` degrades to in-process
memoization only.
"""

from __future__ import annotations

import os
import pickle
import time
from typing import Any, Dict, Optional, Tuple

from ..exec.cache import ResultCache, cache_enabled_by_env, default_cache_dir
from ..exec.serialize import fingerprint
from ..isa.instruction import Program
from .capture import adopt_skip_checkpoint, capture_trace, extend_trace
from .format import (
    TRACE_FORMAT_VERSION,
    Trace,
    TraceFormatError,
    decode_trace,
    encode_trace,
    trace_metadata,
)

#: Fetch runs ahead of commit by at most the in-flight window (ROB +
#: front-end buffer + one fetch group); captures are padded by this many
#: records -- far beyond any Table IV machine -- and rounded up to it, so
#: every configuration of a sweep addresses the *same* capture.
REPLAY_MARGIN = 4096

#: Cross-process capture claim: how long a non-claiming process waits for
#: the claim holder to publish before recording redundantly anyway, and
#: how often it polls the cache while waiting.  A claim file older than
#: the timeout is presumed orphaned (claim holder died) and is removed.
CLAIM_TIMEOUT = 120.0
CLAIM_POLL = 0.02


def program_fingerprint(program: Program, mem_seed: int) -> str:
    """Content hash identifying ``program``'s dynamic stream."""
    return fingerprint({
        "kind": "trace",
        "format": TRACE_FORMAT_VERSION,
        "insts": list(program.insts),
        "warm_regions": [list(r) for r in program.warm_regions],
        "mem_seed": mem_seed,
    })


class TraceStore:
    """Acquire-or-record front end over the trace and warm caches."""

    def __init__(self, root: "Optional[str | os.PathLike]" = None,
                 persistent: Optional[bool] = None):
        if persistent is None:
            persistent = cache_enabled_by_env()
        self.root = root if root is not None else default_cache_dir()
        self._traces: Optional[ResultCache] = (
            ResultCache.for_namespace("traces", self.root) if persistent
            else None)
        self._warm: Optional[ResultCache] = (
            ResultCache.for_namespace("warm", self.root) if persistent
            else None)
        #: In-process memos; the decoded trace is shared by every config
        #: of a sweep, warm blobs stay pickled so each run restores fresh
        #: (mutable) objects.
        self._trace_memo: Dict[str, Trace] = {}
        self._warm_memo: Dict[str, bytes] = {}
        self.captures = 0
        self.extensions = 0
        self.warm_restores = 0
        self.warm_trainings = 0

    # ------------------------------------------------------------------
    # Traces
    # ------------------------------------------------------------------

    def _load_trace(self, key: str, refresh: bool = False
                    ) -> Optional[Trace]:
        if not refresh:
            trace = self._trace_memo.get(key)
            if trace is not None:
                return trace
        if self._traces is None:
            return None
        payload = self._traces.get(key)
        if payload is None:
            return None
        try:
            trace = decode_trace(payload)
        except TraceFormatError:
            # Corrupt/stale entry: drop it and let the caller re-record.
            self._traces.stats.invalidations += 1
            try:
                self._traces._path(key).unlink()
            except OSError:
                pass
            return None
        self._trace_memo[key] = trace
        return trace

    def _store_trace(self, key: str, trace: Trace) -> bool:
        """Publish ``trace``; True when it landed on persistent disk.

        A memory-only store always "lands" (the memo *is* its storage);
        a persistent store reports whether the write actually succeeded,
        so the capture/extension counters reflect on-disk reality.
        """
        self._trace_memo[key] = trace
        if self._traces is None:
            return True
        before = self._traces.stats.stores
        self._traces.put(key, encode_trace(trace))
        return self._traces.stats.stores > before

    # -- cross-process capture claim -----------------------------------

    def _claim_path(self, key: str) -> "os.PathLike":
        return self._traces.directory / (key + ".claim")

    def _try_claim(self, key: str) -> bool:
        """Atomically claim the right to record ``key`` (O_EXCL create)."""
        try:
            fd = os.open(self._claim_path(key),
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            # Unwritable directory: no coordination possible; record
            # uncoordinated (os.replace still keeps entries untorn).
            return True
        os.close(fd)
        return True

    def _release_claim(self, key: str) -> None:
        try:
            os.unlink(self._claim_path(key))
        except OSError:
            pass

    def _break_stale_claim(self, key: str) -> None:
        """Remove a claim file whose holder evidently died."""
        try:
            age = time.time() - os.stat(self._claim_path(key)).st_mtime
            if age > CLAIM_TIMEOUT:
                os.unlink(self._claim_path(key))
        except OSError:
            pass

    def _produce(self, key: str, program: Program, mem_seed: int,
                 needed: int, skip_hint: int,
                 checkpoint_interval: Optional[int]) -> Trace:
        """Capture or extend so the entry covers ``needed`` records."""
        kwargs = {}
        if checkpoint_interval is not None:
            kwargs["checkpoint_interval"] = checkpoint_interval
        trace = self._load_trace(key, refresh=True)
        if trace is not None and checkpoint_interval is not None \
                and trace.checkpoint_interval != checkpoint_interval:
            trace = None  # caller wants a different cadence: re-record
        if trace is None:
            trace = capture_trace(program, mem_seed, needed,
                                  skip=skip_hint, **kwargs)
            if self._store_trace(key, trace):
                self.captures += 1
            return trace
        grown = extend_trace(trace, program, max(needed, len(trace)),
                             skip_hint=skip_hint)
        if grown is not trace:
            # Count an extension only when records actually grew -- a
            # pure skip-checkpoint adoption rewrites metadata, not stream.
            if self._store_trace(key, grown) and len(grown) > len(trace):
                self.extensions += 1
        return grown

    def acquire(self, program: Program, mem_seed: int, min_records: int,
                skip_hint: int = 0,
                checkpoint_interval: Optional[int] = None) -> Trace:
        """The trace for ``program``, recording or extending as needed.

        The returned trace covers at least ``min_records`` records
        (rounded up to the :data:`REPLAY_MARGIN` granularity so differing
        per-config margins still share one capture).  ``skip_hint``
        positions the warmup checkpoint: live-snapshotted on a fresh
        capture, threaded through :func:`~repro.trace.capture.extend_trace`
        on the extension path, or adopted from an exactly-aligned interval
        checkpoint; when none of those apply the replay warm-training
        path (which reads the record arrays, not checkpoints) still works.
        ``checkpoint_interval`` pins the interval-checkpoint cadence
        (None accepts whatever the stored trace has, defaulting new
        captures to :data:`~repro.trace.format.DEFAULT_CHECKPOINT_INTERVAL`).

        Concurrent processes coordinate through an ``O_EXCL`` claim file:
        one records while the rest poll for the published entry, so a
        parallel sweep over one workload captures its trace exactly once.
        """
        key = program_fingerprint(program, mem_seed)
        needed = -(-min_records // REPLAY_MARGIN) * REPLAY_MARGIN

        def _covers(trace: Optional[Trace]) -> bool:
            if trace is None or len(trace) < min_records:
                return False
            if (checkpoint_interval is not None
                    and trace.checkpoint_interval != checkpoint_interval):
                return False
            if skip_hint and trace.skip_checkpoint is None:
                # An exactly-aligned snapshot satisfies the hint for
                # free; otherwise the trace still covers -- replay's
                # warm training reads the record arrays directly and
                # needs no architectural skip checkpoint (the tested
                # fallback for traces first recorded with skip=0).
                adopted = adopt_skip_checkpoint(trace, skip_hint)
                if adopted is not trace:
                    self._store_trace(key, adopted)
            return True

        trace = self._load_trace(key)
        if _covers(trace):
            return self._trace_memo[key]
        if self._traces is None:
            return self._produce(key, program, mem_seed, needed, skip_hint,
                                 checkpoint_interval)
        deadline = time.monotonic() + CLAIM_TIMEOUT
        while True:
            if self._try_claim(key):
                try:
                    return self._produce(key, program, mem_seed, needed,
                                         skip_hint, checkpoint_interval)
                finally:
                    self._release_claim(key)
            trace = self._load_trace(key, refresh=True)
            if _covers(trace):
                return self._trace_memo[key]
            if time.monotonic() > deadline:
                # Claim holder is stuck or gone: record redundantly
                # (safe -- os.replace publishes whole entries) rather
                # than deadlock, and clear the orphaned claim.
                self._break_stale_claim(key)
                return self._produce(key, program, mem_seed, needed,
                                     skip_hint, checkpoint_interval)
            self._break_stale_claim(key)
            time.sleep(CLAIM_POLL)

    def describe(self, program: Program, mem_seed: int) -> Optional[dict]:
        """Metadata about the stored trace, or None when absent.

        Reads checkpoint positions and sizes from the payload *without*
        materializing the record arrays (:func:`trace_metadata`) -- a
        metadata query must not pay the decode cost of a multi-megabyte
        trace.  An already-memoized decoded trace is summarized directly.
        """
        key = program_fingerprint(program, mem_seed)
        trace = self._trace_memo.get(key)
        if trace is not None:
            return {
                "key": key,
                "records": len(trace),
                "captured_skip": trace.captured_skip,
                "payload_bytes": trace.payload_bytes(),
                "checkpoint_interval": trace.checkpoint_interval,
                "skip_checkpoint_seq": (trace.skip_checkpoint.seq
                                        if trace.skip_checkpoint else None),
                "end_checkpoint_seq": trace.end_checkpoint.seq,
                "interval_checkpoint_seqs": tuple(
                    ckpt.seq for ckpt in trace.interval_checkpoints),
                "mem_seed": trace.mem_seed,
            }
        if self._traces is None:
            return None
        payload = self._traces.get(key)
        if payload is None:
            return None
        try:
            meta = trace_metadata(payload)
        except TraceFormatError:
            return None  # read-only query: report absent, do not unlink
        meta["key"] = key
        return meta

    # ------------------------------------------------------------------
    # Warm-component checkpoints
    # ------------------------------------------------------------------

    def warm_key(self, trace_key_program: Program, mem_seed: int, skip: int,
                 component: str, relevant_config: Any) -> str:
        """Content key for one warm component's post-skip state."""
        return fingerprint({
            "kind": "warm",
            "trace": program_fingerprint(trace_key_program, mem_seed),
            "skip": skip,
            "component": component,
            "config": relevant_config,
        })

    def get_warm(self, key: str) -> Optional[Tuple[Any, ...]]:
        """Restore one warm component: fresh objects on every call."""
        blob = self._warm_memo.get(key)
        if blob is None and self._warm is not None:
            blob = self._warm.get(key)
            if blob is not None and not isinstance(blob, bytes):
                blob = None  # malformed entry; treat as a miss
            if blob is not None:
                self._warm_memo[key] = blob
        if blob is None:
            return None
        try:
            objects = pickle.loads(blob)
        except Exception:
            self._warm_memo.pop(key, None)
            return None
        self.warm_restores += 1
        return objects

    def put_warm(self, key: str, objects: Tuple[Any, ...]) -> None:
        """Snapshot one warm component's freshly-trained state."""
        blob = pickle.dumps(objects, protocol=pickle.HIGHEST_PROTOCOL)
        self._warm_memo[key] = blob
        if self._warm is not None:
            self._warm.put(key, blob)
        self.warm_trainings += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def summary(self) -> str:
        return (f"captures={self.captures} extensions={self.extensions} "
                f"warm_restores={self.warm_restores} "
                f"warm_trainings={self.warm_trainings}")


#: Shared stores, one per cache root (``REPRO_CACHE_DIR`` is re-read on
#: every resolution so tests and benches can redirect it).
_STORES: Dict[Tuple[str, bool], TraceStore] = {}


def shared_store() -> TraceStore:
    """The process-wide store for the environment-selected cache root."""
    key = (str(default_cache_dir()), cache_enabled_by_env())
    store = _STORES.get(key)
    if store is None:
        store = _STORES[key] = TraceStore()
    return store


def reset_shared_stores() -> None:
    """Drop all shared stores (tests/benches that redirect the root)."""
    _STORES.clear()
