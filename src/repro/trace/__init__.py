"""Trace capture/replay: record the dynamic stream once, replay per config.

See DESIGN.md §9.  Public surface:

* :func:`~repro.trace.capture.capture_trace` /
  :func:`~repro.trace.capture.extend_trace` -- record the committed
  dynamic stream via one functional-execution pass;
* :class:`~repro.trace.format.Trace` / :class:`~repro.trace.format.
  ArchCheckpoint` and the encode/decode pair -- the versioned,
  checksummed on-disk format;
* :class:`~repro.trace.replay.TraceReplayFrontEnd` -- the cursor the
  pipeline fetches correct-path records from in ``frontend_mode=
  "replay"``;
* :class:`~repro.trace.store.TraceStore` / :func:`~repro.trace.store.
  shared_store` -- content-addressed persistence for traces and warm
  microarchitectural checkpoints.
"""

from .capture import adopt_skip_checkpoint, capture_trace, extend_trace
from .format import (
    DEFAULT_CHECKPOINT_INTERVAL,
    TRACE_FORMAT_VERSION,
    ArchCheckpoint,
    Trace,
    TraceFormatError,
    decode_trace,
    encode_trace,
    trace_metadata,
)
from .replay import TraceExhaustedError, TraceReplayFrontEnd, static_decode_table
from .store import (
    REPLAY_MARGIN,
    TraceStore,
    program_fingerprint,
    reset_shared_stores,
    shared_store,
)

__all__ = [
    "DEFAULT_CHECKPOINT_INTERVAL",
    "TRACE_FORMAT_VERSION",
    "REPLAY_MARGIN",
    "ArchCheckpoint",
    "Trace",
    "TraceFormatError",
    "TraceExhaustedError",
    "TraceReplayFrontEnd",
    "TraceStore",
    "adopt_skip_checkpoint",
    "capture_trace",
    "decode_trace",
    "encode_trace",
    "extend_trace",
    "program_fingerprint",
    "reset_shared_stores",
    "shared_store",
    "static_decode_table",
    "trace_metadata",
]
