"""Evaluation helpers: runners, speedup math, and report rendering."""

from .report import render_bar_chart, render_scatter, render_table
from .runner import (
    BENCH_INSTRUCTIONS,
    BENCH_SKIP,
    DEFAULT_INSTRUCTIONS,
    DEFAULT_SKIP,
    EXPECTED_D_BP,
    PairedRun,
    dbp_workloads,
    run_pair,
    run_suite,
    run_workload,
    shared_executor,
)
from .robustness import (
    SweepSummary,
    speedup_is_significant,
    sweep_speedup,
)
from .slices import (
    SliceStatistics,
    branch_slices,
    build_dataflow_graph,
    characterize_window,
    dynamic_slice,
    slice_depth,
)
from .speedup import (
    classify_programs,
    correlation,
    geometric_mean,
    gm_speedup,
    ipc_map,
    performance_ratio_with_clock,
    speedup,
    speedup_percent,
)

__all__ = [
    "SweepSummary",
    "speedup_is_significant",
    "sweep_speedup",
    "SliceStatistics",
    "branch_slices",
    "build_dataflow_graph",
    "characterize_window",
    "dynamic_slice",
    "slice_depth",
    "render_bar_chart",
    "render_scatter",
    "render_table",
    "BENCH_INSTRUCTIONS",
    "BENCH_SKIP",
    "DEFAULT_INSTRUCTIONS",
    "DEFAULT_SKIP",
    "EXPECTED_D_BP",
    "shared_executor",
    "PairedRun",
    "dbp_workloads",
    "run_pair",
    "run_suite",
    "run_workload",
    "classify_programs",
    "correlation",
    "geometric_mean",
    "gm_speedup",
    "ipc_map",
    "performance_ratio_with_clock",
    "speedup",
    "speedup_percent",
]
