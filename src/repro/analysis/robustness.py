"""Run-to-run robustness: seed sweeps with summary statistics.

Synthetic workloads make it cheap to re-run an experiment under different
memory seeds (different pseudo-random data => different branch outcomes and
addresses, same program structure).  The paper reports single numbers from
100M-instruction runs; at our reduced budgets, seed sweeps quantify how
much of a measured speedup is signal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from ..core.config import ProcessorConfig
from ..core.simulator import simulate
from ..workloads.generator import build_program
from ..workloads.profiles import WorkloadProfile, get_profile


@dataclass(frozen=True)
class SweepSummary:
    """Mean/stdev/extrema of one metric over a seed sweep."""

    values: tuple

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / self.n

    @property
    def stdev(self) -> float:
        """Sample standard deviation; NaN when undefined (n < 2).

        A single-seed sweep used to report 0.0 here, which read as "zero
        spread, perfectly tight" and made ``speedup_is_significant`` accept
        any n=1 ratio above the threshold.  NaN states the truth: one sample
        carries no spread information.
        """
        if self.n < 2:
            return math.nan
        m = self.mean
        return math.sqrt(sum((v - m) ** 2 for v in self.values) / (self.n - 1))

    @property
    def minimum(self) -> float:
        return min(self.values)

    @property
    def maximum(self) -> float:
        return max(self.values)

    @property
    def stderr(self) -> float:
        """Standard error of the mean; NaN when undefined (n < 2)."""
        return self.stdev / math.sqrt(self.n) if self.n >= 2 else math.nan

    def __str__(self) -> str:
        spread = "n/a" if math.isnan(self.stderr) else f"{self.stderr:.3f}"
        return (f"{self.mean:.3f} +/- {spread} "
                f"(n={self.n}, range {self.minimum:.3f}..{self.maximum:.3f})")


def sweep_speedup(
    workload: "str | WorkloadProfile",
    base_config: ProcessorConfig,
    variant_config: ProcessorConfig,
    seeds: Sequence[int],
    instructions: int = 5_000,
    skip: int = 10_000,
) -> SweepSummary:
    """Variant/base IPC ratios over several memory seeds.

    Each seed gets its own functional data (hence its own dynamic branch
    stream); base and variant always share the seed, so every ratio is a
    controlled comparison.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    profile = get_profile(workload) if isinstance(workload, str) else workload
    ratios: List[float] = []
    for seed in seeds:
        seeded = replace(profile, mem_seed=seed)
        program = build_program(seeded)
        base = simulate(program, base_config, instructions, skip,
                        mem_seed=seed)
        variant = simulate(build_program(seeded), variant_config,
                           instructions, skip, mem_seed=seed)
        ratios.append(variant.stats.ipc / base.stats.ipc)
    return SweepSummary(tuple(ratios))


def speedup_is_significant(summary: SweepSummary,
                           threshold: float = 1.0) -> bool:
    """Whether the sweep's mean speedup clears ``threshold`` by more than
    two standard errors (a simple z-style significance check).

    A sweep of fewer than two seeds has no defined standard error and is
    never significant (the NaN comparison below is False by IEEE semantics,
    but the guard makes the policy explicit).
    """
    if summary.n < 2:
        return False
    return summary.mean - 2 * summary.stderr > threshold
