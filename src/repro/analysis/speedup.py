"""Speedup math and program classification for the evaluation.

All of the paper's headline numbers are IPC ratios aggregated with
geometric means over the D-BP (branch MPKI >= 3.0) program set, with the
E-BP set reported separately.  Fig. 15(b) additionally converts an IPC
ratio into a *performance* ratio by scaling the competitor's clock period
(the age matrix lengthens the IQ critical path by 13%).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from ..core.stats import D_BP_BRANCH_MPKI_THRESHOLD


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; empty input returns 1.0 (neutral speedup)."""
    values = list(values)
    if not values:
        return 1.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedup(variant_ipc: float, base_ipc: float) -> float:
    """IPC ratio (1.0 = no change)."""
    if base_ipc <= 0:
        raise ValueError("base IPC must be positive")
    return variant_ipc / base_ipc


def speedup_percent(variant_ipc: float, base_ipc: float) -> float:
    """Speedup expressed as a percentage over the base."""
    return (speedup(variant_ipc, base_ipc) - 1.0) * 100.0


def performance_ratio_with_clock(
    ipc_a: float, ipc_b: float, clock_period_factor_b: float
) -> float:
    """Performance of A over B when B's clock period is scaled.

    Fig. 15(b): performance = IPC / cycle-time, so
    ``perf_A / perf_B = (ipc_a / ipc_b) * clock_period_factor_b``.
    """
    if clock_period_factor_b <= 0:
        raise ValueError("clock period factor must be positive")
    return speedup(ipc_a, ipc_b) * clock_period_factor_b


def classify_programs(
    branch_mpki: Mapping[str, float],
    threshold: float = D_BP_BRANCH_MPKI_THRESHOLD,
) -> Tuple[List[str], List[str]]:
    """Split program names into (D-BP, E-BP) by measured branch MPKI."""
    dbp = sorted(n for n, m in branch_mpki.items() if m >= threshold)
    ebp = sorted(n for n, m in branch_mpki.items() if m < threshold)
    return dbp, ebp


def gm_speedup(
    variant_ipc: Mapping[str, float],
    base_ipc: Mapping[str, float],
    names: Sequence[str],
) -> float:
    """Geometric-mean speedup over the given program subset."""
    return geometric_mean(
        speedup(variant_ipc[name], base_ipc[name]) for name in names
    )


def correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient (Fig. 9's trend check)."""
    n = len(xs)
    if n != len(ys):
        raise ValueError("series must have equal length")
    if n < 2:
        return 0.0
    mx = sum(xs) / n
    my = sum(ys) / n
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = sum((x - mx) ** 2 for x in xs)
    vy = sum((y - my) ** 2 for y in ys)
    if vx == 0 or vy == 0:
        return 0.0
    return cov / math.sqrt(vx * vy)


def ipc_map(results: Mapping[str, "object"]) -> Dict[str, float]:
    """name -> IPC from a name -> SimulationResult mapping."""
    return {name: result.stats.ipc for name, result in results.items()}
