"""High-level experiment runner: workload name + config -> result.

This is the layer examples and benchmarks call: it builds the synthetic
program for a named profile, runs the timing simulation, and (for paired
experiments) keeps the functional memory seed identical across machine
configurations so base and variant execute the *same* dynamic instruction
stream.

Every entry point routes through :class:`repro.exec.SweepExecutor`, so all
callers get job deduplication, the persistent on-disk result cache, and --
for batched calls like :func:`run_suite` -- parallel fan-out across worker
processes.  Determinism is unaffected: a cached or parallel run returns
stats identical to a fresh serial run (seeded generators, independent jobs).

**Sampling modes.**  Every entry point accepts a ``sampling`` mode (or a
whole :class:`~repro.core.config.RunRequest`): ``"off"`` (default)
simulates the entire timed span as before; ``"fixed"`` estimates it from
a fixed SimPoint representative set; ``"adaptive"`` escalates
representatives until the CI target (:mod:`repro.sampling.adaptive`).
Sampled cells come back as :class:`WorkloadRun` estimates with CI
annotations; when a workload cannot be trace-sampled the cell falls back
to a full simulation and says so in
:attr:`WorkloadRun.fallback_reason` -- never silently.

**Instruction budgets (single source of truth).**  Two budget pairs exist,
both defined here and nowhere else:

* ``DEFAULT_INSTRUCTIONS`` / ``DEFAULT_SKIP`` (20000 / 2000) -- the library
  defaults for ad-hoc ``run_workload`` / ``run_pair`` / ``run_suite`` calls
  and the examples: a quick, representative run.
* ``BENCH_INSTRUCTIONS`` / ``BENCH_SKIP`` (8000 / 16000, overridable via
  ``REPRO_BENCH_INSTRUCTIONS`` / ``REPRO_BENCH_SKIP``) -- the benchmark
  harness budget used by everything under ``benchmarks/``: a shorter timed
  sample after a *longer* warm-up, so the reduced-scale figure
  reproductions start from a representative microarchitectural state.
  The environment overrides affect the bench harness only.

(Historically the two pairs lived in different modules, both read the same
environment variables with different fallbacks, and the bench docstring
disagreed with both -- reconciled here.)
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, Mapping, Optional, Tuple

from ..core.config import ProcessorConfig, RunRequest
from ..core.simulator import SimulationResult, simulate
from ..exec import SimJob, SweepExecutor
from ..trace.format import TraceFormatError
from ..workloads.generator import build_program
from ..workloads.profiles import WorkloadProfile, get_profile, spec2006_profiles

if TYPE_CHECKING:  # repro.sampling imports this package; avoid the cycle
    from ..sampling.run import SampledRun

#: Library-default budgets for ad-hoc runs and the examples.
DEFAULT_INSTRUCTIONS = 20_000
DEFAULT_SKIP = 2_000

#: Benchmark-harness budgets (the ``benchmarks/`` suite); override via the
#: environment for longer, smoother runs.
BENCH_INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "8000"))
BENCH_SKIP = int(os.environ.get("REPRO_BENCH_SKIP", "16000"))

_EXECUTOR: Optional[SweepExecutor] = None


def shared_executor() -> SweepExecutor:
    """The module-wide executor (lazy; shares one cache across callers)."""
    global _EXECUTOR
    if _EXECUTOR is None:
        _EXECUTOR = SweepExecutor()
    return _EXECUTOR


def _executor_for(jobs: Optional[int], cache: "Optional[bool]",
                  batch: Optional[int] = None,
                  backend: Optional[str] = None):
    """Pick the shared executor or build a specialised one.

    A ``backend`` spec always builds a dedicated executor: the shared
    one fronts the default (env-selected) backend, and mixing dispatch
    targets behind one dedup memo would misattribute its accounting.
    """
    if jobs is None and cache is None and batch is None and backend is None:
        return shared_executor()
    if cache is None:
        return SweepExecutor(jobs=jobs,
                             cache=shared_executor().cache or False,
                             batch=batch, backend=backend)
    return SweepExecutor(jobs=jobs, cache=cache, batch=batch,
                         backend=backend)


def _resolve_config(config: Optional[ProcessorConfig],
                    frontend: Optional[str]) -> Optional[ProcessorConfig]:
    """Fold the selected frontend mode into ``config``.

    ``frontend`` wins when given; otherwise the ``REPRO_FRONTEND``
    environment variable applies (read per call, so tests and benches can
    flip it); otherwise the config passes through untouched.  An unknown
    mode fails ``ProcessorConfig`` validation, not silently.
    """
    mode = frontend if frontend is not None \
        else os.environ.get("REPRO_FRONTEND")
    if not mode:
        return config
    cfg = config if config is not None else ProcessorConfig.cortex_a72_like()
    if cfg.frontend_mode == mode:
        return cfg
    return cfg.with_frontend(mode)


def _merge_request(request: Optional[RunRequest], **explicit) -> RunRequest:
    """Fold explicit keyword values over ``request`` and resolve the env.

    The single precedence point for every entry point: explicit keyword
    > request field > environment > library default (the defaults are
    applied by the consumers, via :func:`_budget`).
    """
    return (request if request is not None
            else RunRequest()).with_overrides(**explicit).resolved()


def _budget(req: RunRequest) -> Tuple[int, int]:
    """The request's (instructions, skip), library defaults filled in."""
    return (DEFAULT_INSTRUCTIONS if req.instructions is None
            else req.instructions,
            DEFAULT_SKIP if req.skip is None else req.skip)


@dataclass
class WorkloadRun:
    """One experiment cell: a full simulation or a sampled estimate.

    Exactly one of ``full``/``sampled`` is set.  ``fallback_reason``
    records why a sampling request fell back to a full simulation (the
    trace could not be captured or parsed); it is never set on a
    deliberate ``sampling="off"`` run.
    """

    workload: str
    full: Optional[SimulationResult] = None
    sampled: "Optional[SampledRun]" = None
    fallback_reason: Optional[str] = None

    def __post_init__(self) -> None:
        if (self.full is None) == (self.sampled is None):
            raise ValueError("exactly one of full/sampled must be set")

    @property
    def is_sampled(self) -> bool:
        return self.sampled is not None

    @property
    def stats(self):
        """The full run's :class:`~repro.core.stats.SimStats`.

        A sampled cell has whole-span *estimates*, not counters; asking
        it for stats is a bug, so this raises instead of guessing.
        """
        if self.full is None:
            raise AttributeError(
                "sampled cell carries estimates, not SimStats -- "
                "use .cpi/.ipc/.cpi_ci95")
        return self.full.stats

    @property
    def cpi(self) -> float:
        if self.sampled is not None:
            return self.sampled.cpi.point
        return 1.0 / self.full.stats.ipc

    @property
    def ipc(self) -> float:
        return 1.0 / self.cpi

    @property
    def cpi_ci95(self) -> Tuple[float, float]:
        """~95% CI on CPI; (NaN, NaN) for a full (exact) simulation."""
        if self.sampled is not None:
            return self.sampled.cpi.ci95
        return (math.nan, math.nan)

    @property
    def relative_ci(self) -> float:
        """CI half-width / point; NaN for a full (exact) simulation."""
        if self.sampled is not None:
            return self.sampled.cpi.relative_error
        return math.nan

    @property
    def simulated_records(self) -> int:
        """Timed records actually simulated to produce this cell."""
        if self.sampled is not None:
            return self.sampled.simulated_records
        return self.full.stats.committed


def run_workload(
    workload: "str | WorkloadProfile",
    config: Optional[ProcessorConfig] = None,
    instructions: Optional[int] = None,
    skip: Optional[int] = None,
    cache: Optional[bool] = None,
    frontend: Optional[str] = None,
    jobs: Optional[int] = None,
    sampling: Optional[str] = None,
    ci_target: Optional[float] = None,
    batch: Optional[int] = None,
    backend: Optional[str] = None,
    request: Optional[RunRequest] = None,
) -> "SimulationResult | WorkloadRun":
    """Simulate one named workload on one machine configuration.

    ``cache=None`` follows the environment policy (persistent cache on
    unless ``REPRO_CACHE=0``); ``cache=False`` forces a fresh simulation.
    ``frontend`` overrides the config's ``frontend_mode`` ("live" /
    "replay"); None defers to ``REPRO_FRONTEND``, then to the config.
    ``sampling`` (None defers to ``REPRO_SAMPLING``, then "off") keeps
    the classic full-span :class:`SimulationResult` when off; the
    sampled modes return a :class:`WorkloadRun` estimate instead.
    ``batch`` caps batched replay grouping (None defers to
    ``REPRO_BATCH``; a single cell has nothing to group with anyway).
    ``backend`` picks the execution backend (None defers to
    ``REPRO_BACKEND``, then the local process pool).  ``request``
    supplies any of these as a bundled
    :class:`~repro.core.config.RunRequest`; explicit keywords win.
    """
    req = _merge_request(request, instructions=instructions, skip=skip,
                         jobs=jobs, cache=cache, frontend=frontend,
                         sampling=sampling, ci_target=ci_target, batch=batch,
                         backend=backend)
    if req.sampling != "off":
        return _sampled_cell(workload, config, req,
                             _executor_for(req.jobs, req.cache, req.batch,
                                           req.backend))
    instructions, skip = _budget(req)
    config = _resolve_config(config, req.frontend)
    job = SimJob.make(workload, config, instructions, skip)
    if req.cache is False:
        # Uncached fast path: no hashing, no disk.
        return simulate(
            build_program(job.profile),
            job.config,
            max_instructions=instructions,
            skip_instructions=skip,
            mem_seed=job.profile.mem_seed,
        )
    return _executor_for(req.jobs, req.cache, req.batch,
                         req.backend).run_one(job)


def _sampled_row(workload: "str | WorkloadProfile",
                 configs: "list[Optional[ProcessorConfig]]",
                 req: RunRequest,
                 executor: SweepExecutor) -> "list[WorkloadRun]":
    """One workload's sampled cells for several configs, submitted together.

    All configs sample the *same* trace-derived windows, so their region
    jobs go through the executor in one submission per escalation step
    -- which is what lets the batched replay path group every config of
    one region window into a single trace walk.  Falls back to full
    simulation honestly, and only on trace-availability failures -- the
    capture/load errors ``OSError`` and
    :class:`~repro.trace.format.TraceFormatError`.  Anything else (bad
    parameters, simulator bugs) propagates.
    """
    from ..sampling.run import sample_workload_many  # runner <-> sampling
    profile = get_profile(workload) if isinstance(workload, str) else workload
    cfgs = [_resolve_config(config, req.frontend) for config in configs]
    instructions, skip = _budget(req)
    try:
        sampled = sample_workload_many(
            profile, cfgs, instructions=instructions, skip=skip,
            strategy="adaptive" if req.sampling == "adaptive"
            else "simpoint",
            measure=req.measure, warmup=req.warmup, detail=req.detail,
            regions=req.regions, max_fraction=req.max_fraction,
            checkpoint_interval=req.checkpoint_interval,
            ci_target=req.ci_target if req.sampling == "adaptive" else None,
            executor=executor)
        return [WorkloadRun(profile.name, sampled=run) for run in sampled]
    except (OSError, TraceFormatError) as exc:
        fulls = executor.run([SimJob(profile, cfg, instructions, skip)
                              for cfg in cfgs])
        reason = f"{type(exc).__name__}: {exc}"
        return [WorkloadRun(profile.name, full=full, fallback_reason=reason)
                for full in fulls]


def _sampled_cell(workload: "str | WorkloadProfile",
                  config: Optional[ProcessorConfig],
                  req: RunRequest,
                  executor: SweepExecutor) -> WorkloadRun:
    """One sampled cell (a single-config :func:`_sampled_row`)."""
    return _sampled_row(workload, [config], req, executor)[0]


def _sampled_table(profiles: "list[WorkloadProfile]",
                   configs: "Mapping[str, ProcessorConfig]",
                   req: RunRequest,
                   executor: SweepExecutor
                   ) -> "Dict[str, Dict[str, WorkloadRun]]":
    """A whole adaptive table under one budget controller.

    Every workload becomes an :class:`~repro.sampling.adaptive.
    AdaptiveSession` (all configs in lockstep); the
    :class:`~repro.sampling.controller.TableController` then escalates
    whichever workload has the worst CI-to-target ratio until the whole
    table meets the target.  A workload whose trace cannot be captured
    falls back to full simulations at session-construction time -- the
    rest of the table still goes through the controller.
    """
    from ..sampling.adaptive import AdaptiveSession, DEFAULT_CI_TARGET
    from ..sampling.controller import TableController
    instructions, skip = _budget(req)
    ci_target = DEFAULT_CI_TARGET if req.ci_target is None else req.ci_target
    controller = TableController(ci_target,
                                 paired=req.paired is not False)
    cfgs = [_resolve_config(config, req.frontend)
            for config in configs.values()]
    fallback: "Dict[str, list[WorkloadRun]]" = {}
    for profile in profiles:
        try:
            controller.add(profile.name, AdaptiveSession(
                profile, cfgs, instructions=instructions, skip=skip,
                ci_target=ci_target, measure=req.measure,
                **({} if req.warmup is None else {"warmup": req.warmup}),
                detail=req.detail, regions=req.regions,
                max_fraction=req.max_fraction,
                checkpoint_interval=req.checkpoint_interval,
                executor=executor))
        except (OSError, TraceFormatError) as exc:
            fulls = executor.run([SimJob(profile, cfg, instructions, skip)
                                  for cfg in cfgs])
            reason = f"{type(exc).__name__}: {exc}"
            fallback[profile.name] = [
                WorkloadRun(profile.name, full=full, fallback_reason=reason)
                for full in fulls]
    controller.run()
    table = controller.results()
    results_by_config: "Dict[str, Dict[str, WorkloadRun]]" = \
        {config_name: {} for config_name in configs}
    for profile in profiles:
        cells = [WorkloadRun(profile.name, sampled=run)
                 for run in table[profile.name]] \
            if profile.name in table else fallback[profile.name]
        for config_name, cell in zip(configs, cells):
            results_by_config[config_name][profile.name] = cell
    return results_by_config


@dataclass
class PairedRun:
    """Base-vs-variant results for one workload (same dynamic stream).

    Holds two :class:`WorkloadRun` cells; with sampling off both wrap
    full simulations and the classic :attr:`base`/:attr:`variant`
    results remain available, while sampled pairs carry CI-annotated
    estimates and propagate their uncertainty into
    :attr:`speedup_ci95`.  When both cells sampled the *same* region
    schedule the speedup CI is the paired jackknife
    (:mod:`repro.sampling.paired`) -- common-mode window variance
    cancels, so it is much tighter than combining the two CPI CIs in
    quadrature; quadrature remains the fallback for genuinely different
    schedules (or ``use_paired=False``).
    """

    name: str
    base_cell: WorkloadRun
    variant_cell: WorkloadRun
    use_paired: bool = True

    @property
    def base(self) -> Optional[SimulationResult]:
        """Full base-machine result (None when the cell is sampled)."""
        return self.base_cell.full

    @property
    def variant(self) -> Optional[SimulationResult]:
        """Full variant result (None when the cell is sampled)."""
        return self.variant_cell.full

    @property
    def speedup(self) -> float:
        return self.variant_cell.ipc / self.base_cell.ipc

    @property
    def speedup_percent(self) -> float:
        return (self.speedup - 1.0) * 100.0

    @property
    def paired(self):
        """The paired speedup estimate, when pairing applies.

        Requires two sampled cells over the identical region schedule
        (and ``use_paired``); None otherwise.  Its point estimate
        equals :attr:`speedup` -- pairing changes the error claim, not
        the headline number.
        """
        if not (self.use_paired and self.base_cell.is_sampled
                and self.variant_cell.is_sampled):
            return None
        from ..sampling.paired import paired_speedup  # runner <-> sampling
        return paired_speedup(self.base_cell.sampled,
                              self.variant_cell.sampled)

    @property
    def ci_method(self) -> str:
        """How :attr:`speedup_relative_ci` was obtained.

        ``"paired"`` (common-regions jackknife), ``"quadrature"``
        (independent per-side CIs combined) or ``"exact"`` (both cells
        full simulations -- no sampling error to claim).
        """
        if self.paired is not None:
            return "paired"
        if self.base_cell.is_sampled or self.variant_cell.is_sampled:
            return "quadrature"
        return "exact"

    @property
    def speedup_relative_ci(self) -> float:
        """Relative ~95% half-width on the speedup; NaN when exact.

        Paired jackknife over the shared windows when both cells
        sampled the same schedule; otherwise the per-side relative
        errors combine in quadrature (independent regions).  A full
        cell contributes zero sampling error; an undefined CI (single
        region either way) stays NaN -- no claim.
        """
        estimate = self.paired
        if estimate is not None:
            return estimate.relative_error
        rels = [cell.relative_ci
                for cell in (self.base_cell, self.variant_cell)
                if cell.is_sampled]
        if not rels:
            return math.nan
        return math.sqrt(sum(r * r for r in rels))

    @property
    def speedup_ci95(self) -> Tuple[float, float]:
        half = self.speedup * self.speedup_relative_ci
        return (self.speedup - half, self.speedup + half)


def run_pair(
    workload: "str | WorkloadProfile",
    base_config: ProcessorConfig,
    variant_config: ProcessorConfig,
    instructions: Optional[int] = None,
    skip: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: Optional[bool] = None,
    frontend: Optional[str] = None,
    sampling: Optional[str] = None,
    ci_target: Optional[float] = None,
    batch: Optional[int] = None,
    backend: Optional[str] = None,
    paired: Optional[bool] = None,
    request: Optional[RunRequest] = None,
    executor: Optional[SweepExecutor] = None,
) -> PairedRun:
    """Run base and variant on the identical dynamic instruction stream.

    With a sampled mode both sides estimate from the *same* windows of
    the same recorded trace (the plans derive from the trace alone, not
    the machine), so the paired-stream property the full path guarantees
    carries over to the sampled one -- and the speedup CI is the paired
    jackknife over those shared windows unless ``paired`` resolves off.
    Either way both sides go through the executor in one submission, so
    replay-mode pairs that share a warm class run as one batched trace
    walk.  ``executor`` overrides the executor (e.g. to read its cache
    stats afterwards).
    """
    req = _merge_request(request, instructions=instructions, skip=skip,
                         jobs=jobs, cache=cache, frontend=frontend,
                         sampling=sampling, ci_target=ci_target, batch=batch,
                         backend=backend, paired=paired)
    profile = get_profile(workload) if isinstance(workload, str) else workload
    runner = executor if executor is not None \
        else _executor_for(req.jobs, req.cache, req.batch, req.backend)
    if req.sampling != "off":
        base_cell, variant_cell = _sampled_row(
            profile, [base_config, variant_config], req, runner)
        return PairedRun(profile.name, base_cell, variant_cell,
                         use_paired=req.paired is not False)
    instructions, skip = _budget(req)
    base, variant = runner.run([
        SimJob(profile, _resolve_config(base_config, req.frontend),
               instructions, skip),
        SimJob(profile, _resolve_config(variant_config, req.frontend),
               instructions, skip),
    ])
    return PairedRun(profile.name,
                     WorkloadRun(profile.name, full=base),
                     WorkloadRun(profile.name, full=variant))


def run_suite(
    configs: Mapping[str, ProcessorConfig],
    workloads: Optional[Iterable[str]] = None,
    instructions: Optional[int] = None,
    skip: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: Optional[bool] = None,
    frontend: Optional[str] = None,
    sampling: Optional[str] = None,
    ci_target: Optional[float] = None,
    batch: Optional[int] = None,
    backend: Optional[str] = None,
    paired: Optional[bool] = None,
    table_budget: Optional[bool] = None,
    request: Optional[RunRequest] = None,
    executor: Optional[SweepExecutor] = None,
) -> "Dict[str, Dict[str, SimulationResult]] | Dict[str, Dict[str, WorkloadRun]]":
    """Run every (config, workload) pair.

    Returns ``results[config_name][workload_name]``.  With sampling off
    the values are plain :class:`SimulationResult`\\ s and the whole
    cross product is submitted as one batch, so with ``jobs > 1`` (or
    ``REPRO_JOBS``) independent simulations run in parallel and
    replay-mode configs sharing a warm class walk each trace once
    (:mod:`repro.batch`).  The sampled modes return
    :class:`WorkloadRun` cells instead -- each workload's configs
    sample the same windows and submit together, so every config of one
    region window becomes one batched trace walk.  Adaptive sampling
    additionally routes through the whole-table budget controller
    (unless ``table_budget`` resolves off): escalation spends where the
    table's CI-to-target ratio is worst instead of driving every cell
    to its own target.  ``executor`` overrides the executor used either
    way (e.g. to read its cache stats afterwards).
    """
    req = _merge_request(request, instructions=instructions, skip=skip,
                         jobs=jobs, cache=cache, frontend=frontend,
                         sampling=sampling, ci_target=ci_target, batch=batch,
                         backend=backend, paired=paired,
                         table_budget=table_budget)
    names = list(workloads) if workloads is not None else sorted(spec2006_profiles())
    profiles = [get_profile(name) for name in names]
    runner = executor if executor is not None \
        else _executor_for(req.jobs, req.cache, req.batch, req.backend)
    if req.sampling == "adaptive" and req.table_budget is not False:
        return _sampled_table(profiles, configs, req, runner)
    if req.sampling != "off":
        results_by_config: "Dict[str, Dict[str, WorkloadRun]]" = \
            {config_name: {} for config_name in configs}
        for profile in profiles:
            row = _sampled_row(profile, list(configs.values()), req, runner)
            for config_name, cell in zip(configs, row):
                results_by_config[config_name][profile.name] = cell
        return results_by_config
    instructions, skip = _budget(req)
    batch = [
        SimJob(profile, _resolve_config(config, req.frontend),
               instructions, skip)
        for config in configs.values()
        for profile in profiles
    ]
    flat = runner.run(batch)
    results: Dict[str, Dict[str, SimulationResult]] = {}
    it = iter(flat)
    for config_name in configs:
        results[config_name] = {name: next(it) for name in names}
    return results


#: Workloads the profiles target as difficult-branch-prediction; benches
#: verify the *measured* classification against this expectation.
EXPECTED_D_BP = (
    "astar", "bzip2", "gcc", "gobmk", "h264ref", "mcf", "omnetpp",
    "perlbench", "sjeng", "soplex", "xalancbmk",
)


def dbp_workloads() -> Tuple[str, ...]:
    """The program set most benches sweep (expected D-BP programs)."""
    return EXPECTED_D_BP
