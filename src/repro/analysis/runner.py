"""High-level experiment runner: workload name + config -> result.

This is the layer examples and benchmarks call: it builds the synthetic
program for a named profile, runs the timing simulation, and (for paired
experiments) keeps the functional memory seed identical across machine
configurations so base and variant execute the *same* dynamic instruction
stream.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

from ..core.config import ProcessorConfig
from ..core.simulator import SimulationResult, simulate
from ..workloads.generator import build_program
from ..workloads.profiles import WorkloadProfile, get_profile, spec2006_profiles

#: Default instruction budgets; override via environment for longer runs.
DEFAULT_INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "20000"))
DEFAULT_SKIP = int(os.environ.get("REPRO_BENCH_SKIP", "2000"))


def run_workload(
    workload: "str | WorkloadProfile",
    config: Optional[ProcessorConfig] = None,
    instructions: int = DEFAULT_INSTRUCTIONS,
    skip: int = DEFAULT_SKIP,
) -> SimulationResult:
    """Simulate one named workload on one machine configuration."""
    profile = get_profile(workload) if isinstance(workload, str) else workload
    program = build_program(profile)
    return simulate(
        program,
        config,
        max_instructions=instructions,
        skip_instructions=skip,
        mem_seed=profile.mem_seed,
    )


@dataclass
class PairedRun:
    """Base-vs-variant results for one workload (same dynamic stream)."""

    name: str
    base: SimulationResult
    variant: SimulationResult

    @property
    def speedup(self) -> float:
        return self.variant.stats.ipc / self.base.stats.ipc

    @property
    def speedup_percent(self) -> float:
        return (self.speedup - 1.0) * 100.0


def run_pair(
    workload: "str | WorkloadProfile",
    base_config: ProcessorConfig,
    variant_config: ProcessorConfig,
    instructions: int = DEFAULT_INSTRUCTIONS,
    skip: int = DEFAULT_SKIP,
) -> PairedRun:
    """Run base and variant on the identical dynamic instruction stream."""
    profile = get_profile(workload) if isinstance(workload, str) else workload
    base = run_workload(profile, base_config, instructions, skip)
    variant = run_workload(profile, variant_config, instructions, skip)
    return PairedRun(profile.name, base, variant)


def run_suite(
    configs: Mapping[str, ProcessorConfig],
    workloads: Optional[Iterable[str]] = None,
    instructions: int = DEFAULT_INSTRUCTIONS,
    skip: int = DEFAULT_SKIP,
) -> Dict[str, Dict[str, SimulationResult]]:
    """Run every (config, workload) pair.

    Returns ``results[config_name][workload_name]``.
    """
    names = list(workloads) if workloads is not None else sorted(spec2006_profiles())
    results: Dict[str, Dict[str, SimulationResult]] = {}
    for config_name, config in configs.items():
        per_config: Dict[str, SimulationResult] = {}
        for name in names:
            per_config[name] = run_workload(name, config, instructions, skip)
        results[config_name] = per_config
    return results


#: Workloads the profiles target as difficult-branch-prediction; benches
#: verify the *measured* classification against this expectation.
EXPECTED_D_BP = (
    "astar", "bzip2", "gcc", "gobmk", "h264ref", "mcf", "omnetpp",
    "perlbench", "sjeng", "soplex", "xalancbmk",
)


def dbp_workloads() -> Tuple[str, ...]:
    """The program set most benches sweep (expected D-BP programs)."""
    return EXPECTED_D_BP
