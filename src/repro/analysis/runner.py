"""High-level experiment runner: workload name + config -> result.

This is the layer examples and benchmarks call: it builds the synthetic
program for a named profile, runs the timing simulation, and (for paired
experiments) keeps the functional memory seed identical across machine
configurations so base and variant execute the *same* dynamic instruction
stream.

Every entry point routes through :class:`repro.exec.SweepExecutor`, so all
callers get job deduplication, the persistent on-disk result cache, and --
for batched calls like :func:`run_suite` -- parallel fan-out across worker
processes.  Determinism is unaffected: a cached or parallel run returns
stats identical to a fresh serial run (seeded generators, independent jobs).

**Instruction budgets (single source of truth).**  Two budget pairs exist,
both defined here and nowhere else:

* ``DEFAULT_INSTRUCTIONS`` / ``DEFAULT_SKIP`` (20000 / 2000) -- the library
  defaults for ad-hoc ``run_workload`` / ``run_pair`` / ``run_suite`` calls
  and the examples: a quick, representative run.
* ``BENCH_INSTRUCTIONS`` / ``BENCH_SKIP`` (8000 / 16000, overridable via
  ``REPRO_BENCH_INSTRUCTIONS`` / ``REPRO_BENCH_SKIP``) -- the benchmark
  harness budget used by everything under ``benchmarks/``: a shorter timed
  sample after a *longer* warm-up, so the reduced-scale figure
  reproductions start from a representative microarchitectural state.
  The environment overrides affect the bench harness only.

(Historically the two pairs lived in different modules, both read the same
environment variables with different fallbacks, and the bench docstring
disagreed with both -- reconciled here.)
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

from ..core.config import ProcessorConfig
from ..core.simulator import SimulationResult, simulate
from ..exec import SimJob, SweepExecutor
from ..workloads.generator import build_program
from ..workloads.profiles import WorkloadProfile, get_profile, spec2006_profiles

#: Library-default budgets for ad-hoc runs and the examples.
DEFAULT_INSTRUCTIONS = 20_000
DEFAULT_SKIP = 2_000

#: Benchmark-harness budgets (the ``benchmarks/`` suite); override via the
#: environment for longer, smoother runs.
BENCH_INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "8000"))
BENCH_SKIP = int(os.environ.get("REPRO_BENCH_SKIP", "16000"))

_EXECUTOR: Optional[SweepExecutor] = None


def shared_executor() -> SweepExecutor:
    """The module-wide executor (lazy; shares one cache across callers)."""
    global _EXECUTOR
    if _EXECUTOR is None:
        _EXECUTOR = SweepExecutor()
    return _EXECUTOR


def _executor_for(jobs: Optional[int], cache: "Optional[bool]"):
    """Pick the shared executor or build a specialised one."""
    if jobs is None and cache is None:
        return shared_executor()
    if cache is None:
        return SweepExecutor(jobs=jobs,
                             cache=shared_executor().cache or False)
    return SweepExecutor(jobs=jobs, cache=cache)


def _resolve_config(config: Optional[ProcessorConfig],
                    frontend: Optional[str]) -> Optional[ProcessorConfig]:
    """Fold the selected frontend mode into ``config``.

    ``frontend`` wins when given; otherwise the ``REPRO_FRONTEND``
    environment variable applies (read per call, so tests and benches can
    flip it); otherwise the config passes through untouched.  An unknown
    mode fails ``ProcessorConfig`` validation, not silently.
    """
    mode = frontend if frontend is not None \
        else os.environ.get("REPRO_FRONTEND")
    if not mode:
        return config
    cfg = config if config is not None else ProcessorConfig.cortex_a72_like()
    if cfg.frontend_mode == mode:
        return cfg
    return cfg.with_frontend(mode)


def run_workload(
    workload: "str | WorkloadProfile",
    config: Optional[ProcessorConfig] = None,
    instructions: int = DEFAULT_INSTRUCTIONS,
    skip: int = DEFAULT_SKIP,
    cache: Optional[bool] = None,
    frontend: Optional[str] = None,
) -> SimulationResult:
    """Simulate one named workload on one machine configuration.

    ``cache=None`` follows the environment policy (persistent cache on
    unless ``REPRO_CACHE=0``); ``cache=False`` forces a fresh simulation.
    ``frontend`` overrides the config's ``frontend_mode`` ("live" /
    "replay"); None defers to ``REPRO_FRONTEND``, then to the config.
    """
    config = _resolve_config(config, frontend)
    job = SimJob.make(workload, config, instructions, skip)
    if cache is False:
        # Uncached fast path: no hashing, no disk.
        return simulate(
            build_program(job.profile),
            job.config,
            max_instructions=instructions,
            skip_instructions=skip,
            mem_seed=job.profile.mem_seed,
        )
    return _executor_for(None, cache).run_one(job)


@dataclass
class PairedRun:
    """Base-vs-variant results for one workload (same dynamic stream)."""

    name: str
    base: SimulationResult
    variant: SimulationResult

    @property
    def speedup(self) -> float:
        return self.variant.stats.ipc / self.base.stats.ipc

    @property
    def speedup_percent(self) -> float:
        return (self.speedup - 1.0) * 100.0


def run_pair(
    workload: "str | WorkloadProfile",
    base_config: ProcessorConfig,
    variant_config: ProcessorConfig,
    instructions: int = DEFAULT_INSTRUCTIONS,
    skip: int = DEFAULT_SKIP,
    jobs: Optional[int] = None,
    cache: Optional[bool] = None,
    frontend: Optional[str] = None,
) -> PairedRun:
    """Run base and variant on the identical dynamic instruction stream."""
    profile = get_profile(workload) if isinstance(workload, str) else workload
    executor = _executor_for(jobs, cache)
    base, variant = executor.run([
        SimJob(profile, _resolve_config(base_config, frontend),
               instructions, skip),
        SimJob(profile, _resolve_config(variant_config, frontend),
               instructions, skip),
    ])
    return PairedRun(profile.name, base, variant)


def run_suite(
    configs: Mapping[str, ProcessorConfig],
    workloads: Optional[Iterable[str]] = None,
    instructions: int = DEFAULT_INSTRUCTIONS,
    skip: int = DEFAULT_SKIP,
    jobs: Optional[int] = None,
    cache: Optional[bool] = None,
    frontend: Optional[str] = None,
) -> Dict[str, Dict[str, SimulationResult]]:
    """Run every (config, workload) pair.

    Returns ``results[config_name][workload_name]``.  The whole cross
    product is submitted as one batch, so with ``jobs > 1`` (or
    ``REPRO_JOBS``) independent simulations run in parallel; results are
    identical to the serial path.
    """
    names = list(workloads) if workloads is not None else sorted(spec2006_profiles())
    profiles = [get_profile(name) for name in names]
    batch = [
        SimJob(profile, _resolve_config(config, frontend),
               instructions, skip)
        for config in configs.values()
        for profile in profiles
    ]
    flat = _executor_for(jobs, cache).run(batch)
    results: Dict[str, Dict[str, SimulationResult]] = {}
    it = iter(flat)
    for config_name in configs:
        results[config_name] = {name: next(it) for name in names}
    return results


#: Workloads the profiles target as difficult-branch-prediction; benches
#: verify the *measured* classification against this expectation.
EXPECTED_D_BP = (
    "astar", "bzip2", "gcc", "gobmk", "h264ref", "mcf", "omnetpp",
    "perlbench", "sjeng", "soplex", "xalancbmk",
)


def dbp_workloads() -> Tuple[str, ...]:
    """The program set most benches sweep (expected D-BP programs)."""
    return EXPECTED_D_BP
