"""Offline branch/computation slice analysis (the paper's Sec. II / Fig. 2).

A *branch slice* is the sub-graph of the dynamic dataflow graph containing
a branch (as the leaf) and every instruction it directly or indirectly
depends on; a *computation slice* is the same rooted at a non-branch.  The
hardware slice tracker of :mod:`repro.pubs` discovers branch slices
incrementally through ``def_tab``/``brslice_tab``; this module computes
them *exactly* on an executed instruction window, providing ground truth
for tests and a workload-characterization tool (average slice size/depth,
the fraction of the dynamic stream inside branch slices -- the quantity
that sizes the priority partition).

Graphs are :class:`networkx.DiGraph` with dynamic sequence numbers as nodes
and producer -> consumer edges for register dataflow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

import networkx as nx

from ..isa.executor import DynamicOp, FunctionalExecutor
from ..isa.instruction import Program


def build_dataflow_graph(records: Iterable[DynamicOp]) -> "nx.DiGraph":
    """The dynamic register-dataflow graph of an executed window.

    Node ``seq`` carries attributes ``pc`` and ``is_branch``; an edge
    ``p -> c`` means instruction ``c`` reads a register whose last writer
    in the window is ``p``.  Memory dependences are *not* edges (the paper
    defines slices over register dataflow tracked by ``def_tab``).
    """
    graph = nx.DiGraph()
    last_writer: Dict[int, int] = {}
    for record in records:
        inst = record.inst
        graph.add_node(record.seq, pc=inst.pc,
                       is_branch=inst.is_conditional_branch)
        for src in inst.sources():
            producer = last_writer.get(src)
            if producer is not None:
                graph.add_edge(producer, record.seq)
        if inst.dest is not None:
            last_writer[inst.dest] = record.seq
    return graph


def dynamic_slice(graph: "nx.DiGraph", seq: int) -> Set[int]:
    """The slice rooted at node ``seq``: its ancestors plus itself."""
    if seq not in graph:
        raise KeyError(f"no instruction with seq {seq} in the window")
    members = set(nx.ancestors(graph, seq))
    members.add(seq)
    return members


def branch_slices(graph: "nx.DiGraph") -> Dict[int, Set[int]]:
    """All branch slices in the window, keyed by branch seq."""
    return {
        seq: dynamic_slice(graph, seq)
        for seq, data in graph.nodes(data=True)
        if data["is_branch"]
    }


def slice_depth(graph: "nx.DiGraph", seq: int) -> int:
    """Length of the longest dependence chain ending at ``seq``.

    This is the number of extra cycles a one-cycle-per-step issue delay
    adds to the branch's resolution -- the paper's five-instruction-chain
    example in Sec. I.
    """
    members = dynamic_slice(graph, seq)
    sub = graph.subgraph(members)
    return int(nx.dag_longest_path_length(sub))


@dataclass(frozen=True)
class SliceStatistics:
    """Aggregate slice characterization of an executed window."""

    instructions: int
    branches: int
    mean_slice_size: float
    max_slice_size: int
    mean_slice_depth: float
    #: Fraction of dynamic instructions belonging to >= 1 branch slice.
    branch_slice_coverage: float

    def __str__(self) -> str:
        return (
            f"{self.branches} branch slices over {self.instructions} "
            f"instructions: mean size {self.mean_slice_size:.1f}, max "
            f"{self.max_slice_size}, mean depth {self.mean_slice_depth:.1f}, "
            f"coverage {self.branch_slice_coverage:.0%}"
        )


def characterize_window(
    program: Program,
    instructions: int,
    skip: int = 0,
    mem_seed: int = 0,
    window: Optional[int] = None,
) -> SliceStatistics:
    """Execute ``program`` and characterize its branch slices.

    ``window`` bounds the dependence horizon (default: the whole run);
    realistic hardware only sees slices within the instruction window, so
    128 (the ROB size) approximates what PUBS can act on.
    """
    executor = FunctionalExecutor(program, mem_seed=mem_seed)
    for _ in range(skip):
        executor.step()
    records: List[DynamicOp] = executor.run(instructions)
    if window is None:
        window = instructions
    sizes: List[int] = []
    depths: List[int] = []
    covered: Set[int] = set()
    branches = 0
    # Slide non-overlapping windows to bound ancestor computation.
    for start in range(0, len(records), window):
        chunk = records[start:start + window]
        graph = build_dataflow_graph(chunk)
        for seq, members in branch_slices(graph).items():
            branches += 1
            sizes.append(len(members))
            depths.append(slice_depth(graph, seq))
            covered.update(members)
    return SliceStatistics(
        instructions=len(records),
        branches=branches,
        mean_slice_size=sum(sizes) / len(sizes) if sizes else 0.0,
        max_slice_size=max(sizes) if sizes else 0,
        mean_slice_depth=sum(depths) / len(depths) if depths else 0.0,
        branch_slice_coverage=len(covered) / len(records) if records else 0.0,
    )
