"""Plain-text rendering of tables and figure-like charts.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output aligned and readable in a
terminal (and in the captured bench_output.txt).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """A simple aligned ASCII table."""
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        sep,
    ]
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal ASCII bars (one per label), scaled to the max value."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return "(no data)"
    label_w = max(len(l) for l in labels)
    peak = max((abs(v) for v in values), default=0.0)
    scale = width / peak if peak > 0 else 0.0
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(0, int(round(abs(value) * scale)))
        sign = "-" if value < 0 else ""
        lines.append(f"{label.ljust(label_w)} | {sign}{bar} {value:.2f}{unit}")
    return "\n".join(lines)


def render_scatter(
    points: Sequence[tuple],
    x_label: str,
    y_label: str,
    width: int = 60,
    height: int = 16,
) -> str:
    """A coarse ASCII scatter plot of (x, y, marker) points (Fig. 9 style)."""
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y, *rest in points:
        marker = rest[0] if rest else "*"
        col = int((x - x_min) / x_span * (width - 1))
        row = height - 1 - int((y - y_min) / y_span * (height - 1))
        grid[row][col] = marker
    lines = [f"{y_label} (top={y_max:.2f}, bottom={y_min:.2f})"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} (left={x_min:.2f}, right={x_max:.2f})")
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if math.isnan(cell):
            return "-"
        return f"{cell:.3f}"
    return str(cell)
