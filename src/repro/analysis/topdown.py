"""Top-down cycle attribution built on the ``td_*`` slot counters.

DESIGN.md §15.  Every cycle the dispatch stage accounts exactly
``decode_width`` issue slots into one of ten leaf buckets, so the
hierarchy here sums to ``decode_width * cycles`` by construction (the
``topdown-cycle-accounting`` invariant re-checks that on every verified
sweep).  Level 1 follows the classic topdown split:

* ``retiring`` -- slots that dispatched a correct-path uop;
* ``frontend`` -- empty slots while the front end starved dispatch,
  split into plain fetch-redirect bubbles and L1I-miss stalls;
* ``bad_speculation`` -- slots spent on wrong-path uops plus the
  recovery/refill bubbles after a misprediction.  The recovery bucket
  carries the paper's Sec. II-A E_wait decomposition (frontend, IQ
  wait, execute per mispredicted branch) so a PUBS-vs-base delta can be
  traced to the component PUBS actually attacks;
* ``backend`` -- slots lost to a full backend structure, split by the
  (disjoint) per-cause dispatch-stall counters: ROB, IQ, LSQ, physical
  registers, and the priority partition.

Per-bucket CPI contributions divide slots by ``decode_width *
committed``; contributions of the level-1 buckets sum to CPI exactly,
so :func:`compare_topdown` can name the bucket responsible for a CPI
delta rather than just reporting the speedup.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..core.simulator import SimulationResult
from ..core.stats import SimStats

#: Level-1 buckets and their level-2 leaves, in render order.
HIERARCHY: Mapping[str, Tuple[str, ...]] = {
    "retiring": ("retiring",),
    "frontend": ("fetch_redirect", "l1i_miss"),
    "bad_speculation": ("wrong_path", "recovery"),
    "backend": ("rob", "iq", "lsq", "regs", "priority"),
}

LEVEL1: Tuple[str, ...] = tuple(HIERARCHY)

#: SimStats counter backing each leaf.
LEAF_COUNTERS: Mapping[str, str] = {
    "retiring": "td_retire_slots",
    "fetch_redirect": "td_fe_fetch_slots",
    "l1i_miss": "td_fe_l1i_slots",
    "wrong_path": "td_wrongpath_slots",
    "recovery": "td_recovery_slots",
    "rob": "td_be_rob_slots",
    "iq": "td_be_iq_slots",
    "lsq": "td_be_lsq_slots",
    "regs": "td_be_regs_slots",
    "priority": "td_be_priority_slots",
}

#: E_wait components carried alongside the slot buckets (Sec. II-A).
_MISSSPEC_COUNTERS: Tuple[str, ...] = (
    "missspec_penalty_cycles",
    "missspec_frontend_cycles",
    "missspec_iq_wait_cycles",
    "missspec_execute_cycles",
    "mispredictions",
)


@dataclass(frozen=True)
class TopdownBreakdown:
    """One workload's slot-attribution hierarchy.

    Counts are floats so weighted sampled aggregates (SimPoint cluster
    populations) use the same type; full-run breakdowns hold exact
    integers.
    """

    name: str
    width: int  #: decode width the slots were accounted against
    cycles: float
    committed: float
    leaves: Mapping[str, float]  #: leaf bucket -> slots
    missspec: Mapping[str, float]  #: Sec. II-A E_wait cycle components

    # -- construction ---------------------------------------------------

    @classmethod
    def from_stats(cls, stats: SimStats, width: int,
                   name: str = "") -> "TopdownBreakdown":
        return cls(
            name=name,
            width=width,
            cycles=float(stats.cycles),
            committed=float(stats.committed),
            leaves={leaf: float(getattr(stats, counter))
                    for leaf, counter in LEAF_COUNTERS.items()},
            missspec={c: float(getattr(stats, c))
                      for c in _MISSSPEC_COUNTERS},
        )

    @classmethod
    def from_result(cls, result: SimulationResult) -> "TopdownBreakdown":
        return cls.from_stats(result.stats, result.config.decode_width,
                              name=result.program_name)

    @classmethod
    def from_results(cls, results: Sequence[SimulationResult],
                     weights: "Sequence[int] | None" = None,
                     name: str = "") -> "TopdownBreakdown":
        """Weighted whole-span breakdown over sampled regions.

        Every counter scales by its region's plan weight -- the same
        rule :func:`repro.sampling.weighted_counter` applies to CPI's
        numerator and denominator, so sampled topdown fractions are as
        honest as the sampled CPI they sit next to.
        """
        if not results:
            raise ValueError("no regions to aggregate")
        if weights is None:
            weights = (1,) * len(results)
        if len(weights) != len(results):
            raise ValueError(
                f"{len(weights)} weights for {len(results)} regions")
        widths = {r.config.decode_width for r in results}
        if len(widths) != 1:
            raise ValueError(f"mixed decode widths {sorted(widths)}")

        def total(attr: str) -> float:
            return float(sum(w * getattr(r.stats, attr)
                             for w, r in zip(weights, results)))

        return cls(
            name=name or results[0].program_name,
            width=widths.pop(),
            cycles=total("cycles"),
            committed=total("committed"),
            leaves={leaf: total(counter)
                    for leaf, counter in LEAF_COUNTERS.items()},
            missspec={c: total(c) for c in _MISSSPEC_COUNTERS},
        )

    # -- derived metrics ------------------------------------------------

    @property
    def total_slots(self) -> float:
        return self.width * self.cycles

    @property
    def cpi(self) -> float:
        return self.cycles / self.committed if self.committed else math.nan

    def level1(self) -> Dict[str, float]:
        """Level-1 bucket -> slots; values sum to :attr:`total_slots`."""
        return {bucket: sum(self.leaves[leaf] for leaf in leaves)
                for bucket, leaves in HIERARCHY.items()}

    def fraction(self, bucket: str) -> float:
        """Share of all issue slots in a level-1 bucket or a leaf."""
        total = self.total_slots
        if not total:
            return math.nan
        if bucket in HIERARCHY:
            return self.level1()[bucket] / total
        return self.leaves[bucket] / total

    def cpi_contribution(self, bucket: str) -> float:
        """Cycles-per-instruction attributable to a bucket or leaf.

        Level-1 contributions sum to :attr:`cpi` exactly, so the
        difference of two breakdowns' contributions decomposes a CPI
        delta without residue.
        """
        slots = (self.level1()[bucket] if bucket in HIERARCHY
                 else self.leaves[bucket])
        denom = self.width * self.committed
        return slots / denom if denom else math.nan

    @property
    def dominant_bucket(self) -> Optional[str]:
        """The non-retiring level-1 bucket holding the most slots.

        None when no slots were lost at all (every slot retired) -- a
        machine with nothing to fix has no dominant bottleneck.
        """
        level1 = self.level1()
        lost = {b: s for b, s in level1.items() if b != "retiring"}
        if not any(lost.values()):
            return None
        return max(lost, key=lambda b: lost[b])

    # -- rendering ------------------------------------------------------

    def render(self) -> str:
        """Multi-line hierarchy with per-bucket slot shares and CPI."""
        title = self.name or "topdown"
        lines = [f"{title}: width={self.width} cycles={self.cycles:.0f} "
                 f"committed={self.committed:.0f} CPI={self.cpi:.3f}"]
        for bucket, leaves in HIERARCHY.items():
            lines.append(
                f"  {bucket:<16} {100 * self.fraction(bucket):6.1f}%  "
                f"(CPI {self.cpi_contribution(bucket):.3f})")
            if len(leaves) > 1:
                for leaf in leaves:
                    lines.append(
                        f"    {leaf:<14} {100 * self.fraction(leaf):6.1f}%")
        lines.append("  " + self._ewait_line())
        return "\n".join(lines)

    def _ewait_line(self) -> str:
        branches = self.missspec["mispredictions"]
        if not branches:
            return "E_wait: no mispredictions"
        fe = self.missspec["missspec_frontend_cycles"] / branches
        iq = self.missspec["missspec_iq_wait_cycles"] / branches
        ex = self.missspec["missspec_execute_cycles"] / branches
        total = self.missspec["missspec_penalty_cycles"] / branches
        return (f"E_wait/branch: FE {fe:.1f} + IQ {iq:.1f} + EX {ex:.1f} "
                f"= {total:.1f}cy over {branches:.0f} mispredictions")


def breakdown_of(run, name: str = "") -> TopdownBreakdown:
    """Breakdown of a result in any of the runner's shapes.

    Accepts a plain :class:`~repro.core.simulator.SimulationResult`, a
    :class:`~repro.analysis.runner.WorkloadRun` cell (full or sampled),
    or a :class:`~repro.sampling.run.SampledRun`.  Sampled shapes
    aggregate their per-region counters under the plan weights, so the
    reported fractions estimate the whole span -- same rule as the
    sampled CPI.
    """
    cell_sampled = getattr(run, "sampled", None)  # WorkloadRun, sampled
    if cell_sampled is not None:
        run = cell_sampled
    cell_full = getattr(run, "full", None)  # WorkloadRun, full
    if cell_full is not None:
        run = cell_full
    plan = getattr(run, "plan", None)  # SampledRun
    if plan is not None:
        return TopdownBreakdown.from_results(
            run.results, [r.weight for r in plan.regions],
            name=name or run.workload)
    breakdown = TopdownBreakdown.from_result(run)
    if name:
        return TopdownBreakdown(name=name, width=breakdown.width,
                                cycles=breakdown.cycles,
                                committed=breakdown.committed,
                                leaves=breakdown.leaves,
                                missspec=breakdown.missspec)
    return breakdown


@dataclass(frozen=True)
class TopdownDelta:
    """Which bucket moved between a base and a variant breakdown."""

    base: TopdownBreakdown
    variant: TopdownBreakdown
    #: Level-1 bucket -> CPI-contribution delta (variant - base); the
    #: values sum to the CPI delta exactly.
    contributions: Mapping[str, float]

    @property
    def cpi_delta(self) -> float:
        return self.variant.cpi - self.base.cpi

    @property
    def mover(self) -> str:
        """The level-1 bucket whose contribution moved the most."""
        return max(self.contributions,
                   key=lambda b: abs(self.contributions[b]))

    def render(self) -> str:
        lines = [f"topdown delta ({self.base.name} -> {self.variant.name}): "
                 f"CPI {self.base.cpi:.3f} -> {self.variant.cpi:.3f} "
                 f"({self.cpi_delta:+.3f})"]
        for bucket in LEVEL1:
            delta = self.contributions[bucket]
            tag = "  <-- moved most" if bucket == self.mover else ""
            lines.append(
                f"  {bucket:<16} {self.base.cpi_contribution(bucket):6.3f} "
                f"-> {self.variant.cpi_contribution(bucket):6.3f} "
                f"({delta:+.3f}){tag}")
        base_iq = self.base.missspec["missspec_iq_wait_cycles"]
        var_iq = self.variant.missspec["missspec_iq_wait_cycles"]
        base_n = self.base.missspec["mispredictions"]
        var_n = self.variant.missspec["mispredictions"]
        if base_n and var_n:
            lines.append(
                f"  E_wait IQ component/branch: {base_iq / base_n:.1f} -> "
                f"{var_iq / var_n:.1f}cy")
        return "\n".join(lines)


def compare_topdown(base: TopdownBreakdown,
                    variant: TopdownBreakdown) -> TopdownDelta:
    """Decompose a CPI delta into per-bucket contribution moves."""
    contributions = {
        bucket: variant.cpi_contribution(bucket)
        - base.cpi_contribution(bucket)
        for bucket in LEVEL1
    }
    return TopdownDelta(base=base, variant=variant,
                        contributions=contributions)


def suite_table_rows(breakdowns: Sequence[TopdownBreakdown],
                     ) -> Tuple[Tuple[str, ...],
                                Tuple[Tuple[object, ...], ...]]:
    """(headers, rows) of level-1 fractions for ``render_table``."""
    headers = ("workload", "CPI") + tuple(LEVEL1) + ("dominant",)
    rows = tuple(
        (b.name, b.cpi)
        + tuple(b.fraction(bucket) for bucket in LEVEL1)
        + (b.dominant_bucket or "-",)
        for b in breakdowns)
    return headers, rows
