"""Batched multi-config replay: walk the trace once, time N machines.

Every design-space figure (Figs. 10/11/16: priority entries, confidence
bits, processor size) replays the *same* committed instruction stream
once per configuration.  Sequential replay therefore repeats, per
config, work that depends only on the (workload, budget, warm-class)
triple: acquiring and decoding the trace, materializing
:class:`~repro.isa.executor.DynamicOp` records, building the program,
and training (or unpickling) the warm microarchitectural state.

:func:`run_batch` hoists all of that out of the per-config loop.  One
:class:`SharedReplayWindow` materializes each trace record exactly once
-- a numpy structure-of-arrays pass over the trace's typed arrays turns
the flag bytes into taken/memory columns chunk-wise, and the resulting
``DynamicOp`` objects are shared by every member (the pipeline never
mutates them).  The first member trains the warm state through the
ordinary :class:`~repro.core.pipeline.Pipeline` warm path; the rest
restore a pickled snapshot of it, exactly as the warm-checkpoint store
would hand it to them.  Each member then runs to completion on its own
:class:`Pipeline` -- private IQ, ROB, predictor, caches, wrong-path
fetch -- so results are bit-identical to sequential replay, which the
golden and property tests pin down.

What may share a batch is defined by
:func:`~repro.exec.jobs.batch_signature`: same workload, budget and
replay window, same memory configuration, same warm front-end slice
(:func:`~repro.core.pipeline._front_warm_config`).  Members may differ
in anything that only steers timing -- issue-policy/PUBS knobs
(priority entries, stall policy, mode switching), IQ organization,
window sizes, verification level.
"""

from __future__ import annotations

import pickle
from typing import List, Optional, Sequence

from ..core.pipeline import Pipeline
from ..core.simulator import SimulationResult, result_from_pipeline
from ..exec.jobs import SimJob, batch_signature
from ..isa.executor import DynamicOp
from ..isa.instruction import INST_BYTES, Program
from ..trace.format import FLAG_MEM, FLAG_TAKEN, Trace
from ..trace.replay import TraceExhaustedError, static_decode_table
from ..trace.store import REPLAY_MARGIN, TraceStore, shared_store

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a baked-in dependency
    _np = None

#: Records materialized per structure-of-arrays pass.  Large enough to
#: amortize the numpy column extraction, small enough that a short run
#: never materializes far past what it fetches.
CHUNK = 4096

#: Pipeline attributes snapshot-copied from the first member to the rest
#: -- the same component set the warm-checkpoint store persists, plus
#: the I-line dedup mark the warm walk leaves behind.
_WARM_FIELDS = ("hierarchy", "predictor", "btb", "slice_tracker",
                "_last_ifetch_line")


class SharedReplayWindow:
    """One materialization of a trace span, shared by a whole batch.

    Structure-of-arrays in, array-of-objects out: each chunk converts
    the trace's parallel typed arrays (pcs, flags, next_pcs) into
    Python-level columns with numpy, then builds one
    :class:`DynamicOp` per record.  Records are immutable to the
    pipeline, so every :class:`BatchCursor` hands out the *same*
    objects -- the per-record decode cost is paid once per batch, not
    once per member.

    Unlike :class:`~repro.trace.replay.TraceReplayFrontEnd`, releases do
    not free records: later members still need the span the first one
    has finished with.  Memory is bounded by the batch's single window
    (measure + detail + fetch margin), which the caller sized the trace
    acquisition to.
    """

    def __init__(self, trace: Trace, program: Program, base: int):
        self._trace = trace
        self._program = program
        self._decode = static_decode_table(program)
        self._ops: List[DynamicOp] = []
        self._base = base

    @property
    def trace(self) -> Trace:
        return self._trace

    @property
    def base(self) -> int:
        return self._base

    @property
    def high(self) -> int:
        """Sequence number just past the highest materialized record."""
        return self._base + len(self._ops)

    def _materialize_chunk(self) -> None:
        trace = self._trace
        lo = self._base + len(self._ops)
        if lo >= len(trace):
            raise TraceExhaustedError(
                f"trace exhausted at record {lo} "
                f"(captured {len(trace)}); acquire a longer trace")
        hi = min(lo + CHUNK, len(trace))
        decode = self._decode
        pcs = trace.pcs
        flags = trace.flags
        next_pcs = trace.next_pcs
        mem_addrs = trace.mem_addrs
        append = self._ops.append
        if _np is not None:
            f = _np.frombuffer(flags, dtype=_np.uint8)[lo:hi]
            idx = (_np.frombuffer(pcs, dtype=_np.uint32)[lo:hi]
                   // INST_BYTES).tolist()
            taken = ((f & FLAG_TAKEN) != 0).tolist()
            mem = ((f & FLAG_MEM) != 0).tolist()
            nxt = _np.frombuffer(next_pcs, dtype=_np.uint32)[lo:hi].tolist()
            for off in range(hi - lo):
                seq = lo + off
                append(DynamicOp(
                    seq, decode[idx[off]], taken[off], nxt[off],
                    mem_addrs[seq] if mem[off] else None))
            return
        for seq in range(lo, hi):
            f = flags[seq]
            append(DynamicOp(
                seq, decode[pcs[seq] // INST_BYTES], bool(f & FLAG_TAKEN),
                next_pcs[seq], mem_addrs[seq] if f & FLAG_MEM else None))

    def get(self, seq: int) -> DynamicOp:
        if seq < self._base:
            raise IndexError(
                f"record {seq} is before the window base ({self._base})")
        while seq >= self._base + len(self._ops):
            self._materialize_chunk()
        return self._ops[seq - self._base]


class BatchCursor:
    """One member's cursor-protocol view of a :class:`SharedReplayWindow`.

    Implements the fetch/commit contract of
    :class:`~repro.trace.replay.TraceReplayFrontEnd` -- ``get`` by
    dynamic sequence number, ``release`` advancing a low-water mark --
    but backed by the shared window, so a ``get`` that the previous
    member already materialized is a list index.  The per-member mark
    only guards against re-reading released records; it frees nothing.
    """

    def __init__(self, window: SharedReplayWindow):
        self._window = window
        self._low = window.base

    @property
    def trace(self) -> Trace:
        return self._window.trace

    @property
    def high(self) -> int:
        return self._window.high

    def get(self, seq: int) -> DynamicOp:
        if seq < self._low:
            raise IndexError(
                f"trace record {seq} already released (base={self._low})")
        return self._window.get(seq)

    def release(self, seq: int) -> None:
        if seq > self._low:
            self._low = seq

    def attach(self, trace: Trace) -> None:
        raise RuntimeError(
            "batch members are single-run: resume the pipeline through "
            "sequential replay instead")


def _prepare_member(pipeline: Pipeline, window: SharedReplayWindow,
                    store: TraceStore, job: SimJob,
                    warm_blob: Optional[bytes]) -> bytes:
    """Install the shared cursor and warm state into one member.

    The first member (``warm_blob`` is None) trains or restores warm
    state through the pipeline's own replay-warmup code -- the exact
    branch structure of :meth:`Pipeline._prepare_replay` -- and the
    trained components are pickled once.  Every later member unpickles
    that snapshot, which is precisely how the warm-checkpoint store
    would deliver the state to it (fresh objects per member, tracker
    config rebound), so the result is bit-identical either way.
    """
    cfg = pipeline.config
    region = cfg.replay_region
    trace = window.trace
    if region is not None:
        if job.skip:
            raise ValueError(
                "replay_region and skip_instructions are mutually "
                "exclusive: the region's warmup already positions "
                "the timed window")
        seat = region.start - region.detail
    else:
        seat = job.skip
    pipeline.cursor = BatchCursor(window)
    if warm_blob is None:
        if region is not None:
            if region.warmup == seat and seat > 0:
                pipeline._restore_or_train_warm(store, trace, seat)
            else:
                pipeline._prewarm_regions()
                pipeline._warm_mem_span(trace, seat - region.warmup, seat)
                pipeline._warm_front_span(trace, seat - region.warmup, seat)
        elif seat > 0:
            pipeline._restore_or_train_warm(store, trace, seat)
        else:
            pipeline._prewarm_regions()
        warm_blob = pickle.dumps(
            tuple(getattr(pipeline, name) for name in _WARM_FIELDS),
            protocol=pickle.HIGHEST_PROTOCOL)
    else:
        for name, value in zip(_WARM_FIELDS, pickle.loads(warm_blob)):
            setattr(pipeline, name, value)
        # Geometry-equal by signature; rebind so later field reads see
        # this member's own config object, not the snapshot's.
        pipeline.slice_tracker.config = cfg.pubs
    pipeline._next_trace_seq = seat
    if region is not None:
        pipeline._pending_detail = region.detail
        if pipeline.verifier is not None:
            pipeline.verifier.on_region(trace, seat)
    pipeline.cursor.release(seat)
    pipeline._replay_prepared = True
    return warm_blob


def run_batch(jobs: Sequence[SimJob],
              trace_source: Optional[TraceStore] = None
              ) -> List[SimulationResult]:
    """Run same-signature replay jobs with one walk of their trace.

    Returns one :class:`SimulationResult` per job, in request order,
    bit-identical to running each job through
    :func:`~repro.exec.jobs.execute_job`.  ``trace_source`` overrides
    the trace store (tests point it at a temporary directory); None
    uses the shared environment-selected store, as sequential replay
    does.
    """
    jobs = list(jobs)
    if not jobs:
        return []
    signature = batch_signature(jobs[0])
    if signature is None:
        raise ValueError("batched replay requires frontend_mode='replay'")
    for job in jobs[1:]:
        if batch_signature(job) != signature:
            raise ValueError(
                "batch members must share workload, budget, replay window, "
                "memory configuration and warm front-end configuration")

    from ..workloads.generator import build_program
    profile = jobs[0].profile
    program = build_program(profile)
    store = trace_source if trace_source is not None else shared_store()
    lead = jobs[0]
    region = lead.config.replay_region
    if region is not None:
        needed = region.start + lead.instructions + REPLAY_MARGIN
        base = region.start - region.detail
        skip_hint = 0
    else:
        needed = lead.skip + lead.instructions + REPLAY_MARGIN
        base = lead.skip
        skip_hint = lead.skip
    trace = store.acquire(program, profile.mem_seed, needed,
                          skip_hint=skip_hint)
    window = SharedReplayWindow(trace, program, base)

    warm_blob: Optional[bytes] = None
    results: List[SimulationResult] = []
    for job in jobs:
        pipeline = Pipeline(program, job.config, mem_seed=profile.mem_seed,
                            trace_source=store)
        warm_blob = _prepare_member(pipeline, window, store, job, warm_blob)
        stats = pipeline.run(job.instructions, job.skip)
        results.append(result_from_pipeline(pipeline, stats))
    return results


__all__ = [
    "CHUNK",
    "BatchCursor",
    "SharedReplayWindow",
    "run_batch",
]
