"""Batched multi-config trace replay (DESIGN.md §12).

One trace walk feeds N live :class:`~repro.core.pipeline.Pipeline`
instances whose configurations differ only in issue-policy/PUBS timing
knobs -- the warm-checkpoint equivalence class.  See
:mod:`repro.batch.replay` for the mechanics and
:func:`repro.exec.jobs.batch_signature` for what may share a batch.
"""

from .replay import BatchCursor, SharedReplayWindow, run_batch

__all__ = ["BatchCursor", "SharedReplayWindow", "run_batch"]
