"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``list``                      -- the 28 workloads and their profiles
* ``run WORKLOAD``              -- simulate one workload on one machine
* ``compare WORKLOAD``          -- base vs PUBS side by side
  (``--topdown`` adds the per-bucket CPI delta: which bucket moved)
* ``report --topdown``          -- top-down cycle attribution (§15):
  one workload renders the hierarchy, several render a suite table,
  ``--compare`` decomposes the base-vs-variant CPI delta per workload
* ``suite``                     -- Fig. 8-style sweep over many workloads
* ``cost``                      -- Table III hardware cost
* ``disasm WORKLOAD``           -- generated program listing
* ``cache stats|clear``         -- persistent result-cache maintenance
* ``verify [--workload W]``     -- differential-oracle + invariant check
* ``trace record|info``         -- capture/inspect replay traces (§9)
* ``sample [WORKLOADS]``        -- sampled CPI estimate (§10, §11)
* ``profile WORKLOAD``          -- cProfile one run, print top hotspots
* ``stress list|run``           -- stress-kernel families vs their
  expected-bottleneck contracts (§13)
* ``worker``                    -- lease and execute jobs from a shared
  queue directory (the fabric's execution side, DESIGN.md §16)
* ``serve``                     -- line-JSON sweep server: concurrent
  clients submit ``RunRequest`` sweeps, cells stream back as they
  finish, overlapping submissions dedup across clients
* ``submit``                    -- run a suite *through the fabric*
  (``--queue-dir`` pushes onto the shared queue, ``--host`` talks to a
  ``repro serve``); renders the same table as ``suite``
* ``status``                    -- fabric status: queue counts or serve
  counters, plus recent cells with their top-down movers

Simulations run through the sweep executor: ``--jobs N`` (or ``REPRO_JOBS``)
fans independent runs across worker processes, and results persist in the
on-disk cache (``REPRO_CACHE_DIR``; ``--no-cache`` or ``REPRO_CACHE=0``
disables it).  ``--backend inline|process|queue`` (or ``REPRO_BACKEND``)
picks where planned units execute, and ``--queue-dir`` points the queue
backend at a shared directory (or ``REPRO_QUEUE_DIR``).  ``--frontend
replay`` (or ``REPRO_FRONTEND=replay``) feeds
the timing model from recorded traces instead of live functional execution
-- bit-identical results, much faster sweeps.  ``--sampling fixed|adaptive``
(or ``REPRO_SAMPLING``) estimates whole-span metrics from sampled regions
instead of simulating everything, annotating every figure with its ~95% CI;
``--sampling adaptive`` keeps adding regions until the CI half-width falls
below ``--ci-target`` (or ``REPRO_CI_TARGET``).  ``--batch N`` (or
``REPRO_BATCH``) lets up to N replay configs of one workload share a
single batched trace walk (DESIGN.md §12); 0 disables batching.
``--request-file FILE`` loads a serialized ``RunRequest`` (the wire
JSON, DESIGN.md §16) as the baseline the flags override.  These shared
flags are declared once per *flag family* (:func:`add_flag_families`)
and follow one precedence everywhere: explicit flag > request file >
environment > default.
"""

from __future__ import annotations

import argparse
import dataclasses
import math
import os
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional

from .analysis import (
    breakdown_of,
    compare_topdown,
    geometric_mean,
    render_table,
    suite_table_rows,
)
from .api import (
    AdaptiveRun,
    PairedRun,
    RunRequest,
    WorkloadRun,
    run_pair,
    run_suite,
    run_workload,
    sample_workload,
)
from .core import ProcessorConfig
from .core.stats import D_BP_BRANCH_MPKI_THRESHOLD
from .exec import (
    CACHE_SCHEMA_VERSION,
    DEFAULT_LEASE_TTL,
    DEFAULT_MAX_ATTEMPTS,
    JobQueue,
    ProcessPoolBackend,
    QueueBackend,
    ResultCache,
    SweepExecutor,
    WireError,
    backend_names,
    create_backend,
    run_worker,
)
from .pubs import PubsConfig, pubs_hardware_cost
from .verify import InvariantViolation
from .workloads import build_program, get_profile, spec2006_profiles


def _machine_from_args(args) -> ProcessorConfig:
    cfg = ProcessorConfig.cortex_a72_like(
        iq_organization=args.iq_org,
        distributed_iq=args.distributed,
    )
    if args.age_matrix:
        cfg = cfg.with_age_matrix()
    if args.pubs:
        cfg = cfg.with_pubs(PubsConfig(
            priority_entries=args.priority_entries,
            stall_policy=not args.non_stall,
        ))
    if args.smt:
        cfg = cfg.with_smt(interleave=args.smt_interleave)
    # Machine knobs only: --frontend is applied by each command (via the
    # runner's frontend= parameter or an explicit with_frontend) so that
    # compare/suite's "no machine flags -> default to PUBS" equality check
    # is not defeated by a frontend-only difference.
    return cfg


def _add_machine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--pubs", action="store_true",
                        help="enable PUBS (Table II defaults)")
    parser.add_argument("--priority-entries", type=int, default=6,
                        help="PUBS priority entries (default 6)")
    parser.add_argument("--non-stall", action="store_true",
                        help="use the non-stall dispatch policy")
    parser.add_argument("--age-matrix", action="store_true",
                        help="add the age matrix to the IQ")
    parser.add_argument("--iq-org", default="random",
                        choices=["random", "shifting", "circular"],
                        help="IQ organization (Sec. III-B1)")
    parser.add_argument("--distributed", action="store_true",
                        help="distribute the IQ per FU class (Sec. III-C2)")
    parser.add_argument("--smt", action="store_true",
                        help="enable the SMT-interference co-runner "
                             "(pollutes predictor/BTB/PUBS tables)")
    parser.add_argument("--smt-interleave", type=int, default=64,
                        metavar="N",
                        help="commits between co-runner bursts "
                             "(default 64; smaller = more interference)")


def _positive_float(text: str) -> float:
    """argparse type for fractions that must be > 0 (e.g. --ci-target).

    Raising :class:`argparse.ArgumentTypeError` makes argparse exit
    with status 2 and the flag's own usage message, instead of a deep
    ``ValueError`` traceback from the sampling layer.
    """
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid float value: {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive fraction, got {text}")
    return value


def _positive_int(text: str) -> int:
    """argparse type for counts that must be >= 1 (e.g. --jobs).

    ``--jobs 0`` used to reach the worker pool and die with a deep
    traceback; rejecting it here exits 2 with the flag's own usage
    message, like the other up-front knob validation.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive count, got {text}")
    return value


def _non_negative_int(text: str) -> int:
    """argparse type for counts where 0 is legal but negatives are not
    (e.g. --batch: 0 disables batching)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text}")
    return value


#: Named flag families (registered by :func:`_flag_family`); each is
#: declared exactly once and attached wherever it applies.
_FLAG_FAMILIES: "Dict[str, Callable[[argparse.ArgumentParser], None]]" = {}


def _flag_family(name: str):
    """Register a function that declares one family of shared flags."""
    def register(declare):
        _FLAG_FAMILIES[name] = declare
        return declare
    return register


def add_flag_families(parser: argparse.ArgumentParser,
                      *families: str) -> argparse.ArgumentParser:
    """Attach the named flag families to ``parser`` (declared once,
    reused everywhere -- the registrar behind :func:`_shared_parent`)."""
    for name in families:
        _FLAG_FAMILIES[name](parser)
    return parser


@_flag_family("exec")
def _exec_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=_positive_int, default=None,
                        metavar="N",
                        help="worker processes for independent simulations "
                             "(default: REPRO_JOBS or the usable-CPU count)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the persistent result cache")
    parser.add_argument("--batch", type=_non_negative_int, default=None,
                        metavar="N",
                        help="max replay configs sharing one batched trace "
                             "walk (default: REPRO_BATCH, else 16; 0 or 1 "
                             "disables batching)")


@_flag_family("backend")
def _backend_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--backend", default=None,
                        choices=list(backend_names()),
                        help="execution backend for planned units "
                             "(default: REPRO_BACKEND, else process)")
    parser.add_argument("--queue-dir", default=None, metavar="DIR",
                        help="shared queue directory for the queue backend "
                             "(default: REPRO_QUEUE_DIR, else the cache's "
                             "queue namespace)")


@_flag_family("frontend")
def _frontend_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--frontend", default=None,
                        choices=["live", "replay"],
                        help="correct-path supply: live functional "
                             "execution or trace replay (default: "
                             "REPRO_FRONTEND, else live)")


@_flag_family("sampling")
def _sampling_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--sampling", default=None,
                        choices=["off", "fixed", "adaptive"],
                        help="estimate from sampled regions instead of "
                             "simulating the whole span (default: "
                             "REPRO_SAMPLING, else off)")
    parser.add_argument("--ci-target", type=_positive_float, default=None,
                        metavar="FRAC",
                        help="relative CI half-width adaptive sampling "
                             "drives toward (default: REPRO_CI_TARGET, "
                             "else 0.05)")
    parser.add_argument("--no-paired", action="store_true",
                        help="combine sampled comparison CIs in quadrature "
                             "instead of the common-regions paired "
                             "jackknife (default: paired, or REPRO_PAIRED)")
    parser.add_argument("--no-table-budget", action="store_true",
                        help="adaptive suites: drive every cell to its own "
                             "CI target instead of spending the budget on "
                             "the table's worst CI-to-target ratio "
                             "(default: table-wide, or REPRO_TABLE_BUDGET)")


@_flag_family("request")
def _request_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--request-file", default=None, metavar="FILE",
                        help="baseline RunRequest as wire JSON (see "
                             "RunRequest.to_json); explicit flags override "
                             "its fields")


def _shared_parent() -> argparse.ArgumentParser:
    """The execution flags every simulating subcommand shares.

    One parent parser instead of per-command copies, so run / compare /
    suite / sample / verify / profile stay flag-compatible and the
    flag > request file > environment > default precedence is
    implemented (and tested) exactly once, in
    :func:`_request_from_args` + ``RunRequest``.
    """
    parent = argparse.ArgumentParser(add_help=False)
    return add_flag_families(parent, "exec", "backend", "frontend",
                             "sampling", "request")


#: Budget the simulating subcommands apply when neither a flag nor a
#: request file provides one (distinct from the library's 20k/2k).
CLI_INSTRUCTIONS = 10_000
CLI_SKIP = 10_000


def _add_budget_args(parser: argparse.ArgumentParser) -> None:
    # default=None so a request file can supply the budget; the CLI
    # default applies last, in _request_from_args.
    parser.add_argument("-n", "--instructions", type=int, default=None,
                        help="committed instructions to simulate "
                             f"(default {CLI_INSTRUCTIONS})")
    parser.add_argument("--skip", type=int, default=None,
                        help="instructions fast-forwarded for warm-up "
                             f"(default {CLI_SKIP})")


def _cache_flag(args) -> Optional[bool]:
    """Map --no-cache onto the executor's cache policy argument."""
    return False if args.no_cache else None


def _executor_from_args(args) -> SweepExecutor:
    """The executor a fabric-aware subcommand's flags describe.

    ``--backend`` / ``--queue-dir`` build an explicit backend (a bare
    ``--queue-dir`` implies the queue backend); without either the
    executor follows ``REPRO_BACKEND``, preserving the classic local
    process pool.
    """
    spec = getattr(args, "backend", None)
    queue_dir = getattr(args, "queue_dir", None)
    backend = None
    if spec is not None or queue_dir is not None:
        backend = create_backend(spec if spec is not None else "queue",
                                 jobs=args.jobs, queue_dir=queue_dir)
    return SweepExecutor(jobs=args.jobs, cache=_cache_flag(args),
                         batch=args.batch, backend=backend)


def _request_from_args(args) -> RunRequest:
    """One :class:`RunRequest` from whatever flags the command carries.

    ``--request-file`` (when the command takes one) supplies the
    baseline; explicit flags override its fields; unset fields stay
    None, so the request's :meth:`~repro.core.config.RunRequest.
    resolved` step (inside the runner) lets the environment fill them
    and the library defaults apply last -- the flag > request file >
    env > default precedence, in one place for every subcommand.
    """
    flags = RunRequest(
        instructions=getattr(args, "instructions", None),
        skip=getattr(args, "skip", None),
        jobs=getattr(args, "jobs", None),
        cache=False if getattr(args, "no_cache", False) else None,
        batch=getattr(args, "batch", None),
        backend=getattr(args, "backend", None),
        frontend=getattr(args, "frontend", None),
        sampling=getattr(args, "sampling", None),
        ci_target=getattr(args, "ci_target", None),
        regions=getattr(args, "regions", None),
        measure=getattr(args, "measure", None),
        warmup=getattr(args, "warmup", None),
        detail=getattr(args, "detail", None),
        max_fraction=getattr(args, "fraction", None),
        paired=False if getattr(args, "no_paired", False) else None,
        table_budget=False if getattr(args, "no_table_budget", False)
        else None,
    )
    request_file = getattr(args, "request_file", None)
    if request_file:
        base = RunRequest.from_json(Path(request_file).read_text())
        flags = base.with_overrides(**{
            field.name: getattr(flags, field.name)
            for field in dataclasses.fields(RunRequest)})
    # The CLI's classic budget applies only to commands that expose
    # budget flags, and only when nothing else supplied one.
    if hasattr(args, "instructions"):
        flags = flags.with_overrides(
            instructions=CLI_INSTRUCTIONS if flags.instructions is None
            else None,
            skip=CLI_SKIP if flags.skip is None else None)
    return flags


def _pct(value: float) -> str:
    """Render a relative quantity, NaN as ``n/a`` (no claim)."""
    return "n/a" if math.isnan(value) else f"{value:.2%}"


def _estimate_ci(estimate) -> str:
    """Render a SampledEstimate's ~95% interval, NaN as ``n/a``."""
    half = estimate.ci_halfwidth
    return "n/a" if math.isnan(half) else f"+/-{half:.4f}"


def _cell_mpki(cell: WorkloadRun) -> "tuple[float, float]":
    """(branch MPKI, LLC MPKI) of a cell, weighted for sampled ones."""
    if cell.sampled is not None:
        from .sampling import weighted_ratio
        weights = [r.weight for r in cell.sampled.plan.regions]
        return (
            weighted_ratio(cell.sampled.results, weights,
                           lambda r: r.stats.mispredictions,
                           lambda r: r.stats.committed, 1000.0),
            weighted_ratio(cell.sampled.results, weights,
                           lambda r: r.stats.llc_misses,
                           lambda r: r.stats.committed, 1000.0),
        )
    return cell.stats.branch_mpki, cell.stats.llc_mpki


def _note_fallback(cell: WorkloadRun, label: str = "") -> None:
    if cell.fallback_reason:
        where = f" for {label}" if label else ""
        print(f"  note: sampling fell back to full simulation{where} "
              f"({cell.fallback_reason})", file=sys.stderr)


def _print_spend(cells: "list[WorkloadRun]", executor: SweepExecutor) -> None:
    """One-line spend summary for a sampled table or pair.

    Makes the budget controller's savings visible at the prompt:
    total timed records bought, over how many sampled regions, and the
    executor's dedup/cache accounting for the same submissions.
    """
    records = sum(cell.simulated_records for cell in cells)
    regions = sum(len(cell.sampled.results) for cell in cells
                  if cell.is_sampled)
    print(f"spend: {records} simulated records across {regions} sampled "
          f"regions [{executor.summary()}]")


def _cmd_list(args) -> int:
    rows = []
    for name, profile in sorted(spec2006_profiles().items()):
        rows.append([name, profile.hard_branch_sites,
                     profile.data_footprint_bytes // 1024,
                     profile.description])
    print(render_table(
        ["workload", "hard branches", "footprint KB", "description"], rows))
    return 0


def _cmd_run(args) -> int:
    config = _machine_from_args(args)
    result = run_workload(args.workload, config,
                          request=_request_from_args(args))
    if isinstance(result, WorkloadRun):
        if result.sampled is not None:
            return _print_sampled_run(result)
        _note_fallback(result)
        result = result.full
    print(result.summary())
    s = result.stats
    print(render_table(["metric", "value"], [
        ["IPC", f"{s.ipc:.3f}"],
        ["branch MPKI", f"{s.branch_mpki:.2f}"],
        ["LLC MPKI", f"{s.llc_mpki:.2f}"],
        ["prediction accuracy", f"{result.predictor_accuracy:.3%}"],
        ["misspec penalty/branch", f"{s.avg_missspec_penalty:.1f} cycles"],
        ["  IQ-wait component", f"{s.avg_missspec_iq_wait:.1f} cycles"],
        ["classification",
         ("D-BP" if s.is_difficult_branch_prediction else "E-BP") + " / "
         + ("memory" if s.is_memory_intensive else "compute") + "-intensive"],
    ]))
    return 0


def _print_sampled_run(cell: WorkloadRun) -> int:
    run = cell.sampled
    rows = [
        ["sampled CPI", f"{run.cpi.point:.4f}"],
        ["95% CI", _estimate_ci(run.cpi)],
        ["relative CI", _pct(run.cpi.relative_error)],
        ["regions", str(len(run.results))],
        ["coverage", f"{run.coverage:.1%}"],
        ["misspec penalty/branch", f"{run.misspec_penalty.point:.1f} cycles"],
    ]
    if isinstance(run, AdaptiveRun):
        rows += [
            ["CI target", _pct(run.ci_target)],
            ["converged", "yes" if run.converged else
             "no (region cap / nothing left to split)"],
            ["rounds", " -> ".join(
                f"{r.regions}:{_pct(r.relative_ci)}" for r in run.rounds)],
        ]
    print(render_table(["metric", "value"], rows))
    return 0


def _cmd_compare(args) -> int:
    base = ProcessorConfig.cortex_a72_like()
    variant = _machine_from_args(args)
    if variant == base:  # default comparison is against PUBS
        variant = base.with_pubs()
    executor = _executor_from_args(args)
    pair = run_pair(args.workload, base, variant,
                    request=_request_from_args(args), executor=executor)
    bc, vc = pair.base_cell, pair.variant_cell
    if bc.is_sampled or vc.is_sampled or bc.fallback_reason \
            or vc.fallback_reason:
        _note_fallback(bc, "base")
        _note_fallback(vc, "variant")
        print(render_table(["metric", "base", "variant"], [
            ["CPI", f"{bc.cpi:.4f}", f"{vc.cpi:.4f}"],
            ["95% CI",
             _estimate_ci(bc.sampled.cpi) if bc.is_sampled else "exact",
             _estimate_ci(vc.sampled.cpi) if vc.is_sampled else "exact"],
            ["regions",
             str(len(bc.sampled.results)) if bc.is_sampled else "full",
             str(len(vc.sampled.results)) if vc.is_sampled else "full"],
        ]))
        rel = pair.speedup_relative_ci
        if math.isnan(rel):
            print(f"\nspeedup: {pair.speedup_percent:+.2f}% (95% CI n/a, "
                  f"{pair.ci_method})")
        else:
            lo, hi = pair.speedup_ci95
            print(f"\nspeedup: {pair.speedup_percent:+.2f}% "
                  f"(95% CI {(lo - 1) * 100:+.2f}% .. {(hi - 1) * 100:+.2f}%, "
                  f"{pair.ci_method})")
        _print_spend([bc, vc], executor)
        if args.topdown:
            print()
            _print_topdown_delta(args.workload, bc, vc)
        return 0
    b, v = pair.base.stats, pair.variant.stats
    print(render_table(["metric", "base", "variant"], [
        ["IPC", f"{b.ipc:.3f}", f"{v.ipc:.3f}"],
        ["misspec penalty/branch", f"{b.avg_missspec_penalty:.1f}",
         f"{v.avg_missspec_penalty:.1f}"],
        ["IQ wait/branch", f"{b.avg_missspec_iq_wait:.1f}",
         f"{v.avg_missspec_iq_wait:.1f}"],
    ]))
    print(f"\nspeedup: {pair.speedup_percent:+.2f}%")
    if args.topdown:
        print()
        _print_topdown_delta(args.workload, bc, vc)
    return 0


def _print_topdown_delta(workload: str, base_cell: WorkloadRun,
                         variant_cell: WorkloadRun) -> None:
    """Decompose a pair's CPI delta into bucket moves (DESIGN.md §15)."""
    delta = compare_topdown(
        breakdown_of(base_cell, name=f"{workload}/base"),
        breakdown_of(variant_cell, name=f"{workload}/variant"))
    print(delta.render())


def _suite_configs(args) -> "tuple[ProcessorConfig, ProcessorConfig]":
    """suite/submit's base and variant machines (default variant: PUBS)."""
    base = ProcessorConfig.cortex_a72_like()
    variant = _machine_from_args(args)
    if variant == base:
        variant = base.with_pubs()
    return base, variant


def _render_suite_table(names, results, use_paired: bool,
                        executor: Optional[SweepExecutor] = None,
                        summary_line: Optional[str] = None) -> int:
    """Render a base-vs-variant suite result table (suite *and* submit).

    One rendering path for every transport: results computed locally,
    via the queue, or streamed from a serve all land here, which is
    what makes "the submit table is bit-identical to the suite table"
    checkable with a plain diff.
    """
    sampled_mode = any(isinstance(cell, WorkloadRun)
                       for cell in results["base"].values())
    rows = []
    dbp_ratios, ebp_ratios = [], []
    for name in names:
        base_r, variant_r = results["base"][name], results["variant"][name]
        if sampled_mode:
            _note_fallback(base_r, f"{name} base")
            _note_fallback(variant_r, f"{name} variant")
            speedup = variant_r.ipc / base_r.ipc
            branch_mpki, llc_mpki = _cell_mpki(base_r)
            pair = PairedRun(name, base_r, variant_r, use_paired=use_paired)
            ci_txt = "exact" if pair.ci_method == "exact" \
                else _pct(pair.speedup_relative_ci)
        else:
            speedup = variant_r.stats.ipc / base_r.stats.ipc
            branch_mpki = base_r.stats.branch_mpki
            llc_mpki = base_r.stats.llc_mpki
        dbp = branch_mpki >= D_BP_BRANCH_MPKI_THRESHOLD
        (dbp_ratios if dbp else ebp_ratios).append(speedup)
        row = [name, "D-BP" if dbp else "E-BP", branch_mpki, llc_mpki,
               (speedup - 1.0) * 100.0]
        if sampled_mode:
            row.append(ci_txt)
        rows.append(row)
        print(f"  {name}: {(speedup - 1.0) * 100.0:+.2f}%", file=sys.stderr)
    if summary_line is None and executor is not None:
        summary_line = executor.summary()
    if summary_line:
        print(f"  [{summary_line}]", file=sys.stderr)
    rows.sort(key=lambda r: (r[1], -r[2]))
    header = ["workload", "set", "branch MPKI", "LLC MPKI", "speedup %"]
    if sampled_mode:
        header.append("95% CI")
    print(render_table(header, rows))
    if sampled_mode and executor is not None:
        _print_spend([cell for row in results.values()
                      for cell in row.values()], executor)
    if dbp_ratios:
        print(f"\nGM D-BP: {(geometric_mean(dbp_ratios) - 1) * 100:+.2f}%")
    if ebp_ratios:
        print(f"GM E-BP: {(geometric_mean(ebp_ratios) - 1) * 100:+.2f}%")
    return 0


def _cmd_suite(args) -> int:
    base, variant = _suite_configs(args)
    names = args.workloads or sorted(spec2006_profiles())
    # One executor for the whole sweep: it dedupes, serves warm results
    # from the persistent cache, and fans misses over --jobs -- and its
    # hit/miss summary below covers every cell, sampled or not.
    executor = _executor_from_args(args)
    req = _request_from_args(args)
    results = run_suite({"base": base, "variant": variant}, names,
                        request=req, executor=executor)
    return _render_suite_table(names, results,
                               use_paired=req.resolved().paired is not False,
                               executor=executor)


def _cmd_report(args) -> int:
    if not args.topdown:
        print("error: report currently knows one analysis; pass --topdown",
              file=sys.stderr)
        return 2
    req = _request_from_args(args)
    names = args.workloads or sorted(spec2006_profiles())
    machine = _machine_from_args(args)
    executor = _executor_from_args(args)
    if args.compare:
        base = ProcessorConfig.cortex_a72_like()
        variant = machine if machine != base else base.with_pubs()
        first = True
        for name in names:
            pair = run_pair(name, base, variant, request=req,
                            executor=executor)
            for cell, side in ((pair.base_cell, "base"),
                               (pair.variant_cell, "variant")):
                _note_fallback(cell, f"{name} {side}")
            if not first:
                print()
            first = False
            _print_topdown_delta(name, pair.base_cell, pair.variant_cell)
        return 0
    results = run_suite({"machine": machine}, names, request=req,
                        executor=executor)["machine"]
    breakdowns = []
    for name in names:
        cell = results[name]
        if isinstance(cell, WorkloadRun):
            _note_fallback(cell, name)
        breakdowns.append(breakdown_of(cell, name=name))
    if len(breakdowns) == 1:
        print(breakdowns[0].render())
        return 0
    headers, rows = suite_table_rows(breakdowns)
    print(render_table(headers, rows))
    return 0


def _cmd_cost(args) -> int:
    cost = pubs_hardware_cost(PubsConfig())
    print(render_table(["table", "KB"], cost.rows()))
    return 0


def _cmd_disasm(args) -> int:
    program = build_program(get_profile(args.workload))
    print(program.listing())
    return 0


def _cmd_cache(args) -> int:
    cache = ResultCache(args.dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.directory}")
        return 0
    # One row pair per namespace: simulation results live at the root;
    # traces, warm checkpoints and the shared queue's results in their
    # own subdirectories (see ResultCache.for_namespace), so usage is
    # reported where it accrues.  The queue namespace doubles as the
    # default fabric queue directory (repro worker / submit).
    root = cache.directory
    namespaces = [("results", cache)] + [
        (name, ResultCache.for_namespace(name, root))
        for name in ("traces", "warm", "queue")]
    rows = [["directory", str(root)],
            ["schema version", str(CACHE_SCHEMA_VERSION)]]
    total_entries = 0
    total_bytes = 0
    for name, ns in namespaces:
        entries, size = len(ns), ns.size_bytes()
        total_entries += entries
        total_bytes += size
        rows.append([f"{name} entries", str(entries)])
        rows.append([f"{name} size", f"{size / 1024:.1f} KB"])
    rows.append(["total entries", str(total_entries)])
    rows.append(["total size", f"{total_bytes / 1024:.1f} KB"])
    print(render_table(["property", "value"], rows))
    return 0


def _reject_sampling(args, command: str, why: str) -> bool:
    """True (and an error message) when a sampled mode was requested."""
    mode = args.sampling or os.environ.get("REPRO_SAMPLING")
    if mode and mode != "off":
        print(f"error: {command} {why}; --sampling must be off",
              file=sys.stderr)
        return True
    return False


def _cmd_verify(args) -> int:
    if _reject_sampling(args, "verify",
                        "checks the full timing model -- a sampled "
                        "estimate proves nothing about uncovered records"):
        return 2
    config = _machine_from_args(args).with_verification(
        level=args.level, interval=args.interval)
    names = [args.workload] if args.workload else sorted(spec2006_profiles())
    failures = 0
    for name in names:
        try:
            # Always a fresh simulation: a cached result proves nothing.
            result = run_workload(name, config, args.instructions, args.skip,
                                  cache=False, frontend=args.frontend,
                                  sampling="off")
        except InvariantViolation as exc:
            failures += 1
            print(f"FAIL {name}")
            print("  " + exc.report().replace("\n", "\n  "))
            continue
        print(f"ok   {name}: {result.verified_commits} commits oracle-checked"
              + (f", {result.invariant_sweeps} invariant sweeps"
                 if args.level == "full" else ""))
    total = len(names)
    print(f"\n{total - failures}/{total} workload(s) verified at "
          f"level={args.level}")
    return 1 if failures else 0


def _trace_store_for(args):
    from .trace.store import TraceStore
    if args.dir:
        return TraceStore(root=args.dir, persistent=True)
    return TraceStore()


def _cmd_trace(args) -> int:
    from .trace.store import REPLAY_MARGIN
    if args.interval is not None and args.interval < 0:
        # Fail here with the flag's own vocabulary instead of deep inside
        # trace capture; 0 stays legal (it disables interval checkpoints).
        print("error: --interval must be >= 0 "
              "(0 disables interval checkpoints)", file=sys.stderr)
        return 2
    store = _trace_store_for(args)
    names = [args.workload] if args.workload else sorted(spec2006_profiles())
    rows = []
    for name in names:
        profile = get_profile(name)
        program = build_program(profile)
        if args.action == "record":
            store.acquire(program, profile.mem_seed,
                          args.skip + args.instructions + REPLAY_MARGIN,
                          skip_hint=args.skip,
                          checkpoint_interval=args.interval)
        info = store.describe(program, profile.mem_seed)
        if info is None:
            rows.append([name, "-", "-", "-", "-", "-",
                         "(no trace recorded)"])
            continue
        rows.append([name, str(info["records"]),
                     f"{info['payload_bytes'] / 1024:.0f} KB",
                     str(info["skip_checkpoint_seq"]),
                     str(info["checkpoint_interval"]),
                     str(len(info["interval_checkpoint_seqs"])),
                     info["key"][:16]])
    print(render_table(
        ["workload", "records", "size", "skip ckpt @", "ckpt every",
         "interval ckpts", "key"], rows))
    if args.action == "record":
        print(f"\nstore {store.root}: {store.summary()}")
    return 0


def _cmd_sample(args) -> int:
    from .sampling import CPI_ERROR_GATE, sampled_vs_full_error
    strategy = args.strategy
    # The sample command always samples; its --sampling flag only picks
    # the scheduler family (fixed -> simpoint, adaptive -> escalation).
    if args.sampling == "off":
        print("error: the sample command always samples; use 'run' for a "
              "full simulation", file=sys.stderr)
        return 2
    if args.sampling == "adaptive":
        strategy = "adaptive"
    elif args.sampling == "fixed" and strategy == "adaptive":
        strategy = "simpoint"
    # Validate the region arithmetic up front: a zero or negative count
    # would otherwise surface as an opaque failure deep in trace capture
    # or region scheduling.
    for flag, value in (("--regions", args.regions),
                        ("--measure", args.measure)):
        if value is not None and value < 1:
            print(f"error: {flag} must be a positive count, got {value}",
                  file=sys.stderr)
            return 2
    if args.interval is not None and args.interval < 1:
        print("error: --interval must be positive (sampled replay needs "
              f"checkpoints), got {args.interval}", file=sys.stderr)
        return 2
    config = _machine_from_args(args)
    names = args.workloads or sorted(spec2006_profiles())
    rows = []
    failures = 0
    for name in names:
        run = sample_workload(
            name, config,
            instructions=args.instructions, skip=args.skip,
            strategy=strategy, measure=args.measure,
            warmup=args.warmup, detail=args.detail, regions=args.regions,
            max_fraction=args.fraction,
            checkpoint_interval=args.interval,
            ci_target=args.ci_target if strategy == "adaptive" else None,
            jobs=args.jobs, cache=_cache_flag(args))
        if isinstance(run, AdaptiveRun):
            marks = " -> ".join(f"{r.regions}:{_pct(r.relative_ci)}"
                                for r in run.rounds)
            state = "converged" if run.converged else "cap"
            print(f"  {name}: {marks} ({state})", file=sys.stderr)
        row = [name, f"{run.cpi.point:.4f}", _estimate_ci(run.cpi),
               _pct(run.cpi.relative_error),
               str(len(run.results)), f"{run.coverage:.1%}",
               f"{run.misspec_penalty.point:.1f}"]
        if args.check_full:
            full = run_workload(name, config, args.instructions, args.skip,
                                cache=_cache_flag(args), frontend="replay",
                                sampling="off")
            error = sampled_vs_full_error(run, full)
            ok = error <= CPI_ERROR_GATE
            failures += not ok
            row += [f"{full.stats.cycles / full.stats.committed:.4f}",
                    f"{error:.2%}", "ok" if ok else "FAIL"]
        rows.append(row)
    header = ["workload", "sampled CPI", "95% CI", "rel CI", "regions",
              "coverage", "misspec/br"]
    if args.check_full:
        header += ["full CPI", "error", f"gate {CPI_ERROR_GATE:.0%}"]
    print(render_table(header, rows))
    if args.check_full:
        total = len(names)
        print(f"\n{total - failures}/{total} workload(s) within "
              f"{CPI_ERROR_GATE:.0%} of the full run")
    return 1 if failures else 0


def _cmd_profile(args) -> int:
    import cProfile
    import pstats

    if _reject_sampling(args, "profile",
                        "measures the simulator hot path -- a sampled "
                        "run would profile the executor instead"):
        return 2
    config = _machine_from_args(args)
    profiler = cProfile.Profile()
    profiler.enable()
    # cache=False: profiling a cache hit would measure pickle, not the
    # simulator.
    instructions = CLI_INSTRUCTIONS if args.instructions is None \
        else args.instructions
    skip = CLI_SKIP if args.skip is None else args.skip
    result = run_workload(args.workload, config, instructions,
                          skip, cache=False, frontend=args.frontend,
                          sampling="off")
    profiler.disable()
    print(result.summary())
    print(f"\nTop {args.top} functions by cumulative time:")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(args.sort).print_stats(args.top)
    return 0


def _cmd_stress(args) -> int:
    from .workloads.stress import FAMILIES, run_families
    if args.action == "list":
        rows = [[f.name, f.knob, str(f.default),
                 ",".join(str(k) for k in f.sweep), f.resource]
                for f in FAMILIES.values()]
        print(render_table(
            ["family", "knob", "default", "sweep", "stressed resource"],
            rows))
        return 0
    try:
        reports = run_families(
            args.families or None,
            config=_machine_from_args(args),
            knob=args.knob,
            sweep=not args.no_sweep,
            instructions=args.instructions,
            skip=args.skip,
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    failures = 0
    for report in reports:
        print(report.render())
        print()
        failures += not report.passed
    total = len(reports)
    noun = "family" if total == 1 else "families"
    print(f"{total - failures}/{total} {noun} satisfied the "
          "expected-bottleneck contract")
    return 1 if failures else 0


def _cmd_worker(args) -> int:
    if args.lease_ttl <= 0:
        print("error: --lease-ttl must be positive", file=sys.stderr)
        return 2
    if args.max_attempts < 1:
        print("error: --max-attempts must be a positive count",
              file=sys.stderr)
        return 2
    log = None if args.quiet \
        else (lambda message: print(message, file=sys.stderr))
    try:
        executed = run_worker(
            args.queue_dir, lease_ttl=args.lease_ttl,
            max_attempts=args.max_attempts, poll=args.poll,
            drain=args.drain, idle_timeout=args.idle_timeout,
            max_jobs=args.max_jobs, log=log)
    except KeyboardInterrupt:
        print("worker interrupted", file=sys.stderr)
        return 130
    print(f"worker exit: {executed} unit(s) executed")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from .serve import SweepServer, serve_forever
    if args.backend is not None or args.queue_dir is not None:
        backend = create_backend(
            args.backend if args.backend is not None else "queue",
            jobs=args.jobs, queue_dir=args.queue_dir)
    else:
        # A persistent pool: serve submits many small unit lists over
        # its lifetime, so per-call pool setup would dominate.
        backend = ProcessPoolBackend(args.jobs, keep_pool=True)
    server = SweepServer(backend=backend, cache=_cache_flag(args),
                         jobs=args.jobs)

    def ready(port: int) -> None:
        print(f"repro serve: listening on {args.host}:{port} "
              f"[backend {server.backend.describe()}]", file=sys.stderr)

    try:
        asyncio.run(serve_forever(server, args.host, args.port, ready=ready))
    except KeyboardInterrupt:
        print("serve interrupted", file=sys.stderr)
    return 0


def _cmd_submit(args) -> int:
    if _reject_sampling(args, "submit",
                        "streams full per-cell results; run sampled "
                        "estimation locally (e.g. suite --sampling) "
                        "over the queue backend"):
        return 2
    base, variant = _suite_configs(args)
    names = args.workloads or sorted(spec2006_profiles())
    req = _request_from_args(args)
    if args.host:
        from .serve import DEFAULT_PORT, submit_sweep

        def on_cell(cell) -> None:
            metrics = cell["metrics"]
            how = "cached" if cell["cached"] else (
                "deduped" if cell["deduped"] else "simulated")
            print(f"  {cell['config']}/{cell['workload']}: "
                  f"cpi {metrics['cpi']:.4f} "
                  f"mover {cell['topdown']['mover']} [{how}]",
                  file=sys.stderr)

        port = args.port if args.port is not None else DEFAULT_PORT
        reply = submit_sweep(args.host, port, req.resolved(),
                             {"base": base, "variant": variant}, names,
                             on_cell=on_cell)
        counters = reply.summary.get("counters", {})
        summary_line = " ".join(
            f"{key}={value}" for key, value in counters.items())
        return _render_suite_table(names, reply.results(), use_paired=True,
                                   summary_line=summary_line)
    backend = QueueBackend(root=args.queue_dir,
                           local_workers=args.local_workers,
                           timeout=args.timeout)
    executor = SweepExecutor(jobs=args.jobs, cache=_cache_flag(args),
                             batch=args.batch, backend=backend)
    results = run_suite({"base": base, "variant": variant}, names,
                        request=req, executor=executor)
    return _render_suite_table(names, results,
                               use_paired=req.resolved().paired is not False,
                               executor=executor)


def _cmd_status(args) -> int:
    from .serve import mover_text, topdown_summary
    if args.host:
        from .serve import DEFAULT_PORT, fetch_status
        port = args.port if args.port is not None else DEFAULT_PORT
        status = fetch_status(args.host, port)
        recent = status.pop("recent", None) or []
        print(render_table(["property", "value"],
                           [[key, str(value)]
                            for key, value in status.items()]))
        if recent:
            print()
            print(render_table(
                ["config", "workload", "CPI", "top mover"],
                [[cell["config"], cell["workload"], f"{cell['cpi']:.4f}",
                  f"{cell['mover']} {cell['mover_cpi']:.3f} CPI"]
                 for cell in recent[-args.cells:]]))
        return 0
    queue = JobQueue(args.queue_dir)
    counts = queue.counts()
    results = ResultCache(queue.root)
    rows = [["queue directory", str(queue.root)]]
    rows += [[state, str(counts.get(state, 0))]
             for state in ("pending", "leased", "done", "failed")]
    rows.append(["results cached", str(len(results))])
    print(render_table(["property", "value"], rows))
    cell_rows = []
    for _job_id, unit in queue.recent_done(args.cells):
        for key, job in unit:
            result = results.get(key)
            if result is None:
                continue
            stats = result.stats
            cell_rows.append([
                job.profile.name,
                f"{stats.cycles / stats.committed:.4f}",
                mover_text(topdown_summary(result))])
    if cell_rows:
        print()
        print(render_table(["workload", "CPI", "top mover"],
                           cell_rows[:args.cells]))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PUBS (MICRO 2018) reproduction: simulate workloads on "
                    "the paper's machines",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    shared = [_shared_parent()]

    sub.add_parser("list", help="list available workloads")

    p_run = sub.add_parser("run", help="simulate one workload",
                           parents=shared)
    p_run.add_argument("workload")
    _add_machine_args(p_run)
    _add_budget_args(p_run)

    p_cmp = sub.add_parser("compare", help="base vs variant on one workload",
                           parents=shared)
    p_cmp.add_argument("workload")
    p_cmp.add_argument("--topdown", action="store_true",
                       help="also decompose the CPI delta per topdown "
                            "bucket: print which bucket moved")
    _add_machine_args(p_cmp)
    _add_budget_args(p_cmp)

    p_rep = sub.add_parser(
        "report",
        help="top-down cycle attribution report (DESIGN.md §15)",
        parents=shared)
    p_rep.add_argument("workloads", nargs="*", default=None,
                       help="workloads to report (default: all of them)")
    p_rep.add_argument("--topdown", action="store_true",
                       help="the topdown hierarchy (required -- report "
                            "has no other analysis yet)")
    p_rep.add_argument("--compare", action="store_true",
                       help="base vs variant (default variant: PUBS): "
                            "decompose the CPI delta per bucket instead "
                            "of reporting one machine")
    _add_machine_args(p_rep)
    _add_budget_args(p_rep)

    p_suite = sub.add_parser("suite", help="sweep many workloads (Fig. 8)",
                             parents=shared)
    p_suite.add_argument("--workloads", nargs="*", default=None)
    _add_machine_args(p_suite)
    _add_budget_args(p_suite)

    sub.add_parser("cost", help="print the Table III hardware cost")

    p_cache = sub.add_parser("cache", help="persistent result-cache tools")
    p_cache.add_argument("action", choices=["stats", "clear"])
    p_cache.add_argument("--dir", default=None,
                         help="cache directory (default: REPRO_CACHE_DIR "
                              "or ~/.cache/repro)")

    p_dis = sub.add_parser("disasm", help="print a workload's generated code")
    p_dis.add_argument("workload")

    p_ver = sub.add_parser(
        "verify",
        help="run the differential oracle + invariant checks on workloads",
        parents=shared)
    p_ver.add_argument("--workload", default=None,
                       help="verify one workload (default: all of them)")
    p_ver.add_argument("--level", default="full",
                       choices=["commit-only", "full"],
                       help="verification thoroughness (default: full)")
    p_ver.add_argument("--interval", type=int, default=256,
                       help="cycles between invariant sweeps at --level full")
    p_ver.add_argument("-n", "--instructions", type=int, default=3000,
                       help="committed instructions per workload")
    p_ver.add_argument("--skip", type=int, default=3000,
                       help="instructions fast-forwarded for warm-up")
    _add_machine_args(p_ver)

    p_tr = sub.add_parser(
        "trace", help="record or inspect replay traces (DESIGN.md §9)")
    p_tr.add_argument("action", choices=["record", "info"])
    p_tr.add_argument("--workload", default=None,
                      help="one workload (default: all of them)")
    p_tr.add_argument("-n", "--instructions", type=int, default=10_000,
                      help="timed instructions the trace must cover")
    p_tr.add_argument("--skip", type=int, default=10_000,
                      help="warm-up instructions (positions the checkpoint)")
    p_tr.add_argument("--interval", type=int, default=None,
                      help="records between interval checkpoints (default: "
                           "8192; 0 disables them)")
    p_tr.add_argument("--dir", default=None,
                      help="trace store root (default: REPRO_CACHE_DIR "
                           "or ~/.cache/repro)")

    p_smp = sub.add_parser(
        "sample",
        help="estimate whole-run CPI from sampled regions (DESIGN.md §10)",
        parents=shared)
    p_smp.add_argument("workloads", nargs="*", default=None,
                       help="workloads to sample (default: all of them)")
    p_smp.add_argument("-n", "--instructions", type=int, default=60_000,
                       help="timed span of the full run being estimated")
    p_smp.add_argument("--skip", type=int, default=2_000,
                       help="instructions before the timed span")
    p_smp.add_argument("--strategy", default="simpoint",
                       choices=["simpoint", "systematic", "adaptive"],
                       help="region scheduler: clustered representatives, "
                            "evenly spaced windows, or variance-driven "
                            "escalation (DESIGN.md §11)")
    p_smp.add_argument("--measure", type=int, default=None,
                       help="timed records per region (default: 1024)")
    p_smp.add_argument("--warmup", type=int, default=None,
                       help="functional warm records per region "
                            "(default: 16384; clamped to the prefix)")
    p_smp.add_argument("--detail", type=int, default=None,
                       help="timed-but-discarded warm records per region "
                            "(default: measure/4)")
    p_smp.add_argument("--regions", type=int, default=None,
                       help="cap on representatives (default: 8 simpoint, "
                            "16 adaptive)")
    p_smp.add_argument("--fraction", type=float, default=None,
                       help="max fraction of the span simulated "
                            "(default: 1/3)")
    p_smp.add_argument("--interval", type=int, default=None,
                       help="trace checkpoint interval (default: 8192)")
    p_smp.add_argument("--check-full", action="store_true",
                       help="also run the full span and gate the sampled "
                            "CPI at 3%% relative error")
    _add_machine_args(p_smp)

    p_st = sub.add_parser(
        "stress",
        help="stress-kernel families vs expected-bottleneck contracts "
             "(DESIGN.md §13)")
    p_st.add_argument("action", choices=["list", "run"])
    p_st.add_argument("families", nargs="*",
                      help="families to run (default: all; see 'stress "
                           "list')")
    p_st.add_argument("--knob", type=int, default=None,
                      help="override the family's knob value (skips the "
                           "knob-sweep checks, which only apply to the "
                           "declared sweep)")
    p_st.add_argument("--no-sweep", action="store_true",
                      help="default-knob checks only, no sweep runs")
    p_st.add_argument("-n", "--instructions", type=int, default=None,
                      help="timed instructions per run (default: "
                           "per-family)")
    p_st.add_argument("--skip", type=int, default=None,
                      help="warm-up instructions (default: per-family)")
    _add_machine_args(p_st)

    p_prof = sub.add_parser(
        "profile", help="profile one simulation run with cProfile",
        parents=shared)
    p_prof.add_argument("workload")
    p_prof.add_argument("--top", type=int, default=25,
                        help="number of hotspot functions to print")
    p_prof.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime", "ncalls"],
                        help="pstats sort order (default: cumulative)")
    _add_machine_args(p_prof)
    _add_budget_args(p_prof)

    p_wk = sub.add_parser(
        "worker",
        help="lease and execute jobs from a shared queue directory "
             "(DESIGN.md §16)")
    p_wk.add_argument("--queue-dir", default=None, metavar="DIR",
                      help="queue directory (default: REPRO_QUEUE_DIR or "
                           "the cache's queue namespace)")
    p_wk.add_argument("--poll", type=float, default=0.1, metavar="SEC",
                      help="idle sleep between lease attempts")
    p_wk.add_argument("--drain", action="store_true",
                      help="exit as soon as no job is leasable")
    p_wk.add_argument("--idle-timeout", type=float, default=None,
                      metavar="SEC",
                      help="exit after this many idle seconds")
    p_wk.add_argument("--max-jobs", type=_positive_int, default=None,
                      metavar="N", help="exit after executing N units")
    p_wk.add_argument("--lease-ttl", type=float, default=DEFAULT_LEASE_TTL,
                      metavar="SEC",
                      help="seconds a lease survives without a heartbeat "
                           f"(default {DEFAULT_LEASE_TTL:g})")
    p_wk.add_argument("--max-attempts", type=int,
                      default=DEFAULT_MAX_ATTEMPTS, metavar="N",
                      help="lease attempts before a job parks as failed "
                           f"(default {DEFAULT_MAX_ATTEMPTS})")
    p_wk.add_argument("--quiet", action="store_true",
                      help="no per-lease progress on stderr")

    p_srv = sub.add_parser(
        "serve",
        help="serve sweep submissions over a line-JSON socket "
             "(DESIGN.md §16)")
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=0,
                       help="TCP port (default: an ephemeral port, "
                            "printed on startup; the protocol default "
                            "is 8723)")
    add_flag_families(p_srv, "exec", "backend")

    p_sm = sub.add_parser(
        "submit",
        help="run a suite through the fabric (shared queue or a serve)",
        parents=shared)
    p_sm.add_argument("--workloads", nargs="*", default=None)
    p_sm.add_argument("--host", default=None,
                      help="submit to a repro serve at this host instead "
                           "of the shared queue")
    p_sm.add_argument("--port", type=int, default=None,
                      help="serve port (default 8723)")
    p_sm.add_argument("--local-workers", type=_non_negative_int, default=0,
                      metavar="N",
                      help="queue transport: also spawn N local drain "
                           "workers (0 relies on external repro worker "
                           "processes)")
    p_sm.add_argument("--timeout", type=float, default=None, metavar="SEC",
                      help="queue transport: give up after this long "
                           "(default: wait forever)")
    _add_machine_args(p_sm)
    _add_budget_args(p_sm)

    p_stat = sub.add_parser(
        "status", help="fabric status: queue counts or serve counters")
    p_stat.add_argument("--queue-dir", default=None, metavar="DIR",
                        help="inspect this queue directory (default: "
                             "REPRO_QUEUE_DIR or the cache's queue "
                             "namespace)")
    p_stat.add_argument("--host", default=None,
                        help="ask a repro serve instead of a queue "
                             "directory")
    p_stat.add_argument("--port", type=int, default=None,
                        help="serve port (default 8723)")
    p_stat.add_argument("--cells", type=_positive_int, default=8,
                        metavar="N",
                        help="recent cells to summarize (default 8)")

    return parser


_COMMANDS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "compare": _cmd_compare,
    "report": _cmd_report,
    "suite": _cmd_suite,
    "cost": _cmd_cost,
    "disasm": _cmd_disasm,
    "cache": _cmd_cache,
    "verify": _cmd_verify,
    "trace": _cmd_trace,
    "sample": _cmd_sample,
    "profile": _cmd_profile,
    "stress": _cmd_stress,
    "worker": _cmd_worker,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "status": _cmd_status,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:  # e.g. `repro list | head`
        return 0
    except WireError as exc:  # bad --request-file / fabric payload
        print(f"error: {exc}", file=sys.stderr)
        return 2
