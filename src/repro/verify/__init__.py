"""Correctness tooling: differential oracle + machine invariants.

The PUBS mechanisms this repository reproduces (resetting confidence
counters, transitive slice linking through ``def_tab``/``brslice_tab``, the
split priority/normal IQ free lists) are stateful, pointer-chasing machinery
where silent corruption produces plausible-but-wrong IPC numbers rather
than crashes.  This package provides machine-checked evidence that a
simulation was sound:

* :class:`CommitOracle` co-executes every workload with an independent
  in-order architectural executor and cross-checks the pipeline's committed
  stream, memory effects and final register/memory state;
* :class:`InvariantRegistry` / :func:`default_registry` hold pluggable
  structural invariants swept at a configurable cycle interval;
* :class:`PipelineVerifier` attaches both to a running pipeline, controlled
  by the ``verify_level`` knob on
  :class:`~repro.core.config.ProcessorConfig` (``off`` / ``commit-only`` /
  ``full``) and surfaced by the ``repro verify`` CLI subcommand.

Violations raise :class:`InvariantViolation` (or its :class:`OracleMismatch`
specialization) carrying the cycle, the involved uop and a bounded state
snapshot.
"""

from .checker import VERIFY_LEVELS, PipelineVerifier, VerifierReport
from .invariants import (
    InvariantRegistry,
    check_brslice_tab,
    check_conf_tab,
    check_def_tab,
    default_registry,
)
from .oracle import CommitOracle, clone_executor
from .violations import InvariantViolation, OracleMismatch

__all__ = [
    "VERIFY_LEVELS",
    "PipelineVerifier",
    "VerifierReport",
    "InvariantRegistry",
    "default_registry",
    "check_brslice_tab",
    "check_conf_tab",
    "check_def_tab",
    "CommitOracle",
    "clone_executor",
    "InvariantViolation",
    "OracleMismatch",
]
