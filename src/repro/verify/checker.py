"""The pipeline-attached verifier: oracle + invariant sweeps.

:class:`PipelineVerifier` is instantiated by :class:`~repro.core.pipeline.
Pipeline` when the machine configuration asks for verification
(``verify_level`` of ``"commit-only"`` or ``"full"``) and is driven by three
hooks on the pipeline's hot path:

* every committing uop goes through the differential oracle
  (:meth:`on_commit`);
* at ``"full"`` level the invariant registry sweeps the whole machine every
  ``verify_interval`` cycles (:meth:`on_cycle`);
* the end of a run triggers the full architectural state diff and -- at
  ``"full"`` level -- one final invariant sweep (:meth:`on_run_end`).

All three are no-ops at the source when ``verify_level`` is ``"off"``: the
pipeline then holds no verifier at all, so the only cost to an unverified
run is a ``None`` check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .invariants import InvariantRegistry, default_registry
from .oracle import CommitOracle

#: Recognized verification levels, least to most thorough.
VERIFY_LEVELS = ("off", "commit-only", "full")


@dataclass
class VerifierReport:
    """What one verified run actually checked (surfaced by ``repro verify``)."""

    level: str
    commits_checked: int
    invariant_sweeps: int
    invariants: tuple
    final_state_checked: bool

    def summary(self) -> str:
        return (f"level={self.level} commits={self.commits_checked} "
                f"sweeps={self.invariant_sweeps} "
                f"invariants={len(self.invariants)} "
                f"state_diff={'yes' if self.final_state_checked else 'no'}")


class PipelineVerifier:
    """Drives the oracle and the invariant registry for one pipeline."""

    def __init__(self, pipeline, level: str, interval: int,
                 mem_seed: int = 0,
                 registry: Optional[InvariantRegistry] = None):
        if level not in VERIFY_LEVELS or level == "off":
            raise ValueError(f"unsupported verification level: {level!r}")
        self.pipeline = pipeline
        self.level = level
        self.interval = max(1, interval)
        self.oracle = CommitOracle(pipeline.program, mem_seed=mem_seed)
        self.registry = registry if registry is not None else default_registry()
        self.invariant_sweeps = 0

    @property
    def commits_checked(self) -> int:
        return self.oracle.commits_checked

    # ------------------------------------------------------------------
    # Pipeline hooks
    # ------------------------------------------------------------------

    def on_skip(self, count: int) -> None:
        """Mirror the warm-up fast-forward in the oracle's executor."""
        self.oracle.skip(count)

    def on_region(self, trace, start: int) -> None:
        """Seat the oracle at a sampled region start.

        Restores from the trace's nearest :class:`~repro.trace.format.
        ArchCheckpoint` at or below ``start`` and functionally steps only
        the residue -- O(checkpoint interval) instead of O(region start),
        which is what makes verified sampled runs affordable.  Without
        any usable checkpoint the oracle steps the whole prefix.
        """
        checkpoint = trace.checkpoint_at(start)
        if checkpoint is not None and checkpoint.seq <= start:
            self.oracle.restore_checkpoint(checkpoint)
            self.oracle.skip(start - checkpoint.seq)
        else:
            self.oracle.skip(start)

    def on_commit(self, uop) -> None:
        self.oracle.check_commit(uop, self.pipeline.cycle)

    def on_cycle(self) -> None:
        if self.level == "full" and self.pipeline.cycle % self.interval == 0:
            self.check_invariants()

    def on_run_end(self) -> None:
        if self.pipeline.executor is not None:
            self.oracle.finish(self.pipeline.executor,
                               cycle=self.pipeline.cycle)
        else:
            # Replay mode has no live executor; the trace's end checkpoint
            # is the reference architectural state instead (it sits at or
            # past every committed record, and functional execution is
            # deterministic).
            self.oracle.finish_against_checkpoint(
                self.pipeline.cursor.trace.end_checkpoint,
                cycle=self.pipeline.cycle)
        if self.level == "full":
            self.check_invariants()

    # ------------------------------------------------------------------
    # Direct entry points (tests, debugging)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Run one full invariant sweep right now."""
        self.registry.run(self.pipeline)
        self.invariant_sweeps += 1

    def report(self) -> VerifierReport:
        return VerifierReport(
            level=self.level,
            commits_checked=self.commits_checked,
            invariant_sweeps=self.invariant_sweeps,
            invariants=self.registry.names(),
            final_state_checked=self.oracle.final_state_checked,
        )
