"""Pluggable machine-invariant checkers.

Each invariant is a function ``check(pipeline) -> None`` that raises
:class:`~repro.verify.violations.InvariantViolation` when a structural law
of the simulator is broken.  :func:`default_registry` builds a fresh
:class:`InvariantRegistry` holding the built-in set, so tests (and future
subsystems) can add, replace or remove checks without touching global
state.

Built-in invariants:

``free-list-conservation``
    Physical registers are conserved under rename: the free lists, the
    current map table, and the previous mappings held by in-flight ROB
    entries partition the physical register space exactly; no in-flight
    destination register sits on a free list.
``rob-iq-lsq-agreement``
    The three window structures agree: ROB/LSQ entries are in fetch order
    and within capacity, the LSQ holds exactly the ROB's in-flight memory
    uops, and the IQ's occupancy equals the ROB's dispatched-but-unissued
    population, entry by entry.
``priority-partition-bounds``
    The PUBS split free lists are well-formed: priority slots stay below
    ``priority_entries`` (per queue in the distributed organization), both
    partitions conserve their capacity, and the stall dispatch policy's
    accounting holds (priority dispatches never exceed unconfident ones).
``brslice-pointer-validity``
    Every pointer stored in ``def_tab`` and ``brslice_tab`` dereferences to
    a legal location of the target table's configured geometry (index within
    the set count, tag within the fold width), sets respect associativity,
    and tags are unique within a set.
``conf-counter-range``
    Every allocated resetting confidence counter obeys its range/saturation
    law: configured width, ``0 <= value <= maximum``, confident exactly at
    saturation.
``scheduler-wakeup-consistency``
    The incremental ready-set scheduler's bookkeeping is coherent: wakeup
    registrations of live IQ-resident uops match their ``pending_srcs``
    counts exactly (squashed waiters are dropped lazily by design and are
    ignored).
``topdown-cycle-accounting``
    The topdown slot buckets (DESIGN.md §15) account every issue slot:
    their sum equals ``decode_width * cycles`` exactly; the per-cause
    dispatch-stall counters are disjoint and sum to
    ``dispatch_stall_cycles``; and the three Sec. II-A misspeculation
    components sum to ``missspec_penalty_cycles``.

The table-level checks are also exposed standalone
(:func:`check_conf_tab`, :func:`check_brslice_tab`, :func:`check_def_tab`)
so property-based tests can drive the tables directly with random operation
sequences and assert the same laws the running pipeline is held to.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Tuple

from ..branch.confidence import ResettingConfidenceCounter
from ..iq.distributed import DistributedIssueQueue
from ..iq.ordered import ShiftingQueue
from ..iq.queue import IssueQueue
from ..pubs.tables import BrsliceTab, ConfTab, DefTab, Pointer
from .violations import InvariantViolation

Check = Callable[[object], None]


class InvariantRegistry:
    """Named collection of invariant checks, run in registration order."""

    def __init__(self):
        self._checks: Dict[str, Check] = {}

    def register(self, name: str, check: Check = None):
        """Add a check (usable directly or as a decorator)."""
        if check is None:
            def decorator(fn: Check) -> Check:
                self.register(name, fn)
                return fn
            return decorator
        if name in self._checks:
            raise ValueError(f"invariant already registered: {name}")
        self._checks[name] = check
        return check

    def unregister(self, name: str) -> None:
        del self._checks[name]

    def names(self) -> Tuple[str, ...]:
        return tuple(self._checks)

    def __len__(self) -> int:
        return len(self._checks)

    def run(self, pipeline) -> None:
        """Run every registered check against ``pipeline``."""
        for check in self._checks.values():
            check(pipeline)


# ======================================================================
# Standalone table checks (shared by the pipeline invariant and the
# property-based tests).
# ======================================================================

def _check_pointer(name: str, pointer, codec, where: str) -> None:
    if not isinstance(pointer, Pointer):
        raise InvariantViolation(
            name, f"{where} holds {type(pointer).__name__}, not a Pointer",
            snapshot={"value": pointer})
    if not 0 <= pointer.index < codec.num_sets:
        raise InvariantViolation(
            name, f"{where} pointer index {pointer.index} outside "
                  f"[0, {codec.num_sets})", snapshot={"pointer": pointer})
    if not 0 <= pointer.tag < (1 << codec.fold_width):
        raise InvariantViolation(
            name, f"{where} pointer tag {pointer.tag:#x} wider than the "
                  f"{codec.fold_width}-bit fold", snapshot={"pointer": pointer})


def _check_set_shape(name: str, table, index: int, ways: Iterable) -> None:
    ways = list(ways)
    if len(ways) > table.assoc:
        raise InvariantViolation(
            name, f"set {index} holds {len(ways)} ways, associativity is "
                  f"{table.assoc}", snapshot={"set": ways})
    tags = [tag for tag, _ in ways]
    if len(tags) != len(set(tags)):
        raise InvariantViolation(
            name, f"set {index} holds duplicate tags", snapshot={"set": ways})
    for tag, _ in ways:
        if not 0 <= tag < (1 << table.codec.fold_width):
            raise InvariantViolation(
                name, f"set {index} tag {tag:#x} wider than the "
                      f"{table.codec.fold_width}-bit fold",
                snapshot={"set": ways})


def check_brslice_tab(brslice: BrsliceTab, conf: ConfTab,
                      name: str = "brslice-pointer-validity") -> None:
    """Every brslice entry is shape-legal and targets a legal conf_tab slot."""
    for index, ways in enumerate(brslice._sets):
        _check_set_shape(name, brslice, index, ways)
        for tag, conf_ptr in ways:
            _check_pointer(name, conf_ptr, conf.codec,
                           f"brslice set {index} (tag {tag:#x})")


def check_def_tab(def_tab: DefTab, brslice: BrsliceTab,
                  name: str = "brslice-pointer-validity") -> None:
    """Every recorded last-writer pointer addresses the brslice geometry."""
    for reg, pointer in enumerate(def_tab._entries):
        if pointer is not None:
            _check_pointer(name, pointer, brslice.codec, f"def_tab[{reg}]")


def check_conf_tab(conf: ConfTab, name: str = "conf-counter-range") -> None:
    """Every allocated counter obeys its range/saturation law."""
    for index, ways in enumerate(conf._sets):
        _check_set_shape(name, conf, index, ways)
        for tag, counter in ways:
            if not isinstance(counter, ResettingConfidenceCounter):
                raise InvariantViolation(
                    name, f"conf set {index} holds {type(counter).__name__}",
                    snapshot={"entry": (tag, counter)})
            if counter.bits != conf.counter_bits:
                raise InvariantViolation(
                    name, f"conf set {index} counter width {counter.bits} != "
                          f"configured {conf.counter_bits}",
                    snapshot={"counter": counter})
            if not 0 <= counter.value <= counter.maximum:
                raise InvariantViolation(
                    name, f"conf set {index} counter value {counter.value} "
                          f"outside [0, {counter.maximum}]",
                    snapshot={"counter": counter})
            if counter.confident != (counter.value == counter.maximum):
                raise InvariantViolation(
                    name, f"conf set {index} counter confident flag "
                          f"disagrees with saturation",
                    snapshot={"counter": counter})


# ======================================================================
# Pipeline-level invariants
# ======================================================================

def check_free_list_conservation(pipeline) -> None:
    """Free lists + map table + in-flight previous mappings partition the
    physical register space."""
    name = "free-list-conservation"
    r = pipeline.renamer
    cycle = pipeline.cycle
    free = list(r._free_int) + list(r._free_fp)
    for phys in r._free_int:
        if not 0 <= phys < r.int_phys:
            raise InvariantViolation(
                name, f"int free list holds out-of-class register {phys}",
                cycle=cycle, snapshot={"free_int": list(r._free_int)})
    for phys in r._free_fp:
        if not r.int_phys <= phys < r.num_phys:
            raise InvariantViolation(
                name, f"fp free list holds out-of-class register {phys}",
                cycle=cycle, snapshot={"free_fp": list(r._free_fp)})
    held = [u.prev_phys for u in pipeline.rob if u.prev_phys >= 0]
    population = sorted(free + list(r.map) + held)
    if population != list(range(r.num_phys)):
        seen: Dict[int, int] = {}
        for phys in population:
            seen[phys] = seen.get(phys, 0) + 1
        dupes = {p: n for p, n in seen.items() if n > 1}
        missing = [p for p in range(r.num_phys) if p not in seen]
        raise InvariantViolation(
            name,
            f"physical registers not conserved: {len(dupes)} duplicated, "
            f"{len(missing)} leaked",
            cycle=cycle,
            snapshot={"duplicated": dupes, "leaked": missing,
                      "free": sorted(free)})
    free_set = set(free)
    for uop in pipeline.rob:
        if uop.dest_phys >= 0 and uop.dest_phys in free_set:
            raise InvariantViolation(
                name,
                f"in-flight destination register {uop.dest_phys} is on a "
                f"free list", cycle=cycle, uop=uop,
                snapshot={"free": sorted(free)})


def check_occupancy_agreement(pipeline) -> None:
    """ROB, IQ and LSQ describe the same in-flight population."""
    name = "rob-iq-lsq-agreement"
    cycle = pipeline.cycle
    rob, iq, lsq = pipeline.rob, pipeline.iq, pipeline.lsq
    if len(rob) > rob.size:
        raise InvariantViolation(
            name, f"ROB occupancy {len(rob)} exceeds capacity {rob.size}",
            cycle=cycle)
    if len(lsq) > lsq.size:
        raise InvariantViolation(
            name, f"LSQ occupancy {len(lsq)} exceeds capacity {lsq.size}",
            cycle=cycle)
    prev_seq = -1
    rob_ids = set()
    iq_resident = 0
    mem_seqs = []
    for uop in rob:
        if uop.seq <= prev_seq:
            raise InvariantViolation(
                name, f"ROB out of fetch order at seq {uop.seq}",
                cycle=cycle, uop=uop)
        prev_seq = uop.seq
        rob_ids.add(id(uop))
        if uop.iq_slot != -1:
            iq_resident += 1
        if uop.inst.is_mem:
            mem_seqs.append(uop.seq)
            if not uop.in_lsq:
                raise InvariantViolation(
                    name, "in-flight memory uop not marked LSQ-resident",
                    cycle=cycle, uop=uop)
    lsq_seqs = [u.seq for u in lsq]
    if lsq_seqs != mem_seqs:
        raise InvariantViolation(
            name,
            f"LSQ population disagrees with the ROB's memory uops "
            f"({len(lsq_seqs)} vs {len(mem_seqs)})",
            cycle=cycle, snapshot={"lsq_seqs": lsq_seqs,
                                   "rob_mem_seqs": mem_seqs})
    if iq.occupancy != iq_resident:
        raise InvariantViolation(
            name,
            f"IQ occupancy {iq.occupancy} disagrees with the ROB's "
            f"dispatched-unissued population {iq_resident}", cycle=cycle)
    # The shifting queue compacts positions on every release, so a uop's
    # dispatch-time handle is stale by design (the scan issue path re-reads
    # positions from occupied(); iq_slot only flags IQ residence there).
    stable_handles = not isinstance(iq, ShiftingQueue)
    occupied = 0
    for slot, uop in iq.occupied():
        occupied += 1
        if id(uop) not in rob_ids:
            raise InvariantViolation(
                name, "IQ entry holds a uop absent from the ROB",
                cycle=cycle, uop=uop, snapshot={"slot": slot})
        if uop.squashed:
            raise InvariantViolation(
                name, "IQ entry holds a squashed uop", cycle=cycle, uop=uop,
                snapshot={"slot": slot})
        if uop.issue_cycle >= 0:
            raise InvariantViolation(
                name, "IQ entry holds an already-issued uop", cycle=cycle,
                uop=uop, snapshot={"slot": slot})
        if stable_handles and uop.iq_slot != slot:
            raise InvariantViolation(
                name,
                f"IQ entry {slot} holds a uop whose handle says "
                f"{uop.iq_slot}", cycle=cycle, uop=uop)
    if occupied != iq.occupancy:
        raise InvariantViolation(
            name,
            f"IQ slot array holds {occupied} uops but the free lists imply "
            f"{iq.occupancy}", cycle=cycle)


def _component_queues(iq) -> Iterable[Tuple[str, IssueQueue]]:
    if isinstance(iq, DistributedIssueQueue):
        for fu, queue in iq.queues.items():
            yield f"{fu.name} queue", queue
    elif isinstance(iq, IssueQueue):
        yield "IQ", iq


def check_priority_partition(pipeline) -> None:
    """PUBS split free lists conserve their partitions; stall accounting."""
    name = "priority-partition-bounds"
    cycle = pipeline.cycle
    for label, q in _component_queues(pipeline.iq):
        fp, fn = list(q._free_priority), list(q._free_normal)
        if len(set(fp)) != len(fp) or len(set(fn)) != len(fn):
            raise InvariantViolation(
                name, f"{label} free lists hold duplicate slots",
                cycle=cycle, snapshot={"free_priority": fp, "free_normal": fn})
        for slot in fp:
            if not 0 <= slot < q.priority_entries:
                raise InvariantViolation(
                    name,
                    f"{label} priority free list holds slot {slot}, outside "
                    f"the {q.priority_entries}-entry partition",
                    cycle=cycle, snapshot={"free_priority": fp})
            if q._slots[slot] is not None:
                raise InvariantViolation(
                    name, f"{label} slot {slot} is both free and occupied",
                    cycle=cycle, snapshot={"free_priority": fp})
        for slot in fn:
            if not q.priority_entries <= slot < q.size:
                raise InvariantViolation(
                    name,
                    f"{label} normal free list holds slot {slot}, inside the "
                    f"priority partition", cycle=cycle,
                    snapshot={"free_normal": fn})
            if q._slots[slot] is not None:
                raise InvariantViolation(
                    name, f"{label} slot {slot} is both free and occupied",
                    cycle=cycle, snapshot={"free_normal": fn})
        occupied_priority = sum(
            1 for s in range(q.priority_entries) if q._slots[s] is not None)
        occupied_normal = sum(
            1 for s in range(q.priority_entries, q.size)
            if q._slots[s] is not None)
        if occupied_priority + len(fp) != q.priority_entries:
            raise InvariantViolation(
                name,
                f"{label} priority partition leaks entries: {occupied_priority}"
                f" occupied + {len(fp)} free != {q.priority_entries}",
                cycle=cycle)
        if occupied_normal + len(fn) != q.size - q.priority_entries:
            raise InvariantViolation(
                name,
                f"{label} normal partition leaks entries: {occupied_normal} "
                f"occupied + {len(fn)} != {q.size - q.priority_entries}",
                cycle=cycle)
    stats = pipeline.stats
    if stats.priority_dispatches > stats.unconfident_dispatches:
        raise InvariantViolation(
            name,
            f"more priority dispatches ({stats.priority_dispatches}) than "
            f"unconfident decodes requesting them "
            f"({stats.unconfident_dispatches})", cycle=cycle)


def check_slice_tables(pipeline) -> None:
    """brslice/def pointer validity against the live table geometries."""
    tracker = pipeline.slice_tracker
    check_brslice_tab(tracker.brslice_tab, tracker.conf_tab)
    check_def_tab(tracker.def_tab, tracker.brslice_tab)


def check_confidence_counters(pipeline) -> None:
    """Resetting-counter range/saturation laws over the whole conf_tab."""
    check_conf_tab(pipeline.slice_tracker.conf_tab)


def check_scheduler_wakeup(pipeline) -> None:
    """Incremental ready-set bookkeeping matches pending-source counts."""
    name = "scheduler-wakeup-consistency"
    if not pipeline._incremental_issue:
        return
    cycle = pipeline.cycle
    num_phys = pipeline.renamer.num_phys
    registrations: Dict[int, int] = {}
    for phys, waiters in pipeline._wakeup.items():
        if not 0 <= phys < num_phys:
            raise InvariantViolation(
                name, f"wakeup list keyed by invalid register {phys}",
                cycle=cycle)
        for uop in waiters:
            if uop.squashed:
                continue  # dropped lazily at wake time, by design
            registrations[id(uop)] = registrations.get(id(uop), 0) + 1
    for slot, uop in pipeline.iq.occupied():
        if uop.pending_srcs < 0:
            raise InvariantViolation(
                name, f"negative pending-source count {uop.pending_srcs}",
                cycle=cycle, uop=uop)
        waiting = registrations.get(id(uop), 0)
        if waiting != uop.pending_srcs:
            raise InvariantViolation(
                name,
                f"uop registered in {waiting} wakeup list(s) but "
                f"pending_srcs={uop.pending_srcs}", cycle=cycle, uop=uop,
                snapshot={"slot": slot})


def check_topdown_accounting(pipeline) -> None:
    """Topdown slot buckets partition the machine's issue slots exactly."""
    name = "topdown-cycle-accounting"
    cycle = pipeline.cycle
    s = pipeline.stats
    width = pipeline.config.decode_width
    slot_sum = (s.td_retire_slots + s.td_wrongpath_slots
                + s.td_recovery_slots + s.td_fe_fetch_slots
                + s.td_fe_l1i_slots + s.td_be_rob_slots + s.td_be_iq_slots
                + s.td_be_lsq_slots + s.td_be_regs_slots
                + s.td_be_priority_slots)
    total = width * s.cycles
    if slot_sum != total:
        raise InvariantViolation(
            name,
            f"topdown buckets hold {slot_sum} slots, the machine issued "
            f"{total} (decode_width {width} x {s.cycles} cycles)",
            cycle=cycle,
            snapshot={"retire": s.td_retire_slots,
                      "wrongpath": s.td_wrongpath_slots,
                      "recovery": s.td_recovery_slots,
                      "fe_fetch": s.td_fe_fetch_slots,
                      "fe_l1i": s.td_fe_l1i_slots,
                      "be_rob": s.td_be_rob_slots,
                      "be_iq": s.td_be_iq_slots,
                      "be_lsq": s.td_be_lsq_slots,
                      "be_regs": s.td_be_regs_slots,
                      "be_priority": s.td_be_priority_slots})
    per_cause = (s.rob_full_stall_cycles + s.iq_full_stall_cycles
                 + s.lsq_full_stall_cycles + s.regs_full_stall_cycles
                 + s.priority_stall_cycles)
    if s.dispatch_stall_cycles != per_cause:
        raise InvariantViolation(
            name,
            f"per-cause stall cycles sum to {per_cause}, aggregate says "
            f"{s.dispatch_stall_cycles} -- the causes overlap or leak",
            cycle=cycle,
            snapshot={"rob": s.rob_full_stall_cycles,
                      "iq": s.iq_full_stall_cycles,
                      "lsq": s.lsq_full_stall_cycles,
                      "regs": s.regs_full_stall_cycles,
                      "priority": s.priority_stall_cycles})
    components = (s.missspec_frontend_cycles + s.missspec_iq_wait_cycles
                  + s.missspec_execute_cycles)
    if components != s.missspec_penalty_cycles:
        raise InvariantViolation(
            name,
            f"E_wait components sum to {components}, the recorded penalty "
            f"is {s.missspec_penalty_cycles}",
            cycle=cycle,
            snapshot={"frontend": s.missspec_frontend_cycles,
                      "iq_wait": s.missspec_iq_wait_cycles,
                      "execute": s.missspec_execute_cycles})


def default_registry() -> InvariantRegistry:
    """A fresh registry holding every built-in invariant."""
    registry = InvariantRegistry()
    registry.register("free-list-conservation", check_free_list_conservation)
    registry.register("rob-iq-lsq-agreement", check_occupancy_agreement)
    registry.register("priority-partition-bounds", check_priority_partition)
    registry.register("brslice-pointer-validity", check_slice_tables)
    registry.register("conf-counter-range", check_confidence_counters)
    registry.register("scheduler-wakeup-consistency", check_scheduler_wakeup)
    registry.register("topdown-cycle-accounting", check_topdown_accounting)
    return registry
