"""The differential architectural oracle.

The timing pipeline is trace-driven: its committed stream *should* be the
in-order architectural execution of the program.  :class:`CommitOracle`
checks that claim from the outside.  It owns a second, completely
independent :class:`~repro.isa.executor.FunctionalExecutor` (same program,
same memory seed) and co-executes it one instruction per commit, comparing
everything the pipeline recorded about the committing uop -- PC, opcode,
branch direction and successor PC, effective memory address, misprediction
flag -- against what in-order execution actually produces.  Sequence
numbers are checked for gaplessness, so a dropped, duplicated or reordered
commit is caught on the spot.

At the end of a run, :meth:`finish` advances a *clone* of the oracle state
to the main executor's position and diffs the full architectural state
(registers, PC, every memory word ever written).  Any corruption of the
shared functional state by the timing model -- the failure mode that turns
into silently wrong IPC numbers -- shows up as a concrete register or word
mismatch.  The clone keeps ``finish`` non-destructive, so a pipeline can be
resumed (``run`` called again) after a checked run.
"""

from __future__ import annotations

from ..isa.executor import FunctionalExecutor
from ..isa.instruction import Program
from .violations import OracleMismatch


def clone_executor(executor: FunctionalExecutor) -> FunctionalExecutor:
    """An independent copy of ``executor``'s architectural state."""
    clone = FunctionalExecutor(executor.program,
                               mem_seed=executor.memory.seed)
    clone.regs = list(executor.regs)
    clone.pc = executor.pc
    clone._seq = executor.seq
    clone.memory._words = dict(executor.memory.words())
    return clone


class CommitOracle:
    """In-order co-execution cross-check of the committed stream."""

    def __init__(self, program: Program, mem_seed: int = 0):
        self.executor = FunctionalExecutor(program, mem_seed=mem_seed)
        self.commits_checked = 0
        self.final_state_checked = False

    # ------------------------------------------------------------------
    # Run protocol
    # ------------------------------------------------------------------

    def skip(self, count: int) -> None:
        """Mirror the pipeline's warm-up fast-forward (untimed commits)."""
        for _ in range(count):
            self.executor.step()

    def restore_checkpoint(self, checkpoint) -> None:
        """Re-seat the oracle at a recorded architectural state.

        ``checkpoint`` is a :class:`~repro.trace.format.ArchCheckpoint`
        of the same (program, mem_seed) stream; sampled-region replay
        uses the nearest one below the region start so only the residue
        needs functional stepping.
        """
        self.executor = checkpoint.restore(self.executor.program)

    def check_commit(self, uop, cycle: int) -> None:
        """Verify one committing uop against the next in-order instruction."""
        if not uop.on_correct_path:
            raise OracleMismatch(
                "commit-oracle", "a wrong-path uop reached commit",
                cycle=cycle, uop=uop)
        if uop.squashed:
            raise OracleMismatch(
                "commit-oracle", "a squashed uop reached commit",
                cycle=cycle, uop=uop)
        if not uop.completed:
            raise OracleMismatch(
                "commit-oracle", "an incomplete uop reached commit",
                cycle=cycle, uop=uop)
        expected_seq = self.executor.seq
        if uop.trace_seq != expected_seq:
            raise OracleMismatch(
                "commit-oracle",
                f"commit stream gap: expected trace_seq {expected_seq}, "
                f"got {uop.trace_seq}",
                cycle=cycle, uop=uop)
        record = self.executor.step()
        inst = uop.inst
        if inst.pc != record.inst.pc or inst.opcode is not record.inst.opcode:
            raise OracleMismatch(
                "commit-oracle",
                f"committed {inst.opcode.name}@{inst.pc:#x} but in-order "
                f"execution is at {record.inst.opcode.name}@{record.inst.pc:#x}",
                cycle=cycle, uop=uop,
                snapshot={"record": record})
        if inst.is_mem and uop.mem_addr != record.mem_addr:
            raise OracleMismatch(
                "commit-oracle",
                f"memory effect mismatch at {inst.pc:#x}: pipeline address "
                f"{uop.mem_addr!r}, architectural address {record.mem_addr!r}",
                cycle=cycle, uop=uop, snapshot={"record": record})
        if inst.is_conditional_branch:
            if uop.actual_taken != record.taken:
                raise OracleMismatch(
                    "commit-oracle",
                    f"branch direction mismatch at {inst.pc:#x}: pipeline "
                    f"recorded taken={uop.actual_taken}, oracle says "
                    f"{record.taken}",
                    cycle=cycle, uop=uop, snapshot={"record": record})
            if uop.actual_next_pc != record.next_pc:
                raise OracleMismatch(
                    "commit-oracle",
                    f"branch successor mismatch at {inst.pc:#x}: pipeline "
                    f"{uop.actual_next_pc:#x}, oracle {record.next_pc:#x}",
                    cycle=cycle, uop=uop, snapshot={"record": record})
            if uop.mispredicted != (uop.predicted_next_pc != record.next_pc):
                raise OracleMismatch(
                    "commit-oracle",
                    f"misprediction flag inconsistent at {inst.pc:#x}: "
                    f"flag={uop.mispredicted}, predicted "
                    f"{uop.predicted_next_pc:#x} vs actual {record.next_pc:#x}",
                    cycle=cycle, uop=uop, snapshot={"record": record})
        self.commits_checked += 1

    def finish(self, main_executor: FunctionalExecutor,
               cycle: int = None) -> None:
        """End-of-run differential state check against the main executor.

        The main executor runs ahead of commit (the trace cursor materializes
        in-flight records); a clone of the oracle is advanced to the same
        sequence number and the complete architectural state is compared.
        """
        self._finish_against(main_executor.seq, main_executor.pc,
                             list(main_executor.regs),
                             main_executor.memory.words(),
                             "pipeline executor", cycle)

    def finish_against_checkpoint(self, checkpoint, cycle: int = None) -> None:
        """End-of-run state check for replay runs (no live executor).

        ``checkpoint`` is the trace's end
        :class:`~repro.trace.format.ArchCheckpoint`; the oracle clone is
        advanced to its sequence number (at or past everything the
        pipeline committed) and diffed against the recorded state, proving
        the oracle's independent execution agrees with the capture pass.
        """
        self._finish_against(checkpoint.seq, checkpoint.pc,
                             list(checkpoint.regs), dict(checkpoint.mem_words),
                             "trace checkpoint", cycle)

    def _finish_against(self, seq: int, pc: int, regs, words,
                        what: str, cycle) -> None:
        probe = clone_executor(self.executor)
        if probe.seq > seq:
            raise OracleMismatch(
                "commit-oracle",
                f"oracle ran ahead of the {what} "
                f"({probe.seq} > {seq})", cycle=cycle)
        while probe.seq < seq:
            probe.step()
        if probe.pc != pc:
            raise OracleMismatch(
                "commit-oracle",
                f"final PC mismatch: oracle {probe.pc:#x}, "
                f"{what} {pc:#x}", cycle=cycle)
        if probe.regs != regs:
            diffs = {f"r{i}": (a, b) for i, (a, b)
                     in enumerate(zip(probe.regs, regs))
                     if a != b}
            raise OracleMismatch(
                "commit-oracle",
                f"final register state mismatch in {len(diffs)} register(s)",
                cycle=cycle, snapshot=diffs)
        oracle_words = probe.memory.words()
        main_words = words
        if oracle_words != main_words:
            bad = {hex(a): (oracle_words.get(a), main_words.get(a))
                   for a in set(oracle_words) ^ set(main_words)
                   | {a for a in set(oracle_words) & set(main_words)
                      if oracle_words[a] != main_words[a]}}
            raise OracleMismatch(
                "commit-oracle",
                f"final memory state mismatch in {len(bad)} word(s)",
                cycle=cycle, snapshot=bad)
        self.final_state_checked = True
