"""Structured verification failures.

Every check in :mod:`repro.verify` reports through
:class:`InvariantViolation`: a named invariant, the cycle it fired on, a
description of the micro-op involved (when one is), and a *bounded* snapshot
of the relevant machine state.  The snapshot is size-capped on construction
so a violation raised from a 100M-instruction run never drags the whole
simulator state into the exception object (or a log line).

:class:`OracleMismatch` specializes the same shape for differential-oracle
disagreements, so callers can catch either the specific kind or everything
verification-related with one ``except InvariantViolation``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

#: Per-value cap on snapshot entries (characters of ``repr``).
SNAPSHOT_VALUE_CHARS = 400
#: Cap on the number of snapshot entries retained.
SNAPSHOT_MAX_KEYS = 16


def bounded_snapshot(state: Optional[Dict[str, Any]]) -> Dict[str, str]:
    """Render ``state`` as a size-capped ``{key: repr}`` mapping."""
    snapshot: Dict[str, str] = {}
    if not state:
        return snapshot
    for i, (key, value) in enumerate(state.items()):
        if i >= SNAPSHOT_MAX_KEYS:
            snapshot["..."] = f"{len(state) - SNAPSHOT_MAX_KEYS} more entries"
            break
        text = repr(value)
        if len(text) > SNAPSHOT_VALUE_CHARS:
            text = text[:SNAPSHOT_VALUE_CHARS] + "...<truncated>"
        snapshot[str(key)] = text
    return snapshot


def describe_uop(uop) -> Optional[Dict[str, Any]]:
    """A compact, self-contained description of an in-flight uop."""
    if uop is None:
        return None
    return {
        "seq": uop.seq,
        "pc": hex(uop.inst.pc),
        "opcode": uop.inst.opcode.name,
        "trace_seq": uop.trace_seq,
        "on_correct_path": uop.on_correct_path,
        "fetch_cycle": uop.fetch_cycle,
        "dispatch_cycle": uop.dispatch_cycle,
        "issue_cycle": uop.issue_cycle,
        "completed": uop.completed,
        "squashed": uop.squashed,
    }


class InvariantViolation(RuntimeError):
    """A machine-checked law of the simulator was broken.

    Attributes:
        invariant: registry name of the failed check (e.g.
            ``"free-list-conservation"``).
        cycle: simulation cycle the check ran on (None for checks outside a
            running pipeline, e.g. standalone table validation).
        uop: compact description of the involved uop, or None.
        detail: one-line human explanation of what disagreed.
        snapshot: bounded ``{name: repr}`` excerpt of the offending state.
    """

    def __init__(self, invariant: str, detail: str, cycle: Optional[int] = None,
                 uop=None, snapshot: Optional[Dict[str, Any]] = None):
        self.invariant = invariant
        self.detail = detail
        self.cycle = cycle
        self.uop = describe_uop(uop)
        self.snapshot = bounded_snapshot(snapshot)
        where = f" @cycle {cycle}" if cycle is not None else ""
        super().__init__(f"[{invariant}]{where} {detail}")

    def report(self) -> str:
        """Multi-line diagnostic rendering (the ``repro verify`` output)."""
        lines = [f"invariant : {self.invariant}",
                 f"detail    : {self.detail}"]
        if self.cycle is not None:
            lines.append(f"cycle     : {self.cycle}")
        if self.uop is not None:
            lines.append("uop       : " + ", ".join(
                f"{k}={v}" for k, v in self.uop.items()))
        for key, value in self.snapshot.items():
            lines.append(f"  state[{key}] = {value}")
        return "\n".join(lines)


class OracleMismatch(InvariantViolation):
    """The committed stream diverged from the in-order architectural oracle."""
