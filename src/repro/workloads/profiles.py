"""Per-benchmark workload profiles.

The paper evaluates all SPEC CPU2006 programs except ``wrf`` (28 programs),
split at 3.0 branch MPKI into difficult (D-BP) and easy (E-BP) branch
prediction sets, and at 1.0 LLC MPKI into memory- and compute-intensive.
We cannot run Alpha SPEC binaries, so each program is replaced by a
synthetic register-machine program whose *profile* places it in the same
region of that (branch MPKI, LLC MPKI) plane and gives it the same
qualitative slice structure:

* ``hard_branch_sites`` / ``hard_branch_bias_bits`` -- data-dependent
  branches whose outcome is a function of pseudo-random loaded data; a
  bias of ``k`` bits makes the branch taken with probability ``2**-k``
  (k=1 -> 50/50, maximally hard; larger k -> milder ~2**-k miss rates).
  Together with the iteration length these set branch MPKI.
* ``slice_depth`` -- dependent ALU operations between the feeding load and
  the branch: the length of the branch slice PUBS accelerates.
* ``branch_data_bytes`` -- footprint of the loads feeding hard branches.
  Cache-resident for compute programs (sjeng's evaluation tables); huge
  for memory-bound programs like mcf, whose branch slices then stall on
  memory and cap PUBS's benefit (the paper's 0.3% mcf result).
* ``random_loads`` / ``data_footprint_bytes`` -- independent random loads
  driving LLC MPKI and memory-level parallelism.
* ``streaming_loads`` -- unit-stride loads the stream prefetcher covers.
* ``pointer_chase_loads`` -- serialized dependent loads (low MLP).
* ``predictable_branch_sites`` / ``predictable_period`` -- periodic
  branches the perceptron learns, diluting MPKI like real control flow.
* ``filler_alu`` / ``filler_mul`` / ``filler_fp`` -- independent
  computation-slice work competing with branch slices for issue slots
  (this contention is what position-priority select arbitrates).

Footprints that cumulatively fit in 3/4 of the LLC are pre-warmed by the
simulator (checkpoint-style); larger footprints run cold on purpose.
The numbers below were calibrated against the simulator so measured branch
MPKI and LLC MPKI land near published SPEC2006 characterizations;
EXPERIMENTS.md records what every run actually measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

KIB = 1024
MIB = 1024 * 1024


@dataclass(frozen=True)
class WorkloadProfile:
    """Generator parameters for one synthetic benchmark program."""

    name: str
    description: str
    hard_branch_sites: int = 1
    hard_branch_bias_bits: int = 1
    slice_depth: int = 3
    branch_data_bytes: int = 16 * KIB
    predictable_branch_sites: int = 2
    predictable_period: int = 8
    data_footprint_bytes: int = 64 * KIB
    random_loads: int = 1
    streaming_loads: int = 1
    pointer_chase_loads: int = 0
    #: Loads from a dedicated always-cold 64 MB region, executed only every
    #: ``cold_period``-th iteration (guarded by a predictable branch): a
    #: fine-grained dial for LLC MPKI in the 1-10 range (astar, omnetpp).
    periodic_cold_loads: int = 0
    cold_period: int = 8
    store_sites: int = 1
    filler_alu: int = 24
    #: Dependent-chain length of the ALU filler: real code's computation
    #: slices are dependency-limited, not an all-ready flood; chains of 3
    #: mean only one in three filler ops is issue-ready at a time.
    filler_chain: int = 3
    filler_mul: int = 0
    filler_fp: int = 0
    mem_seed: int = 0

    def __post_init__(self) -> None:
        for n in ("branch_data_bytes", "data_footprint_bytes",
                  "predictable_period"):
            v = getattr(self, n)
            if v < 8 or v & (v - 1):
                raise ValueError(f"{n} must be a power of two >= 8")
        if self.hard_branch_bias_bits < 1:
            raise ValueError("hard_branch_bias_bits must be >= 1")
        if self.cold_period < 2 or self.cold_period & (self.cold_period - 1):
            raise ValueError("cold_period must be a power of two >= 2")
        if self.slice_depth < 0:
            raise ValueError("slice_depth must be non-negative")


def _int_profiles() -> List[WorkloadProfile]:
    return [
        WorkloadProfile(
            name="perlbench",
            description="interpreter: moderate hard branches, small tables",
            hard_branch_sites=2, hard_branch_bias_bits=3, slice_depth=3,
            branch_data_bytes=32 * KIB, predictable_branch_sites=3,
            filler_alu=26, random_loads=1, data_footprint_bytes=256 * KIB,
            mem_seed=101,
        ),
        WorkloadProfile(
            name="bzip2",
            description="compression: data-dependent bit tests",
            hard_branch_sites=2, hard_branch_bias_bits=2, slice_depth=2,
            branch_data_bytes=64 * KIB, predictable_branch_sites=2,
            filler_alu=24, random_loads=1, data_footprint_bytes=256 * KIB,
            mem_seed=102,
        ),
        WorkloadProfile(
            name="gcc",
            description="compiler: branchy, mid-size working set",
            hard_branch_sites=2, hard_branch_bias_bits=2, slice_depth=3,
            branch_data_bytes=32 * KIB, predictable_branch_sites=3,
            filler_alu=16, filler_fp=4, random_loads=1,
            data_footprint_bytes=512 * KIB,
            periodic_cold_loads=1, cold_period=16, mem_seed=103,
        ),
        WorkloadProfile(
            name="mcf",
            description="network simplex: pointer chasing, huge footprint, "
                        "hard branches that depend on missing loads",
            hard_branch_sites=1, hard_branch_bias_bits=1, slice_depth=2,
            branch_data_bytes=64 * MIB, predictable_branch_sites=1,
            filler_alu=10, random_loads=2, data_footprint_bytes=64 * MIB,
            pointer_chase_loads=1, streaming_loads=0, mem_seed=104,
        ),
        WorkloadProfile(
            name="gobmk",
            description="go engine: many hard branches on board state",
            hard_branch_sites=3, hard_branch_bias_bits=2, slice_depth=3,
            branch_data_bytes=32 * KIB, predictable_branch_sites=2,
            filler_alu=22, random_loads=1, data_footprint_bytes=128 * KIB,
            mem_seed=105,
        ),
        WorkloadProfile(
            name="hmmer",
            description="profile HMM: predictable inner loops, ALU-dense",
            hard_branch_sites=0, predictable_branch_sites=3,
            predictable_period=8, filler_alu=32, filler_mul=2,
            random_loads=1, data_footprint_bytes=128 * KIB, mem_seed=106,
        ),
        WorkloadProfile(
            name="sjeng",
            description="chess: hard branches on cache-resident evaluation "
                        "tables with deep ALU slices (paper's best case)",
            hard_branch_sites=1, hard_branch_bias_bits=1, slice_depth=4,
            branch_data_bytes=16 * KIB, predictable_branch_sites=2,
            filler_alu=11, filler_chain=3, filler_mul=1, filler_fp=9,
            random_loads=1, data_footprint_bytes=128 * KIB, mem_seed=107,
        ),
        WorkloadProfile(
            name="libquantum",
            description="quantum sim: streaming, fully predictable",
            hard_branch_sites=0, predictable_branch_sites=1,
            predictable_period=32, streaming_loads=4, random_loads=0,
            data_footprint_bytes=32 * MIB, filler_alu=18, mem_seed=108,
        ),
        WorkloadProfile(
            name="h264ref",
            description="video encode: mixed branches, small blocks",
            hard_branch_sites=1, hard_branch_bias_bits=2, slice_depth=1,
            branch_data_bytes=32 * KIB, predictable_branch_sites=3,
            filler_alu=8, filler_fp=12, filler_mul=2, random_loads=1,
            data_footprint_bytes=256 * KIB, mem_seed=109,
        ),
        WorkloadProfile(
            name="omnetpp",
            description="discrete event sim: hard branches + large heap",
            hard_branch_sites=2, hard_branch_bias_bits=2, slice_depth=3,
            branch_data_bytes=256 * KIB, predictable_branch_sites=2,
            filler_alu=16, random_loads=1, data_footprint_bytes=512 * KIB,
            periodic_cold_loads=4, cold_period=8, mem_seed=110,
        ),
        WorkloadProfile(
            name="astar",
            description="path-finding: extraordinarily hard branches "
                        "(paper footnote 1)",
            hard_branch_sites=3, hard_branch_bias_bits=1, slice_depth=1,
            branch_data_bytes=64 * KIB, predictable_branch_sites=1,
            filler_alu=20, filler_fp=4, random_loads=1,
            data_footprint_bytes=512 * KIB,
            periodic_cold_loads=4, cold_period=8, mem_seed=111,
        ),
        WorkloadProfile(
            name="xalancbmk",
            description="XML transform: branchy, cache-resident working set",
            hard_branch_sites=2, hard_branch_bias_bits=3, slice_depth=2,
            branch_data_bytes=64 * KIB, predictable_branch_sites=3,
            filler_alu=18, random_loads=1, data_footprint_bytes=256 * KIB,
            periodic_cold_loads=1, cold_period=8, mem_seed=112,
        ),
    ]


def _fp_profiles() -> List[WorkloadProfile]:
    return [
        WorkloadProfile(
            name="bwaves",
            description="CFD: streaming FP, predictable",
            hard_branch_sites=0, predictable_branch_sites=2,
            predictable_period=32, streaming_loads=3, random_loads=0,
            data_footprint_bytes=32 * MIB, filler_fp=10, filler_alu=12,
            mem_seed=201,
        ),
        WorkloadProfile(
            name="gamess",
            description="quantum chemistry: compute-bound FP",
            hard_branch_sites=0, predictable_branch_sites=2,
            filler_fp=12, filler_alu=16, filler_mul=1, random_loads=1,
            data_footprint_bytes=256 * KIB, mem_seed=202,
        ),
        WorkloadProfile(
            name="milc",
            description="lattice QCD: streaming FP over a large grid",
            hard_branch_sites=0, predictable_branch_sites=2,
            predictable_period=16, streaming_loads=3, random_loads=1,
            data_footprint_bytes=32 * MIB, filler_fp=10, filler_alu=8,
            mem_seed=203,
        ),
        WorkloadProfile(
            name="zeusmp",
            description="astro CFD: FP stencil, prefetch-friendly",
            hard_branch_sites=0, predictable_branch_sites=2,
            predictable_period=32, streaming_loads=2, filler_fp=11,
            filler_alu=10, data_footprint_bytes=16 * MIB, random_loads=0,
            mem_seed=204,
        ),
        WorkloadProfile(
            name="gromacs",
            description="molecular dynamics: FP with small tables",
            hard_branch_sites=1, hard_branch_bias_bits=4, slice_depth=2,
            branch_data_bytes=16 * KIB, predictable_branch_sites=2,
            filler_fp=10, filler_alu=14, random_loads=1,
            data_footprint_bytes=256 * KIB, mem_seed=205,
        ),
        WorkloadProfile(
            name="cactusADM",
            description="numerical relativity: regular FP stencil",
            hard_branch_sites=0, predictable_branch_sites=1,
            predictable_period=32, streaming_loads=2, filler_fp=12,
            filler_alu=10, data_footprint_bytes=16 * MIB, random_loads=0,
            mem_seed=206,
        ),
        WorkloadProfile(
            name="leslie3d",
            description="CFD: streaming FP",
            hard_branch_sites=0, predictable_branch_sites=2,
            predictable_period=16, streaming_loads=3, filler_fp=10,
            filler_alu=8, data_footprint_bytes=16 * MIB, random_loads=0,
            mem_seed=207,
        ),
        WorkloadProfile(
            name="namd",
            description="molecular dynamics: compute-bound, predictable",
            hard_branch_sites=0, predictable_branch_sites=2,
            filler_fp=13, filler_alu=14, filler_mul=1, random_loads=1,
            data_footprint_bytes=256 * KIB, mem_seed=208,
        ),
        WorkloadProfile(
            name="dealII",
            description="FEM: FP with light branching",
            hard_branch_sites=1, hard_branch_bias_bits=4, slice_depth=2,
            branch_data_bytes=32 * KIB, predictable_branch_sites=2,
            filler_fp=10, filler_alu=13, random_loads=1,
            data_footprint_bytes=512 * KIB, mem_seed=209,
        ),
        WorkloadProfile(
            name="soplex",
            description="LP solver: hard branches *and* a large sparse "
                        "matrix footprint (mode-switch sensitive)",
            hard_branch_sites=2, hard_branch_bias_bits=2, slice_depth=2,
            branch_data_bytes=128 * KIB, predictable_branch_sites=2,
            filler_alu=12, filler_fp=4, random_loads=2,
            data_footprint_bytes=32 * MIB, mem_seed=210,
        ),
        WorkloadProfile(
            name="povray",
            description="ray tracing: FP compute with mild branching",
            hard_branch_sites=1, hard_branch_bias_bits=4, slice_depth=3,
            branch_data_bytes=16 * KIB, predictable_branch_sites=2,
            filler_fp=11, filler_alu=14, random_loads=1,
            data_footprint_bytes=128 * KIB, mem_seed=211,
        ),
        WorkloadProfile(
            name="calculix",
            description="FEM: compute-bound FP",
            hard_branch_sites=0, predictable_branch_sites=2,
            filler_fp=12, filler_alu=14, filler_mul=1, random_loads=1,
            data_footprint_bytes=512 * KIB, mem_seed=212,
        ),
        WorkloadProfile(
            name="GemsFDTD",
            description="FDTD: streaming FP over large grids",
            hard_branch_sites=0, predictable_branch_sites=1,
            predictable_period=32, streaming_loads=3, filler_fp=10,
            filler_alu=8, data_footprint_bytes=32 * MIB, random_loads=1,
            mem_seed=213,
        ),
        WorkloadProfile(
            name="tonto",
            description="quantum chemistry: FP compute",
            hard_branch_sites=0, predictable_branch_sites=2,
            filler_fp=9, filler_alu=12, random_loads=1,
            data_footprint_bytes=512 * KIB, mem_seed=214,
        ),
        WorkloadProfile(
            name="lbm",
            description="lattice Boltzmann: pure streaming",
            hard_branch_sites=0, predictable_branch_sites=1,
            predictable_period=64, streaming_loads=4, store_sites=2,
            filler_fp=9, filler_alu=8, data_footprint_bytes=32 * MIB,
            random_loads=0, mem_seed=215,
        ),
        WorkloadProfile(
            name="sphinx3",
            description="speech recognition: FP with noticeable branching",
            hard_branch_sites=0, predictable_branch_sites=2,
            predictable_period=8, filler_fp=12, filler_alu=6,
            random_loads=1, data_footprint_bytes=512 * KIB, mem_seed=216,
        ),
    ]


def spec2006_profiles() -> Dict[str, WorkloadProfile]:
    """All 28 profiles (SPEC CPU2006 minus ``wrf``), keyed by name."""
    profiles = {}
    for p in _int_profiles() + _fp_profiles():
        if p.name in profiles:
            raise ValueError(f"duplicate profile: {p.name}")
        profiles[p.name] = p
    return profiles


def get_profile(name: str) -> WorkloadProfile:
    profiles = spec2006_profiles()
    if name not in profiles:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(profiles)}"
        )
    return profiles[name]
