"""Per-resource stress kernels (ustress-style microbenchmark generators).

Each builder turns one knob value into a :class:`~repro.isa.instruction.
Program` that hammers exactly one CPU resource, so the family's
:class:`~repro.workloads.stress.assertions.ExpectedBottleneck` contract can
assert that the simulator's bottleneck moves where microarchitecture theory
says it must.  The kernels reuse the synthetic-workload idiom
(:mod:`repro.workloads.generator`): an infinite outer loop, an LCG for real
data-dependent entropy, disjoint power-of-two data regions, rotating
temporary registers.

Two families model resources the ISA cannot express directly:

* ``branch_btb`` -- the ISA has no indirect branches, so indirect-target
  pressure is modelled as a ladder of always-taken *direct* branches whose
  PCs alias into a deliberately small BTB: the target working set exceeds
  the target-store capacity exactly as an indirect-heavy workload's does.
* ``callret_depth`` -- no call/return opcodes either, so deep call chains
  become chains of taken JUMPs (call path down, return path back up): the
  front end pays the taken-transfer fetch break of every call and return,
  which is the non-RAS cost of call-chain depth.
"""

from __future__ import annotations

from ...isa.instruction import Program, ProgramBuilder
from ...isa.opcodes import Opcode
from ...isa.registers import int_reg
from ..generator import _LCG_INC, _LCG_MULT, _TempPool, _aligned_mask

#: Virtual base address of the data segment (as the generator uses).
_BASE_ADDR = 1 << 30

_R_COUNTER = int_reg(1)
_R_LCG = int_reg(2)
_R_BASE = int_reg(3)
_R_LCG_MULT = int_reg(6)
_R_ONE = int_reg(7)

KIB = 1024


def _prologue(b: ProgramBuilder, seed: int = 0, mark_loop: bool = True) -> None:
    b.emit(Opcode.MOVI, dest=_R_COUNTER, imm=0)
    b.emit(Opcode.MOVI, dest=_R_LCG, imm=0x243F6A8885A308D3 + seed)
    b.emit(Opcode.MOVI, dest=_R_BASE, imm=_BASE_ADDR)
    b.emit(Opcode.MOVI, dest=_R_LCG_MULT, imm=_LCG_MULT)
    b.emit(Opcode.MOVI, dest=_R_ONE, imm=1)
    if mark_loop:
        b.mark_label("loop")


def _lcg_step(b: ProgramBuilder) -> None:
    b.emit(Opcode.MUL, dest=_R_LCG, src1=_R_LCG, src2=_R_LCG_MULT)
    b.emit(Opcode.ADDI, dest=_R_LCG, src1=_R_LCG, imm=_LCG_INC)


def _epilogue(b: ProgramBuilder) -> None:
    b.emit(Opcode.ADDI, dest=_R_COUNTER, src1=_R_COUNTER, imm=1)
    b.emit(Opcode.JUMP, target_label="loop")


def build_branch_h2p(bias_bits: int) -> Program:
    """Hard-to-predict data-dependent branches with deep slices.

    Four branch sites test random loaded data through a 4-op ALU chain;
    ``bias_bits`` sets the taken probability to ``2**-bias_bits`` (1 =>
    50/50, unlearnable; larger => increasingly predictable), so
    misprediction rate falls monotonically as the knob grows.
    """
    data_bytes = 16 * KIB  # cache-resident: the branches, not memory, stall
    b = ProgramBuilder(f"stress_branch_h2p_{bias_bits}")
    temps = _TempPool()
    _prologue(b)
    _lcg_step(b)
    for site in range(4):
        addr = temps.take()
        val = temps.take()
        cond = temps.take()
        b.emit(Opcode.XORI, dest=addr, src1=_R_LCG,
               imm=0x9E3779B97F4A7C15 * (site + 1))
        b.emit(Opcode.ANDI, dest=addr, src1=addr, imm=_aligned_mask(data_bytes))
        b.emit(Opcode.ADD, dest=addr, src1=addr, src2=_R_BASE)
        b.emit(Opcode.LOAD, dest=val, src1=addr)
        for d in range(4):
            op = Opcode.XORI if d % 2 else Opcode.ADDI
            b.emit(op, dest=val, src1=val, imm=0x5DEECE66D + d)
        b.emit(Opcode.ANDI, dest=cond, src1=val, imm=(1 << bias_bits) - 1)
        label = f"hard_{site}"
        b.emit(Opcode.BEQZ, src1=cond, target_label=label)
        b.emit(Opcode.ADDI, dest=temps.take(), src1=_R_COUNTER, imm=site)
        b.emit(Opcode.ADDI, dest=temps.take(), src1=_R_COUNTER, imm=site + 1)
        b.mark_label(label)
    _epilogue(b)
    return b.build(warm_regions=[(_BASE_ADDR, data_bytes)])


#: Instruction spacing between branch-ladder sites.  With ``btb_sets=16``
#: the BTB index is ``(pc >> 2) & 15``; a site stride of 17 instructions
#: steps the index by one per site, spreading the ladder evenly over all
#: 16 sets (a stride divisible by 16 would pile every site into one set).
BTB_LADDER_STRIDE = 17


def build_branch_btb(targets: int) -> Program:
    """Taken-branch target working set exceeding a small BTB.

    ``targets`` always-taken direct branches form a ladder, each jumping
    over its padding to the next site.  Run against a 16-set 2-way BTB
    (:data:`~repro.workloads.stress.families.SMALL_BTB`), sites map
    round-robin onto the 16 sets: up to 32 targets fit, and every target
    past that thrashes its set cyclically -- a 100% miss pattern for the
    overflowing sets, so taken-BTB misses rise monotonically with the
    knob.  Each miss squashes the fall-through fetch, recovery-penalty
    style, exactly like an indirect branch without a target.
    """
    b = ProgramBuilder(f"stress_branch_btb_{targets}")
    _prologue(b)
    for site in range(targets):
        label = f"site_{site + 1}" if site + 1 < targets else "ladder_done"
        b.emit(Opcode.BNEZ, src1=_R_ONE, target_label=label)
        for _ in range(BTB_LADDER_STRIDE - 1):
            b.emit(Opcode.NOP)  # padding: spaces the sites; never executed
        if site + 1 < targets:
            b.mark_label(f"site_{site + 1}")
    b.mark_label("ladder_done")
    _epilogue(b)
    return b.build()


def build_callret(depth: int) -> Program:
    """Call/return chains of ``depth`` modelled as taken-JUMP chains.

    The call path descends ``depth`` levels (one taken JUMP each), a leaf
    body does 16 independent ALU ops, and the return path ascends through
    ``depth`` more JUMPs.  Every hop is a taken-transfer fetch break --
    one fetch cycle for one instruction -- so CPI rises monotonically
    with depth toward the 1-instruction-per-cycle jump-chain bound while
    branch MPKI stays ~0 (direct targets never mispredict).
    """
    b = ProgramBuilder(f"stress_callret_{depth}")
    temps = _TempPool()
    _prologue(b)
    for k in range(depth):
        b.emit(Opcode.JUMP, target_label=f"call_{k}")
        for _ in range(3):
            b.emit(Opcode.NOP)  # padding: keeps each hop a real transfer
        b.mark_label(f"call_{k}")
    for i in range(16):
        b.emit(Opcode.ADDI, dest=temps.take(), src1=_R_COUNTER, imm=i)
    for k in range(depth):
        b.emit(Opcode.JUMP, target_label=f"ret_{k}")
        for _ in range(3):
            b.emit(Opcode.NOP)
        b.mark_label(f"ret_{k}")
    _epilogue(b)
    return b.build()


def build_l1i_pressure(code_kib: int) -> Program:
    """Straight-line code footprint of ``code_kib`` KiB, looped.

    At 4 bytes per instruction the loop body holds ``code_kib * 256``
    independent ALU ops.  Footprints within the 32 KB L1I run from the
    cache after the first pass; larger ones evict themselves before the
    loop returns, so every line misses every iteration and L1I MPKI
    rises monotonically with the knob.
    """
    b = ProgramBuilder(f"stress_l1i_{code_kib}")
    temps = _TempPool()
    _prologue(b)
    for i in range(code_kib * 256):
        b.emit(Opcode.ADDI, dest=temps.take(), src1=_R_COUNTER, imm=i & 0xFFFF)
    _epilogue(b)
    return b.build()


def build_cache_thrash(footprint_kib: int) -> Program:
    """Random loads over a ``footprint_kib`` KiB region (TLB/cache thrash).

    Four independent random loads per iteration (full memory-level
    parallelism) span the footprint uniformly.  Regions that fit in 3/4
    of the LLC are checkpoint-prewarmed and stay resident; beyond that
    the working set exceeds the hierarchy and LLC MPKI climbs toward the
    every-load-misses ceiling.  (The model has no TLB; footprints far
    past the LLC stand in for page-walk thrash as well.)
    """
    bytes_ = footprint_kib * KIB
    if bytes_ & (bytes_ - 1):
        raise ValueError("cache_thrash footprint must be a power of two KiB")
    b = ProgramBuilder(f"stress_thrash_{footprint_kib}")
    temps = _TempPool()
    _prologue(b)
    _lcg_step(b)
    for site in range(4):
        addr = temps.take()
        val = temps.take()
        b.emit(Opcode.XORI, dest=addr, src1=_R_LCG,
               imm=0xBF58476D1CE4E5B9 * (site + 3))
        b.emit(Opcode.ANDI, dest=addr, src1=addr, imm=_aligned_mask(bytes_))
        b.emit(Opcode.ADD, dest=addr, src1=addr, src2=_R_BASE)
        b.emit(Opcode.LOAD, dest=val, src1=addr)
    _epilogue(b)
    return b.build(warm_regions=[(_BASE_ADDR, bytes_)])


#: Data region of the store-buffer kernel's commit-blocking load: far
#: larger than the LLC, so the load at the ROB head always misses.
STORE_BLOCK_REGION = 64 * 1024 * KIB


def build_store_buffer(stores: int) -> Program:
    """Store bursts behind a commit-blocking load (store-buffer-full).

    Each iteration issues one random load that misses all the way to
    memory, then ``stores`` single-instruction stores to a shared
    register-held address.  Stores hold their LSQ entries until commit,
    and commit is blocked by the missing load, so a large enough burst
    fills the 64-entry LSQ before the 128-entry ROB fills -- flipping
    the dominant dispatch stall from ROB-full to LSQ-full as the knob
    grows.
    """
    store_bytes = 64 * KIB
    b = ProgramBuilder(f"stress_storebuf_{stores}")
    temps = _TempPool()
    _prologue(b)
    _lcg_step(b)
    addr = temps.take()
    val = temps.take()
    b.emit(Opcode.XORI, dest=addr, src1=_R_LCG, imm=0x94D049BB133111EB)
    b.emit(Opcode.ANDI, dest=addr, src1=addr,
           imm=_aligned_mask(STORE_BLOCK_REGION))
    b.emit(Opcode.ADD, dest=addr, src1=addr, src2=_R_BASE)
    b.emit(Opcode.LOAD, dest=val, src1=addr)
    st = temps.take()
    b.emit(Opcode.ANDI, dest=st, src1=_R_COUNTER,
           imm=_aligned_mask(store_bytes))
    b.emit(Opcode.ADD, dest=st, src1=st, src2=_R_BASE)
    for k in range(stores):
        b.emit(Opcode.STORE, src1=_R_COUNTER, src2=st,
               imm=STORE_BLOCK_REGION + k * 8)
    for i in range(8):
        b.emit(Opcode.ADDI, dest=temps.take(), src1=_R_COUNTER, imm=i)
    _epilogue(b)
    return b.build()


def build_load_after_store(pairs: int) -> Program:
    """Store-to-load forwarding pairs: each load reads the prior store.

    ``pairs`` store/load couples per iteration hit the same 8-byte slot
    while the store still occupies the LSQ, so the load forwards instead
    of accessing the cache; the forwarded fraction of commits rises
    monotonically with the knob.
    """
    region = 64 * KIB
    b = ProgramBuilder(f"stress_fwd_{pairs}")
    temps = _TempPool()
    _prologue(b)
    addr = temps.take()
    b.emit(Opcode.ANDI, dest=addr, src1=_R_COUNTER, imm=_aligned_mask(region))
    b.emit(Opcode.ADD, dest=addr, src1=addr, src2=_R_BASE)
    for k in range(pairs):
        val = temps.take()
        b.emit(Opcode.STORE, src1=_R_COUNTER, src2=addr, imm=k * 64)
        b.emit(Opcode.LOAD, dest=val, src1=addr, imm=k * 64)
    _epilogue(b)
    return b.build()


def build_dep_chain(length: int) -> Program:
    """A loop-carried serial chain of dependent multiplies.

    The chain register is seeded once before the loop and every MUL
    (3-cycle latency) feeds the next *across* iterations, so the whole
    program is one serial dependence chain no amount of window can
    parallelize; 4 independent ALU ops ride along as slack.  CPI rises
    monotonically with chain length toward the latency bound
    ``3 * length / (length + overhead)``.  (Re-seeding the chain inside
    the loop would let the ~4 in-flight iterations run their chains in
    parallel and collapse CPI to the iMULT throughput bound.)
    """
    b = ProgramBuilder(f"stress_depchain_{length}")
    temps = _TempPool()
    _prologue(b, mark_loop=False)
    chain = temps.take()
    b.emit(Opcode.ADDI, dest=chain, src1=_R_COUNTER, imm=1)
    b.mark_label("loop")
    for _ in range(length):
        b.emit(Opcode.MUL, dest=chain, src1=chain, src2=_R_LCG_MULT)
    for i in range(4):
        b.emit(Opcode.ADDI, dest=temps.take(), src1=_R_COUNTER, imm=i)
    _epilogue(b)
    return b.build()


#: Data region of the IQ-pressure kernel's long-latency loads: far larger
#: than the LLC, so every load misses to memory.
IQ_BLOCK_REGION = 64 * 1024 * KIB


def build_iq_pressure(deps: int) -> Program:
    """Dependents of an LLC-missing load flooding the issue queue.

    Each iteration launches one random load that misses to memory, then
    ``deps`` independent ALU ops that all consume the loaded value: they
    dispatch into the IQ and sit unissuable for the full memory latency.
    With a high enough dependent fraction the 64-entry IQ fills long
    before the 128-entry ROB or the physical registers run out, so
    IQ-full dominates the dispatch stalls and occupancy pins near
    capacity.  (A flood of *independent* long-latency ops would not do
    this: those issue promptly and it is the register file / ROB that
    backs up instead.)
    """
    b = ProgramBuilder(f"stress_iq_{deps}")
    temps = _TempPool()
    _prologue(b)
    _lcg_step(b)
    addr = temps.take()
    val = temps.take()
    b.emit(Opcode.XORI, dest=addr, src1=_R_LCG, imm=0xD6E8FEB86659FD93)
    b.emit(Opcode.ANDI, dest=addr, src1=addr,
           imm=_aligned_mask(IQ_BLOCK_REGION))
    b.emit(Opcode.ADD, dest=addr, src1=addr, src2=_R_BASE)
    b.emit(Opcode.LOAD, dest=val, src1=addr)
    for i in range(deps):
        op = Opcode.XORI if i % 2 else Opcode.ADDI
        b.emit(op, dest=temps.take(), src1=val, imm=i)
    _epilogue(b)
    return b.build()


__all__ = [
    "BTB_LADDER_STRIDE",
    "IQ_BLOCK_REGION",
    "STORE_BLOCK_REGION",
    "build_branch_btb",
    "build_branch_h2p",
    "build_callret",
    "build_cache_thrash",
    "build_dep_chain",
    "build_iq_pressure",
    "build_l1i_pressure",
    "build_load_after_store",
]
