"""Expected-bottleneck contracts for the stress-kernel families.

A stress kernel is only useful if the simulator's bottleneck actually lands
where the kernel aims: a branch-slice kernel must show high MPKI, a
store-burst kernel must stall on the LSQ and not the ROB.  This module turns
those expectations into checkable contracts:

* a **metric registry** maps short names (``cpi``, ``l1i_mpki``,
  ``lsq_full_frac`` ...) to functions over :class:`~repro.core.simulator.
  SimulationResult`;
* three check types express the contracts -- :class:`MetricThreshold`
  (absolute floor/ceiling on the default-knob run), :class:`MetricDominance`
  (this stall cause beats that one by a factor) and :class:`MonotonicKnob`
  (the metric moves the predicted direction across the knob sweep);
* an :class:`ExpectedBottleneck` bundles the checks for one family, and a
  :class:`FamilyReport` renders every outcome with the observed values, so
  a failure states *which* resource did not bottleneck and by how much.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from ...core.simulator import SimulationResult

MetricFn = Callable[[SimulationResult], float]


def _ratio(num: float, den: float) -> float:
    return num / den if den else 0.0


#: Metric registry: short name -> value extractor.  Contracts reference
#: metrics by name so reports and the CLI can print them uniformly.
METRICS: Dict[str, MetricFn] = {
    "cpi": lambda r: _ratio(r.stats.cycles, r.stats.committed),
    "ipc": lambda r: r.stats.ipc,
    "branch_mpki": lambda r: r.stats.branch_mpki,
    "llc_mpki": lambda r: r.stats.llc_mpki,
    "l1i_mpki": lambda r: r.stats.l1i_mpki,
    "mispredict_rate": lambda r: _ratio(r.stats.mispredictions,
                                        r.stats.cond_branches),
    "btb_taken_miss_rate": lambda r: _ratio(r.stats.btb_misses_taken,
                                            r.stats.cond_branches),
    "predictor_accuracy": lambda r: r.predictor_accuracy,
    "forward_rate": lambda r: _ratio(r.lsq_forwards, r.stats.committed),
    "iq_occupancy_frac": lambda r: _ratio(r.stats.avg_iq_occupancy,
                                          r.config.iq_size),
    "rob_full_frac": lambda r: _ratio(r.stats.rob_full_stall_cycles,
                                      r.stats.cycles),
    "iq_full_frac": lambda r: _ratio(r.stats.iq_full_stall_cycles,
                                     r.stats.cycles),
    "lsq_full_frac": lambda r: _ratio(r.stats.lsq_full_stall_cycles,
                                      r.stats.cycles),
    "regs_full_frac": lambda r: _ratio(r.stats.regs_full_stall_cycles,
                                       r.stats.cycles),
    "avg_missspec_iq_wait": lambda r: r.stats.avg_missspec_iq_wait,
    "unconfident_branch_rate": lambda r: r.tracker_stats.unconfident_branch_rate,
    "smt_injections": lambda r: float(r.stats.smt_injections),
    "priority_full_frac": lambda r: _ratio(r.stats.priority_stall_cycles,
                                           r.stats.cycles),
}


def _td_fraction(bucket: str) -> MetricFn:
    def fn(result: SimulationResult) -> float:
        # Deferred: repro.analysis pulls in the runner stack, which this
        # low-level module must not import at load time.
        from ...analysis.topdown import breakdown_of
        return breakdown_of(result).fraction(bucket)
    return fn


METRICS.update({
    f"td_{bucket}_frac": _td_fraction(bucket)
    for bucket in ("retiring", "frontend", "bad_speculation", "backend")
})


def metric_value(name: str, result: SimulationResult) -> float:
    """Evaluate registry metric ``name`` on ``result``."""
    try:
        fn = METRICS[name]
    except KeyError:
        raise KeyError(f"unknown stress metric: {name!r} "
                       f"(known: {', '.join(sorted(METRICS))})") from None
    return fn(result)


@dataclass(frozen=True)
class CheckOutcome:
    """One evaluated check: what was asserted, what was observed."""

    description: str
    passed: bool
    observed: str

    def render(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"  [{mark}] {self.description}  ({self.observed})"


@dataclass(frozen=True)
class MetricThreshold:
    """``metric op value`` on the default-knob run (op is ``>=``/``<=``)."""

    metric: str
    op: str
    value: float

    def __post_init__(self) -> None:
        if self.op not in (">=", "<="):
            raise ValueError(f"threshold op must be >= or <=, got {self.op!r}")

    def evaluate(self, result: SimulationResult) -> CheckOutcome:
        observed = metric_value(self.metric, result)
        passed = (observed >= self.value if self.op == ">="
                  else observed <= self.value)
        return CheckOutcome(
            description=f"{self.metric} {self.op} {self.value:g}",
            passed=passed,
            observed=f"{self.metric}={observed:.4g}",
        )


@dataclass(frozen=True)
class MetricDominance:
    """``metric >= factor * over`` -- the expected stall cause dominates."""

    metric: str
    over: str
    factor: float = 1.0

    def evaluate(self, result: SimulationResult) -> CheckOutcome:
        lhs = metric_value(self.metric, result)
        rhs = metric_value(self.over, result)
        passed = lhs >= self.factor * rhs
        return CheckOutcome(
            description=f"{self.metric} >= {self.factor:g} * {self.over}",
            passed=passed,
            observed=f"{self.metric}={lhs:.4g} {self.over}={rhs:.4g}",
        )


@dataclass(frozen=True)
class TopdownDominant:
    """The dominant topdown bucket lands where the family aims.

    The cycle-attribution analogue of :class:`MetricDominance`: instead
    of comparing two raw stall counters, it asks the topdown hierarchy
    (DESIGN.md §15) which level-1 bucket ate the most non-retiring issue
    slots and requires the answer to match the family's declared
    bottleneck.
    """

    bucket: str

    def evaluate(self, result: SimulationResult) -> CheckOutcome:
        from ...analysis.topdown import LEVEL1, breakdown_of
        breakdown = breakdown_of(result)
        dominant = breakdown.dominant_bucket
        observed = " ".join(
            f"{b}={breakdown.fraction(b):.3f}" for b in LEVEL1)
        return CheckOutcome(
            description=f"dominant topdown bucket is {self.bucket}",
            passed=dominant == self.bucket,
            observed=f"dominant={dominant} ({observed})",
        )


@dataclass(frozen=True)
class MonotonicKnob:
    """The metric moves ``direction`` across the knob sweep.

    ``tolerance`` allows per-step noise in the *wrong* direction;
    ``min_span`` additionally requires the last sweep point to clear the
    first by that much overall (so a flat line cannot pass by tolerance
    alone).
    """

    metric: str
    direction: str  #: "increasing" | "decreasing"
    tolerance: float = 0.0
    min_span: float = 0.0

    def __post_init__(self) -> None:
        if self.direction not in ("increasing", "decreasing"):
            raise ValueError(
                f"direction must be increasing/decreasing, got {self.direction!r}")

    def evaluate(self, sweep: Sequence[Tuple[int, SimulationResult]]
                 ) -> CheckOutcome:
        values = [(knob, metric_value(self.metric, result))
                  for knob, result in sweep]
        sign = 1.0 if self.direction == "increasing" else -1.0
        steps_ok = all(
            sign * (nxt - prev) >= -self.tolerance
            for (_, prev), (_, nxt) in zip(values, values[1:]))
        span_ok = sign * (values[-1][1] - values[0][1]) >= self.min_span
        observed = " -> ".join(f"{v:.4g}@{k}" for k, v in values)
        return CheckOutcome(
            description=(f"{self.metric} {self.direction} over knob sweep"
                         + (f" (span >= {self.min_span:g})"
                            if self.min_span else "")),
            passed=steps_ok and span_ok,
            observed=observed,
        )


@dataclass(frozen=True)
class ExpectedBottleneck:
    """The full contract of one family.

    ``resource`` names the structure expected to saturate (for reports);
    ``checks`` run against the default-knob result and ``sweep_checks``
    against the (knob, result) sweep.
    """

    resource: str
    checks: Tuple[object, ...] = ()
    sweep_checks: Tuple[MonotonicKnob, ...] = ()


@dataclass
class FamilyReport:
    """Every check outcome of one family run, renderable for CLI/pytest."""

    family: str
    resource: str
    knob: str
    default_knob: int
    sweep_knobs: Tuple[int, ...]
    outcomes: List[CheckOutcome] = field(default_factory=list)
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return all(o.passed for o in self.outcomes)

    @property
    def failures(self) -> List[CheckOutcome]:
        return [o for o in self.outcomes if not o.passed]

    def render(self) -> str:
        status = "ok" if self.passed else "BOTTLENECK CONTRACT FAILED"
        head = (f"{self.family} [{self.resource}] "
                f"{self.knob}={self.default_knob}"
                + (f" sweep={list(self.sweep_knobs)}" if self.sweep_knobs
                   else "")
                + f": {status}")
        return "\n".join([head] + [o.render() for o in self.outcomes])


__all__ = [
    "METRICS",
    "CheckOutcome",
    "ExpectedBottleneck",
    "FamilyReport",
    "MetricDominance",
    "MetricThreshold",
    "MonotonicKnob",
    "TopdownDominant",
    "metric_value",
]
