"""Stress-family catalog: kernel + knob + expected-bottleneck contract.

Each :class:`StressFamily` ties a kernel builder (:mod:`.kernels`) to the
resource it stresses, a sweepable knob, and the
:class:`~repro.workloads.stress.assertions.ExpectedBottleneck` contract that
the simulator must satisfy when running it.  :func:`run_family` executes the
default-knob run plus the knob sweep through the ordinary
:func:`~repro.core.simulator.simulate` entry point and returns a
:class:`~repro.workloads.stress.assertions.FamilyReport`.

Families run *live* and uncached by design: they are bottleneck probes for
the timing model itself, a few thousand instructions each, and must keep
working when the cache/trace machinery is what's being debugged.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Tuple

from ...core.config import PredictorConfig, ProcessorConfig
from ...core.simulator import SimulationResult, simulate
from ...isa.instruction import Program
from . import kernels
from .assertions import (METRICS, ExpectedBottleneck, FamilyReport,
                         MetricDominance, MetricThreshold, MonotonicKnob,
                         TopdownDominant, metric_value)

#: BTB override for the target-working-set family: 16 sets x 2 ways = 32
#: targets, so the ladder knob can exceed capacity without megabyte-scale
#: programs.  Applied on top of whatever machine the caller passes in.
SMALL_BTB = PredictorConfig(btb_sets=16, btb_assoc=2)


def _small_btb(config: ProcessorConfig) -> ProcessorConfig:
    return replace(config, predictor=replace(
        config.predictor, btb_sets=SMALL_BTB.btb_sets,
        btb_assoc=SMALL_BTB.btb_assoc))


@dataclass(frozen=True)
class StressFamily:
    """One stress kernel family and its contract."""

    name: str
    resource: str
    description: str
    knob: str
    default: int
    sweep: Tuple[int, ...]
    build: Callable[[int], Program]
    contract: ExpectedBottleneck
    #: Optional machine adjustment (e.g. the small BTB) applied to the
    #: caller's base config before simulating.
    tune: Optional[Callable[[ProcessorConfig], ProcessorConfig]] = None
    instructions: int = 6000
    skip: int = 2000
    #: Level-1 topdown bucket expected to dominate the default-knob run
    #: (DESIGN.md §15); ``run_family`` appends a
    #: :class:`~repro.workloads.stress.assertions.TopdownDominant` check
    #: for it.  None when the stressed resource has no single bucket
    #: (e.g. store-to-load forwarding, which *avoids* stalls).
    topdown: Optional[str] = None


FAMILIES: Dict[str, StressFamily] = {}


def _register(family: StressFamily) -> StressFamily:
    FAMILIES[family.name] = family
    return family


BRANCH_H2P = _register(StressFamily(
    name="branch_h2p",
    resource="branch predictor (hard-to-predict direction)",
    description="data-dependent branches with 4-op slices; knob = bias "
                "bits (taken probability 2^-knob, 1 = unlearnable)",
    knob="bias_bits",
    default=1,
    sweep=(1, 3, 6),
    build=kernels.build_branch_h2p,
    contract=ExpectedBottleneck(
        resource="direction predictor",
        checks=(
            MetricThreshold("branch_mpki", ">=", 30.0),
            MetricThreshold("mispredict_rate", ">=", 0.15),
        ),
        sweep_checks=(
            MonotonicKnob("branch_mpki", "decreasing", min_span=20.0),
        ),
    ),
    topdown="bad_speculation",
))

BRANCH_BTB = _register(StressFamily(
    name="branch_btb",
    resource="BTB target working set (indirect-branch stand-in)",
    description="always-taken branch ladder vs a 16-set 2-way BTB; knob = "
                "ladder targets (32 fit, more thrash their sets)",
    knob="targets",
    default=64,
    sweep=(8, 40, 64),
    build=kernels.build_branch_btb,
    contract=ExpectedBottleneck(
        resource="branch target buffer",
        checks=(
            MetricThreshold("btb_taken_miss_rate", ">=", 0.5),
            MetricThreshold("cpi", ">=", 1.5),
        ),
        sweep_checks=(
            MonotonicKnob("btb_taken_miss_rate", "increasing",
                          min_span=0.4),
        ),
    ),
    tune=_small_btb,
    topdown="bad_speculation",
))

CALLRET_DEPTH = _register(StressFamily(
    name="callret_depth",
    resource="front-end taken-transfer bandwidth (call/return depth)",
    description="call/return chains modelled as taken-JUMP chains; knob = "
                "chain depth (each hop costs a fetch break)",
    knob="depth",
    default=32,
    sweep=(2, 8, 32),
    build=kernels.build_callret,
    contract=ExpectedBottleneck(
        resource="fetch (taken transfers)",
        checks=(
            MetricThreshold("cpi", ">=", 0.6),
            MetricThreshold("branch_mpki", "<=", 1.0),
        ),
        sweep_checks=(
            MonotonicKnob("cpi", "increasing", tolerance=0.02,
                          min_span=0.2),
        ),
    ),
    topdown="frontend",
))

L1I_PRESSURE = _register(StressFamily(
    name="l1i_pressure",
    resource="L1 instruction cache",
    description="looped straight-line code body; knob = code footprint in "
                "KiB (32 KB L1I)",
    knob="code_kib",
    default=64,
    sweep=(4, 16, 64),
    build=kernels.build_l1i_pressure,
    contract=ExpectedBottleneck(
        resource="L1I",
        checks=(
            MetricThreshold("l1i_mpki", ">=", 25.0),
        ),
        sweep_checks=(
            MonotonicKnob("l1i_mpki", "increasing", min_span=20.0),
        ),
    ),
    topdown="frontend",
))

CACHE_THRASH = _register(StressFamily(
    name="cache_thrash",
    resource="cache hierarchy / memory (random-access thrash)",
    description="4 independent random loads per iteration over the knob "
                "footprint in KiB (2 MB LLC; no TLB modelled -- huge "
                "footprints stand in for page-walk thrash too)",
    knob="footprint_kib",
    default=64 * 1024,
    sweep=(256, 2 * 1024, 64 * 1024),
    build=kernels.build_cache_thrash,
    contract=ExpectedBottleneck(
        resource="LLC / memory",
        checks=(
            MetricThreshold("llc_mpki", ">=", 100.0),
            MetricThreshold("cpi", ">=", 1.5),
        ),
        sweep_checks=(
            MonotonicKnob("llc_mpki", "increasing", min_span=80.0),
        ),
    ),
    topdown="backend",
))

STORE_BUFFER = _register(StressFamily(
    name="store_buffer",
    resource="store buffer / LSQ capacity",
    description="store bursts behind a commit-blocking memory load; knob "
                "= stores per burst (64-entry LSQ vs 128-entry ROB)",
    knob="stores",
    default=32,
    sweep=(2, 12, 32),
    build=kernels.build_store_buffer,
    contract=ExpectedBottleneck(
        resource="LSQ",
        checks=(
            MetricThreshold("lsq_full_frac", ">=", 0.2),
            MetricDominance("lsq_full_frac", "rob_full_frac", factor=2.0),
        ),
        sweep_checks=(
            MonotonicKnob("lsq_full_frac", "increasing", min_span=0.15),
        ),
    ),
    topdown="backend",
))

LOAD_AFTER_STORE = _register(StressFamily(
    name="load_after_store",
    resource="store-to-load forwarding",
    description="store/load couples to the same slot while the store sits "
                "in the LSQ; knob = couples per iteration",
    knob="pairs",
    default=12,
    sweep=(2, 6, 12),
    build=kernels.build_load_after_store,
    contract=ExpectedBottleneck(
        resource="LSQ forwarding path",
        checks=(
            MetricThreshold("forward_rate", ">=", 0.3),
        ),
        sweep_checks=(
            MonotonicKnob("forward_rate", "increasing", min_span=0.1),
        ),
    ),
))

DEP_CHAIN = _register(StressFamily(
    name="dep_chain",
    resource="long-latency dependent chain (execution latency)",
    description="serial chain of dependent 3-cycle multiplies; knob = "
                "chain length",
    knob="length",
    default=24,
    sweep=(2, 8, 24),
    build=kernels.build_dep_chain,
    contract=ExpectedBottleneck(
        resource="execution latency (serial MUL chain)",
        checks=(
            MetricThreshold("cpi", ">=", 1.8),
            MetricThreshold("branch_mpki", "<=", 1.0),
        ),
        sweep_checks=(
            MonotonicKnob("cpi", "increasing", min_span=1.0),
        ),
    ),
    topdown="backend",
))

IQ_PRESSURE = _register(StressFamily(
    name="iq_pressure",
    resource="issue queue (load-shadow backlog)",
    description="dependents of an LLC-missing load waiting in the IQ; "
                "knob = dependents per load",
    knob="deps",
    default=48,
    sweep=(4, 16, 48),
    build=kernels.build_iq_pressure,
    contract=ExpectedBottleneck(
        resource="issue queue",
        checks=(
            MetricThreshold("iq_occupancy_frac", ">=", 0.7),
            MetricDominance("iq_full_frac", "rob_full_frac", factor=2.0),
            MetricDominance("iq_full_frac", "lsq_full_frac", factor=2.0),
        ),
        sweep_checks=(
            MonotonicKnob("iq_full_frac", "increasing", tolerance=0.03,
                          min_span=0.3),
        ),
    ),
    topdown="backend",
))


def run_family(
    family: StressFamily,
    config: Optional[ProcessorConfig] = None,
    knob: Optional[int] = None,
    sweep: bool = True,
    instructions: Optional[int] = None,
    skip: Optional[int] = None,
    mem_seed: int = 0,
) -> FamilyReport:
    """Run one family's contract and return the evaluated report.

    ``knob`` overrides the default knob (and disables the sweep checks,
    which are only meaningful over the declared sweep); ``sweep=False``
    skips the sweep runs for a quick default-knob-only check.
    """
    cfg = config or ProcessorConfig.cortex_a72_like()
    if family.tune is not None:
        cfg = family.tune(cfg)
    n = instructions if instructions is not None else family.instructions
    s = skip if skip is not None else family.skip

    def run_one(k: int) -> SimulationResult:
        return simulate(family.build(k), cfg, max_instructions=n,
                        skip_instructions=s, mem_seed=mem_seed)

    default_knob = knob if knob is not None else family.default
    default_result = run_one(default_knob)

    do_sweep = sweep and knob is None and family.contract.sweep_checks
    sweep_knobs: Tuple[int, ...] = family.sweep if do_sweep else ()
    report = FamilyReport(
        family=family.name,
        resource=family.resource,
        knob=family.knob,
        default_knob=default_knob,
        sweep_knobs=sweep_knobs,
        metrics={name: metric_value(name, default_result)
                 for name in METRICS},
    )
    for check in family.contract.checks:
        report.outcomes.append(check.evaluate(default_result))
    if family.topdown is not None:
        # The declared bucket rides the default-knob run already in hand:
        # the topdown hierarchy must agree with the bottleneck contract.
        report.outcomes.append(
            TopdownDominant(family.topdown).evaluate(default_result))
    if do_sweep:
        runs = [(k, default_result if k == default_knob else run_one(k))
                for k in sweep_knobs]
        for check in family.contract.sweep_checks:
            report.outcomes.append(check.evaluate(runs))
    return report


def run_families(
    names=None,
    config: Optional[ProcessorConfig] = None,
    **kwargs,
) -> "list[FamilyReport]":
    """Run several families (default: all) and return their reports."""
    if names:
        unknown = [n for n in names if n not in FAMILIES]
        if unknown:
            raise KeyError(
                f"unknown stress families: {', '.join(unknown)} "
                f"(known: {', '.join(FAMILIES)})")
        selected = [FAMILIES[n] for n in names]
    else:
        selected = list(FAMILIES.values())
    return [run_family(f, config=config, **kwargs) for f in selected]


__all__ = [
    "FAMILIES",
    "SMALL_BTB",
    "StressFamily",
    "run_families",
    "run_family",
]
