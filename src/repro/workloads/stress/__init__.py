"""Stress-kernel workload families with expected-bottleneck contracts.

One parameterized kernel per CPU resource (branch direction, BTB targets,
call/return depth, L1I, cache/TLB thrash, store buffer, store-to-load
forwarding, dependent latency chains, issue-queue backlog), each shipping
an :class:`~repro.workloads.stress.assertions.ExpectedBottleneck` contract
that asserts the simulator actually bottlenecks on the targeted resource --
a microarchitecture-level regression net alongside the synthetic SPEC-like
profiles.  Run via ``repro stress`` or :func:`run_family`.
"""

from .assertions import (METRICS, CheckOutcome, ExpectedBottleneck,
                         FamilyReport, MetricDominance, MetricThreshold,
                         MonotonicKnob, metric_value)
from .families import (FAMILIES, SMALL_BTB, StressFamily, run_families,
                       run_family)

__all__ = [
    "METRICS",
    "CheckOutcome",
    "ExpectedBottleneck",
    "FAMILIES",
    "FamilyReport",
    "MetricDominance",
    "MetricThreshold",
    "MonotonicKnob",
    "SMALL_BTB",
    "StressFamily",
    "metric_value",
    "run_families",
    "run_family",
]
