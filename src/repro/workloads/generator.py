"""Synthetic benchmark program generator.

Turns a :class:`~repro.workloads.profiles.WorkloadProfile` into an actual
:class:`~repro.isa.instruction.Program`: one infinite outer loop whose body
contains, per iteration,

* an LCG update producing fresh pseudo-random state (real dataflow: the
  multiply/add chain becomes part of every hard branch's slice),
* ``hard_branch_sites`` data-dependent branches, each fed by a load from
  the branch-data region through a ``slice_depth`` ALU chain,
* ``predictable_branch_sites`` periodic branches on the loop counter,
* independent random loads, unit-stride streaming loads, a serialized
  pointer chase, and stores, each in its own region of the address space,
* independent ALU / multiply / FP filler (computation-slice work).

Register convention: r1 loop counter, r2 LCG state, r3 memory base, r4
stream offset, r5 pointer-chase state, r6 LCG multiplier; r16..r30 rotate
as temporaries; f0..f11 hold FP filler state.

All data regions are disjoint (branch data, random, streaming, pointer,
store), so store traffic never perturbs branch entropy, and region sizes
are the power-of-two footprints from the profile.
"""

from __future__ import annotations

from typing import List

from ..isa.instruction import Program, ProgramBuilder
from ..isa.opcodes import Opcode
from ..isa.registers import fp_reg, int_reg
from .profiles import WorkloadProfile

#: Virtual base address of the data segment.
_BASE_ADDR = 1 << 30
#: LCG constants (64-bit MMIX-style).
_LCG_MULT = 6364136223846793005
_LCG_INC = 1442695040888963407

_R_COUNTER = int_reg(1)
_R_LCG = int_reg(2)
_R_BASE = int_reg(3)
_R_STREAM = int_reg(4)
_R_CHASE = int_reg(5)
_R_LCG_MULT = int_reg(6)

_TEMP_FIRST, _TEMP_LAST = 16, 30


class _TempPool:
    """Rotating pool of temporary integer registers."""

    def __init__(self) -> None:
        self._next = _TEMP_FIRST

    def take(self) -> int:
        reg = int_reg(self._next)
        self._next += 1
        if self._next > _TEMP_LAST:
            self._next = _TEMP_FIRST
        return reg


def _aligned_mask(size: int) -> int:
    """Mask selecting an 8-byte-aligned offset within a power-of-two region."""
    return (size - 1) & ~7


def build_program(profile: WorkloadProfile) -> Program:
    """Generate the synthetic program for ``profile``."""
    b = ProgramBuilder(profile.name)
    temps = _TempPool()

    # Region layout (byte offsets from _BASE_ADDR).
    branch_off = 0
    random_off = profile.branch_data_bytes
    stream_off = random_off + profile.data_footprint_bytes
    chase_off = stream_off + profile.data_footprint_bytes
    store_off = chase_off + profile.data_footprint_bytes
    cold_off = store_off + 16 * 1024 * 1024
    cold_bytes = 64 * 1024 * 1024  # always-cold region for periodic misses

    # ------------------------------------------------------------------
    # One-time initialization
    # ------------------------------------------------------------------
    b.emit(Opcode.MOVI, dest=_R_COUNTER, imm=0)
    b.emit(Opcode.MOVI, dest=_R_LCG, imm=0x243F6A8885A308D3 + profile.mem_seed)
    b.emit(Opcode.MOVI, dest=_R_BASE, imm=_BASE_ADDR)
    b.emit(Opcode.MOVI, dest=_R_STREAM, imm=0)
    b.emit(Opcode.MOVI, dest=_R_CHASE, imm=0)
    b.emit(Opcode.MOVI, dest=_R_LCG_MULT, imm=_LCG_MULT)
    for f in range(12):
        b.emit(Opcode.FMOVI, dest=fp_reg(f), imm=0x9E3779B9 * (f + 1))

    b.mark_label("loop")

    # ------------------------------------------------------------------
    # Fresh pseudo-random state for this iteration
    # ------------------------------------------------------------------
    b.emit(Opcode.MUL, dest=_R_LCG, src1=_R_LCG, src2=_R_LCG_MULT)
    b.emit(Opcode.ADDI, dest=_R_LCG, src1=_R_LCG, imm=_LCG_INC)

    filler_counter = 0

    def emit_filler(count: int, chain: int = 1) -> None:
        """Independent work; ``chain`` > 1 links it into dependent runs."""
        nonlocal filler_counter
        t = None
        for i in range(count):
            if chain <= 1 or i % chain == 0:
                t = temps.take()
                src = _R_COUNTER
            else:
                src = t
            b.emit(Opcode.ADDI, dest=t, src1=src,
                   imm=0x1234 + filler_counter)
            filler_counter += 1

    # ------------------------------------------------------------------
    # Hard (data-dependent) branches with their slices
    # ------------------------------------------------------------------
    for site in range(profile.hard_branch_sites):
        addr = temps.take()
        val = temps.take()
        cond = temps.take()
        b.emit(Opcode.XORI, dest=addr, src1=_R_LCG,
               imm=0x9E3779B97F4A7C15 * (site + 1))
        b.emit(Opcode.ANDI, dest=addr, src1=addr,
               imm=_aligned_mask(profile.branch_data_bytes))
        b.emit(Opcode.ADD, dest=addr, src1=addr, src2=_R_BASE)
        b.emit(Opcode.LOAD, dest=val, src1=addr, imm=branch_off)
        for d in range(profile.slice_depth):
            op = Opcode.XORI if d % 2 else Opcode.ADDI
            b.emit(op, dest=val, src1=val, imm=0x5DEECE66D + d)
        b.emit(Opcode.ANDI, dest=cond, src1=val,
               imm=(1 << profile.hard_branch_bias_bits) - 1)
        label = f"hard_{site}"
        b.emit(Opcode.BEQZ, src1=cond, target_label=label)
        emit_filler(2)  # conditionally-skipped work
        b.mark_label(label)

    # ------------------------------------------------------------------
    # Predictable (periodic) branches
    # ------------------------------------------------------------------
    for site in range(profile.predictable_branch_sites):
        cond = temps.take()
        b.emit(Opcode.ANDI, dest=cond, src1=_R_COUNTER,
               imm=profile.predictable_period - 1)
        label = f"pred_{site}"
        b.emit(Opcode.BNEZ, src1=cond, target_label=label)
        emit_filler(2)
        b.mark_label(label)

    # ------------------------------------------------------------------
    # Independent random loads (MLP / LLC pressure)
    # ------------------------------------------------------------------
    for site in range(profile.random_loads):
        addr = temps.take()
        val = temps.take()
        b.emit(Opcode.XORI, dest=addr, src1=_R_LCG,
               imm=0xBF58476D1CE4E5B9 * (site + 3))
        b.emit(Opcode.ANDI, dest=addr, src1=addr,
               imm=_aligned_mask(profile.data_footprint_bytes))
        b.emit(Opcode.ADD, dest=addr, src1=addr, src2=_R_BASE)
        b.emit(Opcode.LOAD, dest=val, src1=addr, imm=random_off)

    # ------------------------------------------------------------------
    # Streaming loads (one shared advancing offset; sites spaced apart so
    # each forms its own unit-stride stream)
    # ------------------------------------------------------------------
    if profile.streaming_loads:
        b.emit(Opcode.ADDI, dest=_R_STREAM, src1=_R_STREAM, imm=64)
        b.emit(Opcode.ANDI, dest=_R_STREAM, src1=_R_STREAM,
               imm=_aligned_mask(profile.data_footprint_bytes))
        spacing = profile.data_footprint_bytes // max(1, profile.streaming_loads)
        spacing &= ~63
        for site in range(profile.streaming_loads):
            addr = temps.take()
            val = temps.take()
            b.emit(Opcode.ADD, dest=addr, src1=_R_STREAM, src2=_R_BASE)
            b.emit(Opcode.LOAD, dest=val, src1=addr,
                   imm=stream_off + site * spacing)

    # ------------------------------------------------------------------
    # Pointer chasing (serialized loads: r5 <- mem[f(r5)])
    # ------------------------------------------------------------------
    for _ in range(profile.pointer_chase_loads):
        addr = temps.take()
        b.emit(Opcode.ANDI, dest=addr, src1=_R_CHASE,
               imm=_aligned_mask(profile.data_footprint_bytes))
        b.emit(Opcode.ADD, dest=addr, src1=addr, src2=_R_BASE)
        b.emit(Opcode.LOAD, dest=_R_CHASE, src1=addr, imm=chase_off)

    # ------------------------------------------------------------------
    # Periodic cold loads (every cold_period-th iteration, guarded by a
    # predictable branch): fractional LLC misses per iteration
    # ------------------------------------------------------------------
    if profile.periodic_cold_loads:
        guard = temps.take()
        b.emit(Opcode.ANDI, dest=guard, src1=_R_COUNTER,
               imm=profile.cold_period - 1)
        b.emit(Opcode.BNEZ, src1=guard, target_label="cold_skip")
        for site in range(profile.periodic_cold_loads):
            addr = temps.take()
            val = temps.take()
            b.emit(Opcode.XORI, dest=addr, src1=_R_LCG,
                   imm=0x94D049BB133111EB * (site + 5))
            b.emit(Opcode.ANDI, dest=addr, src1=addr,
                   imm=_aligned_mask(cold_bytes))
            b.emit(Opcode.ADD, dest=addr, src1=addr, src2=_R_BASE)
            b.emit(Opcode.LOAD, dest=val, src1=addr, imm=cold_off)
        b.mark_label("cold_skip")

    # ------------------------------------------------------------------
    # Stores (to their own region; strided by the loop counter)
    # ------------------------------------------------------------------
    for site in range(profile.store_sites):
        addr = temps.take()
        b.emit(Opcode.ANDI, dest=addr, src1=_R_COUNTER,
               imm=_aligned_mask(64 * 1024) >> 3 << 3)
        b.emit(Opcode.ADD, dest=addr, src1=addr, src2=_R_BASE)
        b.emit(Opcode.STORE, src1=_R_COUNTER, src2=addr,
               imm=store_off + site * 64 * 1024)

    # ------------------------------------------------------------------
    # Filler: independent integer / multiply / FP work
    # ------------------------------------------------------------------
    emit_filler(profile.filler_alu, chain=profile.filler_chain)
    for site in range(profile.filler_mul):
        t = temps.take()
        b.emit(Opcode.MUL, dest=t, src1=_R_COUNTER, src2=_R_LCG_MULT)
    for site in range(profile.filler_fp):
        dest = fp_reg(site % 6)
        a = fp_reg(6 + site % 3)
        bb = fp_reg(9 + site % 3)
        op = Opcode.FMUL if site % 3 == 2 else Opcode.FADD
        b.emit(op, dest=dest, src1=a, src2=bb)

    # ------------------------------------------------------------------
    # Loop back
    # ------------------------------------------------------------------
    b.emit(Opcode.ADDI, dest=_R_COUNTER, src1=_R_COUNTER, imm=1)
    b.emit(Opcode.JUMP, target_label="loop")

    warm_regions = [
        (_BASE_ADDR + branch_off, profile.branch_data_bytes),
        (_BASE_ADDR + random_off, profile.data_footprint_bytes),
    ]
    if profile.streaming_loads:
        warm_regions.append((_BASE_ADDR + stream_off, profile.data_footprint_bytes))
    if profile.pointer_chase_loads:
        warm_regions.append((_BASE_ADDR + chase_off, profile.data_footprint_bytes))
    return b.build(warm_regions=warm_regions)


def build_all(profiles=None) -> "dict[str, Program]":
    """Build programs for a profile collection (defaults to all 28)."""
    from .profiles import spec2006_profiles

    profiles = profiles or spec2006_profiles()
    return {name: build_program(p) for name, p in profiles.items()}
