"""Synthetic SPEC2006-like workloads (the paper's benchmark substitution)."""

from .generator import build_all, build_program
from .profiles import WorkloadProfile, get_profile, spec2006_profiles

__all__ = [
    "build_all",
    "build_program",
    "WorkloadProfile",
    "get_profile",
    "spec2006_profiles",
]
