"""Synthetic SPEC2006-like workloads (the paper's benchmark substitution).

:mod:`repro.workloads.stress` adds per-resource stress-kernel families with
expected-bottleneck contracts (DESIGN.md §13).
"""

from .generator import build_all, build_program
from .profiles import WorkloadProfile, get_profile, spec2006_profiles
from .stress import FAMILIES as STRESS_FAMILIES
from .stress import run_families as run_stress_families
from .stress import run_family as run_stress_family

__all__ = [
    "build_all",
    "build_program",
    "WorkloadProfile",
    "get_profile",
    "spec2006_profiles",
    "STRESS_FAMILIES",
    "run_stress_families",
    "run_stress_family",
]
