"""repro: a from-scratch reproduction of PUBS (MICRO 2018, Hideki Ando).

PUBS ("Prioritizing Unconfident Branch Slices") reduces the branch
*misspeculation penalty* by issuing the instructions a poorly-predicted
branch depends on with the highest priority, via a small set of reserved
entries at the head of a position-priority random issue queue.

The package contains the complete system: a synthetic-workload generator
standing in for SPEC CPU2006 (:mod:`repro.workloads`), branch predictors and
confidence estimation (:mod:`repro.branch`), the memory hierarchy
(:mod:`repro.memory`), the PUBS tables and mode switch (:mod:`repro.pubs`),
the issue-queue organizations (:mod:`repro.iq`), a cycle-level out-of-order
core (:mod:`repro.core`), and evaluation helpers (:mod:`repro.analysis`).

Quick start::

    from repro import ProcessorConfig, run_workload

    base = ProcessorConfig.cortex_a72_like()
    pubs = base.with_pubs()
    r0 = run_workload("sjeng", base, instructions=20_000)
    r1 = run_workload("sjeng", pubs, instructions=20_000)
    print(f"speedup: {r1.ipc / r0.ipc:.3f}x")
"""

from .analysis import (
    PairedRun,
    WorkloadRun,
    dbp_workloads,
    geometric_mean,
    run_pair,
    run_suite,
    run_workload,
    speedup,
    speedup_percent,
)
from .api import RunRequest, sample_workload
from .core import (
    Pipeline,
    ProcessorConfig,
    SimStats,
    SimulationResult,
    SmtConfig,
    simulate,
    size_models,
)
from .exec import ResultCache, SimJob, SweepExecutor, default_jobs
from .iq import AGE_MATRIX_IQ_DELAY_FACTOR, AgeMatrix, IssueQueue
from .pubs import PubsConfig, SliceTracker, pubs_hardware_cost
from .verify import InvariantViolation, OracleMismatch, PipelineVerifier
from .workloads import WorkloadProfile, build_program, get_profile, spec2006_profiles

__version__ = "1.0.0"

__all__ = [
    "PairedRun",
    "RunRequest",
    "WorkloadRun",
    "dbp_workloads",
    "sample_workload",
    "geometric_mean",
    "run_pair",
    "run_suite",
    "run_workload",
    "speedup",
    "speedup_percent",
    "Pipeline",
    "ProcessorConfig",
    "SimStats",
    "SimulationResult",
    "SmtConfig",
    "simulate",
    "size_models",
    "ResultCache",
    "SimJob",
    "SweepExecutor",
    "default_jobs",
    "AGE_MATRIX_IQ_DELAY_FACTOR",
    "AgeMatrix",
    "IssueQueue",
    "PubsConfig",
    "SliceTracker",
    "pubs_hardware_cost",
    "InvariantViolation",
    "OracleMismatch",
    "PipelineVerifier",
    "WorkloadProfile",
    "build_program",
    "get_profile",
    "spec2006_profiles",
    "__version__",
]
