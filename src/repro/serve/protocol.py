"""Line-delimited JSON protocol between ``repro serve`` and its clients.

One message per line; every line is a wire envelope
(:mod:`repro.exec.wire`), so the protocol inherits the wire schema
version and the repro-types-only decoding restriction.  The exchange is
strictly request/response-stream:

Client -> server (one per exchange):

* ``sweep-submit`` -- ``{"request": RunRequest, "configs": {name:
  ProcessorConfig}, "workloads": [names]}``.  The server answers with a
  stream of ``cell`` events (one per (config, workload) pair, in
  completion order) terminated by one ``done`` event.
* ``status-request`` -- ``{}``.  The server answers with one ``status``
  event.

Server -> client:

* ``cell`` -- ``{"index", "config", "workload", "key", "cached",
  "deduped", "metrics": {"cpi", "ipc", "branch_mpki", "llc_mpki"},
  "topdown": {"mover", "level1": {bucket: cpi contribution}},
  "result": SimulationResult}``.  ``index`` is the cell's position in
  the submission's (config-major) cross product, so clients reassemble
  request order from completion order.
* ``done`` -- ``{"cells", "counters": {...}}``: the submission is
  complete; every cell event has been sent.
* ``status`` -- server counters plus recent-cell summaries (each with
  its top-down mover), for ``repro status``.
* ``error`` -- ``{"message"}``: the exchange failed; the connection
  stays usable for the next request.

A malformed or version-skewed line gets an ``error`` answer rather than
a dropped connection, so a client two schema versions ahead learns
*why* in its own terms.
"""

from __future__ import annotations

import json
from typing import Any, Tuple

from ..exec.wire import (
    WIRE_SCHEMA_VERSION,
    WireError,
    open_envelope,
    envelope,
)

#: Default TCP port ``repro serve`` listens on.
DEFAULT_PORT = 8723
#: Kinds a client may send.
REQUEST_KINDS = ("sweep-submit", "status-request")
#: Kinds a server may send.
EVENT_KINDS = ("cell", "done", "status", "error")
#: Hard cap on one message line; a line this long is a framing bug, not
#: a big payload (a full cell event is a few KB).
MAX_LINE_BYTES = 8 * 1024 * 1024


def encode_message(kind: str, payload: Any) -> bytes:
    """One protocol line: compact enveloped JSON plus the newline."""
    text = json.dumps(envelope(kind, payload), sort_keys=True,
                      separators=(",", ":"))
    if "\n" in text:
        raise WireError("protocol messages must be single-line JSON")
    return text.encode("utf-8") + b"\n"


def decode_message(line: bytes) -> Tuple[str, Any]:
    """Parse one received line into ``(kind, decoded payload)``."""
    try:
        data = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"malformed protocol line: {exc}") from None
    if not isinstance(data, dict):
        raise WireError("protocol lines must be JSON objects")
    kind = data.get("kind")
    if not isinstance(kind, str):
        raise WireError("protocol line carries no message kind")
    return kind, open_envelope(data, kind)


__all__ = [
    "DEFAULT_PORT",
    "EVENT_KINDS",
    "MAX_LINE_BYTES",
    "REQUEST_KINDS",
    "WIRE_SCHEMA_VERSION",
    "decode_message",
    "encode_message",
]
