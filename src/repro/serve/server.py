"""The ``repro serve`` front end: concurrent sweep submissions, one cache.

:class:`SweepServer` accepts line-JSON connections
(:mod:`repro.serve.protocol`), plans each ``sweep-submit`` into
per-cell :class:`~repro.exec.jobs.SimJob`\\ s, and streams results back
as they complete.  The interesting property is *cross-client
deduplication*: every cell is keyed by its content hash
(:func:`~repro.exec.jobs.job_key`), and an in-flight or completed cell
task is shared by reference -- two clients submitting overlapping
sweeps concurrently cost one simulation per distinct cell, visible in
the ``status`` counters (``dedup_hits``) and in ``repro cache stats``
afterwards (one entry per distinct cell).

Concurrency model: the asyncio loop owns all bookkeeping (the task map
is only touched from the loop, so it needs no lock); blocking work --
cache probes and backend dispatch -- runs in worker threads via
``asyncio.to_thread``.  The server deliberately bypasses
:class:`~repro.exec.executor.SweepExecutor` (whose memo is not
thread-safe) and talks straight to an
:class:`~repro.exec.backend.ExecutionBackend`: the task map *is* the
dedup memo here, and the default pool backend (``keep_pool=True``) is
safe to call from many threads at once.  Each submission caps its
in-flight cells with a semaphore so one giant sweep cannot starve the
loop.

Serve handles full simulations only (``sampling="off"``): sampled
estimation is an interactive escalation loop, which belongs client-side
on top of the queue backend, not inside a request/stream exchange.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..analysis.runner import DEFAULT_INSTRUCTIONS, DEFAULT_SKIP
from ..analysis.topdown import LEVEL1, TopdownBreakdown
from ..core.config import ProcessorConfig, RunRequest
from ..core.simulator import SimulationResult
from ..exec.backend import ExecutionBackend, ProcessPoolBackend
from ..exec.cache import ResultCache, cache_enabled_by_env
from ..exec.executor import default_jobs
from ..exec.jobs import SimJob, job_key
from ..exec.wire import WireError
from ..workloads.profiles import get_profile
from .protocol import MAX_LINE_BYTES, decode_message, encode_message


def topdown_summary(result: SimulationResult) -> Dict[str, Any]:
    """Level-1 CPI contributions plus the biggest non-retiring mover.

    The per-cell summary the serve stream and ``repro status`` attach
    to every result: which top-down bucket is eating the cycles.
    """
    breakdown = TopdownBreakdown.from_result(result)
    level1 = {bucket: breakdown.cpi_contribution(bucket)
              for bucket in LEVEL1}
    movers = {bucket: cpi for bucket, cpi in level1.items()
              if bucket != "retiring"}
    mover = max(movers, key=lambda bucket: movers[bucket])
    return {"level1": level1, "mover": mover,
            "mover_cpi": movers[mover]}


def mover_text(summary: Dict[str, Any]) -> str:
    """Render a :func:`topdown_summary` as one short token."""
    return f"{summary['mover']} {summary['mover_cpi']:.3f} CPI"


class _Cell:
    """One planned (config, workload) cell of a submission."""

    __slots__ = ("index", "config_name", "workload", "key", "job")

    def __init__(self, index: int, config_name: str, workload: str,
                 job: SimJob) -> None:
        self.index = index
        self.config_name = config_name
        self.workload = workload
        self.key = job_key(job)
        self.job = job


class SweepServer:
    """Asyncio sweep server over one backend and one result cache."""

    def __init__(self, backend: Optional[ExecutionBackend] = None,
                 cache: "Optional[ResultCache | bool]" = None,
                 jobs: Optional[int] = None,
                 max_concurrency: Optional[int] = None) -> None:
        jobs = default_jobs() if jobs is None else max(1, int(jobs))
        self.backend = backend if backend is not None \
            else ProcessPoolBackend(jobs, keep_pool=True)
        if cache is None:
            self.cache: Optional[ResultCache] = (
                ResultCache() if cache_enabled_by_env() else None)
        elif cache is False:
            self.cache = None
        else:
            self.cache = cache
        self._concurrency = max_concurrency or jobs
        self._sem: Optional[asyncio.Semaphore] = None  # built on the loop
        #: job key -> the (shared) task computing that cell.
        self._tasks: "Dict[str, asyncio.Task]" = {}
        self.clients_served = 0
        self.submissions = 0
        self.cells_served = 0
        self.dedup_hits = 0
        self.cache_hits = 0
        self.simulated = 0
        self.recent: "Deque[Dict[str, Any]]" = deque(maxlen=32)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def _plan(self, payload: Any) -> "Tuple[RunRequest, List[_Cell]]":
        if not isinstance(payload, dict):
            raise WireError("sweep-submit payload must be a mapping")
        request = payload.get("request")
        configs = payload.get("configs")
        workloads = payload.get("workloads")
        if not isinstance(request, RunRequest):
            raise WireError("sweep-submit needs a RunRequest under "
                            "'request'")
        if not isinstance(configs, dict) or not configs or not all(
                isinstance(cfg, ProcessorConfig) for cfg in configs.values()):
            raise WireError("sweep-submit needs named ProcessorConfigs "
                            "under 'configs'")
        if not isinstance(workloads, list) or not workloads or not all(
                isinstance(name, str) for name in workloads):
            raise WireError("sweep-submit needs workload names under "
                            "'workloads'")
        req = request.resolved()
        if req.sampling not in (None, "off"):
            raise WireError(
                "serve runs full simulations only (sampling="
                f"{req.sampling!r}); run sampled sweeps client-side, "
                "e.g. over the queue backend")
        instructions = DEFAULT_INSTRUCTIONS if req.instructions is None \
            else req.instructions
        skip = DEFAULT_SKIP if req.skip is None else req.skip
        # The client resolved its environment before submitting, so the
        # request's own frontend field is the whole policy here -- the
        # server's environment must not leak into remote results.
        cells: List[_Cell] = []
        index = 0
        for config_name, config in configs.items():
            if req.frontend and config.frontend_mode != req.frontend:
                config = config.with_frontend(req.frontend)
            for workload in workloads:
                job = SimJob(get_profile(workload), config,
                             instructions, skip)
                cells.append(_Cell(index, config_name, workload, job))
                index += 1
        return req, cells

    # ------------------------------------------------------------------
    # Cell execution (the shared task map)
    # ------------------------------------------------------------------

    def _shared_task(self, cell: _Cell) -> "Tuple[asyncio.Task, bool]":
        task = self._tasks.get(cell.key)
        if task is not None:
            self.dedup_hits += 1
            return task, True
        task = asyncio.get_running_loop().create_task(
            self._compute(cell.key, cell.job))
        self._tasks[cell.key] = task
        task.add_done_callback(self._reap)
        return task, False

    def _reap(self, task: "asyncio.Task") -> None:
        # A failed or cancelled cell must not poison later submissions
        # of the same key; successful results stay shared forever.
        if task.cancelled() or task.exception() is not None:
            for key, held in list(self._tasks.items()):
                if held is task:
                    del self._tasks[key]

    async def _compute(self, key: str,
                       job: SimJob) -> "Tuple[SimulationResult, bool]":
        if self._sem is None:
            self._sem = asyncio.Semaphore(self._concurrency)
        async with self._sem:
            if self.cache is not None:
                cached = await asyncio.to_thread(self.cache.get, key)
                if cached is not None:
                    self.cache_hits += 1
                    return cached, True
            produced = await asyncio.to_thread(
                self.backend.run_units, [[(key, job)]])
            result = produced[0][0][1]
            self.simulated += 1
            if self.cache is not None:
                await asyncio.to_thread(self.cache.put, key, result)
            return result, False

    # ------------------------------------------------------------------
    # Protocol handlers
    # ------------------------------------------------------------------

    async def _send(self, writer: asyncio.StreamWriter, kind: str,
                    payload: Any) -> None:
        writer.write(encode_message(kind, payload))
        await writer.drain()

    async def _emit_cell(self, writer: asyncio.StreamWriter, cell: _Cell,
                         task: "asyncio.Task", deduped: bool) -> None:
        result, cached = await task
        stats = result.stats
        summary = topdown_summary(result)
        self.cells_served += 1
        self.recent.append({
            "config": cell.config_name,
            "workload": cell.workload,
            "cpi": stats.cycles / stats.committed,
            "mover": summary["mover"],
            "mover_cpi": summary["mover_cpi"],
        })
        await self._send(writer, "cell", {
            "index": cell.index,
            "config": cell.config_name,
            "workload": cell.workload,
            "key": cell.key,
            "cached": cached,
            "deduped": deduped,
            "metrics": {
                "cpi": stats.cycles / stats.committed,
                "ipc": stats.ipc,
                "branch_mpki": stats.branch_mpki,
                "llc_mpki": stats.llc_mpki,
            },
            "topdown": summary,
            "result": result,
        })

    async def _handle_submit(self, payload: Any,
                             writer: asyncio.StreamWriter) -> None:
        _req, cells = self._plan(payload)
        self.submissions += 1
        planned = [(cell,) + self._shared_task(cell) for cell in cells]
        await asyncio.gather(*(
            self._emit_cell(writer, cell, task, deduped)
            for cell, task, deduped in planned))
        await self._send(writer, "done", {
            "cells": len(cells),
            "counters": self.counters(),
        })

    def counters(self) -> Dict[str, Any]:
        return {
            "backend": self.backend.describe(),
            "clients_served": self.clients_served,
            "submissions": self.submissions,
            "cells_served": self.cells_served,
            "dedup_hits": self.dedup_hits,
            "cache_hits": self.cache_hits,
            "simulated": self.simulated,
            "active_cells": sum(1 for task in self._tasks.values()
                                if not task.done()),
        }

    def status(self) -> Dict[str, Any]:
        payload = self.counters()
        payload["recent"] = list(self.recent)
        return payload

    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        """One client connection: serve exchanges until it hangs up."""
        self.clients_served += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    break  # over-long line or peer reset: hang up
                if not line:
                    break
                try:
                    kind, payload = decode_message(line)
                except WireError as exc:
                    await self._send(writer, "error",
                                     {"message": str(exc)})
                    continue
                if kind == "status-request":
                    await self._send(writer, "status", self.status())
                elif kind == "sweep-submit":
                    try:
                        await self._handle_submit(payload, writer)
                    except WireError as exc:
                        await self._send(writer, "error",
                                         {"message": str(exc)})
                    except Exception as exc:  # noqa: BLE001 -- reported
                        await self._send(writer, "error", {
                            "message": f"{type(exc).__name__}: {exc}"})
                else:
                    await self._send(writer, "error", {
                        "message": f"unknown request kind {kind!r}"})
        except ConnectionError:
            pass
        except asyncio.CancelledError:
            # Server shutdown cancels idle handlers mid-readline; ending
            # normally here keeps teardown quiet (asyncio's stream
            # callback would log the cancellation as an error).
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def start(self, host: str, port: int) -> "asyncio.base_events.Server":
        """Bind and return the listening asyncio server."""
        return await asyncio.start_server(self.handle, host, port,
                                          limit=MAX_LINE_BYTES)

    def close(self) -> None:
        self.backend.close()


async def serve_forever(server: SweepServer, host: str, port: int,
                        ready=None) -> None:
    """Run ``server`` until cancelled; ``ready(bound_port)`` on bind."""
    listener = await server.start(host, port)
    try:
        if ready is not None:
            ready(listener.sockets[0].getsockname()[1])
        async with listener:
            await listener.serve_forever()
    finally:
        server.close()


__all__ = [
    "SweepServer",
    "mover_text",
    "serve_forever",
    "topdown_summary",
]
