"""Client side of the serve protocol: submit sweeps, stream cells.

The async functions are the protocol implementation; the plain
functions wrap them in ``asyncio.run`` for synchronous callers (the
``repro submit`` / ``repro status`` subcommands and tests).  A reply
carries every streamed cell event *and* reassembles the request-order
result table, so a client gets both the live stream (via ``on_cell``)
and the same nested ``results[config][workload]`` mapping
:func:`repro.api.run_suite` returns.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional

from ..core.config import ProcessorConfig, RunRequest
from ..core.simulator import SimulationResult
from .protocol import DEFAULT_PORT, MAX_LINE_BYTES, decode_message, \
    encode_message


class ServeError(RuntimeError):
    """The server answered an exchange with an ``error`` event."""


@dataclass
class SweepReply:
    """Everything one ``sweep-submit`` exchange produced."""

    cells: List[Dict[str, Any]] = field(default_factory=list)
    summary: Dict[str, Any] = field(default_factory=dict)

    def results(self) -> "Dict[str, Dict[str, SimulationResult]]":
        """Request-ordered ``results[config][workload]`` table."""
        out: Dict[str, Dict[str, SimulationResult]] = {}
        for cell in sorted(self.cells, key=lambda c: c["index"]):
            out.setdefault(cell["config"], {})[cell["workload"]] = \
                cell["result"]
        return out


async def _read_event(reader: asyncio.StreamReader) -> "tuple[str, Any]":
    line = await reader.readline()
    if not line:
        raise ConnectionError("server closed the connection mid-exchange")
    kind, payload = decode_message(line)
    if kind == "error":
        raise ServeError(payload.get("message", "unspecified server error"))
    return kind, payload


async def submit_sweep_async(
    host: str, port: int,
    request: RunRequest,
    configs: Mapping[str, ProcessorConfig],
    workloads: Iterable[str],
    on_cell: "Optional[Callable[[Dict[str, Any]], None]]" = None,
) -> SweepReply:
    """Submit one sweep; stream cells until the terminating ``done``."""
    reader, writer = await asyncio.open_connection(host, port,
                                                   limit=MAX_LINE_BYTES)
    try:
        writer.write(encode_message("sweep-submit", {
            "request": request,
            "configs": dict(configs),
            "workloads": list(workloads),
        }))
        await writer.drain()
        reply = SweepReply()
        while True:
            kind, payload = await _read_event(reader)
            if kind == "cell":
                reply.cells.append(payload)
                if on_cell is not None:
                    on_cell(payload)
            elif kind == "done":
                reply.summary = payload
                return reply
            else:
                raise ServeError(f"unexpected event {kind!r} mid-stream")
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


async def fetch_status_async(host: str, port: int) -> Dict[str, Any]:
    """One ``status-request`` exchange."""
    reader, writer = await asyncio.open_connection(host, port,
                                                   limit=MAX_LINE_BYTES)
    try:
        writer.write(encode_message("status-request", {}))
        await writer.drain()
        kind, payload = await _read_event(reader)
        if kind != "status":
            raise ServeError(f"expected a status event, got {kind!r}")
        return payload
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


def submit_sweep(host: str, port: int, request: RunRequest,
                 configs: Mapping[str, ProcessorConfig],
                 workloads: Iterable[str],
                 on_cell: "Optional[Callable[[Dict[str, Any]], None]]" = None,
                 ) -> SweepReply:
    """Synchronous :func:`submit_sweep_async` (own event loop)."""
    return asyncio.run(submit_sweep_async(host, port, request, configs,
                                          workloads, on_cell=on_cell))


def fetch_status(host: str, port: int) -> Dict[str, Any]:
    """Synchronous :func:`fetch_status_async` (own event loop)."""
    return asyncio.run(fetch_status_async(host, port))


__all__ = [
    "DEFAULT_PORT",
    "ServeError",
    "SweepReply",
    "fetch_status",
    "fetch_status_async",
    "submit_sweep",
    "submit_sweep_async",
]
