"""The sweep-serving front end: ``repro serve`` and its clients.

A thin asyncio layer over the exec fabric: many concurrent clients
submit serialized :class:`~repro.core.config.RunRequest` sweeps over a
line-delimited JSON protocol (:mod:`repro.serve.protocol`), the server
(:mod:`repro.serve.server`) streams per-cell results back as they
complete, and overlapping submissions -- same workload, same config,
same budget -- deduplicate across clients by content-addressed job key.
:mod:`repro.serve.client` is the matching client library, which ``repro
submit --host`` and ``repro status --host`` wrap.
"""

from .client import (
    ServeError,
    SweepReply,
    fetch_status,
    fetch_status_async,
    submit_sweep,
    submit_sweep_async,
)
from .protocol import DEFAULT_PORT, WIRE_SCHEMA_VERSION
from .server import SweepServer, mover_text, serve_forever, topdown_summary

__all__ = [
    "DEFAULT_PORT",
    "ServeError",
    "SweepReply",
    "SweepServer",
    "WIRE_SCHEMA_VERSION",
    "fetch_status",
    "fetch_status_async",
    "mover_text",
    "serve_forever",
    "submit_sweep",
    "submit_sweep_async",
    "topdown_summary",
]
