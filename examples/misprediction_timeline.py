#!/usr/bin/env python3
"""Figure-1-style timelines: where does a misprediction's time go?

Runs a hard-branch workload on the base machine and on PUBS, then draws the
paper's Fig. 1 timeline (fetch -> front-end -> IQ wait -> execute) for the
last few mispredicted branches of each run.  The segment PUBS shrinks is
the IQ wait.

Usage::

    python examples/misprediction_timeline.py [workload] [instructions]
"""

import sys

from repro import ProcessorConfig
from repro.core import Pipeline
from repro.workloads import build_program, get_profile


def draw_timeline(log, label, count=5, scale=1.0):
    print(f"{label}: last {min(count, len(log))} mispredicted branches "
          f"(F=front end, Q=IQ wait, X=execute; 1 char ~ {scale:g} cycles)")
    for pc, fetch, dispatch, issue, complete in list(log)[-count:]:
        fe = max(1, round((dispatch - fetch) / scale))
        iq = max(1, round((issue - dispatch) / scale))
        ex = max(1, round((complete - issue) / scale))
        bar = "F" * fe + "Q" * iq + "X" * ex
        total = complete - fetch
        print(f"  pc={pc:#06x} cycle {fetch:>6}..{complete:<6} "
              f"[{bar}] {total} cycles (IQ wait {issue - dispatch})")
    if log:
        waits = [issue - dispatch for _, _, dispatch, issue, _ in log]
        print(f"  mean IQ wait over the last {len(log)}: "
              f"{sum(waits) / len(waits):.1f} cycles")
    print()


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "sjeng"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 6_000
    profile = get_profile(workload)
    base = ProcessorConfig.cortex_a72_like()

    for label, cfg in (("BASE", base), ("PUBS", base.with_pubs())):
        pipe = Pipeline(build_program(profile), cfg,
                        mem_seed=profile.mem_seed)
        pipe.run(instructions, skip_instructions=4_000)
        draw_timeline(pipe.misprediction_log, label, scale=2.0)

    print("the misspeculation penalty (Sec. II-A) is the whole bar; PUBS")
    print("can only shrink the Q segment -- and it does.")


if __name__ == "__main__":
    main()
