#!/usr/bin/env python3
"""Design-space exploration: how many priority entries should an IQ reserve?

Sweeps the PUBS priority-entry count and the dispatch policy (stall vs
non-stall) on a chess-engine-like workload -- the experiment an architect
would run before committing to a partition size (the paper's Fig. 10
answers it with "6, stall policy").

Usage::

    python examples/design_space.py [instructions]
"""

import sys

from repro import PubsConfig
from repro.api import ProcessorConfig, run_workload
from repro.analysis import render_bar_chart


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 8_000
    workload = "sjeng"
    base = ProcessorConfig.cortex_a72_like()
    base_ipc = run_workload(workload, base, instructions).stats.ipc
    print(f"{workload}: base IPC {base_ipc:.3f}\n")

    labels, values = [], []
    for entries in (2, 4, 6, 8, 10, 12):
        for stall in (True, False):
            cfg = base.with_pubs(PubsConfig(priority_entries=entries,
                                            stall_policy=stall))
            result = run_workload(workload, cfg, instructions)
            pct = (result.stats.ipc / base_ipc - 1) * 100
            labels.append(f"{entries:2d} entries {'stall' if stall else 'spill'}")
            values.append(pct)
    print(render_bar_chart(labels, values, unit="%"))
    print()
    best = max(zip(values, labels))
    print(f"best configuration here: {best[1].strip()} ({best[0]:+.1f}%)")
    print("the paper lands on 6 entries with the stall policy")


if __name__ == "__main__":
    main()
