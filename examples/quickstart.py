#!/usr/bin/env python3
"""Quickstart: measure what PUBS buys on one hard-branch workload.

Runs the sjeng-like workload (chess engine: hard data-dependent branches on
cache-resident evaluation tables -- the paper's best case) on the base
Cortex-A72-like processor and on the same machine with PUBS enabled, then
prints the headline numbers side by side.

Usage::

    python examples/quickstart.py [instructions]
"""

import sys

from repro.api import ProcessorConfig, run_pair
from repro.analysis import render_table


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000

    base = ProcessorConfig.cortex_a72_like()
    pubs = base.with_pubs()

    print(f"simulating sjeng for {instructions} instructions "
          f"(base vs PUBS)...")
    pair = run_pair("sjeng", base, pubs, instructions=instructions)

    b, v = pair.base.stats, pair.variant.stats
    print()
    print(render_table(
        ["metric", "base", "PUBS"],
        [
            ["IPC", f"{b.ipc:.3f}", f"{v.ipc:.3f}"],
            ["branch MPKI", f"{b.branch_mpki:.1f}", f"{v.branch_mpki:.1f}"],
            ["LLC MPKI", f"{b.llc_mpki:.2f}", f"{v.llc_mpki:.2f}"],
            ["misspec penalty / branch (cycles)",
             f"{b.avg_missspec_penalty:.1f}", f"{v.avg_missspec_penalty:.1f}"],
            ["  of which IQ wait (cycles)",
             f"{b.avg_missspec_iq_wait:.1f}", f"{v.avg_missspec_iq_wait:.1f}"],
            ["priority-entry dispatches", "-",
             str(pair.variant.iq_priority_dispatches)],
            ["unconfident branch rate", "-",
             f"{pair.variant.unconfident_branch_rate:.0%}"],
        ],
    ))
    print()
    print(f"PUBS speedup: {pair.speedup_percent:+.1f}%  "
          f"(the paper reports +19.2% for sjeng, its best case)")


if __name__ == "__main__":
    main()
