#!/usr/bin/env python3
"""Full Figure-8-style evaluation across the whole SPEC2006-like suite.

Runs every one of the 28 workloads on the base machine and on PUBS,
classifies them into D-BP / E-BP by *measured* branch MPKI (threshold 3.0),
and prints the per-program speedups plus the geometric means the paper
headlines.  This is the long-running example; trim the instruction budget
for a quick look.

Usage::

    python examples/full_evaluation.py [instructions] [skip]
"""

import sys
import time

from repro import spec2006_profiles
from repro.api import ProcessorConfig, run_workload
from repro.analysis import geometric_mean, render_table


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 8_000
    skip = int(sys.argv[2]) if len(sys.argv) > 2 else 16_000

    base = ProcessorConfig.cortex_a72_like()
    pubs = base.with_pubs()
    rows = []
    t0 = time.time()
    for name in sorted(spec2006_profiles()):
        r_base = run_workload(name, base, instructions, skip)
        r_pubs = run_workload(name, pubs, instructions, skip)
        rows.append({
            "name": name,
            "dbp": r_base.stats.is_difficult_branch_prediction,
            "mpki": r_base.stats.branch_mpki,
            "llc": r_base.stats.llc_mpki,
            "ratio": r_pubs.stats.ipc / r_base.stats.ipc,
        })
        print(f"  {name:11s} done ({time.time() - t0:5.1f}s)", flush=True)

    rows.sort(key=lambda r: (-r["dbp"], -r["mpki"]))
    print()
    print(render_table(
        ["program", "set", "branch MPKI", "LLC MPKI", "PUBS speedup %"],
        [[r["name"], "D-BP" if r["dbp"] else "E-BP", r["mpki"], r["llc"],
          (r["ratio"] - 1) * 100] for r in rows],
    ))

    dbp = [r["ratio"] for r in rows if r["dbp"]]
    ebp = [r["ratio"] for r in rows if not r["dbp"]]
    print()
    print(f"GM diff (D-BP, {len(dbp)} programs): "
          f"{(geometric_mean(dbp) - 1) * 100:+.1f}%   (paper: +7.8%)")
    print(f"GM easy (E-BP, {len(ebp)} programs): "
          f"{(geometric_mean(ebp) - 1) * 100:+.1f}%   (paper: ~0%)")


if __name__ == "__main__":
    main()
