#!/usr/bin/env python3
"""Memory-bound workloads and the PUBS mode switch.

Demonstrates why the paper needs mode switching (Sec. III-B3): on a
pointer-chasing, huge-footprint workload like mcf, issue-queue capacity
feeds memory-level parallelism, and reserving priority entries would hurt.
The mode switch observes LLC MPKI and disables PUBS in those phases.

Runs mcf-like and soplex-like with:
  1. the base machine,
  2. PUBS with the mode switch (the paper's configuration),
  3. PUBS with the mode switch disabled (priority entries always reserved).

Usage::

    python examples/memory_bound_study.py [instructions]
"""

import sys

from repro import PubsConfig
from repro.api import ProcessorConfig, run_workload
from repro.analysis import render_table


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 8_000
    base = ProcessorConfig.cortex_a72_like()
    pubs = base.with_pubs()
    pubs_no_switch = base.with_pubs(PubsConfig(mode_switch_enabled=False))

    rows = []
    for workload in ("mcf", "soplex", "sjeng"):
        r_base = run_workload(workload, base, instructions)
        r_pubs = run_workload(workload, pubs, instructions)
        r_nosw = run_workload(workload, pubs_no_switch, instructions)
        rows.append([
            workload,
            f"{r_base.stats.llc_mpki:.1f}",
            f"{r_base.stats.ipc:.3f}",
            f"{(r_pubs.stats.ipc / r_base.stats.ipc - 1) * 100:+.1f}%",
            f"{(r_nosw.stats.ipc / r_base.stats.ipc - 1) * 100:+.1f}%",
            f"{r_pubs.mode_switch_disabled_fraction:.0%}",
        ])
    print(render_table(
        ["workload", "LLC MPKI", "base IPC", "PUBS (switch on)",
         "PUBS (switch off)", "windows disabled"],
        rows,
    ))
    print()
    print("mcf/soplex: memory-bound, the switch disables PUBS most of the")
    print("time and protects MLP; sjeng: compute-bound, the switch stays")
    print("out of the way and PUBS delivers its speedup.")


if __name__ == "__main__":
    main()
