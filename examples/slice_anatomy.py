#!/usr/bin/env python3
"""Anatomy of a branch slice: watch the PUBS tables learn.

Builds a tiny hand-written kernel with one hard data-dependent branch fed
through a three-instruction dependence chain, decodes it repeatedly through
a standalone :class:`~repro.pubs.SliceTracker`, and prints which
instructions get classified into the unconfident branch slice after each
pass -- the transitive backward discovery of Sec. III-A made visible.

Usage::

    python examples/slice_anatomy.py
"""

from repro import SliceTracker
from repro.isa import Opcode, ProgramBuilder, int_reg


def build_kernel():
    b = ProgramBuilder("kernel")
    b.emit(Opcode.LOAD, dest=int_reg(1), src1=int_reg(10))          # v = mem[p]
    b.emit(Opcode.ADDI, dest=int_reg(2), src1=int_reg(1), imm=3)    # a = v + 3
    b.emit(Opcode.XORI, dest=int_reg(3), src1=int_reg(2), imm=5)    # b = a ^ 5
    b.emit(Opcode.ANDI, dest=int_reg(4), src1=int_reg(3), imm=1)    # c = b & 1
    b.emit(Opcode.ADDI, dest=int_reg(8), src1=int_reg(9), imm=1)    # filler
    b.emit(Opcode.ADDI, dest=int_reg(8), src1=int_reg(8), imm=2)    # filler
    b.mark_label("out")
    b.emit(Opcode.BEQZ, src1=int_reg(4), target_label="out")        # branch on c
    return b.build()


def main() -> None:
    program = build_kernel()
    print("kernel:")
    print(program.listing())
    print()

    tracker = SliceTracker()
    # Teach the confidence table that this branch mispredicts.
    branch_pc = program.insts[-1].pc
    tracker.on_branch_resolved(branch_pc, correct=False)

    print("decode passes (slice membership per instruction):")
    header = " ".join(f"{inst.opcode.name.lower():>5s}" for inst in program)
    print(f"pass   {header}")
    for iteration in range(1, 6):
        marks = [tracker.on_decode(inst) for inst in program]
        row = " ".join(f"{'SLICE' if m else '-':>5s}" for m in marks)
        print(f"{iteration:4d}   {row}")

    print()
    print("the slice grows backwards one dependence level per pass:")
    print("branch -> and -> xor -> add -> load, while the filler chain")
    print("(the computation slice) is never marked.")
    s = tracker.stats
    print(f"\nstats: {s.decoded} decodes, {s.slice_hits} brslice_tab hits, "
          f"{s.unconfident_marks} instructions steered to priority entries")


if __name__ == "__main__":
    main()
