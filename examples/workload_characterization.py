#!/usr/bin/env python3
"""Characterize workloads through the paper's Sec. II lens.

For a handful of workloads, computes exact dynamic branch-slice statistics
(size, dependence depth, coverage of the instruction stream) over
ROB-window-sized chunks, then runs the timing simulator to line those
structural numbers up against branch MPKI and the measured PUBS speedup.
Slice coverage is what sizes the priority partition; slice depth is the
paper's "five-instruction chain = five extra penalty cycles" lever.

Usage::

    python examples/workload_characterization.py [instructions]
"""

import sys

from repro.api import ProcessorConfig, run_pair
from repro.analysis import characterize_window, render_table
from repro.workloads import build_program, get_profile


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 4_000
    base = ProcessorConfig.cortex_a72_like()
    pubs = base.with_pubs()

    rows = []
    for name in ("sjeng", "gobmk", "hmmer", "mcf"):
        profile = get_profile(name)
        program = build_program(profile)
        stats = characterize_window(program, instructions, skip=1_000,
                                    mem_seed=profile.mem_seed, window=128)
        pair = run_pair(name, base, pubs, instructions=instructions)
        rows.append([
            name,
            f"{stats.mean_slice_size:.1f}",
            f"{stats.mean_slice_depth:.1f}",
            f"{stats.branch_slice_coverage:.0%}",
            f"{pair.base.stats.branch_mpki:.1f}",
            f"{pair.speedup_percent:+.1f}%",
        ])
    print(render_table(
        ["workload", "mean slice size", "mean slice depth",
         "slice coverage", "branch MPKI", "PUBS speedup"],
        rows,
    ))
    print()
    print("deep, well-covered slices + high branch MPKI (sjeng/gobmk) are")
    print("where PUBS pays off; hmmer's slices exist but its branches are")
    print("confident, and mcf's slices stall on memory either way.")


if __name__ == "__main__":
    main()
