"""Paired speedup estimation and whole-table budget control.

Covers the paired jackknife's contract (point identical to the
independent ratio, CI at most the quadrature combination on shared
schedules, honest NaN/None degeneracy), the corrected
``AdaptiveRound.simulated_records`` accounting (plan-derived, clamps
included), the :class:`TableController` spend policy (worst
CI-to-target ratio first, deterministic ties, table-judged convergence
flags), the ``paired``/``table_budget`` request knobs, and the CLI
surface (``--ci-target`` validation, spend summaries, opt-out flags).
"""

import math
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import build_parser, main
from repro.core.config import ProcessorConfig, RunRequest
from repro.sampling import (
    CI_RELATIVE_FLOOR,
    AdaptiveSession,
    TableController,
    estimate_cpi,
    paired_speedup,
    shared_schedule,
)
from repro.trace.store import TraceStore

BASE = ProcessorConfig.cortex_a72_like()


def _region(start, measure=512, detail=128, weight=1, warmup=0):
    return SimpleNamespace(start=start, measure=measure, detail=detail,
                           weight=weight, warmup=warmup)


def _result(cycles, committed):
    return SimpleNamespace(stats=SimpleNamespace(cycles=cycles,
                                                 committed=committed))


def _sampled(regions, results, relative_ci=0.01):
    """A SampledRun-shaped fake: a plan, its results, and a CPI claim."""
    cycles = sum(r.weight * res.stats.cycles
                 for r, res in zip(regions, results))
    committed = sum(r.weight * res.stats.committed
                    for r, res in zip(regions, results))
    point = cycles / committed if committed else math.nan
    return SimpleNamespace(
        plan=SimpleNamespace(regions=list(regions)),
        results=list(results),
        cpi=SimpleNamespace(point=point, relative_error=relative_ci),
        simulated_records=sum(r.measure + r.detail for r in regions))


def _pair(base_windows, variant_windows, weights=None):
    """Two fake runs over the same schedule from (cycles, committed)."""
    weights = weights or [1] * len(base_windows)
    regions = [_region(512 * i, weight=w) for i, w in enumerate(weights)]
    return (_sampled(regions, [_result(*w) for w in base_windows]),
            _sampled(regions, [_result(*w) for w in variant_windows]))


# ----------------------------------------------------------------------
# The paired estimator
# ----------------------------------------------------------------------

class TestPairedEstimate:
    def test_point_is_the_independent_ratio(self):
        # Pairing changes the error claim, never the headline number:
        # the point must equal base CPI / variant CPI computed from the
        # same weighted whole-span sums.
        base, variant = _pair([(100, 50), (300, 100)],
                              [(120, 50), (330, 100)], weights=[1, 3])
        est = paired_speedup(base, variant)
        assert est.point == pytest.approx(
            base.cpi.point / variant.cpi.point)
        assert est.n == 2

    def test_common_mode_variance_cancels(self):
        # Per-window CPIs differ 6x, but the variant is exactly 2% slower
        # everywhere -- the paired CI is (near) zero while either side's
        # own jackknife spread is enormous.
        base, variant = _pair([(100, 100), (600, 100), (250, 100)],
                              [(102, 100), (612, 100), (255, 100)])
        est = paired_speedup(base, variant)
        assert est.point == pytest.approx(1 / 1.02)
        assert est.relative_error == pytest.approx(0.0, abs=1e-12)

    def test_single_shared_window_has_no_error_claim(self):
        base, variant = _pair([(100, 50)], [(110, 50)])
        est = paired_speedup(base, variant)
        assert est.n == 1
        assert est.point == pytest.approx(100 / 110)
        assert math.isnan(est.stderr)
        assert math.isnan(est.ci_halfwidth)
        assert math.isnan(est.relative_error)
        assert "+/-" not in str(est)

    def test_mismatched_schedules_return_none(self):
        base, variant = _pair([(100, 50), (200, 80)],
                              [(110, 50), (210, 80)])
        variant.plan.regions[1] = _region(9999)
        assert paired_speedup(base, variant) is None
        weight_skew, _ = _pair([(100, 50), (200, 80)],
                               [(110, 50), (210, 80)])
        weight_skew.plan.regions[0] = _region(0, weight=7)
        assert not shared_schedule(weight_skew, base)

    def test_warmup_depth_does_not_break_pairing(self):
        # Warmup shapes the trained state, not which records are
        # measured; two sides differing only in warmup still pair.
        base, variant = _pair([(100, 50), (200, 80)],
                              [(110, 50), (210, 80)])
        variant.plan.regions[0].warmup = 4096
        assert shared_schedule(base, variant)
        assert paired_speedup(base, variant) is not None

    def test_degenerate_leave_one_out_is_nan(self):
        # Removing the only window with committed work zeroes a
        # leave-one-out denominator: no error claim, not a crash.
        base, variant = _pair([(100, 50), (10, 0)], [(110, 50), (12, 0)])
        est = paired_speedup(base, variant)
        assert math.isnan(est.stderr)

    def test_zero_denominator_point_is_nan(self):
        base, variant = _pair([(100, 0), (200, 0)], [(110, 0), (210, 0)])
        est = paired_speedup(base, variant)
        assert math.isnan(est.point)
        assert math.isnan(est.relative_error)

    @given(st.integers(3, 8).flatmap(lambda n: st.tuples(
        st.lists(st.tuples(st.floats(0.5, 5.0), st.integers(100, 1000)),
                 min_size=n, max_size=n),
        st.lists(st.floats(-1e-3, 1e-3), min_size=n, max_size=n),
        st.lists(st.integers(1, 5), min_size=n, max_size=n),
        st.floats(0.8, 1.25))))
    @settings(max_examples=60, deadline=None)
    def test_paired_ci_within_quadrature_on_correlated_sides(self, data):
        # The regime the estimator exists for: the variant is the base
        # scaled by a near-constant factor, so window variance is
        # common-mode.  The paired CI must then be no wider than the
        # quadrature combination of the two sides' own (floored) CIs.
        windows, noise, weights, ratio = data
        base_windows = [(cpi * n, n) for cpi, n in windows]
        variant_windows = [(c * ratio * (1.0 + e), n)
                           for (c, n), e in zip(base_windows, noise)]
        base, variant = _pair(base_windows, variant_windows,
                              weights=weights)
        est = paired_speedup(base, variant)
        rel_b = estimate_cpi(base.results, weights).relative_error
        rel_v = estimate_cpi(variant.results, weights).relative_error
        quadrature = math.sqrt(rel_b * rel_b + rel_v * rel_v)
        # Each side's CI is floored, so quadrature never collapses --
        # the paired CI, which has no floor, must fit inside it.
        assert quadrature >= CI_RELATIVE_FLOOR
        assert est.relative_error <= quadrature + 1e-12


# ----------------------------------------------------------------------
# PairedRun: method selection and fallback
# ----------------------------------------------------------------------

class TestPairedRunMethod:
    def _cells(self):
        from repro.analysis.runner import WorkloadRun

        base, variant = _pair([(100, 50), (600, 200), (250, 100)],
                              [(105, 50), (630, 200), (262, 100)])
        return (WorkloadRun(workload="w", sampled=base),
                WorkloadRun(workload="w", sampled=variant))

    def test_shared_schedules_use_the_paired_ci(self):
        from repro.analysis.runner import PairedRun

        bc, vc = self._cells()
        pair = PairedRun("w", bc, vc)
        assert pair.ci_method == "paired"
        assert pair.paired.point == pytest.approx(pair.speedup)
        assert pair.speedup_relative_ci == pair.paired.relative_error
        assert pair.speedup_relative_ci < math.sqrt(
            bc.relative_ci ** 2 + vc.relative_ci ** 2)

    def test_use_paired_false_falls_back_to_quadrature(self):
        from repro.analysis.runner import PairedRun

        bc, vc = self._cells()
        pair = PairedRun("w", bc, vc, use_paired=False)
        assert pair.paired is None
        assert pair.ci_method == "quadrature"
        assert pair.speedup_relative_ci == pytest.approx(math.sqrt(
            bc.relative_ci ** 2 + vc.relative_ci ** 2))

    def test_mixed_full_and_sampled_pair_is_quadrature(self):
        # A sampled cell against a full simulation cannot pair; the
        # full side contributes zero sampling error.
        from repro.analysis.runner import PairedRun, WorkloadRun

        bc, _ = self._cells()
        full = WorkloadRun(workload="w", full=SimpleNamespace(
            stats=SimpleNamespace(ipc=0.5)))
        pair = PairedRun("w", bc, full)
        assert pair.paired is None
        assert pair.ci_method == "quadrature"
        assert pair.speedup_relative_ci == pytest.approx(bc.relative_ci)

    def test_exact_pair_claims_no_sampling_error(self):
        from repro.analysis.runner import PairedRun, WorkloadRun

        cells = [WorkloadRun(workload="w", full=SimpleNamespace(
            stats=SimpleNamespace(ipc=ipc))) for ipc in (0.5, 0.6)]
        pair = PairedRun("w", *cells)
        assert pair.ci_method == "exact"
        assert math.isnan(pair.speedup_relative_ci)


# ----------------------------------------------------------------------
# Adaptive records accounting (the overcount fix)
# ----------------------------------------------------------------------

class TestRecordsAccounting:
    def test_simulated_records_reflect_the_detail_clamp(self):
        # With skip=0 the span's first window starts at record 0: no
        # room for a detailed-warmup prefix, so its region plans
        # detail=0.  The rounds must account the records actually
        # planned, not the nominal regions * (measure + detail).
        store = TraceStore(persistent=False)
        session = AdaptiveSession(
            "mcf", [None], instructions=4096, skip=0, measure=512,
            max_fraction=1.0, ci_target=1e-6, jobs=1, cache=False,
            store=store)
        session.run_per_cell()
        run = session.runs()[0]
        first = min(run.plan.regions, key=lambda r: r.start)
        assert first.start == 0 and first.detail == 0
        planned = sum(r.measure + r.detail for r in run.plan.regions)
        nominal = len(run.plan.regions) * (512 + 128)
        assert run.rounds[-1].simulated_records == planned
        assert session.simulated_records == planned
        assert planned < nominal

    def test_every_round_matches_its_own_plan(self):
        # Rounds snapshot a growing schedule; each must account exactly
        # the regions it had, so the per-round spend curve is honest.
        store = TraceStore(persistent=False)
        session = AdaptiveSession(
            "sjeng", [None], instructions=8192, skip=2048, measure=1024,
            max_fraction=1.0, ci_target=1e-6, jobs=1, cache=False,
            store=store)
        session.run_per_cell()
        run = session.runs()[0]
        per_region = 1024 + 256
        for record in run.rounds:
            assert record.simulated_records == record.regions * per_region


# ----------------------------------------------------------------------
# TableController policy
# ----------------------------------------------------------------------

class _FakeSession:
    """Quacks like an AdaptiveSession for controller policy tests.

    ``schedule`` maps the escalation round to the per-cell relative CI
    the session reports; the last entry repeats once escalation is
    exhausted.
    """

    def __init__(self, schedule, records_per_round=100, name=None,
                 log=None):
        self.schedule = list(schedule)
        self.round = 0
        self.escalations = 0
        self.measures = 0
        self.states = [object()]
        self._records = records_per_round
        self._name = name
        self._log = log

    def measure_all(self):
        self.measures += 1

    def escalate_all(self):
        if self.round + 1 >= len(self.schedule):
            return False
        self.round += 1
        self.escalations += 1
        if self._log is not None:
            self._log.append(self._name)
        return True

    @property
    def can_escalate(self):
        return self.round + 1 < len(self.schedule)

    @property
    def simulated_records(self):
        return (self.round + 1) * self._records

    @property
    def regions(self):
        return self.round + 1

    def runs(self, converged=None):
        rel = self.schedule[self.round]
        flag = bool(converged[0]) if converged else False
        return [SimpleNamespace(
            cpi=SimpleNamespace(relative_error=rel), converged=flag)]


class TestTableController:
    def test_non_positive_ci_target_rejected(self):
        with pytest.raises(ValueError):
            TableController(0.0)
        with pytest.raises(ValueError):
            TableController(-0.05)

    def test_duplicate_workload_rejected(self):
        controller = TableController(0.05)
        controller.add("mcf", _FakeSession([0.01]))
        with pytest.raises(ValueError, match="duplicate"):
            controller.add("mcf", _FakeSession([0.01]))

    def test_spend_goes_to_the_worst_ratio_first(self):
        # "tight" is already inside the target: zero escalations.  The
        # controller alternates between the two loose workloads as the
        # worst ratio flips, stopping each exactly when it converges.
        controller = TableController(0.05, paired=False)
        tight = _FakeSession([0.01])
        loose = _FakeSession([0.20, 0.08, 0.04])
        looser = _FakeSession([0.30, 0.06, 0.02])
        controller.add("tight", tight)
        controller.add("loose", loose)
        controller.add("looser", looser)
        controller.run()
        assert tight.escalations == 0
        assert loose.escalations == 2 and looser.escalations == 2
        assert controller.simulated_records == 100 + 300 + 300

    def test_ties_break_toward_insertion_order(self):
        # Identical schedules: max() keeps the first maximum, so the
        # first-added workload receives the batch first every round --
        # the determinism the cache identity story relies on.
        controller = TableController(0.05, paired=False)
        log = []
        first = _FakeSession([0.20, 0.01], name="first", log=log)
        second = _FakeSession([0.20, 0.01], name="second", log=log)
        controller.add("first", first)
        controller.add("second", second)
        controller.run()
        assert first.escalations == 1 and second.escalations == 1
        assert log == ["first", "second"]

    def test_capped_workload_stops_without_converging(self):
        controller = TableController(0.05, paired=False)
        capped = _FakeSession([0.40, 0.30])
        controller.add("capped", capped)
        controller.run()
        results = controller.results()
        assert capped.escalations == 1
        assert not results["capped"][0].converged

    def test_results_flags_follow_the_table_criterion(self):
        controller = TableController(0.05, paired=False)
        controller.add("good", _FakeSession([0.01]))
        controller.add("bad", _FakeSession([0.40]))
        controller.run()
        results = controller.results()
        assert results["good"][0].converged
        assert not results["bad"][0].converged


class TestTableControllerEndToEnd:
    def test_lockstep_schedules_stay_shared_and_prefix(self):
        # A controller-stopped session's schedule must (a) keep both
        # configs window-for-window aligned so pairing applies, and
        # (b) be a subset of the standalone full escalation's medoids
        # -- the same content-addressed region jobs, just fewer.
        from repro.sampling import sample_workload_adaptive_many

        store = TraceStore(persistent=False)
        configs = [BASE, BASE.with_overrides(recovery_penalty=12)]
        kwargs = dict(instructions=8192, skip=2048, measure=1024,
                      max_fraction=1.0, jobs=1, cache=False, store=store)
        controller = TableController(0.5, paired=True)
        controller.add("mcf", AdaptiveSession("mcf", configs,
                                              ci_target=0.5, **kwargs))
        controller.run()
        runs = controller.results()["mcf"]
        estimate = paired_speedup(runs[0], runs[1])
        assert estimate is not None
        assert runs[0].converged and runs[1].converged
        assert estimate.relative_error <= 0.5

        full = sample_workload_adaptive_many(
            "mcf", configs, ci_target=1e-6, **kwargs)
        full_starts = {r.start for r in full[0].plan.regions}
        controller_starts = {r.start for r in runs[0].plan.regions}
        assert controller_starts <= full_starts


# ----------------------------------------------------------------------
# RunRequest knobs and environment resolution
# ----------------------------------------------------------------------

class TestRequestKnobs:
    def test_defaults_stay_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAIRED", raising=False)
        monkeypatch.delenv("REPRO_TABLE_BUDGET", raising=False)
        resolved = RunRequest().resolved()
        assert resolved.paired is None
        assert resolved.table_budget is None

    @pytest.mark.parametrize("raw,expected", [
        ("0", False), ("false", False), ("off", False), ("", False),
        ("1", True), ("on", True)])
    def test_env_resolution(self, monkeypatch, raw, expected):
        monkeypatch.setenv("REPRO_PAIRED", raw)
        monkeypatch.setenv("REPRO_TABLE_BUDGET", raw)
        resolved = RunRequest().resolved()
        assert resolved.paired is expected
        assert resolved.table_budget is expected

    def test_explicit_field_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAIRED", "1")
        monkeypatch.setenv("REPRO_TABLE_BUDGET", "1")
        resolved = RunRequest(paired=False, table_budget=False).resolved()
        assert resolved.paired is False
        assert resolved.table_budget is False


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------

class TestCliFlags:
    @pytest.mark.parametrize("value", ["0", "-0.1", "bogus"])
    def test_non_positive_ci_target_exits_2(self, value, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(
                ["suite", "--sampling", "adaptive", "--ci-target", value])
        assert exc.value.code == 2
        assert "--ci-target" in capsys.readouterr().err

    def test_positive_ci_target_accepted(self):
        args = build_parser().parse_args(["suite", "--ci-target", "0.03"])
        assert args.ci_target == pytest.approx(0.03)

    def test_opt_out_flags_map_to_request(self):
        from repro.cli import _request_from_args

        args = build_parser().parse_args(
            ["suite", "--no-paired", "--no-table-budget"])
        req = _request_from_args(args)
        assert req.paired is False
        assert req.table_budget is False
        defaults = _request_from_args(build_parser().parse_args(["suite"]))
        assert defaults.paired is None
        assert defaults.table_budget is None


@pytest.fixture
def isolated_store(monkeypatch, tmp_path):
    from repro.trace import store as store_module

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    store_module.reset_shared_stores()
    yield
    store_module.reset_shared_stores()


class TestCliSpendSummary:
    def test_sampled_suite_prints_spend(self, isolated_store, capsys):
        assert main(["suite", "--workloads", "mcf", "--sampling",
                     "adaptive", "-n", "6000", "--skip", "1000",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "spend:" in out
        assert "simulated records" in out

    def test_sampled_compare_reports_method_and_spend(
            self, isolated_store, capsys):
        assert main(["compare", "mcf", "--sampling", "adaptive",
                     "-n", "6000", "--skip", "1000", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert ", paired)" in out
        assert "spend:" in out

    def test_exact_suite_prints_no_spend(self, isolated_store, capsys):
        assert main(["suite", "--workloads", "mcf", "-n", "1500",
                     "--skip", "1000", "--no-cache"]) == 0
        assert "spend:" not in capsys.readouterr().out
