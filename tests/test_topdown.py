"""Topdown cycle attribution (DESIGN.md §15) and its accounting laws.

The hierarchy must sum to ``decode_width * cycles`` by construction on
any machine and any workload -- a property, not a golden -- and the
``topdown-cycle-accounting`` invariant must fire when any of its three
laws is corrupted.  The breakdown/compare layer on top is checked for
the algebra the CLI relies on: fractions sum to 1, per-bucket CPI
contributions sum to CPI, and bucket deltas sum to the CPI delta.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.report import render_table
from repro.analysis.topdown import (
    HIERARCHY,
    LEAF_COUNTERS,
    LEVEL1,
    TopdownBreakdown,
    breakdown_of,
    compare_topdown,
    suite_table_rows,
)
from repro.core.config import ProcessorConfig
from repro.core.pipeline import DeadlockError, Pipeline
from repro.core.simulator import simulate
from repro.verify import InvariantViolation, default_registry
from repro.workloads import build_program, get_profile

BASE = ProcessorConfig.cortex_a72_like()
PUBS = BASE.with_pubs()


def run_one(workload="sjeng", config=BASE, n=1500, skip=1000):
    profile = get_profile(workload)
    return simulate(build_program(profile), config, max_instructions=n,
                    skip_instructions=skip, mem_seed=profile.mem_seed)


def slot_sum(stats):
    return sum(getattr(stats, counter) for counter in LEAF_COUNTERS.values())


class TestAccountingLaws:
    @pytest.mark.parametrize("workload", ["mcf", "sjeng", "gcc"])
    @pytest.mark.parametrize("config", [BASE, PUBS],
                             ids=["base", "pubs"])
    def test_slots_sum_to_cycles(self, workload, config):
        result = run_one(workload, config)
        s = result.stats
        assert slot_sum(s) == config.decode_width * s.cycles

    @pytest.mark.parametrize("config", [BASE, PUBS], ids=["base", "pubs"])
    def test_stall_causes_are_disjoint(self, config):
        # Regression: priority stalls used to double-count into
        # iq_full_stall_cycles, so the per-cause split could not sum to
        # the aggregate.
        s = run_one("sjeng", config).stats
        assert s.dispatch_stall_cycles == (
            s.rob_full_stall_cycles + s.iq_full_stall_cycles
            + s.lsq_full_stall_cycles + s.regs_full_stall_cycles
            + s.priority_stall_cycles)

    def test_ewait_components_sum_to_penalty(self):
        s = run_one("sjeng", PUBS).stats
        assert s.mispredictions > 0
        assert (s.missspec_frontend_cycles + s.missspec_iq_wait_cycles
                + s.missspec_execute_cycles) == s.missspec_penalty_cycles

    @given(decode_width=st.integers(min_value=1, max_value=6),
           iq_size=st.integers(min_value=8, max_value=64),
           rob_size=st.integers(min_value=24, max_value=128),
           lsq_size=st.integers(min_value=8, max_value=64),
           recovery_penalty=st.integers(min_value=1, max_value=14),
           pubs=st.booleans())
    @settings(max_examples=12, deadline=None)
    def test_slots_sum_on_random_machines(self, decode_width, iq_size,
                                          rob_size, lsq_size,
                                          recovery_penalty, pubs):
        config = BASE.with_overrides(
            decode_width=decode_width, iq_size=iq_size, rob_size=rob_size,
            lsq_size=lsq_size, recovery_penalty=recovery_penalty)
        if pubs:
            config = config.with_pubs()
        s = run_one("gobmk", config, n=600, skip=300).stats
        assert slot_sum(s) == decode_width * s.cycles
        assert s.dispatch_stall_cycles == (
            s.rob_full_stall_cycles + s.iq_full_stall_cycles
            + s.lsq_full_stall_cycles + s.regs_full_stall_cycles
            + s.priority_stall_cycles)


class TestInvariant:
    def warmed(self, config=PUBS):
        pipeline = Pipeline(build_program(get_profile("sjeng")), config)
        with pytest.raises(DeadlockError):
            pipeline.run(10 ** 9, skip_instructions=500, max_cycles=400)
        return pipeline

    def test_passes_on_honest_pipeline(self):
        default_registry().run(self.warmed())

    @pytest.mark.parametrize("counter", [
        "td_retire_slots", "td_be_priority_slots", "td_fe_fetch_slots"])
    def test_fires_on_corrupted_slot_bucket(self, counter):
        pipeline = self.warmed()
        setattr(pipeline.stats, counter, getattr(pipeline.stats, counter) + 1)
        with pytest.raises(InvariantViolation) as excinfo:
            default_registry().run(pipeline)
        assert excinfo.value.invariant == "topdown-cycle-accounting"

    def test_fires_on_overlapping_stall_causes(self):
        pipeline = self.warmed()
        pipeline.stats.iq_full_stall_cycles += 1
        with pytest.raises(InvariantViolation) as excinfo:
            default_registry().run(pipeline)
        assert excinfo.value.invariant == "topdown-cycle-accounting"

    def test_fires_on_ewait_component_leak(self):
        pipeline = self.warmed()
        pipeline.stats.missspec_frontend_cycles += 3
        with pytest.raises(InvariantViolation) as excinfo:
            default_registry().run(pipeline)
        assert excinfo.value.invariant == "topdown-cycle-accounting"


class TestReplayIdentity:
    def test_replay_reproduces_every_topdown_counter(self, tmp_path):
        from repro.trace.store import TraceStore
        store = TraceStore(root=tmp_path, persistent=True)
        profile = get_profile("sjeng")
        program = build_program(profile)
        live = simulate(program, PUBS, max_instructions=1500,
                        skip_instructions=1000, mem_seed=profile.mem_seed)
        replay = simulate(program, PUBS.with_frontend("replay"),
                          max_instructions=1500, skip_instructions=1000,
                          mem_seed=profile.mem_seed, trace_source=store)
        assert replay.frontend_mode == "replay"
        for counter in LEAF_COUNTERS.values():
            assert getattr(replay.stats, counter) == \
                getattr(live.stats, counter), counter


class TestBreakdown:
    def test_fractions_and_contributions_sum(self):
        b = breakdown_of(run_one("sjeng", PUBS))
        assert sum(b.fraction(bucket) for bucket in LEVEL1) \
            == pytest.approx(1.0)
        assert sum(b.level1().values()) == b.total_slots
        assert sum(b.cpi_contribution(bucket) for bucket in LEVEL1) \
            == pytest.approx(b.cpi)
        for bucket, leaves in HIERARCHY.items():
            assert b.fraction(bucket) == pytest.approx(
                sum(b.fraction(leaf) for leaf in leaves))

    def test_from_results_weights_counters(self):
        r = run_one("sjeng", BASE, n=800, skip=400)
        weighted = TopdownBreakdown.from_results([r, r], weights=[3, 1])
        single = TopdownBreakdown.from_result(r)
        assert weighted.cycles == 4 * single.cycles
        for leaf in LEAF_COUNTERS:
            assert weighted.leaves[leaf] == 4 * single.leaves[leaf]
        # Fractions are weight-invariant under identical regions.
        for bucket in LEVEL1:
            assert weighted.fraction(bucket) == \
                pytest.approx(single.fraction(bucket))

    def test_from_results_rejects_mixed_widths(self):
        narrow = run_one("sjeng", BASE.with_overrides(decode_width=2),
                         n=600, skip=300)
        wide = run_one("sjeng", BASE, n=600, skip=300)
        with pytest.raises(ValueError, match="mixed decode widths"):
            TopdownBreakdown.from_results([narrow, wide])

    def test_compare_deltas_sum_to_cpi_delta(self):
        base = breakdown_of(run_one("sjeng", BASE), name="base")
        variant = breakdown_of(run_one("sjeng", PUBS), name="pubs")
        delta = compare_topdown(base, variant)
        assert sum(delta.contributions.values()) \
            == pytest.approx(delta.cpi_delta)
        assert delta.mover in LEVEL1
        assert "moved most" in delta.render()

    def test_compare_names_bad_speculation_on_pubs_pair(self):
        # The acceptance pair: PUBS attacks the E_wait IQ component, so
        # the bucket that moves on sjeng is bad speculation.
        base = breakdown_of(run_one("sjeng", BASE), name="base")
        variant = breakdown_of(run_one("sjeng", PUBS), name="pubs")
        delta = compare_topdown(base, variant)
        assert delta.mover == "bad_speculation"
        assert delta.contributions["bad_speculation"] < 0

    def test_dominant_bucket_and_render(self):
        b = breakdown_of(run_one("mcf", BASE), name="mcf")
        assert b.dominant_bucket == "backend"
        text = b.render()
        assert "mcf" in text and "backend" in text and "E_wait" in text

    def test_suite_table_rows(self):
        bs = [breakdown_of(run_one(w, BASE), name=w)
              for w in ("sjeng", "hmmer")]
        headers, rows = suite_table_rows(bs)
        assert headers[0] == "workload" and "dominant" in headers
        assert len(rows) == 2 and rows[0][0] == "sjeng"
        render_table(headers, rows)  # must not raise


class TestSummaryComponents:
    def test_summary_shows_all_three_ewait_components(self):
        # Regression: summary() used to drop the frontend and execute
        # components of the misspeculation penalty.
        s = run_one("sjeng", BASE).stats
        text = s.summary()
        assert "FE" in text and "IQ" in text and "EX" in text
        assert f"{s.avg_missspec_frontend:.1f}" in text
        assert f"{s.avg_missspec_execute:.1f}" in text


class TestFmtNaN:
    def test_nan_cells_render_as_dash(self):
        table = render_table(["a", "b"], [[1.0, math.nan]])
        assert "nan" not in table
        assert "-" in table.splitlines()[-1]

    def test_degenerate_single_region_cell(self):
        # An n=1 sampled estimate has no stderr: its CI half-width is
        # NaN and must render as "-", not "nan", in suite tables.
        from repro.analysis.robustness import SweepSummary
        from repro.sampling import SampledEstimate
        cell = SampledEstimate("cpi", 1.25, SweepSummary((1.25,)))
        assert math.isnan(cell.ci_halfwidth)
        table = render_table(["workload", "CPI", "95% CI"],
                             [["sjeng", cell.point, cell.ci_halfwidth]])
        assert "nan" not in table
        assert "1.250" in table


class TestCli:
    def test_report_requires_topdown_flag(self, capsys):
        from repro.cli import main
        assert main(["report", "sjeng"]) == 2
        assert "--topdown" in capsys.readouterr().err

    def test_report_single_workload_renders_hierarchy(self, capsys):
        from repro.cli import main
        assert main(["report", "sjeng", "--topdown", "--no-cache",
                     "-n", "1500", "--skip", "1000"]) == 0
        out = capsys.readouterr().out
        assert "bad_speculation" in out and "E_wait" in out
        assert "CPI" in out

    def test_report_many_workloads_renders_table(self, capsys):
        from repro.cli import main
        assert main(["report", "sjeng", "hmmer", "--topdown", "--no-cache",
                     "-n", "1200", "--skip", "800"]) == 0
        out = capsys.readouterr().out
        assert "dominant" in out and "sjeng" in out and "hmmer" in out

    def test_report_compare_names_the_mover(self, capsys):
        from repro.cli import main
        assert main(["report", "sjeng", "--topdown", "--compare",
                     "--no-cache", "-n", "1500", "--skip", "1000"]) == 0
        out = capsys.readouterr().out
        assert "moved most" in out and "bad_speculation" in out

    def test_compare_topdown_flag(self, capsys):
        from repro.cli import main
        assert main(["compare", "sjeng", "--topdown", "--no-cache",
                     "-n", "1500", "--skip", "1000"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "moved most" in out

    @pytest.mark.parametrize("argv", [
        ["run", "sjeng", "--jobs", "0"],
        ["run", "sjeng", "--jobs", "-1"],
        ["suite", "--jobs", "0"],
        ["run", "sjeng", "--batch", "-1"],
        ["suite", "--batch", "-5"],
    ])
    def test_bad_jobs_and_batch_rejected_at_parse_time(self, capsys, argv):
        # Regression: --jobs 0 and negative --batch used to die deep in
        # the executor with a traceback; argparse now exits 2 up front.
        from repro.cli import build_parser
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        flag = argv[-2]
        assert flag in err

    def test_batch_zero_stays_legal(self):
        # 0 disables batching; only negatives are rejected.
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["run", "sjeng", "--batch", "0", "--jobs", "2"])
        assert args.batch == 0 and args.jobs == 2
