"""Unit tests for opcode classification and latencies."""

import pytest

from repro.isa import FuClass, Opcode, fu_class, is_branch, is_conditional_branch
from repro.isa import is_load, is_mem, is_store, latency


class TestClassification:
    def test_conditional_branches(self):
        conds = {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE,
                 Opcode.BEQZ, Opcode.BNEZ}
        for op in Opcode:
            assert is_conditional_branch(op) == (op in conds)

    def test_jump_is_branch_but_not_conditional(self):
        assert is_branch(Opcode.JUMP)
        assert not is_conditional_branch(Opcode.JUMP)

    def test_every_conditional_branch_is_a_branch(self):
        for op in Opcode:
            if is_conditional_branch(op):
                assert is_branch(op)

    def test_memory_classification(self):
        assert is_load(Opcode.LOAD) and not is_store(Opcode.LOAD)
        assert is_store(Opcode.STORE) and not is_load(Opcode.STORE)
        assert is_mem(Opcode.LOAD) and is_mem(Opcode.STORE)
        assert not is_mem(Opcode.ADD)

    def test_no_other_opcode_is_memory(self):
        for op in Opcode:
            if op not in (Opcode.LOAD, Opcode.STORE):
                assert not is_mem(op)


class TestFuClasses:
    def test_every_opcode_has_a_fu_class(self):
        for op in Opcode:
            assert isinstance(fu_class(op), FuClass)

    def test_branches_execute_on_ialu(self):
        for op in Opcode:
            if is_branch(op):
                assert fu_class(op) is FuClass.IALU

    def test_mul_div_use_imult(self):
        assert fu_class(Opcode.MUL) is FuClass.IMULT
        assert fu_class(Opcode.DIV) is FuClass.IMULT

    def test_memory_uses_ldst_port(self):
        assert fu_class(Opcode.LOAD) is FuClass.LDST
        assert fu_class(Opcode.STORE) is FuClass.LDST

    def test_fp_ops_use_fpu(self):
        for op in (Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV,
                   Opcode.FMOVI):
            assert fu_class(op) is FuClass.FPU


class TestLatencies:
    def test_simple_ops_are_single_cycle(self):
        for op in (Opcode.ADD, Opcode.XOR, Opcode.ADDI, Opcode.BEQ,
                   Opcode.JUMP, Opcode.NOP):
            assert latency(op) == 1

    def test_long_latency_ops(self):
        assert latency(Opcode.MUL) == 3
        assert latency(Opcode.DIV) == 12
        assert latency(Opcode.FMUL) == 4
        assert latency(Opcode.FDIV) == 12

    def test_all_latencies_positive(self):
        for op in Opcode:
            assert latency(op) >= 1
