"""Mutation tests for the invariant checkers (``repro.verify.invariants``).

Every built-in invariant must (a) pass on a warmed, mid-flight pipeline and
(b) *fire* when the structure it guards is deliberately corrupted -- a check
that cannot detect seeded corruption is a check that detects nothing.

The pipelines here are stopped mid-run (via ``max_cycles`` +
:class:`DeadlockError`) so the ROB/IQ/LSQ/rename structures are populated
with genuinely in-flight state when the mutations land.
"""

import pytest

from repro.core.config import ProcessorConfig
from repro.core.pipeline import DeadlockError, Pipeline
from repro.pubs.tables import Pointer
from repro.verify import InvariantViolation, default_registry
from repro.verify.invariants import InvariantRegistry, check_priority_partition
from repro.workloads import build_program, get_profile

BASE = ProcessorConfig.cortex_a72_like()
PUBS = BASE.with_pubs()


def warmed_pipeline(config=BASE, workload="sjeng", cycles=400):
    """A pipeline frozen mid-run with in-flight state in every structure."""
    pipeline = Pipeline(build_program(get_profile(workload)), config)
    with pytest.raises(DeadlockError):
        pipeline.run(10 ** 9, skip_instructions=500, max_cycles=cycles)
    return pipeline


def expect_violation(pipeline, invariant):
    with pytest.raises(InvariantViolation) as excinfo:
        default_registry().run(pipeline)
    assert excinfo.value.invariant == invariant
    return excinfo.value


@pytest.fixture
def base_pipeline():
    return warmed_pipeline(BASE)


@pytest.fixture
def pubs_pipeline():
    return warmed_pipeline(PUBS)


class TestRegistry:
    def test_default_registry_names(self):
        names = default_registry().names()
        assert names == ("free-list-conservation", "rob-iq-lsq-agreement",
                         "priority-partition-bounds",
                         "brslice-pointer-validity", "conf-counter-range",
                         "scheduler-wakeup-consistency",
                         "topdown-cycle-accounting")

    def test_register_unregister_and_decorator(self):
        registry = InvariantRegistry()
        calls = []

        @registry.register("probe")
        def probe(pipeline):
            calls.append(pipeline)

        registry.run("sentinel")
        assert calls == ["sentinel"]
        with pytest.raises(ValueError):
            registry.register("probe", probe)
        registry.unregister("probe")
        assert len(registry) == 0

    def test_clean_pipelines_pass_every_invariant(self, base_pipeline,
                                                  pubs_pipeline):
        default_registry().run(base_pipeline)
        default_registry().run(pubs_pipeline)
        # And in-flight state is actually there to be checked.
        assert len(base_pipeline.rob) > 0
        assert base_pipeline.iq.occupancy > 0


class TestFreeListConservation:
    def test_double_free_detected(self, base_pipeline):
        renamer = base_pipeline.renamer
        renamer._free_int.append(renamer.map[0])  # mapped AND free
        violation = expect_violation(base_pipeline, "free-list-conservation")
        assert "duplicated" in violation.detail or "conserved" in violation.detail

    def test_leaked_register_detected(self, base_pipeline):
        renamer = base_pipeline.renamer
        renamer._free_int.pop()  # a register vanishes from the machine
        violation = expect_violation(base_pipeline, "free-list-conservation")
        assert "leaked" in violation.detail

    def test_cross_class_free_detected(self, base_pipeline):
        # An integer-class physical register on the FP free list.
        base_pipeline.renamer._free_fp.append(0)
        violation = expect_violation(base_pipeline, "free-list-conservation")
        assert "out-of-class" in violation.detail


class TestOccupancyAgreement:
    def test_iq_slot_cleared_behind_free_lists_back(self, base_pipeline):
        slot, _ = next(iter(base_pipeline.iq.occupied()))
        base_pipeline.iq._slots[slot] = None
        expect_violation(base_pipeline, "rob-iq-lsq-agreement")

    def test_stale_iq_handle_detected(self, base_pipeline):
        slot, uop = next(iter(base_pipeline.iq.occupied()))
        uop.iq_slot = slot + 999
        violation = expect_violation(base_pipeline, "rob-iq-lsq-agreement")
        assert "handle" in violation.detail or "disagrees" in violation.detail

    def test_squashed_uop_lingering_in_iq_detected(self, base_pipeline):
        _, uop = next(iter(base_pipeline.iq.occupied()))
        uop.squashed = True
        violation = expect_violation(base_pipeline, "rob-iq-lsq-agreement")
        assert "squashed" in violation.detail

    def test_lsq_membership_mismatch_detected(self, base_pipeline):
        mem_uop = next(u for u in base_pipeline.rob if u.inst.is_mem)
        mem_uop.in_lsq = False
        violation = expect_violation(base_pipeline, "rob-iq-lsq-agreement")
        assert "LSQ" in violation.detail


class TestPriorityPartition:
    # Free-list tampering also desynchronizes iq.occupancy, which the
    # earlier rob-iq-lsq-agreement sweep would flag first; the partition
    # check is exercised directly so its own diagnostics are what fire.
    def test_priority_free_list_escapes_partition(self, pubs_pipeline):
        iq = pubs_pipeline.iq
        # Claim a normal-partition slot is free *priority* capacity.
        iq._free_priority.append(iq.priority_entries)
        with pytest.raises(InvariantViolation) as excinfo:
            check_priority_partition(pubs_pipeline)
        assert excinfo.value.invariant == "priority-partition-bounds"
        assert "partition" in excinfo.value.detail

    def test_duplicate_free_slot_detected(self, pubs_pipeline):
        iq = pubs_pipeline.iq
        iq._free_normal.append(iq._free_normal[0])
        with pytest.raises(InvariantViolation) as excinfo:
            check_priority_partition(pubs_pipeline)
        assert "duplicate" in excinfo.value.detail

    def test_dispatch_accounting_detected(self, pubs_pipeline):
        stats = pubs_pipeline.stats
        stats.priority_dispatches = stats.unconfident_dispatches + 1
        expect_violation(pubs_pipeline, "priority-partition-bounds")

    def test_distributed_queues_are_swept(self):
        pipeline = warmed_pipeline(
            BASE.with_overrides(distributed_iq=True).with_pubs())
        queue = next(iter(pipeline.iq.queues.values()))
        queue._free_priority.append(queue.size - 1)
        with pytest.raises(InvariantViolation) as excinfo:
            check_priority_partition(pipeline)
        assert excinfo.value.invariant == "priority-partition-bounds"


class TestSliceTableValidity:
    def test_wild_brslice_pointer_detected(self, pubs_pipeline):
        tracker = pubs_pipeline.slice_tracker
        tracker.brslice_tab._sets[0].insert(0, (3, Pointer(10 ** 6, 0)))
        violation = expect_violation(pubs_pipeline, "brslice-pointer-validity")
        assert "outside" in violation.detail

    def test_overwide_tag_detected(self, pubs_pipeline):
        tracker = pubs_pipeline.slice_tracker
        conf_ptr = tracker.conf_tab.pointer(0x100)
        wild_tag = 1 << tracker.brslice_tab.codec.fold_width
        tracker.brslice_tab._sets[1].insert(0, (wild_tag, conf_ptr))
        expect_violation(pubs_pipeline, "brslice-pointer-validity")

    def test_def_tab_pointer_checked(self, pubs_pipeline):
        tracker = pubs_pipeline.slice_tracker
        tracker.def_tab._entries[5] = Pointer(10 ** 6, 0)
        violation = expect_violation(pubs_pipeline, "brslice-pointer-validity")
        assert "def_tab[5]" in violation.detail


class TestConfidenceCounterRange:
    def test_overflowed_counter_detected(self, pubs_pipeline):
        conf = pubs_pipeline.slice_tracker.conf_tab
        conf.train(0x40, correct=True)  # guarantee an allocated counter
        counter = conf.counter_for_pc(0x40)
        counter.value = counter.maximum + 5
        violation = expect_violation(pubs_pipeline, "conf-counter-range")
        assert "outside" in violation.detail

    def test_negative_counter_detected(self, pubs_pipeline):
        conf = pubs_pipeline.slice_tracker.conf_tab
        conf.train(0x40, correct=False)
        conf.counter_for_pc(0x40).value = -1
        expect_violation(pubs_pipeline, "conf-counter-range")


class TestSchedulerWakeup:
    def test_phantom_pending_source_detected(self, base_pipeline):
        assert base_pipeline._incremental_issue
        _, uop = next(iter(base_pipeline.iq.occupied()))
        uop.pending_srcs += 1  # claims a wakeup that was never registered
        violation = expect_violation(base_pipeline,
                                     "scheduler-wakeup-consistency")
        assert "pending_srcs" in violation.detail

    def test_negative_pending_count_detected(self, base_pipeline):
        _, uop = next(iter(base_pipeline.iq.occupied()))
        uop.pending_srcs = -1
        violation = expect_violation(base_pipeline,
                                     "scheduler-wakeup-consistency")
        assert "negative" in violation.detail

    def test_skipped_for_scan_based_organizations(self):
        pipeline = warmed_pipeline(
            BASE.with_overrides(iq_organization="shifting"))
        assert not pipeline._incremental_issue
        default_registry().run(pipeline)  # wakeup check is a no-op there
