"""Unit and property tests for the age matrix."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.iq import AgeMatrix


class TestBasics:
    def test_insert_remove_valid_tracking(self):
        am = AgeMatrix(4)
        am.insert(2)
        assert am.is_valid(2) and am.valid_count == 1
        am.remove(2)
        assert not am.is_valid(2) and am.valid_count == 0

    def test_double_insert_raises(self):
        am = AgeMatrix(4)
        am.insert(1)
        with pytest.raises(ValueError):
            am.insert(1)

    def test_remove_invalid_raises(self):
        with pytest.raises(ValueError):
            AgeMatrix(4).remove(0)

    def test_out_of_range_slot(self):
        with pytest.raises(IndexError):
            AgeMatrix(4).insert(4)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            AgeMatrix(0)


class TestOldestSelection:
    def test_oldest_is_first_inserted(self):
        am = AgeMatrix(8)
        am.insert(5)
        am.insert(2)
        am.insert(7)
        assert am.oldest([2, 5, 7]) == 5

    def test_oldest_among_requesters_only(self):
        am = AgeMatrix(8)
        am.insert(5)  # oldest overall but not requesting
        am.insert(2)
        am.insert(7)
        assert am.oldest([2, 7]) == 2

    def test_no_requests(self):
        am = AgeMatrix(4)
        am.insert(0)
        assert am.oldest([]) is None

    def test_requests_for_invalid_slots_ignored(self):
        am = AgeMatrix(4)
        am.insert(1)
        assert am.oldest([0, 2, 3]) is None

    def test_slot_reuse_resets_age(self):
        """A freed slot re-inserted becomes the *youngest*, even though its
        index is unchanged -- the property a plain position-priority select
        gets wrong and the age matrix fixes."""
        am = AgeMatrix(4)
        am.insert(0)
        am.insert(1)
        am.remove(0)
        am.insert(0)  # same slot, new (young) instruction
        assert am.oldest([0, 1]) == 1

    def test_single_requester_wins(self):
        am = AgeMatrix(4)
        am.insert(3)
        assert am.oldest([3]) == 3


@given(st.lists(st.tuples(st.booleans(), st.integers(0, 15)), max_size=120))
@settings(max_examples=60, deadline=None)
def test_property_matches_reference_model(ops):
    """The bit-matrix always selects exactly what a timestamp-based
    reference would: the valid requester with the smallest insert time."""
    am = AgeMatrix(16)
    insert_time = {}
    clock = 0
    for is_insert, slot in ops:
        if is_insert and slot not in insert_time:
            am.insert(slot)
            insert_time[slot] = clock
            clock += 1
        elif not is_insert and slot in insert_time:
            am.remove(slot)
            del insert_time[slot]
        # Compare against the reference for the full current request set.
        requesters = list(insert_time)
        expected = min(requesters, key=lambda s: insert_time[s]) if requesters else None
        assert am.oldest(requesters) == expected
