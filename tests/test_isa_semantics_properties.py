"""Property tests: executor arithmetic vs reference 64-bit semantics."""

from hypothesis import given, settings, strategies as st

from repro.isa import FunctionalExecutor, Opcode, Program, StaticInst, to_signed

U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
MASK = (1 << 64) - 1


def _binary_result(op, a, b):
    """Run `op r3, r1, r2` with r1=a, r2=b; returns r3."""
    prog = Program("t", [
        StaticInst(0, Opcode.MOVI, dest=1, imm=a),
        StaticInst(4, Opcode.MOVI, dest=2, imm=b),
        StaticInst(8, op, dest=3, src1=1, src2=2),
    ])
    ex = FunctionalExecutor(prog)
    ex.run(3)
    return ex.regs[3]


class TestBinaryOps:
    @given(U64, U64)
    @settings(max_examples=60, deadline=None)
    def test_add_mod_2_64(self, a, b):
        assert _binary_result(Opcode.ADD, a, b) == (a + b) & MASK

    @given(U64, U64)
    @settings(max_examples=60, deadline=None)
    def test_sub_mod_2_64(self, a, b):
        assert _binary_result(Opcode.SUB, a, b) == (a - b) & MASK

    @given(U64, U64)
    @settings(max_examples=60, deadline=None)
    def test_mul_mod_2_64(self, a, b):
        assert _binary_result(Opcode.MUL, a, b) == (a * b) & MASK

    @given(U64, U64)
    @settings(max_examples=60, deadline=None)
    def test_bitwise(self, a, b):
        assert _binary_result(Opcode.AND, a, b) == a & b
        assert _binary_result(Opcode.OR, a, b) == a | b
        assert _binary_result(Opcode.XOR, a, b) == a ^ b

    @given(U64, U64)
    @settings(max_examples=60, deadline=None)
    def test_div_floor_or_zero(self, a, b):
        expected = a // b if b else 0
        assert _binary_result(Opcode.DIV, a, b) == expected

    @given(U64, st.integers(min_value=0, max_value=255))
    @settings(max_examples=60, deadline=None)
    def test_shifts_mask_amount(self, a, s):
        assert _binary_result(Opcode.SHL, a, s) == (a << (s & 63)) & MASK
        assert _binary_result(Opcode.SHR, a, s) == a >> (s & 63)


class TestBranchSemantics:
    def _branch_taken(self, op, a, b=None):
        insts = [StaticInst(0, Opcode.MOVI, dest=1, imm=a)]
        if b is not None:
            insts.append(StaticInst(4, Opcode.MOVI, dest=2, imm=b))
            insts.append(StaticInst(8, op, src1=1, src2=2, target=0))
            n = 3
        else:
            insts.append(StaticInst(4, op, src1=1, target=0))
            n = 2
        ex = FunctionalExecutor(Program("t", insts))
        return ex.run(n)[-1].taken

    @given(U64, U64)
    @settings(max_examples=60, deadline=None)
    def test_eq_ne_complementary(self, a, b):
        assert self._branch_taken(Opcode.BEQ, a, b) == (a == b)
        assert self._branch_taken(Opcode.BNE, a, b) == (a != b)

    @given(U64, U64)
    @settings(max_examples=60, deadline=None)
    def test_lt_ge_signed_complementary(self, a, b):
        lt = self._branch_taken(Opcode.BLT, a, b)
        ge = self._branch_taken(Opcode.BGE, a, b)
        assert lt == (to_signed(a) < to_signed(b))
        assert lt != ge

    @given(U64)
    @settings(max_examples=60, deadline=None)
    def test_zero_tests(self, a):
        assert self._branch_taken(Opcode.BEQZ, a) == (a == 0)
        assert self._branch_taken(Opcode.BNEZ, a) == (a != 0)


class TestImmediateForms:
    @given(U64, st.integers(min_value=-(1 << 32), max_value=1 << 32))
    @settings(max_examples=60, deadline=None)
    def test_addi_subi(self, a, imm):
        prog = Program("t", [
            StaticInst(0, Opcode.MOVI, dest=1, imm=a),
            StaticInst(4, Opcode.ADDI, dest=2, src1=1, imm=imm),
            StaticInst(8, Opcode.SUBI, dest=3, src1=1, imm=imm),
        ])
        ex = FunctionalExecutor(prog)
        ex.run(3)
        assert ex.regs[2] == (a + imm) & MASK
        assert ex.regs[3] == (a - imm) & MASK

    @given(U64, U64)
    @settings(max_examples=60, deadline=None)
    def test_andi_xori(self, a, imm):
        prog = Program("t", [
            StaticInst(0, Opcode.MOVI, dest=1, imm=a),
            StaticInst(4, Opcode.ANDI, dest=2, src1=1, imm=imm),
            StaticInst(8, Opcode.XORI, dest=3, src1=1, imm=imm),
        ])
        ex = FunctionalExecutor(prog)
        ex.run(3)
        assert ex.regs[2] == a & imm
        assert ex.regs[3] == a ^ imm
