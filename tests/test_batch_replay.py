"""Batched multi-config replay: one trace walk, bit-identical members.

The tentpole guarantee of :mod:`repro.batch` (DESIGN.md §12): feeding N
same-warm-class configs from one :class:`SharedReplayWindow` produces
*exactly* the results N sequential replays produce -- same ``SimStats``,
same side-structure counters, pinned against the seed goldens -- while
decoding the trace and training warm state once for the whole batch.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.batch.replay as batch_replay
from repro.batch import BatchCursor, SharedReplayWindow, run_batch
from repro.core.config import ProcessorConfig
from repro.core.simulator import simulate
from repro.exec import BatchJob, SimJob, batch_signature
from repro.exec.cache import ResultCache
from repro.exec.executor import SweepExecutor
from repro.pubs import PubsConfig
from repro.trace import TraceExhaustedError
from repro.trace.store import TraceStore
from repro.workloads.generator import build_program
from repro.workloads.profiles import get_profile
from tests.test_pipeline_golden import GOLDEN_STATS
from tests.test_pipeline_golden import INSTRUCTIONS as GOLDEN_INSTRUCTIONS
from tests.test_pipeline_golden import SKIP as GOLDEN_SKIP

BASE = ProcessorConfig.cortex_a72_like().with_frontend("replay")
INSTRUCTIONS = 1500
SKIP = 1500


def _pubs(entries, stall=True):
    return BASE.with_pubs(PubsConfig(priority_entries=entries,
                                     stall_policy=stall))


#: Two warm-equivalence families: members differ only in timing knobs,
#: so each family legally shares one batch (base vs PUBS do *not* -- the
#: slice tracker trains differently during warm spans).
FAMILIES = {
    "base": [BASE, BASE.with_age_matrix(),
             BASE.with_overrides(distributed_iq=True)],
    "pubs": [_pubs(4), _pubs(6), _pubs(8, stall=False)],
}

MATRIX = [(workload, family)
          for workload in ("sjeng", "gcc", "mcf")
          for family in sorted(FAMILIES)]


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    return TraceStore(root=tmp_path_factory.mktemp("batch-traces"),
                      persistent=True)


def _jobs(workload, configs, instructions=INSTRUCTIONS, skip=SKIP):
    profile = get_profile(workload)
    return [SimJob(profile, config, instructions, skip)
            for config in configs]


def _sequential(job, store):
    return simulate(build_program(job.profile), job.config,
                    max_instructions=job.instructions,
                    skip_instructions=job.skip,
                    mem_seed=job.profile.mem_seed, trace_source=store)


def _assert_identical(batched, jobs, store):
    assert len(batched) == len(jobs)
    for job, result in zip(jobs, batched):
        expected = _sequential(job, store)
        assert dataclasses.asdict(result) == dataclasses.asdict(expected)


# ----------------------------------------------------------------------
# Bit-identity with sequential replay
# ----------------------------------------------------------------------

@pytest.mark.parametrize("workload,family", MATRIX,
                         ids=[f"{w}-{f}" for w, f in MATRIX])
def test_batch_matches_sequential(workload, family, store):
    """Batch-of-N == N sequential replays, full-result equality."""
    jobs = _jobs(workload, FAMILIES[family])
    _assert_identical(run_batch(jobs, trace_source=store), jobs, store)


def test_batch_matches_sequential_region_partial_warmup(store):
    """Region members with warmup < seat: warm spans trained once."""
    configs = [c.with_region(4000, 1000, 200) for c in FAMILIES["pubs"]]
    jobs = _jobs("sjeng", configs, instructions=400, skip=0)
    _assert_identical(run_batch(jobs, trace_source=store), jobs, store)


def test_batch_matches_sequential_region_full_prefix(store):
    """Full-prefix warmup regions go through the warm-checkpoint path."""
    configs = [c.with_region(4000, 3800, 200) for c in FAMILIES["base"]]
    jobs = _jobs("gcc", configs, instructions=400, skip=0)
    _assert_identical(run_batch(jobs, trace_source=store), jobs, store)


def test_batch_reproduces_seed_goldens(store):
    """Batched members reproduce the pre-optimization golden counters."""
    base = ProcessorConfig.cortex_a72_like().with_frontend("replay")
    pubs_jobs = _jobs("sjeng",
                      [base.with_pubs(),
                       base.with_pubs(PubsConfig(priority_entries=4)),
                       base.with_pubs(PubsConfig(priority_entries=8))],
                      instructions=GOLDEN_INSTRUCTIONS, skip=GOLDEN_SKIP)
    results = run_batch(pubs_jobs, trace_source=store)
    assert dataclasses.asdict(results[0].stats) == GOLDEN_STATS["sjeng_pubs"]
    single = run_batch(_jobs("sjeng", [base],
                             instructions=GOLDEN_INSTRUCTIONS,
                             skip=GOLDEN_SKIP), trace_source=store)
    assert dataclasses.asdict(single[0].stats) == GOLDEN_STATS["sjeng_base"]


def test_verified_member_in_batch(store):
    """A verify_level=full member oracle-checks every commit in-batch."""
    configs = [_pubs(6), _pubs(6).with_verification("full", interval=128),
               _pubs(8)]
    jobs = _jobs("sjeng", configs)
    results = run_batch(jobs, trace_source=store)
    assert results[1].verified_commits == INSTRUCTIONS
    assert results[1].invariant_sweeps > 0
    # Verification observes, never steers: same timing as the unverified
    # twin, and every member still equals its sequential run.
    assert dataclasses.asdict(results[0].stats) \
        == dataclasses.asdict(results[1].stats)
    _assert_identical(results, jobs, store)


@settings(max_examples=6, deadline=None)
@given(perm=st.permutations(range(len(FAMILIES["pubs"]))))
def test_member_order_never_affects_results(store, perm):
    """Property: any batch ordering yields each member's own result."""
    canonical = run_batch(_jobs("sjeng", FAMILIES["pubs"]),
                          trace_source=store)
    permuted = run_batch(
        _jobs("sjeng", [FAMILIES["pubs"][i] for i in perm]),
        trace_source=store)
    for slot, i in enumerate(perm):
        assert dataclasses.asdict(permuted[slot]) \
            == dataclasses.asdict(canonical[i])


def test_python_fallback_matches_numpy(store, monkeypatch):
    """The no-numpy record materialization is semantically identical."""
    jobs = _jobs("mcf", FAMILIES["pubs"][:2])
    with_numpy = run_batch(jobs, trace_source=store)
    monkeypatch.setattr(batch_replay, "_np", None)
    without = run_batch(jobs, trace_source=store)
    for a, b in zip(with_numpy, without):
        assert dataclasses.asdict(a) == dataclasses.asdict(b)


# ----------------------------------------------------------------------
# Batch admission rules
# ----------------------------------------------------------------------

def test_live_jobs_have_no_signature():
    job = SimJob(get_profile("sjeng"), ProcessorConfig.cortex_a72_like(),
                 100, 0)
    assert batch_signature(job) is None


def test_mixed_signatures_rejected(store):
    mixed = _jobs("sjeng", [BASE]) + _jobs("mcf", [BASE])
    with pytest.raises(ValueError):
        run_batch(mixed, trace_source=store)
    with pytest.raises(ValueError):
        BatchJob(tuple(mixed))


def test_base_and_pubs_never_share_a_batch():
    """PUBS flips warm-time slice training: different equivalence class."""
    sjeng = get_profile("sjeng")
    base_sig = batch_signature(SimJob(sjeng, BASE, INSTRUCTIONS, SKIP))
    pubs_sig = batch_signature(SimJob(sjeng, _pubs(6), INSTRUCTIONS, SKIP))
    assert base_sig != pubs_sig
    # ...while timing-only knobs keep the signature stable.
    assert batch_signature(SimJob(sjeng, _pubs(4), INSTRUCTIONS, SKIP)) \
        == pubs_sig


def test_region_and_skip_are_mutually_exclusive(store):
    config = BASE.with_region(4000, 1000, 200)
    jobs = [SimJob(get_profile("sjeng"), config, 400, 500)]
    with pytest.raises(ValueError):
        run_batch(jobs, trace_source=store)


# ----------------------------------------------------------------------
# Shared window / cursor mechanics
# ----------------------------------------------------------------------

def _window(store, workload="sjeng", records=3000, base=0):
    profile = get_profile(workload)
    program = build_program(profile)
    trace = store.acquire(program, profile.mem_seed, records)
    return SharedReplayWindow(trace, program, base), trace


def test_window_materializes_lazily_and_once(store):
    window, _ = _window(store)
    assert window.high == window.base
    first = window.get(10)
    assert window.high >= 11
    assert window.get(10) is first  # same shared object, not a re-decode


def test_window_exhaustion_raises(store):
    window, trace = _window(store)
    with pytest.raises(TraceExhaustedError):
        window.get(len(trace))


def test_cursor_release_is_per_member(store):
    window, _ = _window(store)
    first, second = BatchCursor(window), BatchCursor(window)
    first.get(5)
    first.release(6)
    with pytest.raises(IndexError):
        first.get(5)
    # The other member's view is untouched by the release.
    assert second.get(5).seq == 5


def test_cursor_rejects_reattach(store):
    window, trace = _window(store)
    with pytest.raises(RuntimeError):
        BatchCursor(window).attach(trace)


# ----------------------------------------------------------------------
# Executor integration: grouping, caching, dedup
# ----------------------------------------------------------------------

def test_executor_batches_replay_jobs(tmp_path, monkeypatch):
    from repro.trace.store import reset_shared_stores
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    reset_shared_stores()
    jobs = _jobs("sjeng", FAMILIES["pubs"])
    batched = SweepExecutor(jobs=1, cache=False, batch=8)
    results = batched.run(jobs)
    assert batched.batches_run == 1
    assert batched.batched_jobs == len(jobs)
    sequential = SweepExecutor(jobs=1, cache=False, batch=0).run(jobs)
    for a, b in zip(results, sequential):
        assert dataclasses.asdict(a) == dataclasses.asdict(b)


def test_executor_drops_cached_members_from_batch(tmp_path, monkeypatch):
    """A warm member is served from cache; only the misses simulate."""
    from repro.trace.store import reset_shared_stores
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    reset_shared_stores()
    jobs = _jobs("sjeng", FAMILIES["pubs"])
    cache_dir = tmp_path / "results"
    prime = SweepExecutor(jobs=1, cache=ResultCache(cache_dir), batch=8)
    primed = prime.run([jobs[1]])
    assert prime.simulations_run == 1
    warm = SweepExecutor(jobs=1, cache=ResultCache(cache_dir), batch=8)
    results = warm.run(jobs)
    assert warm.cache.stats.hits == 1
    assert warm.simulations_run == len(jobs) - 1
    assert warm.batches_run == 1
    assert warm.batched_jobs == len(jobs) - 1
    assert dataclasses.asdict(results[1]) == dataclasses.asdict(primed[0])
    # The partial batch still matches uncached sequential replay.
    sequential = SweepExecutor(jobs=1, cache=False, batch=0).run(jobs)
    for a, b in zip(results, sequential):
        assert dataclasses.asdict(a) == dataclasses.asdict(b)


def test_executor_mixes_live_and_replay_units(tmp_path, monkeypatch):
    """Live jobs become singleton units next to the replay batch."""
    from repro.trace.store import reset_shared_stores
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    reset_shared_stores()
    live = SimJob(get_profile("mcf"), ProcessorConfig.cortex_a72_like(),
                  INSTRUCTIONS, SKIP)
    jobs = _jobs("sjeng", FAMILIES["pubs"][:2]) + [live]
    executor = SweepExecutor(jobs=1, cache=False, batch=8)
    results = executor.run(jobs)
    assert executor.batches_run == 1
    assert executor.batched_jobs == 2
    assert results[2].frontend_mode == "live"
    assert "batched=2" in executor.summary()
