"""Unit and property tests for the resetting confidence estimator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.branch import IdealConfidenceEstimator, ResettingConfidenceCounter


class TestResettingCounter:
    def test_initial_value_not_confident(self):
        counter = ResettingConfidenceCounter(bits=2)
        assert counter.maximum == 3
        assert not counter.confident

    def test_confident_only_at_saturation(self):
        counter = ResettingConfidenceCounter(bits=2)
        for expected in (1, 2):
            counter.train(True)
            assert counter.value == expected
            assert not counter.confident
        counter.train(True)
        assert counter.confident

    def test_saturates_at_maximum(self):
        counter = ResettingConfidenceCounter(bits=2, value=3)
        counter.train(True)
        assert counter.value == 3

    def test_misprediction_resets_to_zero(self):
        counter = ResettingConfidenceCounter(bits=4, value=15)
        counter.train(False)
        assert counter.value == 0
        assert not counter.confident

    def test_allocation_initializers(self):
        counter = ResettingConfidenceCounter(bits=3)
        counter.reset_to_correct()
        assert counter.confident
        counter.reset_to_incorrect()
        assert counter.value == 0

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            ResettingConfidenceCounter(bits=0)

    def test_out_of_range_value_rejected(self):
        with pytest.raises(ValueError):
            ResettingConfidenceCounter(bits=2, value=4)

    @given(st.integers(min_value=1, max_value=8),
           st.lists(st.booleans(), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_value_always_in_range_and_resets(self, bits, outcomes):
        """Invariant: 0 <= value <= max; a wrong outcome always zeroes it."""
        counter = ResettingConfidenceCounter(bits=bits)
        for correct in outcomes:
            counter.train(correct)
            assert 0 <= counter.value <= counter.maximum
            if not correct:
                assert counter.value == 0

    @given(st.integers(min_value=1, max_value=8))
    def test_needs_exactly_max_correct_to_saturate(self, bits):
        counter = ResettingConfidenceCounter(bits=bits)
        counter.train(False)
        for _ in range(counter.maximum - 1):
            counter.train(True)
            assert not counter.confident
        counter.train(True)
        assert counter.confident


class TestIdealEstimator:
    def test_unallocated_branch_is_confident(self):
        est = IdealConfidenceEstimator()
        assert est.is_confident(0x100)

    def test_allocation_after_correct_is_confident(self):
        est = IdealConfidenceEstimator(counter_bits=4)
        est.train(0x100, correct=True)  # allocate at maximum
        assert est.is_confident(0x100)

    def test_allocation_after_incorrect_is_unconfident(self):
        est = IdealConfidenceEstimator(counter_bits=4)
        est.train(0x100, correct=False)
        assert not est.is_confident(0x100)

    def test_recovery_requires_saturation(self):
        est = IdealConfidenceEstimator(counter_bits=2)
        est.train(0x100, correct=False)
        est.train(0x100, correct=True)
        assert not est.is_confident(0x100)
        est.train(0x100, correct=True)
        est.train(0x100, correct=True)
        assert est.is_confident(0x100)

    def test_branches_are_independent(self):
        est = IdealConfidenceEstimator()
        est.train(0x100, correct=False)
        assert est.is_confident(0x200)
        assert not est.is_confident(0x100)

    def test_unconfident_rate(self):
        est = IdealConfidenceEstimator()
        est.train(0x100, correct=False)
        est.is_confident(0x100)  # unconfident
        est.is_confident(0x200)  # confident (unallocated)
        assert est.unconfident_rate == pytest.approx(0.5)

    def test_wider_counters_are_more_pessimistic(self):
        """Fig. 11's driving effect: more bits => longer road back to
        confident => higher unconfident rate under the same outcome mix."""
        outcomes = ([False] + [True] * 10) * 20
        rates = []
        for bits in (2, 6):
            est = IdealConfidenceEstimator(counter_bits=bits)
            unconf = 0
            for correct in outcomes:
                if not est.is_confident(0x40):
                    unconf += 1
                est.train(0x40, correct)
            rates.append(unconf / len(outcomes))
        assert rates[1] > rates[0]
