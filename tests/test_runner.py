"""Tests for the high-level experiment runner."""

import pytest

from repro import ProcessorConfig
from repro.analysis import (
    EXPECTED_D_BP,
    PairedRun,
    dbp_workloads,
    run_pair,
    run_suite,
    run_workload,
)
from repro.workloads import WorkloadProfile

BASE = ProcessorConfig.cortex_a72_like()
PUBS = BASE.with_pubs()


class TestRunWorkload:
    def test_by_name(self):
        r = run_workload("hmmer", BASE, instructions=800, skip=400)
        assert r.program_name == "hmmer"
        assert r.stats.committed == 800

    def test_by_profile_object(self):
        profile = WorkloadProfile("custom", "test", filler_alu=8)
        r = run_workload(profile, BASE, instructions=600, skip=200)
        assert r.program_name == "custom"

    def test_default_config_is_base(self):
        r = run_workload("hmmer", instructions=500, skip=200)
        assert not r.config.pubs.enabled

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            run_workload("wrf", BASE, instructions=100)


class TestRunPair:
    def test_pair_properties(self):
        pair = run_pair("sjeng", BASE, PUBS, instructions=1200, skip=800)
        assert isinstance(pair, PairedRun)
        assert pair.name == "sjeng"
        assert pair.speedup == pytest.approx(
            pair.variant.stats.ipc / pair.base.stats.ipc)
        assert pair.speedup_percent == pytest.approx(
            (pair.speedup - 1) * 100)

    def test_same_stream_both_sides(self):
        pair = run_pair("gobmk", BASE, PUBS, instructions=1200, skip=800)
        assert (pair.base.stats.cond_branches
                == pair.variant.stats.cond_branches)


class TestRunSuite:
    def test_structure(self):
        results = run_suite(
            {"base": BASE, "pubs": PUBS},
            workloads=["hmmer", "sjeng"],
            instructions=600, skip=300,
        )
        assert set(results) == {"base", "pubs"}
        assert set(results["base"]) == {"hmmer", "sjeng"}
        assert results["pubs"]["sjeng"].stats.committed == 600

    def test_default_workloads_are_all_28(self):
        # Only check the wiring (not running all 28 here).
        assert len(dbp_workloads()) == len(EXPECTED_D_BP) == 11
        assert "sjeng" in dbp_workloads() and "mcf" in dbp_workloads()
