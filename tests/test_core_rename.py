"""Unit and property tests for register renaming."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import NEVER, Renamer, Uop
from repro.isa import NUM_LOGICAL_REGS, Opcode, StaticInst, fp_reg, int_reg


def _uop(inst, seq=0):
    return Uop(seq, inst, fetch_cycle=0, on_correct_path=True, trace_seq=seq)


def _addi(dest, src, pc=0):
    return StaticInst(pc, Opcode.ADDI, dest=dest, src1=src, imm=1)


class TestInitialState:
    def test_identity_initial_mapping(self):
        r = Renamer(128, 128)
        assert r.map[int_reg(5)] == 5
        assert r.map[fp_reg(5)] == 128 + 5

    def test_free_counts(self):
        r = Renamer(128, 128)
        assert r.free_int_count == 96
        assert r.free_fp_count == 96

    def test_initial_registers_ready(self):
        r = Renamer(128, 128)
        uop = _uop(_addi(int_reg(1), int_reg(2)))
        assert r.sources_ready(uop, cycle=0) or not uop.src_phys  # pre-rename
        r.rename(uop)
        assert r.sources_ready(uop, cycle=0)

    def test_minimum_sizes_enforced(self):
        with pytest.raises(ValueError):
            Renamer(31, 128)


class TestRename:
    def test_dest_gets_fresh_register(self):
        r = Renamer(128, 128)
        uop = _uop(_addi(int_reg(1), int_reg(2)))
        r.rename(uop)
        assert uop.dest_phys == 32  # first free int phys
        assert uop.prev_phys == 1
        assert r.map[int_reg(1)] == 32
        assert r.ready_cycle[32] == NEVER

    def test_sources_read_current_mapping(self):
        r = Renamer(128, 128)
        first = _uop(_addi(int_reg(1), int_reg(2)))
        r.rename(first)
        second = _uop(_addi(int_reg(3), int_reg(1)), seq=1)
        r.rename(second)
        assert second.src_phys == (first.dest_phys,)

    def test_fp_dest_uses_fp_free_list(self):
        r = Renamer(128, 128)
        uop = _uop(StaticInst(0, Opcode.FADD, dest=fp_reg(1), src1=fp_reg(2),
                              src2=fp_reg(3)))
        r.rename(uop)
        assert uop.dest_phys >= 128

    def test_no_dest_instruction(self):
        r = Renamer(128, 128)
        uop = _uop(StaticInst(0, Opcode.BEQZ, src1=int_reg(1), target=0))
        assert r.can_rename(uop)
        r.rename(uop)
        assert uop.dest_phys == -1
        assert uop.src_phys == (1,)

    def test_exhaustion_detected_by_can_rename(self):
        r = Renamer(33, 32)  # one spare int register
        uop1 = _uop(_addi(int_reg(1), int_reg(2)))
        assert r.can_rename(uop1)
        r.rename(uop1)
        uop2 = _uop(_addi(int_reg(3), int_reg(4)), seq=1)
        assert not r.can_rename(uop2)

    def test_fp_exhaustion_independent_of_int(self):
        r = Renamer(128, 33)
        fp_uop = _uop(StaticInst(0, Opcode.FMOVI, dest=fp_reg(0), imm=1))
        r.rename(fp_uop)
        assert not r.can_rename(_uop(StaticInst(4, Opcode.FMOVI, dest=fp_reg(1), imm=1)))
        assert r.can_rename(_uop(_addi(int_reg(1), int_reg(2))))


class TestCommitAndSquash:
    def test_commit_frees_previous_mapping(self):
        r = Renamer(33, 32)
        uop = _uop(_addi(int_reg(1), int_reg(2)))
        r.rename(uop)
        assert r.free_int_count == 0
        r.release_committed(uop)
        assert r.free_int_count == 1  # phys 1 (old r1) returned

    def test_squash_frees_new_mapping_and_restores_map(self):
        r = Renamer(128, 128)
        cp = r.checkpoint()
        uop = _uop(_addi(int_reg(1), int_reg(2)))
        r.rename(uop)
        assert r.map[1] != cp[1]
        r.release_squashed(uop)
        r.restore(cp)
        assert r.map[1] == cp[1]
        assert r.free_int_count == 96
        assert r.invariant_free_disjoint()

    def test_checkpoint_is_immutable_snapshot(self):
        r = Renamer(128, 128)
        cp = r.checkpoint()
        r.rename(_uop(_addi(int_reg(1), int_reg(2))))
        assert cp[1] == 1

    def test_ready_cycle_tracking(self):
        r = Renamer(128, 128)
        uop = _uop(_addi(int_reg(1), int_reg(2)))
        r.rename(uop)
        consumer = _uop(_addi(int_reg(3), int_reg(1)), seq=1)
        r.rename(consumer)
        assert not r.sources_ready(consumer, cycle=100)
        r.set_ready(uop.dest_phys, 50)
        assert not r.sources_ready(consumer, cycle=49)
        assert r.sources_ready(consumer, cycle=50)


@given(st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=80))
@settings(max_examples=40, deadline=None)
def test_property_rename_commit_conserves_registers(dests):
    """Renaming then committing any sequence conserves the physical
    register pool and keeps free/mapped sets disjoint."""
    r = Renamer(128, 128)
    uops = []
    for i, d in enumerate(dests):
        uop = _uop(_addi(int_reg(d), int_reg((d + 1) % 32), pc=i * 4), seq=i)
        if not r.can_rename(uop):
            break
        r.rename(uop)
        uops.append(uop)
    for uop in uops:
        r.release_committed(uop)
    assert r.free_int_count == 96
    assert r.invariant_free_disjoint()


@given(st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=60))
@settings(max_examples=40, deadline=None)
def test_property_squash_rollback_restores_pool(dests):
    """Checkpoint, rename a burst, squash it all: pool and map fully
    restored."""
    r = Renamer(128, 128)
    cp = r.checkpoint()
    free_before = r.free_int_count
    map_before = list(r.map)
    uops = []
    for i, d in enumerate(dests):
        uop = _uop(_addi(int_reg(d), int_reg((d + 7) % 32), pc=i * 4), seq=i)
        if not r.can_rename(uop):
            break
        r.rename(uop)
        uops.append(uop)
    for uop in reversed(uops):
        r.release_squashed(uop)
    r.restore(cp)
    assert r.free_int_count == free_before
    assert r.map == map_before
    assert r.invariant_free_disjoint()
