"""Corner-case and failure-injection tests for the pipeline."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Pipeline, ProcessorConfig, simulate
from repro.isa import Opcode, ProgramBuilder, int_reg
from repro.memory import CacheConfig, MemoryConfig
from repro.pubs import PubsConfig

from tests.microprograms import (
    counted_branch_program,
    dependent_chain_program,
    independent_alu_program,
    random_branch_program,
    store_load_forward_program,
)

BASE = ProcessorConfig.cortex_a72_like()


class TestTinyStructures:
    def test_tiny_rob_iq_lsq_still_correct(self):
        cfg = BASE.with_overrides(rob_size=8, iq_size=8, lsq_size=4)
        stats = Pipeline(store_load_forward_program(), cfg).run(1500)
        assert stats.committed == 1500

    def test_single_wide_machine(self):
        cfg = BASE.with_overrides(fetch_width=1, decode_width=1,
                                  issue_width=1, commit_width=1)
        stats = Pipeline(random_branch_program(), cfg).run(1200)
        assert stats.committed == 1200
        assert stats.ipc <= 1.0

    def test_minimal_physical_registers_stall_but_complete(self):
        cfg = BASE.with_overrides(int_phys_regs=36, fp_phys_regs=32)
        stats = Pipeline(independent_alu_program(), cfg).run(1200)
        assert stats.committed == 1200
        assert stats.dispatch_stall_cycles > 0

    def test_tiny_priority_partition_with_stall_policy(self):
        cfg = BASE.with_pubs(PubsConfig(priority_entries=1))
        stats = Pipeline(random_branch_program(), cfg).run(1500,
                                                           skip_instructions=500)
        assert stats.committed == 1500
        assert stats.priority_stall_cycles > 0


class TestInstructionCacheEffects:
    def test_tiny_icache_causes_fetch_misses(self):
        mem = MemoryConfig(
            l1i=CacheConfig("L1I", 512, 2, 64, hit_latency=1),
        )
        cfg = BASE.with_overrides(memory=mem)
        # The random-branch program body spans several 64-byte lines; with
        # a 512-byte L1I and the data footprint contending in L2 it still
        # mostly fits, so use a longer program to force capacity misses.
        big = independent_alu_program(n=400)  # > 1600 bytes of code
        pipe = Pipeline(big, cfg)
        stats = pipe.run(2000)
        assert stats.committed == 2000
        assert pipe.hierarchy.stats.l1i_misses > 0

    def test_icache_hits_after_warm(self):
        pipe = Pipeline(counted_branch_program())
        pipe.run(2000, skip_instructions=2000)
        assert pipe.hierarchy.stats.l1i_misses <= 2


class TestBtbEffects:
    def test_cold_btb_mispredicts_taken_branches(self):
        """Without warm-up, the first taken execution of a branch cannot
        redirect fetch (BTB miss) and resolves as a misprediction."""
        stats = Pipeline(counted_branch_program()).run(1000)
        assert stats.btb_misses_taken > 0

    def test_warmed_btb_avoids_cold_misses(self):
        cold = Pipeline(counted_branch_program()).run(1500)
        warm = Pipeline(counted_branch_program()).run(1500,
                                                      skip_instructions=4000)
        assert warm.btb_misses_taken <= cold.btb_misses_taken


class TestRunSemantics:
    def test_run_can_continue(self):
        pipe = Pipeline(independent_alu_program())
        pipe.run(800)
        stats = pipe.run(700)
        assert stats.committed == 1500

    def test_mem_seed_changes_data_dependent_behaviour(self):
        # The workload programs branch on *loaded* data, so the memory
        # seed changes the dynamic branch stream (the micro-programs here
        # use LCG state and are seed-independent by design).
        from repro.workloads import build_program, get_profile
        program = build_program(get_profile("sjeng"))
        a = simulate(program, BASE, 1500, mem_seed=1)
        b = simulate(build_program(get_profile("sjeng")), BASE, 1500,
                     mem_seed=2)
        assert (a.stats.cycles != b.stats.cycles
                or a.stats.mispredictions != b.stats.mispredictions)

    def test_wrong_path_fetch_bounded(self):
        stats = Pipeline(random_branch_program()).run(2500)
        assert 0 < stats.wrong_path_fetched < stats.fetched
        assert stats.fetched - stats.wrong_path_fetched >= stats.committed

    def test_stats_counts_consistent(self):
        stats = Pipeline(random_branch_program()).run(2500,
                                                      skip_instructions=500)
        assert stats.mispredictions <= stats.cond_branches
        assert stats.committed == 2500
        assert stats.cycles > stats.committed / BASE.issue_width


class TestPubsInteractions:
    def test_priority_entries_zero_pubs_enabled(self):
        """PUBS with a zero-size partition degenerates to the base queue
        (every unconfident dispatch stalls... unless non-stall)."""
        cfg = BASE.with_pubs(PubsConfig(priority_entries=0,
                                        stall_policy=False))
        stats = Pipeline(random_branch_program(), cfg).run(1200)
        assert stats.committed == 1200

    def test_mode_switch_toggles_do_not_corrupt_state(self):
        """A program whose LLC MPKI hovers near the threshold flips modes
        repeatedly; the IQ free lists must stay consistent throughout."""
        cfg = BASE.with_pubs(PubsConfig(mode_switch_interval=128,
                                        mode_switch_threshold_mpki=5.0))
        pipe = Pipeline(random_branch_program(), cfg)
        stats = pipe.run(2500)
        assert stats.committed == 2500
        iq = pipe.iq
        assert iq.occupancy + iq.free_priority_count + iq.free_normal_count \
            == iq.size

    def test_blind_and_nonstall_compose(self):
        cfg = BASE.with_pubs(PubsConfig(blind=True, stall_policy=False))
        stats = Pipeline(random_branch_program(), cfg).run(1500)
        assert stats.committed == 1500


class TestArchitecturalFidelity:
    def test_dependent_chain_unaffected_by_pubs(self):
        """A pure serial chain has no branch slices to prioritize; PUBS
        must leave its timing essentially untouched."""
        base_stats = Pipeline(dependent_chain_program(), BASE).run(2000)
        pubs_stats = Pipeline(dependent_chain_program(),
                              BASE.with_pubs()).run(2000)
        assert abs(pubs_stats.ipc - base_stats.ipc) / base_stats.ipc < 0.05

    def test_commit_exactly_target(self):
        for n in (1, 7, 100, 999):
            stats = Pipeline(independent_alu_program()).run(n)
            assert stats.committed == n


@given(st.integers(min_value=1, max_value=4),
       st.integers(min_value=8, max_value=32),
       st.booleans(), st.booleans())
@settings(max_examples=10, deadline=None)
def test_property_any_machine_completes(width, iq_size, pubs, age):
    """Random small machine configurations always run to completion with
    exact commit counts (no deadlocks, no lost instructions)."""
    if pubs and age:
        age = False
    cfg = ProcessorConfig.cortex_a72_like(
        fetch_width=width, decode_width=width, issue_width=width,
        commit_width=width, iq_size=iq_size, rob_size=max(16, iq_size * 2),
        lsq_size=max(8, iq_size // 2),
    )
    if pubs:
        cfg = cfg.with_pubs(PubsConfig(
            priority_entries=min(4, iq_size - 4)))
    if age:
        cfg = cfg.with_age_matrix()
    stats = Pipeline(random_branch_program(), cfg).run(600)
    assert stats.committed == 600
