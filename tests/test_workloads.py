"""Unit tests for workload profiles and the program generator."""

import pytest

from repro.isa import FunctionalExecutor, Opcode
from repro.workloads import (
    WorkloadProfile,
    build_all,
    build_program,
    get_profile,
    spec2006_profiles,
)


class TestProfiles:
    def test_28_programs_spec2006_minus_wrf(self):
        profiles = spec2006_profiles()
        assert len(profiles) == 28
        assert "wrf" not in profiles

    def test_known_names_present(self):
        profiles = spec2006_profiles()
        for name in ("sjeng", "mcf", "astar", "libquantum", "soplex",
                     "perlbench", "lbm", "GemsFDTD"):
            assert name in profiles

    def test_get_profile(self):
        assert get_profile("sjeng").name == "sjeng"
        with pytest.raises(KeyError):
            get_profile("wrf")

    def test_mcf_branch_slices_depend_on_huge_footprint(self):
        mcf = get_profile("mcf")
        assert mcf.branch_data_bytes >= 16 * 1024 * 1024

    def test_sjeng_branch_slices_cache_resident(self):
        sjeng = get_profile("sjeng")
        assert sjeng.branch_data_bytes <= 64 * 1024
        assert sjeng.hard_branch_bias_bits == 1  # maximally hard

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile("x", "d", branch_data_bytes=100)
        with pytest.raises(ValueError):
            WorkloadProfile("x", "d", hard_branch_bias_bits=0)
        with pytest.raises(ValueError):
            WorkloadProfile("x", "d", slice_depth=-1)
        with pytest.raises(ValueError):
            WorkloadProfile("x", "d", cold_period=3)


class TestGenerator:
    def test_every_profile_builds(self):
        programs = build_all()
        assert len(programs) == 28
        for program in programs.values():
            assert len(program) > 10

    def test_programs_execute_functionally(self):
        for name in ("sjeng", "mcf", "libquantum"):
            program = build_program(get_profile(name))
            ex = FunctionalExecutor(program, mem_seed=1)
            records = ex.run(2000)
            assert len(records) == 2000

    def test_loop_structure(self):
        program = build_program(get_profile("sjeng"))
        ex = FunctionalExecutor(program)
        pcs = [r.inst.pc for r in ex.run(5000)]
        # After the init prologue the loop body repeats.
        assert pcs.count(program.insts[-1].pc) > 10  # back-jump executed

    def test_hard_branch_outcomes_are_mixed(self):
        """The 50/50 hard branch must actually produce both outcomes."""
        program = build_program(get_profile("sjeng"))
        ex = FunctionalExecutor(program, mem_seed=get_profile("sjeng").mem_seed)
        taken = not_taken = 0
        for record in ex.run(20_000):
            if record.inst.opcode is Opcode.BEQZ:
                if record.taken:
                    taken += 1
                else:
                    not_taken += 1
        assert taken > 20 and not_taken > 20
        ratio = taken / (taken + not_taken)
        assert 0.3 < ratio < 0.7  # 1-bit bias => ~50/50

    def test_bias_bits_control_taken_probability(self):
        profile = WorkloadProfile(
            "biased", "test", hard_branch_sites=1, hard_branch_bias_bits=3,
            predictable_branch_sites=0, filler_alu=2, random_loads=0,
            streaming_loads=0, store_sites=0,
        )
        ex = FunctionalExecutor(build_program(profile), mem_seed=3)
        taken = total = 0
        for record in ex.run(20_000):
            if record.inst.opcode is Opcode.BEQZ:
                taken += record.taken
                total += 1
        # BEQZ taken iff low 3 bits are zero: probability 1/8.
        assert 0.06 < taken / total < 0.20

    def test_memory_addresses_stay_in_regions(self):
        profile = get_profile("mcf")
        program = build_program(profile)
        ex = FunctionalExecutor(program, mem_seed=profile.mem_seed)
        base = 1 << 30
        for record in ex.run(5000):
            if record.mem_addr is not None:
                assert record.mem_addr >= base

    def test_warm_regions_declared(self):
        program = build_program(get_profile("sjeng"))
        assert program.warm_regions
        starts = [start for start, _ in program.warm_regions]
        assert len(starts) == len(set(starts))  # disjoint regions

    def test_streaming_loads_produce_sequential_lines(self):
        profile = get_profile("libquantum")
        program = build_program(profile)
        ex = FunctionalExecutor(program, mem_seed=profile.mem_seed)
        stream_addrs = [r.mem_addr for r in ex.run(5000)
                        if r.mem_addr is not None]
        # Consecutive accesses to each stream advance by 64 bytes/iteration:
        # there must be many exact +64 deltas among same-region accesses.
        deltas = [b - a for a, b in zip(stream_addrs, stream_addrs[1:])]
        assert deltas.count(64) == 0  # different sites interleave...
        per_site = {}
        for addr in stream_addrs:
            per_site.setdefault(addr >> 24, []).append(addr)

    def test_pointer_chase_is_serialized(self):
        profile = get_profile("mcf")
        program = build_program(profile)
        # The chase register (r5) is both the source of the address and the
        # destination of the load: find that static instruction.
        chase_loads = [
            inst for inst in program
            if inst.opcode is Opcode.LOAD and inst.dest == 5
        ]
        assert chase_loads

    def test_deterministic_generation(self):
        p1 = build_program(get_profile("gcc"))
        p2 = build_program(get_profile("gcc"))
        assert p1.listing() == p2.listing()
