"""Hand-built micro-programs with known timing behaviour.

Shared by the pipeline tests; each builder returns an infinite-loop
:class:`~repro.isa.instruction.Program` exercising one pipeline behaviour.
"""

from repro.isa import Opcode, ProgramBuilder, int_reg


def _loop_program(name, body_emitter, init_emitter=None):
    """An infinite loop: init once, then body + jump back."""
    b = ProgramBuilder(name)
    if init_emitter:
        init_emitter(b)
    b.mark_label("loop")
    body_emitter(b)
    b.emit(Opcode.JUMP, target_label="loop")
    return b.build()


def independent_alu_program(n=8):
    """n independent single-cycle ops per iteration: IPC should approach
    the iALU limit (2/cycle plus the jump)."""
    def body(b):
        for i in range(n):
            b.emit(Opcode.ADDI, dest=int_reg(8 + i % 16), src1=int_reg(1), imm=i)
    return _loop_program("ilp", body)


def dependent_chain_program(n=8):
    """A serial chain: IPC can never exceed ~1."""
    def init(b):
        b.emit(Opcode.MOVI, dest=int_reg(1), imm=1)
    def body(b):
        for _ in range(n):
            b.emit(Opcode.ADDI, dest=int_reg(1), src1=int_reg(1), imm=1)
    return _loop_program("chain", body, init)


def mul_chain_program(n=6):
    """Serial multiplies (3-cycle latency): IPC ~= 1/3."""
    def init(b):
        b.emit(Opcode.MOVI, dest=int_reg(1), imm=3)
        b.emit(Opcode.MOVI, dest=int_reg(2), imm=5)
    def body(b):
        for _ in range(n):
            b.emit(Opcode.MUL, dest=int_reg(1), src1=int_reg(1), src2=int_reg(2))
    return _loop_program("mulchain", body, init)


def random_branch_program():
    """A 50/50 data-dependent branch per iteration (unpredictable)."""
    def init(b):
        b.emit(Opcode.MOVI, dest=int_reg(1), imm=0x1234)
        b.emit(Opcode.MOVI, dest=int_reg(2), imm=6364136223846793005)
        b.emit(Opcode.MOVI, dest=int_reg(3), imm=1 << 28)
    def body(b):
        b.emit(Opcode.MUL, dest=int_reg(1), src1=int_reg(1), src2=int_reg(2))
        b.emit(Opcode.ADDI, dest=int_reg(1), src1=int_reg(1), imm=1442695040888963407)
        b.emit(Opcode.ANDI, dest=int_reg(4), src1=int_reg(1), imm=1 << 13)
        b.emit(Opcode.BEQZ, src1=int_reg(4), target_label="skip")
        b.emit(Opcode.ADDI, dest=int_reg(5), src1=int_reg(1), imm=1)
        b.emit(Opcode.ADDI, dest=int_reg(6), src1=int_reg(1), imm=2)
        b.mark_label("skip")
        for i in range(6):
            b.emit(Opcode.ADDI, dest=int_reg(8 + i), src1=int_reg(3), imm=i)
    return _loop_program("randbr", body, init)


def counted_branch_program(period=4):
    """A perfectly periodic branch the perceptron learns."""
    def init(b):
        b.emit(Opcode.MOVI, dest=int_reg(1), imm=0)
    def body(b):
        b.emit(Opcode.ADDI, dest=int_reg(1), src1=int_reg(1), imm=1)
        b.emit(Opcode.ANDI, dest=int_reg(2), src1=int_reg(1), imm=period - 1)
        b.emit(Opcode.BNEZ, src1=int_reg(2), target_label="skip")
        b.emit(Opcode.ADDI, dest=int_reg(3), src1=int_reg(1), imm=7)
        b.mark_label("skip")
        for i in range(4):
            b.emit(Opcode.ADDI, dest=int_reg(8 + i), src1=int_reg(1), imm=i)
    return _loop_program("counted", body, init)


def store_load_forward_program():
    """Every iteration stores then immediately loads the same word."""
    def init(b):
        b.emit(Opcode.MOVI, dest=int_reg(1), imm=1 << 20)
        b.emit(Opcode.MOVI, dest=int_reg(2), imm=42)
    def body(b):
        b.emit(Opcode.STORE, src1=int_reg(2), src2=int_reg(1), imm=0)
        b.emit(Opcode.LOAD, dest=int_reg(3), src1=int_reg(1), imm=0)
        b.emit(Opcode.ADDI, dest=int_reg(2), src1=int_reg(3), imm=1)
    return _loop_program("fwd", body, init)


def pointer_chase_program():
    """Serialized dependent loads over a huge region: memory-bound."""
    def init(b):
        b.emit(Opcode.MOVI, dest=int_reg(1), imm=1 << 30)
        b.emit(Opcode.MOVI, dest=int_reg(2), imm=0)
    def body(b):
        b.emit(Opcode.ANDI, dest=int_reg(3), src1=int_reg(2),
               imm=(64 * 1024 * 1024 - 1) & ~7)
        b.emit(Opcode.ADD, dest=int_reg(3), src1=int_reg(3), src2=int_reg(1))
        b.emit(Opcode.LOAD, dest=int_reg(2), src1=int_reg(3), imm=0)
    return _loop_program("chase", body, init)


