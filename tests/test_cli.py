"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "sjeng"])
        assert args.workload == "sjeng"
        # Budget flags default to unset so a --request-file can supply
        # them; the classic CLI budget is applied by the request layer.
        assert args.instructions is None
        from repro.cli import _request_from_args
        request = _request_from_args(args)
        assert request.instructions == 10_000 and request.skip == 10_000
        assert not args.pubs

    def test_machine_flags(self):
        args = build_parser().parse_args(
            ["run", "sjeng", "--pubs", "--priority-entries", "8",
             "--non-stall", "--age-matrix"])
        assert args.pubs and args.priority_entries == 8
        assert args.non_stall and args.age_matrix

    def test_invalid_org_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "sjeng", "--iq-org", "bogus"])

    def test_backend_flags_parse(self):
        args = build_parser().parse_args(
            ["suite", "--backend", "inline", "--workloads", "sjeng"])
        assert args.backend == "inline" and args.queue_dir is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(["suite", "--backend", "warp"])

    def test_fabric_subcommands_parse(self):
        parser = build_parser()
        worker = parser.parse_args(["worker", "--queue-dir", "/tmp/q",
                                    "--drain", "--max-jobs", "3"])
        assert worker.drain and worker.max_jobs == 3
        serve = parser.parse_args(["serve"])
        assert serve.host == "127.0.0.1" and serve.port == 0
        submit = parser.parse_args(["submit", "--workloads", "mcf",
                                    "--host", "127.0.0.1"])
        assert submit.host == "127.0.0.1" and submit.workloads == ["mcf"]
        status = parser.parse_args(["status", "--queue-dir", "/tmp/q"])
        assert status.queue_dir == "/tmp/q" and status.host is None


class TestRequestFile:
    def _request_for(self, argv):
        from repro.cli import _request_from_args
        return _request_from_args(build_parser().parse_args(argv))

    def test_request_file_supplies_unset_fields(self, tmp_path):
        from repro.core.config import RunRequest
        path = tmp_path / "req.json"
        path.write_text(RunRequest(instructions=777, skip=11,
                                   backend="inline").to_json())
        request = self._request_for(["run", "sjeng",
                                     "--request-file", str(path)])
        assert request.instructions == 777 and request.skip == 11
        assert request.backend == "inline"

    def test_explicit_flags_beat_the_request_file(self, tmp_path):
        from repro.core.config import RunRequest
        path = tmp_path / "req.json"
        path.write_text(RunRequest(instructions=777, jobs=4).to_json())
        request = self._request_for(["run", "sjeng", "-n", "1500",
                                     "--request-file", str(path)])
        assert request.instructions == 1500  # flag wins
        assert request.jobs == 4             # file fills the rest

    def test_malformed_request_file_exits_two(self, tmp_path, capsys):
        path = tmp_path / "req.json"
        path.write_text("{not json")
        assert main(["run", "sjeng", "--request-file", str(path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "sjeng" in out and "mcf" in out
        assert out.count("\n") >= 28

    def test_cost(self, capsys):
        assert main(["cost"]) == 0
        out = capsys.readouterr().out
        assert "brslice_tab" in out and "total" in out

    def test_disasm(self, capsys):
        assert main(["disasm", "sjeng"]) == 0
        out = capsys.readouterr().out
        assert "beqz" in out and "jump" in out

    def test_run(self, capsys):
        assert main(["run", "hmmer", "-n", "1500", "--skip", "1000"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out and "branch MPKI" in out

    def test_run_with_pubs(self, capsys):
        assert main(["run", "sjeng", "--pubs", "-n", "1500",
                     "--skip", "1000"]) == 0
        assert "IPC" in capsys.readouterr().out

    def test_run_distributed(self, capsys):
        assert main(["run", "gcc", "--distributed", "--pubs", "-n", "1200",
                     "--skip", "800"]) == 0

    def test_run_shifting_org(self, capsys):
        assert main(["run", "gcc", "--iq-org", "shifting", "-n", "1200",
                     "--skip", "800"]) == 0

    def test_compare_defaults_to_pubs(self, capsys):
        assert main(["compare", "sjeng", "-n", "1500", "--skip", "1000"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_suite_subset(self, capsys):
        assert main(["suite", "--workloads", "hmmer", "sjeng",
                     "-n", "1200", "--skip", "800"]) == 0
        out = capsys.readouterr().out
        assert "GM" in out and "sjeng" in out

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            main(["run", "wrf", "-n", "100"])


class TestVerifyCommand:
    def test_verify_single_workload_full(self, capsys):
        assert main(["verify", "--workload", "sjeng", "-n", "1200",
                     "--skip", "800"]) == 0
        out = capsys.readouterr().out
        assert "ok   sjeng: 1200 commits oracle-checked" in out
        assert "invariant sweeps" in out
        assert "1/1 workload(s) verified at level=full" in out

    def test_verify_commit_only_level(self, capsys):
        assert main(["verify", "--workload", "mcf", "--level", "commit-only",
                     "-n", "800", "--skip", "500"]) == 0
        out = capsys.readouterr().out
        assert "ok   mcf: 800 commits oracle-checked" in out
        assert "sweeps" not in out
        assert "verified at level=commit-only" in out

    def test_verify_pubs_machine(self, capsys):
        assert main(["verify", "--workload", "sjeng", "--pubs",
                     "-n", "1000", "--skip", "600"]) == 0
        assert "1/1 workload(s) verified" in capsys.readouterr().out

    def test_verify_defaults(self):
        args = build_parser().parse_args(["verify"])
        assert args.workload is None  # all workloads
        assert args.level == "full" and args.interval == 256

    def test_verify_rejects_off_level(self):
        # "off" would make the command vacuous; the parser refuses it.
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "--level", "off"])

    def test_sample_defaults(self):
        args = build_parser().parse_args(["sample", "mcf"])
        assert args.workloads == ["mcf"]
        assert args.instructions == 60_000
        assert args.strategy == "simpoint"
        assert not args.check_full

    def test_sample_rejects_bogus_strategy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sample", "--strategy", "psychic"])

    @pytest.fixture
    def isolated_store(self, monkeypatch, tmp_path):
        from repro.trace import store as store_module

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        store_module.reset_shared_stores()
        yield
        store_module.reset_shared_stores()

    def test_sample_estimates(self, capsys, isolated_store):
        assert main(["sample", "mcf", "-n", "6000", "--skip", "1000",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "sampled CPI" in out and "coverage" in out

    def test_trace_record_with_interval(self, capsys, isolated_store):
        assert main(["trace", "record", "--workload", "mcf", "-n", "2000",
                     "--skip", "500", "--interval", "1024"]) == 0
        out = capsys.readouterr().out
        assert "interval ckpts" in out and "1024" in out

    @pytest.mark.parametrize("argv", [
        ["trace", "record", "--workload", "mcf", "--interval", "-3"],
        ["sample", "mcf", "--regions", "0"],
        ["sample", "mcf", "--regions", "-2"],
        ["sample", "mcf", "--measure", "0"],
        ["sample", "mcf", "--interval", "0"],
    ])
    def test_non_positive_knobs_rejected_up_front(self, capsys, argv,
                                                  isolated_store):
        # Regression: these used to fail deep inside capture/replay with
        # an opaque traceback; now they exit 2 with a one-line error
        # before any simulation work starts.
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert argv[-2].lstrip("-") in err  # names the offending flag

    def test_trace_interval_zero_still_allowed(self, capsys,
                                               isolated_store):
        # 0 means "no interval checkpoints", which is a valid request.
        assert main(["trace", "record", "--workload", "mcf", "-n", "1500",
                     "--skip", "500", "--interval", "0"]) == 0

    def test_suite_replay_matches_live(self, capsys, isolated_store):
        # Regression: --frontend used to leak into _machine_from_args,
        # defeating the "no machine flags -> compare against PUBS"
        # default, so a replay suite compared base against itself and
        # reported +0.00% everywhere.  Replay must print the exact same
        # table as live.
        argv = ["suite", "--workloads", "sjeng", "-n", "1500",
                "--skip", "500", "--no-cache"]
        assert main(argv) == 0
        live = capsys.readouterr().out
        assert main(argv + ["--frontend", "replay"]) == 0
        replay = capsys.readouterr().out
        assert "+0.00%" not in live
        assert replay == live


class TestStressCommand:
    def test_list_names_every_family(self, capsys):
        from repro.workloads.stress import FAMILIES

        assert main(["stress", "list"]) == 0
        out = capsys.readouterr().out
        for name in FAMILIES:
            assert name in out
        assert "resource" in out

    def test_run_one_family_passes(self, capsys):
        assert main(["stress", "run", "load_after_store",
                     "--no-sweep"]) == 0
        out = capsys.readouterr().out
        assert "load_after_store" in out and "[PASS]" in out
        assert "1/1 family satisfied" in out

    def test_contract_failure_exits_nonzero(self, capsys):
        # bias_bits=12 defeats the H2P kernel, so its contract must fail
        # and the command must say so through the exit code.
        assert main(["stress", "run", "branch_h2p", "--knob", "12",
                     "--no-sweep"]) == 1
        out = capsys.readouterr().out
        assert "BOTTLENECK CONTRACT FAILED" in out

    def test_unknown_family_rejected(self, capsys):
        assert main(["stress", "run", "warp_drive"]) == 2
        err = capsys.readouterr().err
        assert "warp_drive" in err

    def test_stress_defaults(self):
        args = build_parser().parse_args(["stress", "run"])
        assert args.families == []
        assert args.knob is None and not args.no_sweep


class TestCacheStats:
    """Regression: per-namespace rows must match what is on disk."""

    def _kb(self, n: int) -> str:
        return f"{n / 1024:.1f} KB"

    def test_stats_report_per_namespace_usage(self, capsys, tmp_path):
        from repro.exec.cache import ResultCache

        results = ResultCache(tmp_path)
        traces = ResultCache.for_namespace("traces", tmp_path)
        warm = ResultCache.for_namespace("warm", tmp_path)
        results.put("r1", {"cpi": 1.0})
        results.put("r2", {"cpi": 2.0})
        traces.put("t1", b"x" * 4096)
        warm.put("w1", {"state": list(range(64))})

        assert main(["cache", "stats", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        cells = {}
        for line in out.splitlines():
            if "|" in line:
                prop, _, value = line.partition("|")
                cells[prop.strip()] = value.strip()

        for name, ns in [("results", results), ("traces", traces),
                         ("warm", warm)]:
            assert cells[f"{name} entries"] == str(len(ns))
            assert cells[f"{name} size"] == self._kb(ns.size_bytes())
        assert cells["total entries"] == str(len(results) + len(traces)
                                             + len(warm))
        total_bytes = sum(ns.size_bytes()
                          for ns in (results, traces, warm))
        assert cells["total size"] == self._kb(total_bytes)

    def test_stats_on_empty_cache(self, capsys, tmp_path):
        assert main(["cache", "stats", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "results entries" in out and "total entries" in out
