"""Backend conformance, queue lease recovery, wire round-trips.

Every :class:`~repro.exec.backend.ExecutionBackend` must be
bit-identical to the inline baseline -- the fabric only changes *where*
units execute.  The queue tests drive the lease protocol directly
through :class:`~repro.exec.queue.JobQueue` (no subprocesses) so crash
recovery -- expired leases, retries, the ``max_attempts`` cap -- is
fast and deterministic.
"""

import time

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import ProcessorConfig
from repro.core.config import RunRequest
from repro.exec import (
    InlineBackend,
    JobQueue,
    ProcessPoolBackend,
    QueueBackend,
    ResultCache,
    SimJob,
    SweepExecutor,
    WireError,
    backend_names,
    create_backend,
    unit_job_id,
)
from repro.exec.queue import run_worker
from repro.exec.wire import dumps, loads

INSTRUCTIONS = 300
SKIP = 200

WORKLOADS = ["sjeng", "mcf"]


def _batch():
    base = ProcessorConfig.cortex_a72_like()
    return [SimJob.make(name, cfg, INSTRUCTIONS, SKIP)
            for name in WORKLOADS for cfg in (base, base.with_pubs())]


def _unit(n=1):
    from repro.exec.jobs import job_key
    jobs = _batch()[:n]
    return [(job_key(job), job) for job in jobs]


class TestBackendConformance:
    """parallel == serial == queued: the fabric's core contract."""

    def test_registry_knows_all_backends(self):
        assert {"inline", "process", "queue"} <= set(backend_names())
        with pytest.raises(ValueError, match="unknown execution backend"):
            create_backend("bogus")

    def test_inline_and_process_match(self):
        batch = _batch()
        inline = SweepExecutor(jobs=1, cache=False,
                               backend=InlineBackend()).run(batch)
        pooled = SweepExecutor(jobs=2, cache=False,
                               backend=ProcessPoolBackend(2)).run(batch)
        assert pooled == inline  # dataclass equality: exact stats match

    def test_queue_backend_matches_inline(self, tmp_path):
        batch = _batch()
        inline = SweepExecutor(jobs=1, cache=False,
                               backend=InlineBackend()).run(batch)
        backend = QueueBackend(root=tmp_path / "q", local_workers=2,
                               timeout=180)
        queued = SweepExecutor(jobs=1, cache=False, backend=backend)
        assert queued.run(batch) == inline
        assert queued.simulations_run == len(batch)

    def test_results_come_back_in_request_order(self):
        batch = _batch()
        executor = SweepExecutor(jobs=1, cache=False,
                                 backend=InlineBackend())
        results = executor.run(batch)
        assert results == executor.run(list(reversed(batch)))[::-1]

    def test_warm_cache_never_touches_the_backend(self, tmp_path):
        """A fully warm executor must not dispatch: the queue backend
        here has no workers and a tiny timeout, so any stray unit would
        raise instead of hang."""
        batch = _batch()
        cache_dir = tmp_path / "cache"
        SweepExecutor(jobs=1, cache=ResultCache(cache_dir),
                      backend=InlineBackend()).run(batch)
        warm = SweepExecutor(
            jobs=1, cache=ResultCache(cache_dir),
            backend=QueueBackend(root=tmp_path / "q", timeout=1))
        warm.run(batch)
        assert warm.simulations_run == 0
        assert warm.backend.queue.counts() == {}  # nothing dispatched

    def test_executor_summary_names_nondefault_backend(self, tmp_path):
        queued = SweepExecutor(jobs=1, cache=False,
                               backend=QueueBackend(root=tmp_path / "q"))
        assert f"backend=queue:{tmp_path / 'q'}" in queued.summary()
        pooled = SweepExecutor(jobs=1, cache=False)
        assert "backend=" not in pooled.summary()


class TestJobQueue:
    """The lease protocol, driven directly (no worker subprocesses)."""

    def test_submit_is_content_addressed(self, tmp_path):
        queue = JobQueue(tmp_path)
        unit = _unit()
        first = queue.submit(unit)
        second = queue.submit(unit)
        assert first == second == unit_job_id(unit)
        assert queue.counts() == {"pending": 1}

    def test_lease_execute_complete_roundtrip(self, tmp_path):
        queue = JobQueue(tmp_path)
        unit = _unit()
        job_id = queue.submit(unit)
        leased = queue.lease("w1")
        assert leased is not None
        assert leased.job_id == job_id
        assert leased.attempts == 1
        # The payload crossed SQLite as versioned JSON and came back
        # as the identical unit.
        assert list(leased.unit) == unit
        assert queue.lease("w2") is None  # held lease is exclusive
        assert queue.complete(job_id, "w1")
        assert queue.states([job_id]) == {job_id: "done"}
        assert [job_id] == [jid for jid, _ in queue.recent_done()]

    def test_expired_lease_is_reclaimed(self, tmp_path):
        """Crash recovery: a dead worker's lease times out and another
        worker takes the job over; the dead worker's late writes are
        rejected by the owner check."""
        queue = JobQueue(tmp_path, lease_ttl=0.05)
        job_id = queue.submit(_unit())
        assert queue.lease("dead").attempts == 1
        time.sleep(0.1)
        retaken = queue.lease("alive")
        assert retaken is not None and retaken.attempts == 2
        assert not queue.complete(job_id, "dead")   # lost the lease
        assert not queue.heartbeat(job_id, "dead")
        assert queue.complete(job_id, "alive")
        assert queue.states([job_id]) == {job_id: "done"}

    def test_heartbeat_keeps_the_lease(self, tmp_path):
        queue = JobQueue(tmp_path, lease_ttl=0.2)
        job_id = queue.submit(_unit())
        assert queue.lease("w1") is not None
        for _ in range(4):
            time.sleep(0.1)
            assert queue.heartbeat(job_id, "w1")
            assert queue.lease("thief") is None
        assert queue.complete(job_id, "w1")

    def test_failed_attempts_retry_then_park(self, tmp_path):
        queue = JobQueue(tmp_path, lease_ttl=60, max_attempts=2)
        job_id = queue.submit(_unit())
        assert queue.lease("w1").attempts == 1
        assert queue.fail(job_id, "w1", "boom 1")
        assert queue.states([job_id]) == {job_id: "pending"}  # retryable
        assert queue.lease("w1").attempts == 2
        assert queue.fail(job_id, "w1", "boom 2")
        assert queue.states([job_id]) == {job_id: "failed"}   # at the cap
        assert queue.error_of(job_id) == "boom 2"
        assert queue.lease("w1") is None

    def test_resubmit_revives_a_failed_job(self, tmp_path):
        queue = JobQueue(tmp_path, max_attempts=1)
        unit = _unit()
        job_id = queue.submit(unit)
        queue.lease("w1")
        queue.fail(job_id, "w1", "boom")
        assert queue.states([job_id]) == {job_id: "failed"}
        assert queue.submit(unit) == job_id  # operator says "try again"
        leased = queue.lease("w1")
        assert leased is not None and leased.attempts == 1

    def test_abandoned_job_parks_after_max_attempts(self, tmp_path):
        """A unit whose holder dies every time must not loop forever."""
        queue = JobQueue(tmp_path, lease_ttl=0.01, max_attempts=2)
        job_id = queue.submit(_unit())
        for _ in range(queue.max_attempts):
            assert queue.lease("crashy") is not None
            time.sleep(0.03)  # die without completing
        assert queue.lease("next") is None
        assert queue.states([job_id]) == {job_id: "failed"}
        assert "max_attempts" in queue.error_of(job_id)

    def test_run_worker_drains_and_writes_results_first(self, tmp_path):
        """In-process drain worker: every submitted unit completes and
        its results are in the queue directory's cache namespace."""
        queue = JobQueue(tmp_path)
        units = [[entry] for entry in _unit(2)]
        for unit in units:
            queue.submit(unit)
        assert run_worker(tmp_path, drain=True) == len(units)
        assert queue.counts() == {"done": len(units)}
        results = ResultCache(tmp_path)
        for unit in units:
            for key, _job in unit:
                assert results.get(key) is not None


_REQUESTS = st.builds(
    RunRequest,
    instructions=st.none() | st.integers(min_value=1, max_value=10**9),
    skip=st.none() | st.integers(min_value=0, max_value=10**9),
    jobs=st.none() | st.integers(min_value=1, max_value=512),
    cache=st.none() | st.booleans(),
    batch=st.none() | st.integers(min_value=0, max_value=64),
    backend=st.none() | st.sampled_from(["inline", "process", "queue"]),
    frontend=st.none() | st.sampled_from(["live", "replay"]),
    sampling=st.none() | st.sampled_from(["off", "fixed"]),
    ci_target=st.none(),
    regions=st.none() | st.integers(min_value=1, max_value=4096),
    measure=st.none() | st.integers(min_value=1, max_value=10**6),
    warmup=st.none() | st.integers(min_value=0, max_value=10**6),
    detail=st.none() | st.integers(min_value=0, max_value=10**6),
    max_fraction=st.none() | st.floats(min_value=0.01, max_value=1.0),
    checkpoint_interval=st.none() | st.integers(min_value=1,
                                                max_value=10**6),
    paired=st.none() | st.booleans(),
    table_budget=st.none() | st.booleans(),
)


class TestWireCodec:
    @given(request=_REQUESTS)
    def test_run_request_json_roundtrip(self, request):
        assert RunRequest.from_json(request.to_json()) == request

    def test_request_json_rejects_garbage(self):
        with pytest.raises(WireError):
            RunRequest.from_json("not json at all")
        with pytest.raises(WireError):
            RunRequest.from_json('{"wire": 999, "kind": "RunRequest"}')

    def test_sim_job_roundtrip(self):
        job = _batch()[0]
        assert loads(dumps("job", job), kind="job") == job

    def test_simulation_result_roundtrip(self):
        job = _batch()[0]
        from repro.exec.jobs import execute_job
        result = execute_job(job)
        assert loads(dumps("result", result), kind="result") == result

    def test_decode_refuses_untrusted_classes(self):
        text = dumps("job", _batch()[0]).replace(
            "repro.exec.jobs:SimJob", "subprocess:Popen")
        with pytest.raises(WireError, match="may only reference"):
            loads(text, kind="job")
