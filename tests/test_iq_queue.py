"""Unit and property tests for the partitioned random issue queue."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.iq import IssueQueue


class TestBasicDispatch:
    def test_base_queue_has_no_priority_entries(self):
        iq = IssueQueue(8)
        assert iq.free_priority_count == 0
        assert iq.free_normal_count == 8

    def test_partition_sizes(self):
        iq = IssueQueue(8, priority_entries=3)
        assert iq.free_priority_count == 3
        assert iq.free_normal_count == 5

    def test_priority_dispatch_uses_low_slots(self):
        iq = IssueQueue(8, priority_entries=3)
        slot = iq.dispatch("a", priority=True)
        assert slot is not None and slot < 3

    def test_normal_dispatch_uses_high_slots(self):
        iq = IssueQueue(8, priority_entries=3)
        slot = iq.dispatch("a", priority=False)
        assert slot >= 3

    def test_priority_partition_fills_and_rejects(self):
        iq = IssueQueue(8, priority_entries=2)
        assert iq.dispatch("a", True) is not None
        assert iq.dispatch("b", True) is not None
        assert iq.dispatch("c", True) is None  # stall-policy decision point
        assert iq.free_normal_count == 6  # normal side untouched

    def test_normal_partition_never_borrows_priority(self):
        iq = IssueQueue(4, priority_entries=2)
        assert iq.dispatch("a", False) is not None
        assert iq.dispatch("b", False) is not None
        assert iq.dispatch("c", False) is None

    def test_release_recycles_slot(self):
        iq = IssueQueue(4, priority_entries=2)
        slot = iq.dispatch("a", True)
        iq.release(slot)
        assert iq.free_priority_count == 2
        assert iq.dispatch("b", True) is not None

    def test_release_empty_slot_raises(self):
        iq = IssueQueue(4)
        with pytest.raises(ValueError):
            iq.release(0)

    def test_occupied_ascending_order(self):
        iq = IssueQueue(8, priority_entries=2)
        iq.dispatch("n1", False)
        iq.dispatch("p1", True)
        iq.dispatch("n2", False)
        slots = [slot for slot, _ in iq.occupied()]
        assert slots == sorted(slots)
        assert iq.at(slots[0]) == "p1"  # priority entry is lowest slot

    def test_validation(self):
        with pytest.raises(ValueError):
            IssueQueue(0)
        with pytest.raises(ValueError):
            IssueQueue(4, priority_entries=5)


class TestUniformDispatch:
    def test_uses_full_capacity(self):
        iq = IssueQueue(8, priority_entries=3)
        slots = [iq.dispatch_uniform(f"u{i}") for i in range(8)]
        assert None not in slots
        assert iq.dispatch_uniform("overflow") is None

    def test_fifo_merge_matches_base_queue_order(self):
        """With mode switching disabled, hole reuse must follow the same
        global FIFO order an unpartitioned queue would use."""
        part = IssueQueue(6, priority_entries=2)
        flat = IssueQueue(6, priority_entries=0)
        part_slots = [part.dispatch_uniform(i) for i in range(6)]
        flat_slots = [flat.dispatch(i, False) for i in range(6)]
        assert part_slots == flat_slots == list(range(6))
        # Release in a scrambled order, then redispatch: same slot sequence.
        for slot in (3, 0, 5):
            part.release(slot)
            flat.release(slot)
        assert [part.dispatch_uniform(i) for i in range(3)] == \
               [flat.dispatch(i, False) for i in range(3)]

    def test_flush_predicate(self):
        iq = IssueQueue(8, priority_entries=2)
        iq.dispatch(1, True)
        iq.dispatch(5, False)
        iq.dispatch(9, False)
        iq.flush(keep=lambda uop: uop < 6)
        remaining = [uop for _, uop in iq.occupied()]
        assert remaining == [1, 5]


class TestStatistics:
    def test_dispatch_counters(self):
        iq = IssueQueue(8, priority_entries=2)
        iq.dispatch("a", True)
        iq.dispatch("b", False)
        iq.dispatch_uniform("c")
        assert iq.dispatches == 3
        assert iq.priority_dispatches == 1

    def test_occupancy(self):
        iq = IssueQueue(8, priority_entries=2)
        assert iq.occupancy == 0
        iq.dispatch("a", True)
        iq.dispatch("b", False)
        assert iq.occupancy == 2
        assert not iq.is_full()


@given(st.lists(st.sampled_from(["dp", "dn", "du", "r"]), max_size=200))
@settings(max_examples=50, deadline=None)
def test_property_no_slot_leaks(ops):
    """Under any dispatch/release interleaving: occupancy + free == size,
    priority slots stay below the partition boundary, and no slot is ever
    double-allocated."""
    iq = IssueQueue(12, priority_entries=4)
    live = set()
    for op in ops:
        if op == "r" and live:
            slot = live.pop()
            iq.release(slot)
        elif op == "dp":
            slot = iq.dispatch("x", True)
            if slot is not None:
                assert slot < 4 and slot not in live
                live.add(slot)
        elif op == "dn":
            slot = iq.dispatch("x", False)
            if slot is not None:
                assert slot >= 4 and slot not in live
                live.add(slot)
        elif op == "du":
            slot = iq.dispatch_uniform("x")
            if slot is not None:
                assert slot not in live
                live.add(slot)
        assert iq.occupancy == len(live)
        assert iq.occupancy + iq.free_priority_count + iq.free_normal_count == 12
