"""Unit tests for the stream prefetcher."""

import pytest

from repro.memory import StreamPrefetcher


LINE = 64


class TestStreamDetection:
    def test_first_access_allocates_no_prefetch(self):
        pf = StreamPrefetcher()
        assert pf.observe_access(0) == []
        assert pf.active_streams == 1

    def test_second_sequential_access_confirms_and_prefetches(self):
        pf = StreamPrefetcher(distance=16, degree=2)
        pf.observe_access(0)
        lines = pf.observe_access(LINE)
        assert lines == [(1 + 16) * LINE, (1 + 17) * LINE]

    def test_descending_stream(self):
        pf = StreamPrefetcher(distance=4, degree=1)
        pf.observe_access(100 * LINE)
        lines = pf.observe_access(99 * LINE)
        assert lines == [(99 - 4) * LINE]

    def test_descending_near_zero_clamps(self):
        pf = StreamPrefetcher(distance=16, degree=2)
        pf.observe_access(2 * LINE)
        lines = pf.observe_access(1 * LINE)
        assert lines == []  # would-be negative lines dropped

    def test_random_accesses_never_prefetch(self):
        pf = StreamPrefetcher()
        addrs = [0, 1000 * LINE, 52 * LINE, 7000 * LINE, 123 * LINE]
        for a in addrs:
            assert pf.observe_access(a) == []

    def test_stride_two_still_tracks(self):
        pf = StreamPrefetcher(distance=8, degree=1)
        pf.observe_access(0)
        assert pf.observe_access(2 * LINE) != []

    def test_interleaved_streams_tracked_independently(self):
        pf = StreamPrefetcher(num_streams=4, distance=4, degree=1)
        a, b = 0, 10_000 * LINE
        pf.observe_access(a)
        pf.observe_access(b)
        got_a = pf.observe_access(a + LINE)
        got_b = pf.observe_access(b + LINE)
        assert got_a and got_b
        assert got_a[0] != got_b[0]

    def test_stream_replacement_lru(self):
        pf = StreamPrefetcher(num_streams=2)
        pf.observe_access(0)
        pf.observe_access(10_000 * LINE)
        pf.observe_access(20_000 * LINE)  # evicts the 0-stream
        assert pf.active_streams == 2
        # The evicted stream no longer matches.
        assert pf.observe_access(LINE) == []  # allocates fresh instead

    def test_issued_counter(self):
        pf = StreamPrefetcher(distance=4, degree=2)
        pf.observe_access(0)
        pf.observe_access(LINE)
        assert pf.issued == 2

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            StreamPrefetcher(num_streams=0)
        with pytest.raises(ValueError):
            StreamPrefetcher(distance=0)
        with pytest.raises(ValueError):
            StreamPrefetcher(degree=0)

    def test_long_stream_keeps_emitting(self):
        pf = StreamPrefetcher(distance=16, degree=2)
        emitted = 0
        for i in range(100):
            emitted += len(pf.observe_access(i * LINE))
        assert emitted >= 2 * 98  # every access after the first confirms
