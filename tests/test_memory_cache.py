"""Unit and property tests for the set-associative cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory import CacheConfig, SetAssocCache


def _cache(size=1024, assoc=2, line=64, lat=1):
    return SetAssocCache(CacheConfig("T", size, assoc, line, lat))


class TestConfigValidation:
    def test_valid_geometry(self):
        cfg = CacheConfig("L1", 32 * 1024, 8, 64, 2)
        assert cfg.num_sets == 64

    def test_rejects_non_power_of_two_lines(self):
        with pytest.raises(ValueError):
            CacheConfig("x", 1024, 2, 60)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheConfig("x", 3 * 64 * 2, 2, 64)

    def test_rejects_indivisible_size(self):
        with pytest.raises(ValueError):
            CacheConfig("x", 1000, 2, 64)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CacheConfig("x", 0, 2, 64)


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self):
        c = _cache()
        assert not c.access(0x1000)
        c.install(0x1000)
        assert c.access(0x1000)
        assert c.stats.accesses == 2 and c.stats.misses == 1

    def test_same_line_different_offsets_hit(self):
        c = _cache()
        c.install(0x1000)
        assert c.access(0x1000 + 63)
        assert not c.access(0x1000 + 64)

    def test_line_addr(self):
        c = _cache(line=64)
        assert c.line_addr(0x1039) == 0x1000

    def test_lru_eviction(self):
        c = _cache(size=2 * 64, assoc=2, line=64)  # 1 set, 2 ways
        c.install(0x0)
        c.install(0x40 * 16)   # same set (only one set)
        c.access(0x0)          # 0x0 becomes MRU
        evicted = c.install(0x40 * 32)
        assert evicted == 0x40 * 16
        assert c.probe(0x0)
        assert not c.probe(0x40 * 16)

    def test_install_existing_line_refreshes_lru(self):
        c = _cache(size=2 * 64, assoc=2, line=64)
        c.install(0x0)
        c.install(0x1000)
        assert c.install(0x0) is None  # refresh, no eviction
        evicted = c.install(0x2000)
        assert evicted == 0x1000  # 0x0 was refreshed, so 0x1000 is LRU

    def test_probe_does_not_touch_stats_or_lru(self):
        c = _cache(size=2 * 64, assoc=2, line=64)
        c.install(0x0)
        c.install(0x1000)
        c.probe(0x0)  # must NOT refresh LRU
        evicted = c.install(0x2000)
        assert evicted == 0x0
        assert c.stats.accesses == 0

    def test_invalidate_all(self):
        c = _cache()
        c.install(0x0)
        c.invalidate_all()
        assert not c.probe(0x0)

    def test_eviction_reconstructs_victim_address(self):
        c = _cache(size=4 * 1024, assoc=1, line=64)  # 64 sets, direct-mapped
        addr = 0x12345 & ~63
        c.install(addr)
        conflicting = addr + 4 * 1024  # same set, different tag
        evicted = c.install(conflicting)
        assert evicted == addr


class TestCapacityProperties:
    def test_working_set_within_capacity_all_hits(self):
        c = _cache(size=8 * 1024, assoc=4, line=64)
        lines = [i * 64 for i in range(8 * 1024 // 64)]
        for addr in lines:
            c.install(addr)
        assert all(c.access(addr) for addr in lines)

    def test_working_set_beyond_capacity_misses(self):
        c = _cache(size=1024, assoc=2, line=64)
        lines = [i * 64 for i in range(64)]  # 4x capacity
        for _ in range(2):
            for addr in lines:
                if not c.access(addr):
                    c.install(addr)
        assert c.stats.miss_rate > 0.9  # cyclic sweep defeats LRU

    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1,
                    max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_assoc_bound_invariant(self, addrs):
        """No set ever holds more than assoc lines."""
        c = _cache(size=2048, assoc=2, line=64)
        for addr in addrs:
            if not c.access(addr):
                c.install(addr)
        for ways in c._sets:
            assert len(ways) <= 2

    @given(st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1,
                    max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_install_then_immediate_probe_hits(self, addrs):
        c = _cache(size=4096, assoc=4, line=64)
        for addr in addrs:
            c.install(addr)
            assert c.probe(addr)
