"""Stress-kernel families: every expected-bottleneck contract must hold.

The families are fidelity probes for the timing model: each kernel hammers
one resource and its :class:`~repro.workloads.stress.assertions.
ExpectedBottleneck` contract asserts the simulator's bottleneck actually
lands there.  The default-knob checks run for all families (the acceptance
bar); full knob sweeps run for a representative cheap subset, and the CI
``stress-assertions`` job exercises every sweep via ``repro stress run``.
"""

import pytest

from repro.core import ProcessorConfig, simulate
from repro.workloads.stress import (FAMILIES, MetricDominance,
                                    MetricThreshold, MonotonicKnob,
                                    metric_value, run_family)
from repro.workloads.stress.assertions import CheckOutcome, TopdownDominant

ALL_FAMILIES = sorted(FAMILIES)

#: Cheap families whose full sweep runs inside the tier-1 suite; the rest
#: sweep in the dedicated CI job to keep this suite quick.
SWEPT_IN_TESTS = ("load_after_store", "dep_chain", "callret_depth")


class TestCatalog:
    def test_at_least_eight_families(self):
        # The acceptance bar: >= 8 per-resource families.
        assert len(FAMILIES) >= 8

    def test_registry_is_consistent(self):
        for name, fam in FAMILIES.items():
            assert fam.name == name
            assert fam.default in fam.sweep  # sweep covers the default
            assert fam.contract.checks or fam.contract.sweep_checks

    def test_kernels_build_valid_programs(self):
        for fam in FAMILIES.values():
            program = fam.build(fam.default)
            assert len(program) > 0
            assert program.name.startswith("stress_")

    def test_topdown_buckets_are_declared_and_valid(self):
        from repro.analysis.topdown import LEVEL1
        declared = {name: fam.topdown for name, fam in FAMILIES.items()
                    if fam.topdown is not None}
        # Every family but the forwarding probe (which avoids stalls by
        # design) declares a dominant level-1 bucket.
        assert len(declared) >= len(FAMILIES) - 1
        assert all(bucket in LEVEL1 for bucket in declared.values())
        # The two branch probes are bad-speculation machines; the
        # front-end probes starve fetch; the rest saturate the backend.
        assert declared["branch_h2p"] == "bad_speculation"
        assert declared["l1i_pressure"] == "frontend"
        assert declared["iq_pressure"] == "backend"


@pytest.mark.parametrize("name", ALL_FAMILIES)
def test_default_knob_contract(name):
    """Every family passes its contract at the default knob.

    ``run_family`` appends the family's ``TopdownDominant`` check, so
    this also asserts each family's dominant topdown bucket matches its
    expected bottleneck (DESIGN.md §15).
    """
    report = run_family(FAMILIES[name], sweep=False)
    assert report.passed, "\n" + report.render()
    if FAMILIES[name].topdown is not None:
        assert any("dominant topdown bucket" in o.description
                   for o in report.outcomes)


@pytest.mark.parametrize("name", SWEPT_IN_TESTS)
def test_knob_sweep_contract(name):
    """Representative families also pass their monotone sweep checks."""
    report = run_family(FAMILIES[name])
    assert report.passed, "\n" + report.render()


class TestDeliberateFailure:
    def test_predictable_knob_fails_h2p_contract(self):
        # bias_bits=12 makes the "hard" branches trivially predictable, so
        # the H2P contract must fail -- the harness can tell a stressed
        # machine from an unstressed one.
        report = run_family(FAMILIES["branch_h2p"], knob=12)
        assert not report.passed
        assert any("branch_mpki" in o.description for o in report.failures)

    def test_report_render_names_the_failure(self):
        report = run_family(FAMILIES["branch_h2p"], knob=12)
        text = report.render()
        assert "BOTTLENECK CONTRACT FAILED" in text
        assert "[FAIL]" in text


class TestChecks:
    """Unit tests of the check primitives against a real result."""

    @pytest.fixture(scope="class")
    def result(self):
        fam = FAMILIES["dep_chain"]
        return simulate(fam.build(fam.default), ProcessorConfig(),
                        max_instructions=2000, skip_instructions=500)

    def test_threshold_ops(self, result):
        cpi = metric_value("cpi", result)
        assert MetricThreshold("cpi", ">=", cpi - 0.1).evaluate(result).passed
        assert not MetricThreshold("cpi", ">=",
                                   cpi + 0.1).evaluate(result).passed
        assert MetricThreshold("cpi", "<=", cpi + 0.1).evaluate(result).passed

    def test_threshold_rejects_bad_op(self):
        with pytest.raises(ValueError):
            MetricThreshold("cpi", "==", 1.0)

    def test_unknown_metric_rejected(self, result):
        with pytest.raises(KeyError, match="unknown stress metric"):
            metric_value("warp_drive_stalls", result)

    def test_dominance(self, result):
        # cpi >= 1 * ipc holds for any CPI >= 1 run; the inverse fails.
        assert MetricDominance("cpi", "ipc").evaluate(result).passed
        assert not MetricDominance("ipc", "cpi",
                                   factor=10.0).evaluate(result).passed

    def test_monotonic_checks_direction_and_span(self, result):
        sweep = [(1, result), (2, result)]  # flat line
        flat = MonotonicKnob("cpi", "increasing").evaluate(sweep)
        assert flat.passed  # non-strict: flat is monotone...
        spanned = MonotonicKnob("cpi", "increasing",
                                min_span=0.5).evaluate(sweep)
        assert not spanned.passed  # ...but cannot clear a required span

    def test_monotonic_rejects_bad_direction(self):
        with pytest.raises(ValueError):
            MonotonicKnob("cpi", "sideways")

    def test_outcome_render(self):
        ok = CheckOutcome("x >= 1", True, "x=2")
        bad = CheckOutcome("x >= 1", False, "x=0")
        assert "[PASS]" in ok.render()
        assert "[FAIL]" in bad.render()

    def test_topdown_dominant(self, result):
        # dep_chain at the default knob is backend-bound.
        good = TopdownDominant("backend").evaluate(result)
        assert good.passed
        assert "dominant=backend" in good.observed
        bad = TopdownDominant("frontend").evaluate(result)
        assert not bad.passed

    def test_topdown_fraction_metrics(self, result):
        total = sum(metric_value(f"td_{bucket}_frac", result)
                    for bucket in ("retiring", "frontend",
                                   "bad_speculation", "backend"))
        assert total == pytest.approx(1.0)
