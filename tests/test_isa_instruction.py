"""Unit tests for static instructions, programs, and the builder."""

import pytest

from repro.isa import (
    INST_BYTES,
    Opcode,
    Program,
    ProgramBuilder,
    StaticInst,
    int_reg,
)


def _mov(pc, dest, imm=0):
    return StaticInst(pc, Opcode.MOVI, dest=dest, imm=imm)


class TestStaticInst:
    def test_branch_requires_target(self):
        with pytest.raises(ValueError):
            StaticInst(0, Opcode.BEQZ, src1=1)

    def test_non_branch_rejects_target(self):
        with pytest.raises(ValueError):
            StaticInst(0, Opcode.ADD, dest=1, src1=2, src2=3, target=4)

    def test_register_range_checked(self):
        with pytest.raises(ValueError):
            StaticInst(0, Opcode.ADD, dest=64, src1=0, src2=1)
        with pytest.raises(ValueError):
            StaticInst(0, Opcode.ADD, dest=1, src1=-1, src2=1)

    def test_sources_in_operand_order(self):
        inst = StaticInst(0, Opcode.ADD, dest=3, src1=7, src2=9)
        assert inst.sources() == (7, 9)

    def test_sources_skips_missing(self):
        inst = StaticInst(0, Opcode.BEQZ, src1=5, target=0)
        assert inst.sources() == (5,)
        assert _mov(0, 1).sources() == ()

    def test_predicates(self):
        br = StaticInst(0, Opcode.BNE, src1=1, src2=2, target=0)
        assert br.is_branch and br.is_conditional_branch
        ld = StaticInst(0, Opcode.LOAD, dest=1, src1=2)
        assert ld.is_load and ld.is_mem and not ld.is_store

    def test_str_contains_opcode_and_registers(self):
        inst = StaticInst(0, Opcode.ADD, dest=3, src1=33, src2=9)
        text = str(inst)
        assert "add" in text and "r3" in text and "f1" in text and "r9" in text


class TestProgram:
    def test_pcs_must_be_sequential(self):
        with pytest.raises(ValueError):
            Program("p", [_mov(0, 1), _mov(8, 2)])

    def test_branch_target_must_exist(self):
        insts = [
            _mov(0, 1),
            StaticInst(4, Opcode.BEQZ, src1=1, target=100),
        ]
        with pytest.raises(ValueError):
            Program("p", insts)

    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            Program("p", [])

    def test_lookup_and_next_pc(self):
        prog = Program("p", [_mov(0, 1), _mov(4, 2), _mov(8, 3)])
        assert prog.at(4).dest == 2
        assert prog.next_pc(0) == 4
        assert prog.next_pc(8) == 0  # wraps to entry
        assert prog.contains(8) and not prog.contains(12)
        assert prog.entry_pc == 0 and prog.last_pc == 8

    def test_listing_has_one_line_per_instruction(self):
        prog = Program("p", [_mov(0, 1), _mov(4, 2)])
        assert len(prog.listing().splitlines()) == 2

    def test_warm_regions_default_empty(self):
        prog = Program("p", [_mov(0, 1)])
        assert prog.warm_regions == []


class TestProgramBuilder:
    def test_forward_label_patching(self):
        b = ProgramBuilder("p")
        b.emit(Opcode.BEQZ, src1=int_reg(1), target_label="done")
        b.emit(Opcode.MOVI, dest=int_reg(2), imm=5)
        b.mark_label("done")
        b.emit(Opcode.NOP)
        prog = b.build()
        assert prog.at(0).target == 2 * INST_BYTES

    def test_backward_label(self):
        b = ProgramBuilder("p")
        b.mark_label("top")
        b.emit(Opcode.NOP)
        b.emit(Opcode.JUMP, target_label="top")
        prog = b.build()
        assert prog.at(INST_BYTES).target == 0

    def test_undefined_label_raises(self):
        b = ProgramBuilder("p")
        b.emit(Opcode.JUMP, target_label="nowhere")
        with pytest.raises(ValueError, match="undefined label"):
            b.build()

    def test_duplicate_label_raises(self):
        b = ProgramBuilder("p")
        b.mark_label("x")
        with pytest.raises(ValueError, match="twice"):
            b.mark_label("x")

    def test_emit_returns_pc(self):
        b = ProgramBuilder("p")
        assert b.emit(Opcode.NOP) == 0
        assert b.emit(Opcode.NOP) == INST_BYTES

    def test_warm_regions_pass_through(self):
        b = ProgramBuilder("p")
        b.emit(Opcode.NOP)
        prog = b.build(warm_regions=[(1 << 20, 4096)])
        assert prog.warm_regions == [(1 << 20, 4096)]
