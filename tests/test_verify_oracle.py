"""Tests for the differential architectural oracle (``repro.verify``).

Two angles:

* **agreement** -- a fully verified run over every scheduling path pinned in
  ``test_pipeline_golden.py`` completes with zero violations *and* the exact
  golden counters (verification must not perturb timing);
* **mutation** -- each oracle check fires when the cross-checked state is
  deliberately corrupted, and the raised :class:`OracleMismatch` carries the
  structured diagnostics (`invariant`, `cycle`, `uop`, bounded snapshot).
"""

import dataclasses
from types import SimpleNamespace

import pytest

from repro.analysis import run_workload
from repro.core.pipeline import Pipeline
from repro.isa.executor import FunctionalExecutor
from repro.verify import (
    CommitOracle,
    InvariantViolation,
    OracleMismatch,
    clone_executor,
)
from repro.workloads import build_program, get_profile

from .test_pipeline_golden import CONFIGS, GOLDEN_STATS, INSTRUCTIONS, SKIP


# ======================================================================
# Agreement across the five pinned scheduling paths
# ======================================================================

class TestOracleAgreement:
    @pytest.mark.parametrize("tag", sorted(CONFIGS))
    def test_full_verification_passes_and_preserves_goldens(self, tag):
        workload, config = CONFIGS[tag]
        result = run_workload(workload, config.with_verification("full"),
                              instructions=INSTRUCTIONS, skip=SKIP,
                              cache=False)
        # Zero violations (run_workload would have raised) and every commit
        # cross-checked against in-order execution.
        assert result.verify_level == "full"
        assert result.verified_commits == result.stats.committed == INSTRUCTIONS
        assert result.invariant_sweeps > 0
        # Verification observes; it must not perturb the timing model.
        assert dataclasses.asdict(result.stats) == GOLDEN_STATS[tag]

    def test_commit_only_level_skips_sweeps(self):
        workload, config = CONFIGS["sjeng_base"]
        result = run_workload(workload, config.with_verification("commit-only"),
                              instructions=1000, skip=500, cache=False)
        assert result.verified_commits == 1000
        assert result.invariant_sweeps == 0

    def test_verifier_report_summarizes_run(self):
        program = build_program(get_profile("sjeng"))
        pipeline = Pipeline(program,
                            CONFIGS["sjeng_pubs"][1].with_verification("full"))
        pipeline.run(800, skip_instructions=400)
        report = pipeline.verifier.report()
        assert report.level == "full"
        assert report.commits_checked == 800
        assert report.final_state_checked
        assert "free-list-conservation" in report.invariants
        assert "commits=800" in report.summary()


# ======================================================================
# Mutation: every oracle check fires on seeded corruption
# ======================================================================

def _verified_pipeline(level="commit-only"):
    program = build_program(get_profile("sjeng"))
    config = CONFIGS["sjeng_base"][1].with_verification(level)
    return Pipeline(program, config)


class TestCommitStreamMutations:
    def test_oracle_out_of_sync_detects_stream_gap(self):
        pipeline = _verified_pipeline()
        # Advance the oracle's independent executor one instruction: the
        # very first commit now presents trace_seq 0 where 1 is expected.
        pipeline.verifier.oracle.executor.step()
        with pytest.raises(OracleMismatch, match="commit stream gap"):
            pipeline.run(200, skip_instructions=0)

    def test_skip_mismatch_detected(self):
        pipeline = _verified_pipeline()
        # The pipeline fast-forwards 100 instructions but the oracle is told
        # about none of them -- equivalent to a dropped-commit bug.
        pipeline.verifier.on_skip = lambda count: None
        with pytest.raises(OracleMismatch, match="commit stream gap"):
            pipeline.run(200, skip_instructions=100)

    def _uop(self, inst, **overrides):
        fields = dict(seq=0, inst=inst, trace_seq=0, on_correct_path=True,
                      squashed=False, completed=True, mem_addr=None,
                      actual_taken=False, actual_next_pc=inst.pc + 4,
                      predicted_next_pc=inst.pc + 4, mispredicted=False,
                      fetch_cycle=1, dispatch_cycle=2, issue_cycle=3)
        fields.update(overrides)
        return SimpleNamespace(**fields)

    def test_wrong_path_uop_at_commit_rejected(self):
        program = build_program(get_profile("sjeng"))
        oracle = CommitOracle(program)
        uop = self._uop(program.insts[0], on_correct_path=False,
                        trace_seq=-1)
        with pytest.raises(OracleMismatch, match="wrong-path"):
            oracle.check_commit(uop, cycle=7)

    def test_squashed_and_incomplete_uops_rejected(self):
        program = build_program(get_profile("sjeng"))
        oracle = CommitOracle(program)
        with pytest.raises(OracleMismatch, match="squashed"):
            oracle.check_commit(
                self._uop(program.insts[0], squashed=True), cycle=1)
        with pytest.raises(OracleMismatch, match="incomplete"):
            oracle.check_commit(
                self._uop(program.insts[0], completed=False), cycle=1)

    def test_pc_divergence_detected(self):
        program = build_program(get_profile("sjeng"))
        oracle = CommitOracle(program)
        reference = FunctionalExecutor(program)
        reference.step()
        second = reference.step().inst  # not the in-order first instruction
        with pytest.raises(OracleMismatch, match="in-order execution is at"):
            oracle.check_commit(self._uop(second), cycle=1)

    def test_violation_payload_is_structured(self):
        pipeline = _verified_pipeline()
        pipeline.verifier.oracle.executor.step()
        with pytest.raises(OracleMismatch) as excinfo:
            pipeline.run(200, skip_instructions=0)
        exc = excinfo.value
        assert isinstance(exc, InvariantViolation)  # one except catches all
        assert exc.invariant == "commit-oracle"
        assert exc.cycle is not None and exc.cycle > 0
        assert exc.uop["trace_seq"] == 0 and exc.uop["on_correct_path"]
        assert f"@cycle {exc.cycle}" in str(exc)
        report = exc.report()
        assert "commit-oracle" in report and "trace_seq=0" in report


class TestFinalStateDiff:
    def _synced_pair(self, steps=200):
        program = build_program(get_profile("sjeng"))
        main = FunctionalExecutor(program)
        oracle = CommitOracle(program)
        for _ in range(steps):
            main.step()
        oracle.skip(steps)
        return oracle, main

    def test_agreeing_states_pass(self):
        oracle, main = self._synced_pair()
        oracle.finish(main)
        assert oracle.final_state_checked

    def test_oracle_lag_is_caught_up_before_diffing(self):
        program = build_program(get_profile("sjeng"))
        main = FunctionalExecutor(program)
        oracle = CommitOracle(program)
        for _ in range(300):
            main.step()
        oracle.skip(120)  # commit naturally trails the fetch-side executor
        oracle.finish(main)
        assert oracle.final_state_checked
        # finish() must advance a clone, not the oracle itself: the run can
        # be resumed and checked again afterwards.
        assert oracle.executor.seq == 120

    def test_register_corruption_detected(self):
        oracle, main = self._synced_pair()
        main.regs[3] ^= 0x1  # the timing model scribbled on a register
        with pytest.raises(OracleMismatch, match="register state mismatch"):
            oracle.finish(main)
        assert not oracle.final_state_checked

    def test_memory_corruption_detected(self):
        oracle, main = self._synced_pair()
        words = main.memory.words()
        assert words, "warm-up should have produced stores"
        addr = next(iter(words))
        main.memory._words[addr] += 1
        with pytest.raises(OracleMismatch, match="memory state mismatch"):
            oracle.finish(main)

    def test_oracle_ahead_of_executor_detected(self):
        oracle, main = self._synced_pair()
        oracle.executor.step()  # phantom extra commit
        with pytest.raises(OracleMismatch, match="ran ahead"):
            oracle.finish(main)


class TestCloneExecutor:
    def test_clone_is_independent(self):
        program = build_program(get_profile("sjeng"))
        executor = FunctionalExecutor(program)
        for _ in range(50):
            executor.step()
        clone = clone_executor(executor)
        assert clone.seq == executor.seq
        assert clone.pc == executor.pc
        assert clone.regs == executor.regs
        assert clone.memory.words() == executor.memory.words()
        clone.step()
        assert clone.seq == executor.seq + 1
        assert executor.seq == 50  # original untouched
