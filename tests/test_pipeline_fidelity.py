"""Fidelity features: commit-stream verification, misprediction timelines,
and wrong-path memory policies."""

import pytest

from repro.core import Pipeline, ProcessorConfig
from repro.isa import FunctionalExecutor

from tests.microprograms import (
    counted_branch_program,
    random_branch_program,
)

BASE = ProcessorConfig.cortex_a72_like()


class TestCommitStreamOracle:
    def test_committed_stream_equals_functional_execution(self):
        """The strongest correctness check: the sequence of committed PCs
        (and branch outcomes) must equal a pure functional execution,
        misprediction recoveries and wrong-path fetches notwithstanding."""
        committed = []
        pipe = Pipeline(random_branch_program(), BASE)
        pipe.commit_hook = lambda uop: committed.append(
            (uop.inst.pc, uop.actual_taken))
        pipe.run(3000)

        reference = FunctionalExecutor(random_branch_program())
        expected = [(r.inst.pc, r.taken) for r in reference.run(3000)]
        assert committed == expected

    def test_commit_stream_with_pubs_and_age(self):
        """Microarchitectural variants never change architecture."""
        for cfg in (BASE.with_pubs(), BASE.with_age_matrix(),
                    BASE.with_overrides(iq_organization="shifting"),
                    BASE.with_overrides(distributed_iq=True)):
            committed = []
            pipe = Pipeline(random_branch_program(), cfg)
            pipe.commit_hook = lambda uop: committed.append(uop.inst.pc)
            pipe.run(1200)
            reference = FunctionalExecutor(random_branch_program())
            expected = [r.inst.pc for r in reference.run(1200)]
            assert committed == expected

    def test_commit_stream_with_skip(self):
        committed = []
        pipe = Pipeline(counted_branch_program(), BASE)
        pipe.commit_hook = lambda uop: committed.append(uop.inst.pc)
        pipe.run(500, skip_instructions=700)
        reference = FunctionalExecutor(counted_branch_program())
        reference.run(700)
        expected = [r.inst.pc for r in reference.run(500)]
        assert committed == expected

    def test_commit_order_is_program_order(self):
        seqs = []
        pipe = Pipeline(random_branch_program(), BASE)
        pipe.commit_hook = lambda uop: seqs.append(uop.trace_seq)
        pipe.run(1500)
        assert seqs == sorted(seqs)
        assert all(s >= 0 for s in seqs)  # only correct-path uops commit


class TestMispredictionLog:
    def test_timeline_recorded_per_recovery(self):
        pipe = Pipeline(random_branch_program(), BASE)
        stats = pipe.run(2500, skip_instructions=500)
        assert len(pipe.misprediction_log) > 0
        for pc, fetch, dispatch, issue, complete in pipe.misprediction_log:
            assert fetch < dispatch < complete
            assert dispatch <= issue < complete

    def test_log_bounded(self):
        pipe = Pipeline(random_branch_program(), BASE)
        pipe.run(4000)
        assert len(pipe.misprediction_log) <= 64

    def test_no_log_without_mispredictions(self):
        from tests.microprograms import independent_alu_program
        pipe = Pipeline(independent_alu_program(), BASE)
        pipe.run(1500)
        assert len(pipe.misprediction_log) == 0

    def test_log_matches_penalty_stats(self):
        """The last entries' penalties are consistent with the aggregate
        misspeculation counters."""
        pipe = Pipeline(random_branch_program(), BASE)
        stats = pipe.run(1200)
        if stats.mispredictions and len(pipe.misprediction_log) == \
                stats.mispredictions:
            total = sum(complete - fetch for _, fetch, _, _, complete
                        in pipe.misprediction_log)
            assert total == stats.missspec_penalty_cycles


class TestWrongPathMemoryPolicies:
    def test_pollute_policy_accesses_cache(self):
        # Needs a program with loads on the wrong path: use a workload.
        from repro.workloads import build_program, get_profile
        program = build_program(get_profile("sjeng"))
        idle = Pipeline(program, BASE, mem_seed=107)
        idle.run(2000, skip_instructions=2000)
        pollute_cfg = BASE.with_overrides(wrong_path_memory="pollute")
        pollute = Pipeline(build_program(get_profile("sjeng")), pollute_cfg,
                           mem_seed=107)
        pollute.run(2000, skip_instructions=2000)
        assert (pollute.hierarchy.stats.l1d_accesses
                > idle.hierarchy.stats.l1d_accesses)

    def test_pollute_policy_architecturally_identical(self):
        """Pollution is a timing effect only: the committed stream and the
        misprediction count are unchanged."""
        idle = Pipeline(random_branch_program(), BASE).run(
            1500, skip_instructions=500)
        pollute = Pipeline(
            random_branch_program(),
            BASE.with_overrides(wrong_path_memory="pollute"),
        ).run(1500, skip_instructions=500)
        assert idle.mispredictions == pollute.mispredictions
        assert idle.committed == pollute.committed

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            BASE.with_overrides(wrong_path_memory="chaos")
