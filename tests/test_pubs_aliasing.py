"""Hashed-tag aliasing behaviour of the PUBS tables (Sec. IV's accepted
inaccuracy), exercised end to end through the slice tracker."""

from repro.isa import Opcode, StaticInst
from repro.pubs import PubsConfig, SliceTracker


def _addi(pc, dest, src):
    return StaticInst(pc, Opcode.ADDI, dest=dest, src1=src, imm=1)


def _beqz(pc, src):
    return StaticInst(pc, Opcode.BEQZ, src1=src, target=0)


def _find_conf_alias(tracker, pc):
    """A different branch PC whose conf_tab (index, hashed tag) collides."""
    target = tracker.conf_tab.pointer(pc)
    for candidate in range(pc + 4, pc + (1 << 22), 4):
        if candidate != pc and tracker.conf_tab.pointer(candidate) == target:
            return candidate
    raise AssertionError("no alias found in the scanned range")


class TestConfTabAliasing:
    def test_aliased_branches_share_a_counter(self):
        """Two branches whose PCs collide after folding share confidence
        state: training one changes the other's estimate."""
        tracker = SliceTracker(PubsConfig(conf_fold_width=1, conf_sets=16))
        pc_a = 0x100
        pc_b = _find_conf_alias(tracker, pc_a)
        tracker.on_branch_resolved(pc_a, correct=False)
        # Branch B never executed, yet reads A's (unconfident) counter.
        assert not tracker.conf_tab.is_confident_pc(pc_b)

    def test_unaliased_branches_independent(self):
        tracker = SliceTracker(PubsConfig())  # paper geometry: rare aliases
        tracker.on_branch_resolved(0x100, correct=False)
        # A branch in a different set is untouched.
        assert tracker.conf_tab.is_confident_pc(0x100 + 256 * 4)


class TestBrsliceAliasing:
    def test_spurious_slice_membership_via_alias(self):
        """An instruction whose PC aliases a slice member's brslice entry
        is spuriously steered to the priority partition -- harmless for
        correctness, slightly wasteful, exactly as the paper accepts."""
        cfg = PubsConfig(brslice_fold_width=1, brslice_sets=8)
        tracker = SliceTracker(cfg)
        tracker.on_branch_resolved(8, correct=False)
        producer = _addi(0, 1, 2)
        branch = _beqz(8, 1)
        for _ in range(2):  # link producer into the slice
            tracker.on_decode(producer)
            tracker.on_decode(branch)
        # Find an unrelated instruction aliasing the producer's entry.
        target = tracker.brslice_tab.codec.pointer(0)
        alias_pc = None
        for candidate in range(4, 1 << 18, 4):
            if candidate != 8 and \
                    tracker.brslice_tab.codec.pointer(candidate) == target:
                alias_pc = candidate
                break
        assert alias_pc is not None
        stranger = _addi(alias_pc, 9, 10)
        assert tracker.on_decode(stranger) is True  # spurious but safe

    def test_paper_geometry_keeps_strangers_out(self):
        tracker = SliceTracker(PubsConfig())
        tracker.on_branch_resolved(8, correct=False)
        producer = _addi(0, 1, 2)
        branch = _beqz(8, 1)
        for _ in range(2):
            tracker.on_decode(producer)
            tracker.on_decode(branch)
        stranger = _addi(0x4000, 9, 10)
        assert tracker.on_decode(stranger) is False
