"""Unit and property tests for the functional executor and trace cursor."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import (
    FunctionalExecutor,
    Opcode,
    Program,
    ProgramBuilder,
    SparseMemory,
    StaticInst,
    TraceCursor,
    int_reg,
    mix64,
    to_signed,
)


def _prog(*insts):
    return Program("t", list(insts))


class TestMix64:
    def test_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_spreads_nearby_inputs(self):
        assert mix64(1) != mix64(2)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_stays_in_64_bits(self, x):
        assert 0 <= mix64(x) < (1 << 64)


class TestToSigned:
    def test_positive_passthrough(self):
        assert to_signed(5) == 5

    def test_negative_wraps(self):
        assert to_signed((1 << 64) - 1) == -1
        assert to_signed(1 << 63) == -(1 << 63)


class TestSparseMemory:
    def test_written_value_read_back(self):
        mem = SparseMemory()
        mem.write(0x1000, 42)
        assert mem.read(0x1000) == 42

    def test_default_contents_deterministic(self):
        a, b = SparseMemory(seed=7), SparseMemory(seed=7)
        assert a.read(0x2000) == b.read(0x2000)

    def test_seed_changes_defaults(self):
        assert SparseMemory(seed=1).read(0x2000) != SparseMemory(seed=2).read(0x2000)

    def test_word_aligned(self):
        mem = SparseMemory()
        mem.write(0x1004, 99)  # aligns down to 0x1000
        assert mem.read(0x1000) == 99

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1),
           st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_read_after_write_roundtrip(self, addr, value):
        mem = SparseMemory()
        mem.write(addr, value)
        assert mem.read(addr) == value


class TestExecution:
    def test_movi_add(self):
        prog = _prog(
            StaticInst(0, Opcode.MOVI, dest=1, imm=10),
            StaticInst(4, Opcode.MOVI, dest=2, imm=32),
            StaticInst(8, Opcode.ADD, dest=3, src1=1, src2=2),
        )
        ex = FunctionalExecutor(prog)
        ex.run(3)
        assert ex.regs[3] == 42

    def test_sub_wraps_to_64_bits(self):
        prog = _prog(
            StaticInst(0, Opcode.MOVI, dest=1, imm=0),
            StaticInst(4, Opcode.SUBI, dest=2, src1=1, imm=1),
        )
        ex = FunctionalExecutor(prog)
        ex.run(2)
        assert ex.regs[2] == (1 << 64) - 1

    def test_div_by_zero_yields_zero(self):
        prog = _prog(
            StaticInst(0, Opcode.MOVI, dest=1, imm=7),
            StaticInst(4, Opcode.MOVI, dest=2, imm=0),
            StaticInst(8, Opcode.DIV, dest=3, src1=1, src2=2),
        )
        ex = FunctionalExecutor(prog)
        ex.run(3)
        assert ex.regs[3] == 0

    def test_shift_amount_masked(self):
        prog = _prog(
            StaticInst(0, Opcode.MOVI, dest=1, imm=1),
            StaticInst(4, Opcode.MOVI, dest=2, imm=65),  # 65 & 63 == 1
            StaticInst(8, Opcode.SHL, dest=3, src1=1, src2=2),
        )
        ex = FunctionalExecutor(prog)
        ex.run(3)
        assert ex.regs[3] == 2

    def test_load_store_roundtrip(self):
        prog = _prog(
            StaticInst(0, Opcode.MOVI, dest=1, imm=0x1000),  # address base
            StaticInst(4, Opcode.MOVI, dest=2, imm=777),     # data
            StaticInst(8, Opcode.STORE, src1=2, src2=1, imm=8),
            StaticInst(12, Opcode.LOAD, dest=3, src1=1, imm=8),
        )
        ex = FunctionalExecutor(prog)
        records = ex.run(4)
        assert ex.regs[3] == 777
        assert records[2].mem_addr == 0x1008
        assert records[3].mem_addr == 0x1008

    def test_taken_branch_redirects(self):
        prog = _prog(
            StaticInst(0, Opcode.MOVI, dest=1, imm=0),
            StaticInst(4, Opcode.BEQZ, src1=1, target=12),
            StaticInst(8, Opcode.MOVI, dest=2, imm=1),  # skipped
            StaticInst(12, Opcode.NOP),
        )
        ex = FunctionalExecutor(prog)
        records = ex.run(3)
        assert records[1].taken and records[1].next_pc == 12
        assert records[2].inst.pc == 12
        assert ex.regs[2] == 0

    def test_not_taken_branch_falls_through(self):
        prog = _prog(
            StaticInst(0, Opcode.MOVI, dest=1, imm=3),
            StaticInst(4, Opcode.BEQZ, src1=1, target=12),
            StaticInst(8, Opcode.NOP),
            StaticInst(12, Opcode.NOP),
        )
        ex = FunctionalExecutor(prog)
        records = ex.run(3)
        assert not records[1].taken
        assert records[2].inst.pc == 8

    def test_blt_is_signed(self):
        prog = _prog(
            StaticInst(0, Opcode.MOVI, dest=1, imm=0),
            StaticInst(4, Opcode.SUBI, dest=2, src1=1, imm=1),  # -1
            StaticInst(8, Opcode.BLT, src1=2, src2=1, target=16),  # -1 < 0
            StaticInst(12, Opcode.NOP),
            StaticInst(16, Opcode.NOP),
        )
        ex = FunctionalExecutor(prog)
        records = ex.run(3)
        assert records[2].taken

    def test_jump_is_always_taken(self):
        prog = _prog(
            StaticInst(0, Opcode.JUMP, target=8),
            StaticInst(4, Opcode.NOP),
            StaticInst(8, Opcode.NOP),
        )
        ex = FunctionalExecutor(prog)
        records = ex.run(2)
        assert records[0].taken and records[0].next_pc == 8

    def test_wraparound_at_program_end(self):
        prog = _prog(StaticInst(0, Opcode.NOP), StaticInst(4, Opcode.NOP))
        ex = FunctionalExecutor(prog)
        records = ex.run(3)
        assert records[2].inst.pc == 0

    def test_sequence_numbers_monotonic(self):
        prog = _prog(StaticInst(0, Opcode.NOP))
        ex = FunctionalExecutor(prog)
        records = ex.run(5)
        assert [r.seq for r in records] == list(range(5))


class TestTraceCursor:
    def _looping_executor(self):
        prog = _prog(
            StaticInst(0, Opcode.ADDI, dest=1, src1=1, imm=1),
            StaticInst(4, Opcode.JUMP, target=0),
        )
        return FunctionalExecutor(prog)

    def test_sequential_get(self):
        cursor = TraceCursor(self._looping_executor())
        assert cursor.get(0).seq == 0
        assert cursor.get(3).seq == 3

    def test_rewind_within_window(self):
        cursor = TraceCursor(self._looping_executor())
        first = cursor.get(0)
        cursor.get(10)
        assert cursor.get(0) is first  # same record object, no re-execution

    def test_release_frees_records(self):
        cursor = TraceCursor(self._looping_executor())
        cursor.get(9)
        assert cursor.retained == 10
        cursor.release(5)
        assert cursor.retained == 5
        with pytest.raises(IndexError):
            cursor.get(4)

    def test_release_past_buffer_jumps_base(self):
        ex = self._looping_executor()
        cursor = TraceCursor(ex)
        for _ in range(100):  # external skip
            ex.step()
        cursor.release(100)
        assert cursor.get(100).seq == 100

    def test_release_is_idempotent(self):
        cursor = TraceCursor(self._looping_executor())
        cursor.get(5)
        cursor.release(3)
        cursor.release(3)
        assert cursor.get(3).seq == 3

    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_random_access_monotone_release(self, seqs):
        """Any access pattern above the release point returns consistent
        records (seq matches the request)."""
        cursor = TraceCursor(self._looping_executor())
        for seq in seqs:
            assert cursor.get(seq).seq == seq
