"""Golden-stats regression anchors for the timing model.

The hot-path optimizations in ``core/pipeline.py``, ``iq/queue.py`` and
``iq/select.py`` (slots, hoisted locals, the incremental ready set) carry a
hard requirement: **bit-identical** behaviour.  These goldens were captured
from the pre-optimization simulator on fixed-seed workloads covering every
scheduling path -- the random queue with and without PUBS, the age matrix,
the distributed IQ, and the shifting organization (which keeps the legacy
scan-based issue loop).  Any timing-visible change to the scheduler must
reproduce these counters exactly or consciously update them (and bump
``repro.exec.serialize.CACHE_SCHEMA_VERSION`` alongside).
"""

import dataclasses

import pytest

from repro import ProcessorConfig
from repro.analysis import run_workload

BASE = ProcessorConfig.cortex_a72_like()

CONFIGS = {
    "sjeng_base": ("sjeng", BASE),
    "sjeng_pubs": ("sjeng", BASE.with_pubs()),
    "gcc_age": ("gcc", BASE.with_age_matrix()),
    "mcf_dist_pubs": ("mcf",
                      BASE.with_overrides(distributed_iq=True).with_pubs()),
    "gobmk_shift": ("gobmk",
                    BASE.with_overrides(iq_organization="shifting")),
}

INSTRUCTIONS = 3000
SKIP = 2000

#: SimStats captured from the seed (pre-optimization) simulator.  The
#: ``td_*`` topdown slot buckets and the disjoint stall-cause split
#: (priority stalls no longer double-counted into
#: ``iq_full_stall_cycles``) were captured when they landed; cycle
#: counts and every other counter still match the seed exactly.
GOLDEN_STATS = {
    "sjeng_base": {
        "cycles": 2883, "committed": 3000, "fetched": 7474,
        "wrong_path_fetched": 4386, "cond_branches": 174,
        "mispredictions": 40, "btb_misses_taken": 0,
        "missspec_penalty_cycles": 1624, "missspec_frontend_cycles": 231,
        "missspec_iq_wait_cycles": 1353, "missspec_execute_cycles": 40,
        "dispatch_stall_cycles": 595, "rob_full_stall_cycles": 462,
        "iq_full_stall_cycles": 0, "lsq_full_stall_cycles": 0,
        "regs_full_stall_cycles": 133, "priority_stall_cycles": 0,
        "priority_dispatches": 0, "unconfident_dispatches": 0,
        "td_retire_slots": 3088, "td_wrongpath_slots": 3378,
        "td_recovery_slots": 2400, "td_fe_fetch_slots": 481,
        "td_fe_l1i_slots": 0, "td_be_rob_slots": 1730,
        "td_be_iq_slots": 0, "td_be_lsq_slots": 0,
        "td_be_regs_slots": 455, "td_be_priority_slots": 0,
        "iq_occupancy_sum": 51336, "llc_misses": 1, "l1d_misses": 167, "l1i_misses": 0,
        "smt_injections": 0,
    },
    "sjeng_pubs": {
        "cycles": 2659, "committed": 3000, "fetched": 4953,
        "wrong_path_fetched": 1887, "cond_branches": 174,
        "mispredictions": 40, "btb_misses_taken": 0,
        "missspec_penalty_cycles": 1019, "missspec_frontend_cycles": 404,
        "missspec_iq_wait_cycles": 575, "missspec_execute_cycles": 40,
        "dispatch_stall_cycles": 1196, "rob_full_stall_cycles": 10,
        "iq_full_stall_cycles": 0, "lsq_full_stall_cycles": 0,
        "regs_full_stall_cycles": 0, "priority_stall_cycles": 1186,
        "priority_dispatches": 1114, "unconfident_dispatches": 2300,
        "td_retire_slots": 3038, "td_wrongpath_slots": 898,
        "td_recovery_slots": 2400, "td_fe_fetch_slots": 158,
        "td_fe_l1i_slots": 0, "td_be_rob_slots": 37,
        "td_be_iq_slots": 0, "td_be_lsq_slots": 0,
        "td_be_regs_slots": 0, "td_be_priority_slots": 4105,
        "iq_occupancy_sum": 19916, "llc_misses": 1, "l1d_misses": 170, "l1i_misses": 0,
        "smt_injections": 0,
    },
    "gcc_age": {
        "cycles": 3108, "committed": 3000, "fetched": 6142,
        "wrong_path_fetched": 3134, "cond_branches": 276,
        "mispredictions": 39, "btb_misses_taken": 0,
        "missspec_penalty_cycles": 1043, "missspec_frontend_cycles": 236,
        "missspec_iq_wait_cycles": 768, "missspec_execute_cycles": 39,
        "dispatch_stall_cycles": 1172, "rob_full_stall_cycles": 0,
        "iq_full_stall_cycles": 138, "lsq_full_stall_cycles": 0,
        "regs_full_stall_cycles": 1034, "priority_stall_cycles": 0,
        "priority_dispatches": 0, "unconfident_dispatches": 0,
        "td_retire_slots": 3008, "td_wrongpath_slots": 2296,
        "td_recovery_slots": 2340, "td_fe_fetch_slots": 611,
        "td_fe_l1i_slots": 0, "td_be_rob_slots": 0,
        "td_be_iq_slots": 238, "td_be_lsq_slots": 0,
        "td_be_regs_slots": 3939, "td_be_priority_slots": 0,
        "iq_occupancy_sum": 60252, "llc_misses": 4, "l1d_misses": 179, "l1i_misses": 0,
        "smt_injections": 0,
    },
    "mcf_dist_pubs": {
        "cycles": 25148, "committed": 3000, "fetched": 6033,
        "wrong_path_fetched": 2901, "cond_branches": 152,
        "mispredictions": 42, "btb_misses_taken": 0,
        "missspec_penalty_cycles": 13003, "missspec_frontend_cycles": 1755,
        "missspec_iq_wait_cycles": 11205, "missspec_execute_cycles": 43,
        "dispatch_stall_cycles": 23642, "rob_full_stall_cycles": 0,
        "iq_full_stall_cycles": 167, "lsq_full_stall_cycles": 0,
        "regs_full_stall_cycles": 21184, "priority_stall_cycles": 2291,
        "priority_dispatches": 1081, "unconfident_dispatches": 3372,
        "td_retire_slots": 3107, "td_wrongpath_slots": 1727,
        "td_recovery_slots": 2580, "td_fe_fetch_slots": 110,
        "td_fe_l1i_slots": 0, "td_be_rob_slots": 0,
        "td_be_iq_slots": 269, "td_be_lsq_slots": 0,
        "td_be_regs_slots": 84228, "td_be_priority_slots": 8571,
        "iq_occupancy_sum": 260198, "llc_misses": 314, "l1d_misses": 314, "l1i_misses": 0,
        "smt_injections": 0,
    },
    "gobmk_shift": {
        "cycles": 3081, "committed": 3000, "fetched": 8765,
        "wrong_path_fetched": 5694, "cond_branches": 208,
        "mispredictions": 58, "btb_misses_taken": 0,
        "missspec_penalty_cycles": 1687, "missspec_frontend_cycles": 312,
        "missspec_iq_wait_cycles": 1317, "missspec_execute_cycles": 58,
        "dispatch_stall_cycles": 393, "rob_full_stall_cycles": 0,
        "iq_full_stall_cycles": 312, "lsq_full_stall_cycles": 0,
        "regs_full_stall_cycles": 81, "priority_stall_cycles": 0,
        "priority_dispatches": 0, "unconfident_dispatches": 0,
        "td_retire_slots": 3071, "td_wrongpath_slots": 4401,
        "td_recovery_slots": 3480, "td_fe_fetch_slots": 621,
        "td_fe_l1i_slots": 0, "td_be_rob_slots": 0,
        "td_be_iq_slots": 549, "td_be_lsq_slots": 0,
        "td_be_regs_slots": 202, "td_be_priority_slots": 0,
        "iq_occupancy_sum": 80867, "llc_misses": 1, "l1d_misses": 180, "l1i_misses": 0,
        "smt_injections": 0,
    },
}

#: Derived/side-structure metrics (floats; still deterministic).
GOLDEN_EXTRA = {
    "sjeng_base": {"predictor_accuracy": 0.7389830508474576,
                   "select_avg_grants": 2.0242802636142905,
                   "iq_priority_dispatches": 0},
    "sjeng_pubs": {"predictor_accuracy": 0.7414965986394557,
                   "select_avg_grants": 1.27830011282437,
                   "iq_priority_dispatches": 1114},
    "gcc_age": {"predictor_accuracy": 0.8406113537117904,
                "select_avg_grants": 1.3178893178893178,
                "iq_priority_dispatches": 0},
    "mcf_dist_pubs": {"predictor_accuracy": 0.7126436781609196,
                      "select_avg_grants": 0.18601876888818197,
                      "iq_priority_dispatches": 1081},
    "gobmk_shift": {"predictor_accuracy": 0.7327586206896552,
                    "select_avg_grants": 1.5335929892891917,
                    "iq_priority_dispatches": 0},
}


def _check_against_golden(result, tag):
    assert dataclasses.asdict(result.stats) == GOLDEN_STATS[tag]
    extra = GOLDEN_EXTRA[tag]
    assert result.predictor_accuracy == pytest.approx(
        extra["predictor_accuracy"], rel=0, abs=0)
    assert result.select_avg_grants == pytest.approx(
        extra["select_avg_grants"], rel=0, abs=0)
    assert result.iq_priority_dispatches == extra["iq_priority_dispatches"]


@pytest.mark.parametrize("tag", sorted(CONFIGS))
def test_stats_match_seed_golden(tag):
    workload, config = CONFIGS[tag]
    result = run_workload(workload, config, instructions=INSTRUCTIONS,
                          skip=SKIP, cache=False)
    _check_against_golden(result, tag)


@pytest.fixture(scope="module")
def trace_store(tmp_path_factory):
    """A private trace store shared by the replay goldens (one capture
    per workload, exercising warm-checkpoint reuse across configs)."""
    from repro.trace.store import TraceStore
    return TraceStore(root=tmp_path_factory.mktemp("traces"),
                      persistent=True)


@pytest.mark.parametrize("tag", sorted(CONFIGS))
def test_stats_match_seed_golden_replay(tag, trace_store):
    """Trace replay is bit-identical: the same goldens, frontend_mode
    ``"replay"`` -- every scheduling path fed from recorded traces."""
    from repro.core.simulator import simulate
    from repro.workloads.generator import build_program
    from repro.workloads.profiles import get_profile

    workload, config = CONFIGS[tag]
    profile = get_profile(workload)
    result = simulate(
        build_program(profile), config.with_frontend("replay"),
        max_instructions=INSTRUCTIONS, skip_instructions=SKIP,
        mem_seed=profile.mem_seed, trace_source=trace_store)
    assert result.frontend_mode == "replay"
    _check_against_golden(result, tag)
