"""Shared test configuration: pinned hypothesis profiles.

Property-based tests must behave identically on every CI run, so the
default profile ("ci") derandomizes hypothesis: examples are derived from
the test function itself, not from wall-clock entropy.  Developers hunting
for counterexamples can opt into more and randomized examples with
``HYPOTHESIS_PROFILE=dev pytest``.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    max_examples=60,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "dev",
    deadline=None,
    max_examples=200,
)

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))
