"""Replay front end: bit-identity with live execution, end to end.

The tentpole guarantee of the trace subsystem: ``frontend_mode="replay"``
produces *exactly* the result live functional execution produces -- same
``SimStats``, same side-structure counters -- while sharing one capture and
one set of warm checkpoints across every configuration of a sweep.
"""

import dataclasses

import pytest

from repro.core.config import ProcessorConfig
from repro.core.simulator import simulate
from repro.trace import TraceExhaustedError, TraceReplayFrontEnd, capture_trace
from repro.trace.store import TraceStore
from repro.workloads.generator import build_program
from repro.workloads.profiles import get_profile

BASE = ProcessorConfig.cortex_a72_like()

#: 3 workloads x {base, pubs}: the round-trip matrix the issue requires.
MATRIX = [(workload, tag, config)
          for workload in ("sjeng", "gcc", "mcf")
          for tag, config in (("base", BASE), ("pubs", BASE.with_pubs()))]

INSTRUCTIONS = 2000
SKIP = 2000


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    return TraceStore(root=tmp_path_factory.mktemp("traces"),
                      persistent=True)


def _run(workload, config, frontend, store, instructions=INSTRUCTIONS,
         skip=SKIP):
    profile = get_profile(workload)
    return simulate(
        build_program(profile), config.with_frontend(frontend),
        max_instructions=instructions, skip_instructions=skip,
        mem_seed=profile.mem_seed,
        trace_source=store if frontend == "replay" else None)


@pytest.mark.parametrize("workload,tag,config", MATRIX,
                         ids=[f"{w}-{t}" for w, t, _ in MATRIX])
def test_replay_reproduces_live_stats(workload, tag, config, store):
    """record -> serialize -> load -> replay == live, bit for bit."""
    live = _run(workload, config, "live", store)
    replay = _run(workload, config, "replay", store)
    assert dataclasses.asdict(replay.stats) == dataclasses.asdict(live.stats)
    assert dataclasses.asdict(replay.tracker_stats) \
        == dataclasses.asdict(live.tracker_stats)
    assert replay.predictor_accuracy == live.predictor_accuracy
    assert replay.btb_hit_rate == live.btb_hit_rate
    assert replay.iq_priority_dispatches == live.iq_priority_dispatches
    assert replay.lsq_forwards == live.lsq_forwards
    assert replay.select_avg_grants == live.select_avg_grants
    assert replay.frontend_mode == "replay" and live.frontend_mode == "live"


def test_replay_from_reloaded_store(tmp_path):
    """A trace recorded by one process and loaded by another replays the
    same stats (the serialize -> load leg of the round trip)."""
    config = BASE.with_pubs()
    recorder = TraceStore(root=tmp_path, persistent=True)
    first = _run("sjeng", config, "replay", recorder)
    loader = TraceStore(root=tmp_path, persistent=True)
    second = _run("sjeng", config, "replay", loader)
    assert loader.captures == 0  # everything came from disk
    assert dataclasses.asdict(second.stats) == dataclasses.asdict(first.stats)


def test_warm_checkpoints_shared_across_configs(store):
    """One capture + one warm training serves a whole config sweep."""
    sweep_store = TraceStore(root=store.root, persistent=False)
    pubs = BASE.pubs.with_overrides(enabled=True)
    for entries in (4, 6, 8):
        cfg = BASE.with_pubs(pubs.with_overrides(priority_entries=entries))
        _run("gobmk", cfg, "replay", sweep_store)
    assert sweep_store.captures == 1
    assert sweep_store.warm_trainings == 2   # mem + front, once each
    assert sweep_store.warm_restores == 4    # 2 components x 2 later runs


def test_replay_with_full_verification(store):
    """The differential oracle + invariants hold on a replayed run."""
    config = BASE.with_pubs().with_verification("full", interval=128)
    result = _run("sjeng", config, "replay", store)
    assert result.verified_commits == INSTRUCTIONS
    assert result.invariant_sweeps > 0


def test_replay_resume_matches_live(store):
    """run() twice on one pipeline behaves identically in both modes.

    (The second run keeps ``skip=0``: skipping with uops in flight would
    release trace records an in-flight branch can still rewind to, in
    live and replay mode alike.)
    """
    from repro.core.pipeline import Pipeline

    profile = get_profile("gcc")
    program = build_program(profile)
    live = Pipeline(program, BASE, mem_seed=profile.mem_seed)
    replay = Pipeline(program, BASE.with_frontend("replay"),
                      mem_seed=profile.mem_seed, trace_source=store)
    for pipe in (live, replay):
        pipe.run(800, skip_instructions=600)
        pipe.run(800)
    assert dataclasses.asdict(replay.stats) == dataclasses.asdict(live.stats)


def test_replay_frontend_cursor_semantics():
    profile = get_profile("sjeng")
    program = build_program(profile)
    trace = capture_trace(program, profile.mem_seed, 50)
    cursor = TraceReplayFrontEnd(trace, program)
    first = cursor.get(0)
    assert first.seq == 0 and first.inst.pc == trace.pcs[0]
    assert cursor.get(10).seq == 10
    assert cursor.retained == 11
    cursor.release(5)
    assert cursor.retained == 6
    with pytest.raises(IndexError):
        cursor.get(4)  # below the low-water mark
    cursor.release(40)  # jump past the materialized window
    assert cursor.retained == 0 and cursor.high == 40
    assert cursor.get(40).seq == 40
    with pytest.raises(TraceExhaustedError):
        cursor.get(50)  # past the captured stream


def test_replay_frontend_attach_requires_extension():
    profile = get_profile("sjeng")
    program = build_program(profile)
    long_trace = capture_trace(program, profile.mem_seed, 60)
    short_trace = capture_trace(program, profile.mem_seed, 30)
    cursor = TraceReplayFrontEnd(long_trace, program)
    with pytest.raises(ValueError):
        cursor.attach(short_trace)


def test_frontend_mode_changes_job_key():
    """Live and replay runs never share a cached result."""
    from repro.exec.jobs import SimJob, job_key

    live = SimJob.make("sjeng", BASE, 1000, 1000)
    replay = SimJob.make("sjeng", BASE.with_frontend("replay"), 1000, 1000)
    assert job_key(live) != job_key(replay)


def test_frontend_mode_validated():
    with pytest.raises(ValueError):
        BASE.with_frontend("clairvoyant")


def test_runner_env_selects_frontend(monkeypatch, tmp_path):
    from repro.analysis.runner import run_workload
    from repro.trace import store as store_module

    monkeypatch.setenv("REPRO_FRONTEND", "replay")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    store_module.reset_shared_stores()
    try:
        result = run_workload("sjeng", BASE, instructions=500, skip=500,
                              cache=False)
    finally:
        store_module.reset_shared_stores()
    assert result.frontend_mode == "replay"
    assert result.config.frontend_mode == "replay"
