"""Sampled simulation: region planning, aggregation, end-to-end accuracy.

The subsystem's contract: a plan is deterministic pure data, each region
runs as an ordinary independently-cached exec job, and the weighted
aggregate estimates the full run's metrics.  The keystone correctness
test is single-region bit-identity -- a region spanning the whole timed
window must reproduce the full replay run exactly, so any sampling error
comes from *coverage*, never from the region machinery.
"""

import math
from types import SimpleNamespace

import pytest

from repro.core.config import ProcessorConfig
from repro.core.simulator import simulate
from repro.exec.jobs import job_key
from repro.sampling import (
    DEFAULT_MAX_FRACTION,
    DEFAULT_REGIONS,
    DEFAULT_WARMUP,
    Region,
    cluster_windows,
    estimate_cpi,
    estimate_misspec_penalty,
    plan_regions,
    plan_representative_regions,
    region_jobs,
    sample_workload,
    sampled_vs_full_error,
    signature_distance,
    window_signature,
)
from repro.trace import capture_trace
from repro.trace.store import TraceStore
from repro.workloads.generator import build_program
from repro.workloads.profiles import get_profile

BASE = ProcessorConfig.cortex_a72_like()


def _result(cycles, committed, penalty=0, mispredictions=0):
    return SimpleNamespace(stats=SimpleNamespace(
        cycles=cycles, committed=committed,
        missspec_penalty_cycles=penalty, mispredictions=mispredictions))


# ----------------------------------------------------------------------
# Region and plan invariants
# ----------------------------------------------------------------------

class TestRegion:
    def test_validation(self):
        with pytest.raises(ValueError):
            Region(start=100, warmup=0, measure=0)
        with pytest.raises(ValueError):
            Region(start=100, warmup=-1, measure=10)
        with pytest.raises(ValueError):
            Region(start=100, warmup=90, detail=20, measure=10)
        with pytest.raises(ValueError):
            Region(start=100, warmup=50, measure=10, weight=0)
        region = Region(start=100, warmup=80, detail=20, measure=10)
        assert region.end == 110

    def test_region_changes_job_key(self):
        plain = BASE.with_frontend("replay")
        a = plain.with_region(1000, 500, 100)
        b = plain.with_region(2000, 500, 100)
        from repro.exec.jobs import SimJob
        keys = {job_key(SimJob.make("sjeng", cfg, 500, 0))
                for cfg in (plain, a, b)}
        assert len(keys) == 3


class TestSystematicPlan:
    def test_coverage_honors_budget(self):
        for n in (1000, 5000, 60_000, 1_000_000):
            plan = plan_regions(n, skip=2000)
            assert plan.coverage <= DEFAULT_MAX_FRACTION + 1e-9
            assert plan.regions  # never empty
            assert plan.simulated_records \
                == plan.measured_records + plan.detailed_records

    def test_windows_stay_inside_span(self):
        plan = plan_regions(10_000, skip=500, measure=400)
        for region in plan.regions:
            assert region.start >= 500
            assert region.end <= 500 + 10_000
            assert region.warmup + region.detail <= region.start

    def test_tiny_span_shrinks_window(self):
        plan = plan_regions(30, skip=0, measure=1024)
        assert len(plan.regions) == 1
        assert plan.simulated_records <= 10  # 1/3 of 30

    def test_full_prefix_warmup_when_uncapped(self):
        plan = plan_regions(9000, skip=1000, warmup=None)
        for region in plan.regions:
            assert region.warmup + region.detail == region.start

    def test_warmup_cap_applies(self):
        plan = plan_regions(60_000, skip=2000, warmup=100)
        assert all(r.warmup <= 100 for r in plan.regions)

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_regions(0)
        with pytest.raises(ValueError):
            plan_regions(100, skip=-1)
        with pytest.raises(ValueError):
            plan_regions(100, max_fraction=0)
        with pytest.raises(ValueError):
            plan_regions(100, warmup=-5)


class TestSimPointPlan:
    @pytest.fixture(scope="class")
    def trace(self):
        profile = get_profile("sjeng")
        return capture_trace(build_program(profile), profile.mem_seed,
                             26_000)

    def test_deterministic(self, trace):
        a = plan_representative_regions(trace, 20_000, skip=2000)
        b = plan_representative_regions(trace, 20_000, skip=2000)
        assert a == b

    def test_weights_cover_every_window(self, trace):
        plan = plan_representative_regions(trace, 20_000, skip=2000,
                                           measure=1000)
        assert sum(r.weight for r in plan.regions) == 20_000 // 1000
        assert len(plan.regions) <= DEFAULT_REGIONS
        assert plan.coverage <= DEFAULT_MAX_FRACTION + 1e-9
        assert all(r.warmup <= DEFAULT_WARMUP for r in plan.regions)

    def test_short_trace_rejected(self, trace):
        with pytest.raises(ValueError):
            plan_representative_regions(trace, len(trace) + 1)

    def test_distinct_job_keys_per_region(self, trace):
        plan = plan_representative_regions(trace, 20_000, skip=2000)
        jobs = region_jobs("sjeng", BASE, plan)
        keys = {job_key(job) for job in jobs}
        assert len(keys) == len(plan.regions)


# ----------------------------------------------------------------------
# Signatures and clustering
# ----------------------------------------------------------------------

class TestSignatures:
    @pytest.fixture(scope="class")
    def trace(self):
        profile = get_profile("gcc")
        return capture_trace(build_program(profile), profile.mem_seed, 4096)

    def test_signature_is_normalized_and_stable(self, trace):
        a = window_signature(trace, 0, 1024)
        b = window_signature(trace, 0, 1024)
        assert a == b
        pc_mass = sum(v for k, v in a.items() if k[0] == "pc")
        assert pc_mass == pytest.approx(1.0)

    def test_distance_metric_basics(self, trace):
        a = window_signature(trace, 0, 1024)
        b = window_signature(trace, 2048, 1024)
        assert signature_distance(a, a) == 0.0
        assert signature_distance(a, b) == signature_distance(b, a)
        assert signature_distance(a, b) >= 0.0

    def test_cluster_windows_partitions_population(self, trace):
        sigs = [window_signature(trace, i * 512, 512) for i in range(8)]
        medoids, weights = cluster_windows(sigs, 3)
        assert len(medoids) == len(weights) <= 3
        assert sorted(medoids) == sorted(set(medoids))
        assert sum(weights) == len(sigs)
        # k >= population: every window represents itself.
        medoids, weights = cluster_windows(sigs, 100)
        assert sorted(medoids) == list(range(8))
        assert all(w == 1 for w in weights)


# ----------------------------------------------------------------------
# Aggregation math
# ----------------------------------------------------------------------

class TestAggregate:
    def test_weighted_cpi_is_ratio_of_weighted_sums(self):
        results = [_result(100, 50), _result(300, 100)]
        est = estimate_cpi(results, weights=[1, 3])
        assert est.point == pytest.approx((100 + 900) / (50 + 300))
        # Spread stays unweighted: one value per region.
        assert est.summary.n == 2

    def test_unweighted_defaults_to_ones(self):
        results = [_result(100, 50), _result(300, 100)]
        assert estimate_cpi(results).point == pytest.approx(400 / 150)

    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            estimate_cpi([_result(1, 1)], weights=[1, 2])

    def test_single_region_has_no_error_claim(self):
        est = estimate_cpi([_result(100, 50)])
        assert est.point == 2.0
        assert math.isnan(est.stderr)
        assert all(math.isnan(v) for v in est.ci95)

    def test_misspec_penalty_skips_clean_regions(self):
        results = [_result(100, 50, penalty=40, mispredictions=4),
                   _result(100, 50, penalty=0, mispredictions=0)]
        est = estimate_misspec_penalty(results, weights=[2, 5])
        assert est.point == pytest.approx(80 / 8)
        assert est.summary.n == 1  # clean region contributes no spread value

    def test_all_clean_regions_yield_nan(self):
        est = estimate_misspec_penalty([_result(100, 50)])
        assert math.isnan(est.point)


# ----------------------------------------------------------------------
# End to end
# ----------------------------------------------------------------------

class TestSampleWorkload:
    def test_whole_span_region_is_bit_identical_to_full_run(self):
        """A region covering the entire timed window == the full run."""
        profile = get_profile("sjeng")
        program = build_program(profile)
        store = TraceStore(persistent=False)
        full = simulate(program, BASE.with_frontend("replay"),
                        max_instructions=1500, skip_instructions=1000,
                        mem_seed=profile.mem_seed, trace_source=store)
        region = simulate(program,
                          BASE.with_frontend("replay")
                          .with_region(start=1000, warmup=1000),
                          max_instructions=1500,
                          mem_seed=profile.mem_seed, trace_source=store)
        assert region.stats.cycles == full.stats.cycles
        assert region.stats.committed == full.stats.committed
        assert region.stats.mispredictions == full.stats.mispredictions

    @pytest.mark.parametrize("strategy", ["simpoint", "systematic"])
    def test_strategies_produce_estimates(self, strategy):
        run = sample_workload("mcf", BASE, instructions=6000, skip=1000,
                              strategy=strategy, jobs=1, cache=False,
                              store=TraceStore(persistent=False))
        assert run.coverage <= DEFAULT_MAX_FRACTION + 1e-9
        assert len(run.results) == len(run.plan.regions)
        assert run.cpi.point > 0
        if strategy == "simpoint":
            assert all(r.weight >= 1 for r in run.plan.regions)
        else:
            assert all(r.weight == 1 for r in run.plan.regions)

    def test_sampled_cpi_near_full_run(self):
        """Accuracy smoke at a small budget (the bench gates 3% at 60k)."""
        profile = get_profile("mcf")
        program = build_program(profile)
        store = TraceStore(persistent=False)
        full = simulate(program, BASE.with_frontend("replay"),
                        max_instructions=20_000, skip_instructions=2000,
                        mem_seed=profile.mem_seed, trace_source=store)
        run = sample_workload("mcf", BASE, instructions=20_000, skip=2000,
                              jobs=1, cache=False, store=store)
        assert sampled_vs_full_error(run, full) <= 0.05

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            sample_workload("mcf", strategy="psychic")

    def test_regions_cap_requires_simpoint(self):
        with pytest.raises(ValueError):
            sample_workload("mcf", strategy="systematic", regions=4)
