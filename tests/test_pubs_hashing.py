"""Unit and property tests for XOR-fold tag hashing (Sec. IV / Fig. 7)."""

import pytest
from hypothesis import given, strategies as st

from repro.pubs import hashed_tag, split_pc, xor_fold


class TestXorFold:
    def test_small_value_identity(self):
        assert xor_fold(0b1010, 8) == 0b1010

    def test_two_chunk_fold(self):
        # 0xAB XOR 0xCD
        assert xor_fold(0xABCD, 8) == (0xAB ^ 0xCD)

    def test_zero(self):
        assert xor_fold(0, 4) == 0

    def test_width_validation(self):
        with pytest.raises(ValueError):
            xor_fold(5, 0)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=1, max_value=16))
    def test_result_fits_width(self, value, width):
        assert 0 <= xor_fold(value, width) < (1 << width)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_deterministic(self, value):
        assert xor_fold(value, 8) == xor_fold(value, 8)

    def test_fold_collision_exists(self):
        """The fold is lossy by design: distinct tags can alias."""
        a = 0x01
        b = 0x01 << 8 | 0x00  # 0x0100: fold8 -> 0x01 ^ 0x00 ... == 0x01
        assert xor_fold(a, 8) == xor_fold(b, 8)
        assert a != b


class TestSplitPc:
    def test_paper_example_geometry(self):
        # Sec. IV: 128-row table -> 7 index bits, 55 = 62 - 7 tag bits.
        index, tag = split_pc(pc=(1 << 40) | (5 << 2), index_bits=7)
        assert index == 5
        assert tag == (1 << 40) >> 2 >> 7

    def test_alignment_bits_dropped(self):
        i1, t1 = split_pc(0x100, 4)
        i2, t2 = split_pc(0x103, 4)  # same instruction word
        assert (i1, t1) == (i2, t2)

    def test_zero_index_bits(self):
        index, tag = split_pc(0x40, 0)
        assert index == 0
        assert tag == 0x40 >> 2

    def test_negative_index_bits_rejected(self):
        with pytest.raises(ValueError):
            split_pc(0x40, -1)

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1),
           st.integers(min_value=0, max_value=12))
    def test_split_reassembles(self, pc, index_bits):
        index, tag = split_pc(pc, index_bits, word_width=62)
        word = (pc >> 2) & ((1 << 62) - 1)
        assert (tag << index_bits) | index == word


class TestHashedTag:
    def test_width(self):
        assert 0 <= hashed_tag(0xDEADBEEF, 7, 8) < 256

    def test_consistent_with_primitives(self):
        pc = 0xCAFE40
        _, tag = split_pc(pc, 8)
        assert hashed_tag(pc, 8, 4) == xor_fold(tag, 4)

    def test_distinguishes_most_pcs(self):
        """With 8-bit hashed tags, a few hundred distinct PCs mostly get
        distinct (index, tag) pairs -- the paper's 'hardly degrades'."""
        seen = {}
        collisions = 0
        for i in range(512):
            pc = i * 4
            key = (split_pc(pc, 8)[0], hashed_tag(pc, 8, 8))
            if key in seen:
                collisions += 1
            seen[key] = pc
        assert collisions < 16
