"""Unit tests for processor configurations (Tables I, II, IV)."""

import pytest

from repro.core import ProcessorConfig, size_models
from repro.pubs import PubsConfig


class TestTableI:
    def test_base_matches_paper(self):
        cfg = ProcessorConfig.cortex_a72_like()
        assert cfg.fetch_width == cfg.decode_width == 4
        assert cfg.issue_width == cfg.commit_width == 4
        assert cfg.rob_size == 128
        assert cfg.iq_size == 64
        assert cfg.lsq_size == 64
        assert cfg.int_phys_regs == cfg.fp_phys_regs == 128
        assert cfg.recovery_penalty == 10
        assert (cfg.fu_pool.ialu, cfg.fu_pool.imult,
                cfg.fu_pool.ldst, cfg.fu_pool.fpu) == (2, 1, 2, 2)
        assert cfg.predictor.kind == "perceptron"
        assert cfg.predictor.history_length == 34
        assert cfg.predictor.table_size == 256
        assert cfg.predictor.btb_sets == 2048 and cfg.predictor.btb_assoc == 4

    def test_base_has_no_pubs_no_age_matrix(self):
        cfg = ProcessorConfig.cortex_a72_like()
        assert not cfg.pubs.enabled
        assert not cfg.use_age_matrix


class TestVariants:
    def test_with_pubs_default_table_ii(self):
        cfg = ProcessorConfig.cortex_a72_like().with_pubs()
        assert cfg.pubs.enabled
        assert cfg.pubs.priority_entries == 6
        assert cfg.pubs.stall_policy
        assert cfg.pubs.conf_counter_bits == 6

    def test_with_age_matrix(self):
        assert ProcessorConfig.cortex_a72_like().with_age_matrix().use_age_matrix

    def test_with_overrides(self):
        cfg = ProcessorConfig.cortex_a72_like().with_overrides(iq_size=32)
        assert cfg.iq_size == 32

    def test_enlarged_predictor(self):
        p = ProcessorConfig.cortex_a72_like().predictor.enlarged()
        assert p.history_length == 36 and p.table_size == 512

    def test_priority_entries_must_fit(self):
        with pytest.raises(ValueError):
            ProcessorConfig(iq_size=4, pubs=PubsConfig(priority_entries=6))

    def test_positive_fields_validated(self):
        with pytest.raises(ValueError):
            ProcessorConfig(rob_size=0)
        with pytest.raises(ValueError):
            ProcessorConfig(recovery_penalty=-1)


class TestVerificationKnobs:
    def test_defaults_off(self):
        cfg = ProcessorConfig.cortex_a72_like()
        assert cfg.verify_level == "off"
        assert cfg.verify_interval == 256

    def test_with_verification(self):
        cfg = ProcessorConfig.cortex_a72_like().with_verification()
        assert cfg.verify_level == "full"
        sparse = cfg.with_verification("commit-only", interval=512)
        assert sparse.verify_level == "commit-only"
        assert sparse.verify_interval == 512

    def test_commit_alias_normalized(self):
        cfg = ProcessorConfig(verify_level="commit")
        assert cfg.verify_level == "commit-only"

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            ProcessorConfig(verify_level="paranoid")
        with pytest.raises(ValueError):
            ProcessorConfig(verify_interval=0)


class TestTableIv:
    def test_four_models(self):
        models = size_models()
        assert set(models) == {"small", "medium", "large", "huge"}

    def test_medium_is_default(self):
        assert size_models()["medium"] == ProcessorConfig()

    def test_windows_scale_monotonically(self):
        models = size_models()
        order = ["small", "medium", "large", "huge"]
        for field in ("iq_size", "lsq_size", "rob_size", "int_phys_regs",
                      "issue_width"):
            values = [getattr(models[name], field) for name in order]
            assert values == sorted(values)
            assert values[0] < values[-1]

    def test_window_grows_faster_than_issue_width(self):
        """Issue conflicts must increase with size (the paper's Fig. 16
        premise): IQ-entries-per-issue-slot rises monotonically."""
        models = size_models()
        ratios = [models[n].iq_size / models[n].issue_width
                  for n in ("small", "medium", "large", "huge")]
        assert ratios == sorted(ratios)


class TestPubsConfig:
    def test_disabled_factory(self):
        assert not PubsConfig.disabled().enabled

    def test_with_overrides(self):
        cfg = PubsConfig().with_overrides(priority_entries=8, stall_policy=False)
        assert cfg.priority_entries == 8 and not cfg.stall_policy

    def test_validation(self):
        with pytest.raises(ValueError):
            PubsConfig(priority_entries=-1)
        with pytest.raises(ValueError):
            PubsConfig(conf_sets=100)
        with pytest.raises(ValueError):
            PubsConfig(conf_counter_bits=0)
        with pytest.raises(ValueError):
            PubsConfig(brslice_assoc=0)
