"""Unit tests for the LLC-MPKI mode switch."""

import pytest

from repro.pubs import ModeSwitch


class TestModeSwitch:
    def test_starts_active(self):
        assert ModeSwitch().pubs_active

    def test_no_decision_before_full_window(self):
        ms = ModeSwitch(threshold_mpki=1.0, interval=1000)
        assert ms.observe(committed=999, llc_misses=999)  # way over threshold
        assert ms.stats.windows == 0

    def test_disables_above_threshold(self):
        ms = ModeSwitch(threshold_mpki=10.0, interval=1000)
        assert not ms.observe(committed=1000, llc_misses=20)  # 20 MPKI
        assert ms.last_window_mpki == pytest.approx(20.0)

    def test_stays_enabled_below_threshold(self):
        ms = ModeSwitch(threshold_mpki=10.0, interval=1000)
        assert ms.observe(committed=1000, llc_misses=5)  # 5 MPKI

    def test_reenables_when_phase_ends(self):
        ms = ModeSwitch(threshold_mpki=10.0, interval=1000)
        ms.observe(1000, 50)
        assert not ms.pubs_active
        ms.observe(2000, 51)  # only 1 miss in the second window
        assert ms.pubs_active

    def test_window_deltas_not_cumulative(self):
        ms = ModeSwitch(threshold_mpki=10.0, interval=1000)
        ms.observe(1000, 500)   # heavy first window
        ms.observe(2000, 500)   # zero misses in second window
        assert ms.last_window_mpki == 0.0
        assert ms.pubs_active

    def test_observed_every_commit_but_decides_per_window(self):
        ms = ModeSwitch(threshold_mpki=1.0, interval=100)
        for committed in range(1, 301):
            ms.observe(committed, llc_misses=committed)  # 1000 MPKI
        assert ms.stats.windows == 3
        assert not ms.pubs_active

    def test_disabled_estimator_always_active(self):
        ms = ModeSwitch(threshold_mpki=0.0, interval=10, enabled=False)
        assert ms.observe(1000, 10_000)
        assert ms.stats.windows == 0

    def test_disabled_fraction(self):
        ms = ModeSwitch(threshold_mpki=10.0, interval=100)
        ms.observe(100, 50)   # off
        ms.observe(200, 50)   # on
        assert ms.stats.disabled_fraction == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            ModeSwitch(interval=0)
        with pytest.raises(ValueError):
            ModeSwitch(threshold_mpki=-1)
