"""Tests for the seed-sweep robustness helpers."""

import math

import pytest

from repro import ProcessorConfig
from repro.analysis.robustness import (
    SweepSummary,
    speedup_is_significant,
    sweep_speedup,
)

BASE = ProcessorConfig.cortex_a72_like()
PUBS = BASE.with_pubs()


class TestSweepSummary:
    def test_statistics(self):
        s = SweepSummary((1.0, 2.0, 3.0))
        assert s.mean == pytest.approx(2.0)
        assert s.stdev == pytest.approx(1.0)
        assert s.minimum == 1.0 and s.maximum == 3.0
        assert s.stderr == pytest.approx(1.0 / 3 ** 0.5)
        assert "n=3" in str(s)

    def test_single_value(self):
        # One sample has no spread information: stdev/stderr are undefined,
        # not zero (zero would claim a perfectly tight measurement).
        s = SweepSummary((1.5,))
        assert math.isnan(s.stdev) and math.isnan(s.stderr)
        assert s.mean == 1.5 and s.minimum == 1.5 and s.maximum == 1.5
        assert "n/a" in str(s) and "n=1" in str(s)

    def test_single_value_never_significant(self):
        # Even a huge n=1 "speedup" must not pass the significance test.
        assert not speedup_is_significant(SweepSummary((5.0,)), threshold=1.0)

    def test_significance(self):
        tight = SweepSummary((1.10, 1.11, 1.09, 1.10))
        assert speedup_is_significant(tight, threshold=1.0)
        noisy = SweepSummary((0.8, 1.4, 0.9, 1.3))
        assert not speedup_is_significant(noisy, threshold=1.0)


class TestSweepSpeedup:
    def test_pubs_speedup_robust_across_seeds(self):
        summary = sweep_speedup("sjeng", BASE, PUBS, seeds=[1, 2, 3],
                                instructions=2500, skip=5000)
        assert summary.n == 3
        # Every seed shows a positive sjeng speedup.
        assert summary.minimum > 1.0
        assert speedup_is_significant(summary, threshold=1.0)

    def test_easy_program_not_significant(self):
        summary = sweep_speedup("hmmer", BASE, PUBS, seeds=[1, 2],
                                instructions=1500, skip=2000)
        assert abs(summary.mean - 1.0) < 0.08

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            sweep_speedup("sjeng", BASE, PUBS, seeds=[])
