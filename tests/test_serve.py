"""The serve front end: concurrent clients, cross-client dedup, errors.

Each test runs a real :class:`~repro.serve.server.SweepServer` on an
ephemeral localhost port inside one event loop and talks to it through
the real client library -- the same wire bytes ``repro submit --host``
and ``repro status --host`` exchange, minus the subprocesses.  The
inline backend keeps everything in-process and deterministic.
"""

import asyncio

import pytest

from repro import ProcessorConfig
from repro.analysis import run_suite
from repro.core.config import RunRequest
from repro.exec import InlineBackend, ResultCache
from repro.serve import (
    ServeError,
    SweepServer,
    fetch_status_async,
    mover_text,
    submit_sweep_async,
    topdown_summary,
)

INSTRUCTIONS = 300
SKIP = 200


def _configs():
    base = ProcessorConfig.cortex_a72_like()
    return {"base": base, "variant": base.with_pubs()}


def _request():
    return RunRequest(instructions=INSTRUCTIONS, skip=SKIP, sampling="off")


def _with_server(coro_factory, **server_kwargs):
    """Run ``coro_factory(server, port)`` against a live ephemeral server."""
    server_kwargs.setdefault("backend", InlineBackend())
    server_kwargs.setdefault("cache", False)

    async def main():
        server = SweepServer(jobs=2, **server_kwargs)
        listener = await server.start("127.0.0.1", 0)
        port = listener.sockets[0].getsockname()[1]
        try:
            return await coro_factory(server, port)
        finally:
            listener.close()
            await listener.wait_closed()
            server.close()

    return asyncio.run(main())


class TestServe:
    def test_sweep_matches_run_suite(self):
        """The streamed table is the same table a local run produces."""
        async def scenario(server, port):
            return await submit_sweep_async(
                "127.0.0.1", port, _request(), _configs(), ["sjeng", "mcf"])

        reply = _with_server(scenario)
        local = run_suite(_configs(), ["sjeng", "mcf"],
                          instructions=INSTRUCTIONS, skip=SKIP,
                          jobs=1, cache=False)
        assert reply.results() == local
        assert reply.summary["cells"] == 4
        assert reply.summary["counters"]["simulated"] == 4

    def test_concurrent_clients_deduplicate(self):
        """Two overlapping submissions share in-flight cells: the
        overlap costs zero extra simulations and both clients get
        identical results."""
        async def scenario(server, port):
            first, second = await asyncio.gather(
                submit_sweep_async("127.0.0.1", port, _request(),
                                   _configs(), ["sjeng", "mcf"]),
                submit_sweep_async("127.0.0.1", port, _request(),
                                   _configs(), ["mcf", "gobmk"]))
            return first, second, server.counters()

        first, second, counters = _with_server(scenario)
        # 3 distinct workloads x 2 configs = 6 distinct cells for
        # 8 served; the 2-cell overlap ("mcf" under both configs)
        # deduplicates whichever client arrived second.
        assert counters["cells_served"] == 8
        assert counters["simulated"] == 6
        assert counters["dedup_hits"] == 2
        assert counters["submissions"] == 2
        for config in ("base", "variant"):
            assert first.results()[config]["mcf"] == \
                second.results()[config]["mcf"]

    def test_cache_hits_skip_the_backend(self, tmp_path):
        """A warm result cache answers cells without simulating."""
        cache = ResultCache(tmp_path)

        async def scenario(server, port):
            await submit_sweep_async("127.0.0.1", port, _request(),
                                     _configs(), ["sjeng"])
            return server.counters()

        cold = _with_server(scenario, cache=cache)
        assert (cold["simulated"], cold["cache_hits"]) == (2, 0)
        warm = _with_server(scenario, cache=ResultCache(tmp_path))
        assert (warm["simulated"], warm["cache_hits"]) == (0, 2)

    def test_cell_events_carry_metrics_and_topdown(self):
        async def scenario(server, port):
            return await submit_sweep_async(
                "127.0.0.1", port, _request(), _configs(), ["sjeng"])

        reply = _with_server(scenario)
        for cell in reply.cells:
            stats = cell["result"].stats
            assert cell["metrics"]["cpi"] == pytest.approx(
                stats.cycles / stats.committed)
            summary = cell["topdown"]
            assert summary["mover"] in summary["level1"]
            assert summary["mover"] != "retiring"
            assert summary["mover_cpi"] == pytest.approx(
                summary["level1"][summary["mover"]])

    def test_status_reports_counters_and_recent_movers(self):
        async def scenario(server, port):
            await submit_sweep_async("127.0.0.1", port, _request(),
                                     _configs(), ["sjeng"])
            return await fetch_status_async("127.0.0.1", port)

        status = _with_server(scenario)
        assert status["cells_served"] == 2
        assert status["active_cells"] == 0
        recent = status["recent"]
        assert len(recent) == 2
        for entry in recent:
            assert entry["workload"] == "sjeng"
            assert "CPI" in mover_text(entry)

    def test_sampled_submissions_are_rejected(self):
        async def scenario(server, port):
            request = RunRequest(sampling="fixed")
            with pytest.raises(ServeError, match="full simulations only"):
                await submit_sweep_async("127.0.0.1", port, request,
                                         _configs(), ["sjeng"])
            # The connection survives the error: a corrected submit on
            # a fresh exchange still works.
            return await submit_sweep_async(
                "127.0.0.1", port, _request(), _configs(), ["sjeng"])

        reply = _with_server(scenario)
        assert len(reply.cells) == 2

    def test_malformed_submissions_are_rejected(self):
        async def scenario(server, port):
            cases = [
                ({"request": _request(), "configs": {},
                  "workloads": ["sjeng"]}, "ProcessorConfig"),
                ({"request": _request(), "configs": _configs(),
                  "workloads": []}, "workload names"),
                ({"request": "nope", "configs": _configs(),
                  "workloads": ["sjeng"]}, "RunRequest"),
            ]
            from repro.serve.protocol import decode_message, encode_message
            for payload, needle in cases:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port)
                writer.write(encode_message("sweep-submit", payload))
                await writer.drain()
                kind, event = decode_message(await reader.readline())
                assert kind == "error" and needle in event["message"]
                writer.close()
                await writer.wait_closed()
            return server.counters()

        counters = _with_server(scenario)
        assert counters["simulated"] == 0

    def test_unknown_kind_gets_an_error_event(self):
        async def scenario(server, port):
            from repro.serve.protocol import decode_message, encode_message
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(encode_message("coffee-request", {}))
            await writer.drain()
            kind, event = decode_message(await reader.readline())
            writer.close()
            await writer.wait_closed()
            return kind, event

        kind, event = _with_server(scenario)
        assert kind == "error"
        assert "unknown request kind" in event["message"]
