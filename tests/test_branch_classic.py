"""Unit tests for gshare / bimode / tournament and the 2-bit counter table."""

import random

import pytest

from repro.branch import (
    AlwaysTakenPredictor,
    BimodePredictor,
    CounterTable,
    GsharePredictor,
    TournamentPredictor,
)


class TestCounterTable:
    def test_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            CounterTable(100)

    def test_init_value_checked(self):
        with pytest.raises(ValueError):
            CounterTable(16, init=4)

    def test_train_saturates_both_ends(self):
        t = CounterTable(4)
        for _ in range(10):
            t.train(0, True)
        assert t.value(0) == CounterTable.STRONG_TAKEN
        for _ in range(10):
            t.train(0, False)
        assert t.value(0) == CounterTable.STRONG_NOT_TAKEN

    def test_hysteresis(self):
        t = CounterTable(4, init=CounterTable.STRONG_TAKEN)
        t.train(0, False)
        assert t.taken(0)  # one wrong outcome does not flip a strong state
        t.train(0, False)
        assert not t.taken(0)

    def test_index_wraps(self):
        t = CounterTable(4)
        t.train(5, True)
        t.train(5, True)
        assert t.taken(1)

    def test_storage_bits(self):
        assert CounterTable(1024).storage_bits() == 2048


def _train(predictor, stream):
    """stream: iterable of (pc, taken). Returns accuracy."""
    correct = 0
    n = 0
    for pc, taken in stream:
        pred = predictor.predict(pc)
        predictor.update(pc, taken, pred)
        correct += pred == taken
        n += 1
    return correct / n


def _biased_stream(pc, prob_taken, n, seed=0):
    rng = random.Random(seed)
    return [(pc, rng.random() < prob_taken) for _ in range(n)]


@pytest.mark.parametrize("cls", [GsharePredictor, BimodePredictor, TournamentPredictor])
class TestAllPredictors:
    def test_learns_constant_direction(self, cls):
        p = cls()
        acc = _train(p, [(0x40, True)] * 500)
        assert acc > 0.9

    def test_learns_strong_bias(self, cls):
        p = cls()
        _train(p, _biased_stream(0x40, 0.9, 500))
        acc = _train(p, _biased_stream(0x40, 0.9, 500, seed=1))
        assert acc > 0.75

    def test_near_chance_on_random(self, cls):
        p = cls()
        acc = _train(p, _biased_stream(0x40, 0.5, 2000))
        assert 0.3 < acc < 0.7

    def test_storage_positive(self, cls):
        assert cls().storage_bits() > 0

    def test_stats_track_accuracy(self, cls):
        p = cls()
        _train(p, [(0x80, True)] * 100)
        assert p.stats.predictions == 100
        assert p.stats.accuracy > 0.8


class TestTournamentSpecific:
    def test_chooser_prefers_better_component(self):
        """A per-PC alternating pattern is learnable by local history but
        poorly by a short global view when many branches interleave; the
        tournament should do at least as well as chance."""
        p = TournamentPredictor()
        rng = random.Random(3)
        # Branch A alternates; branch B is random noise polluting history.
        stream = []
        state = False
        for _ in range(2000):
            state = not state
            stream.append((0x100, state))
            stream.append((0x200, rng.random() < 0.5))
        acc_a = 0
        for pc, taken in stream:
            pred = p.predict(pc)
            p.update(pc, taken, pred)
            if pc == 0x100:
                acc_a += pred == taken
        assert acc_a / 2000 > 0.8


class TestAlwaysTaken:
    def test_predicts_taken(self):
        p = AlwaysTakenPredictor()
        assert p.predict(0x0)
        p.update(0x0, False, True)
        assert p.stats.mispredictions == 1
        assert p.storage_bits() == 0
