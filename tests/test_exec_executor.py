"""Sweep executor: parallel == serial, dedup, warm-cache short circuit."""

import os

from repro import ProcessorConfig
from repro.analysis import run_pair, run_suite
from repro.exec import ResultCache, SimJob, SweepExecutor, default_jobs

INSTRUCTIONS = 300
SKIP = 200

WORKLOADS = ["sjeng", "mcf"]


def _batch():
    base = ProcessorConfig.cortex_a72_like()
    return [SimJob.make(name, cfg, INSTRUCTIONS, SKIP)
            for name in WORKLOADS for cfg in (base, base.with_pubs())]


class TestSweepExecutor:
    def test_parallel_results_equal_serial(self):
        batch = _batch()
        serial = SweepExecutor(jobs=1, cache=False).run(batch)
        parallel = SweepExecutor(jobs=2, cache=False).run(batch)
        assert parallel == serial  # dataclass equality: exact stats match

    def test_results_come_back_in_request_order(self):
        batch = _batch()
        executor = SweepExecutor(jobs=1, cache=False)
        results = executor.run(batch)
        assert [r.stats.committed for r in results] == \
            [INSTRUCTIONS] * len(batch)
        # Different workloads/configs produce observably different runs.
        assert len({r.stats.cycles for r in results}) > 1
        assert results == executor.run(list(reversed(batch)))[::-1]

    def test_duplicate_jobs_simulate_once(self):
        job = _batch()[0]
        executor = SweepExecutor(jobs=1, cache=False)
        a, b = executor.run([job, job])
        assert a == b
        assert executor.simulations_run == 1
        assert executor.deduplicated == 1

    def test_duplicate_jobs_across_submissions_simulate_once(self):
        """One suite submission = one executor lifetime: a job repeated
        in a later run() call is served from the in-memory memo even
        with the persistent cache off (cold-cache dedup)."""
        job = _batch()[0]
        executor = SweepExecutor(jobs=1, cache=False)
        first = executor.run([job])
        second = executor.run([job])
        assert first == second
        assert executor.simulations_run == 1
        assert executor.deduplicated == 1

    def test_warm_cache_runs_zero_simulations(self, tmp_path):
        batch = _batch()
        cold = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
        first = cold.run(batch)
        assert cold.simulations_run == len(batch)
        warm = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
        second = warm.run(batch)
        assert warm.simulations_run == 0
        assert warm.cache.stats.hits == len(batch)
        assert second == first

    def test_summary_mentions_cache_state(self, tmp_path):
        assert "cache=off" in SweepExecutor(jobs=1, cache=False).summary()
        on = SweepExecutor(jobs=1, cache=ResultCache(tmp_path)).summary()
        assert "hits=0" in on

    def test_default_jobs_env_override(self, monkeypatch):
        # Unset (or garbage), the default is the CPUs this process may
        # actually use -- the affinity mask where the platform has one,
        # not the raw host count -- and never less than 1.
        try:
            usable = max(1, len(os.sched_getaffinity(0)))
        except (AttributeError, OSError):
            usable = os.cpu_count() or 1
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3
        monkeypatch.setenv("REPRO_JOBS", "garbage")
        assert default_jobs() == usable
        monkeypatch.setenv("REPRO_JOBS", "-2")
        assert default_jobs() == usable
        monkeypatch.delenv("REPRO_JOBS")
        assert default_jobs() == usable


class TestRunnerIntegration:
    def test_parallel_run_suite_equals_serial(self):
        base = ProcessorConfig.cortex_a72_like()
        configs = {"base": base, "pubs": base.with_pubs()}
        serial = run_suite(configs, WORKLOADS, instructions=INSTRUCTIONS,
                           skip=SKIP, jobs=1, cache=False)
        parallel = run_suite(configs, WORKLOADS, instructions=INSTRUCTIONS,
                             skip=SKIP, jobs=2, cache=False)
        assert serial == parallel
        assert set(serial) == {"base", "pubs"}
        assert set(serial["base"]) == set(WORKLOADS)

    def test_run_pair_parallel_matches_serial(self):
        base = ProcessorConfig.cortex_a72_like()
        serial = run_pair("sjeng", base, base.with_pubs(),
                          instructions=INSTRUCTIONS, skip=SKIP,
                          jobs=1, cache=False)
        parallel = run_pair("sjeng", base, base.with_pubs(),
                            instructions=INSTRUCTIONS, skip=SKIP,
                            jobs=2, cache=False)
        assert serial.base == parallel.base
        assert serial.variant == parallel.variant

    def test_run_suite_uses_persistent_cache(self, tmp_path, monkeypatch):
        import repro.analysis.runner as runner_mod
        executor = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
        monkeypatch.setattr(runner_mod, "_EXECUTOR", executor)
        configs = {"base": ProcessorConfig.cortex_a72_like()}
        first = run_suite(configs, WORKLOADS, instructions=INSTRUCTIONS,
                          skip=SKIP)
        again = run_suite(configs, WORKLOADS, instructions=INSTRUCTIONS,
                          skip=SKIP)
        assert executor.simulations_run == len(WORKLOADS)
        assert executor.cache.stats.hits >= len(WORKLOADS)
        assert first == again
