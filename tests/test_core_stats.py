"""Unit tests for simulation statistics and classification thresholds."""

import pytest

from repro.core import (
    D_BP_BRANCH_MPKI_THRESHOLD,
    MEMORY_INTENSIVE_LLC_MPKI_THRESHOLD,
    SimStats,
)


class TestDerivedMetrics:
    def test_ipc(self):
        s = SimStats(cycles=200, committed=500)
        assert s.ipc == pytest.approx(2.5)

    def test_ipc_zero_cycles(self):
        assert SimStats().ipc == 0.0

    def test_branch_mpki(self):
        s = SimStats(committed=10_000, mispredictions=42)
        assert s.branch_mpki == pytest.approx(4.2)

    def test_llc_mpki(self):
        s = SimStats(committed=2_000, llc_misses=5)
        assert s.llc_mpki == pytest.approx(2.5)

    def test_prediction_accuracy(self):
        s = SimStats(cond_branches=100, mispredictions=8)
        assert s.prediction_accuracy == pytest.approx(0.92)
        assert SimStats().prediction_accuracy == 1.0

    def test_avg_missspec_penalty(self):
        s = SimStats(mispredictions=4, missspec_penalty_cycles=120)
        assert s.avg_missspec_penalty == pytest.approx(30.0)
        assert SimStats().avg_missspec_penalty == 0.0

    def test_avg_iq_wait(self):
        s = SimStats(mispredictions=4, missspec_iq_wait_cycles=60)
        assert s.avg_missspec_iq_wait == pytest.approx(15.0)

    def test_avg_iq_occupancy(self):
        s = SimStats(cycles=10, iq_occupancy_sum=320)
        assert s.avg_iq_occupancy == pytest.approx(32.0)


class TestClassification:
    def test_paper_thresholds(self):
        assert D_BP_BRANCH_MPKI_THRESHOLD == 3.0
        assert MEMORY_INTENSIVE_LLC_MPKI_THRESHOLD == 1.0

    def test_d_bp_boundary(self):
        assert SimStats(committed=1000, mispredictions=3).is_difficult_branch_prediction
        assert not SimStats(committed=1000, mispredictions=2).is_difficult_branch_prediction

    def test_memory_intensity_boundary(self):
        assert SimStats(committed=1000, llc_misses=1).is_memory_intensive
        assert not SimStats(committed=10_000, llc_misses=9).is_memory_intensive

    def test_summary_is_one_line(self):
        s = SimStats(cycles=100, committed=150)
        text = s.summary()
        assert "\n" not in text and "IPC" in text
