"""Trace format: round-trip, corruption handling, extension, the store.

The robustness contract mirrors the result cache's: any damaged or stale
on-disk trace is a *miss* (clean re-record), never a crash -- a sweep must
survive a truncated file, a schema bump, or garbage bytes without user
intervention.
"""

import multiprocessing
import pickle

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exec.serialize import CACHE_SCHEMA_VERSION
from repro.isa.executor import FunctionalExecutor
from repro.trace import (
    REPLAY_MARGIN,
    Trace,
    TraceFormatError,
    capture_trace,
    decode_trace,
    encode_trace,
    extend_trace,
)
from repro.trace.store import TraceStore, program_fingerprint
from repro.workloads.generator import build_program
from repro.workloads.profiles import get_profile

PROFILE = get_profile("sjeng")
PROGRAM = build_program(PROFILE)


def _capture(length=1000, skip=400):
    return capture_trace(PROGRAM, PROFILE.mem_seed, length, skip=skip)


# ----------------------------------------------------------------------
# Capture correctness
# ----------------------------------------------------------------------

def test_capture_matches_functional_execution():
    trace = _capture(length=600, skip=0)
    executor = FunctionalExecutor(PROGRAM, mem_seed=PROFILE.mem_seed)
    for i in range(600):
        record = executor.step()
        assert trace.pcs[i] == record.inst.pc
        assert trace.next_pcs[i] == record.next_pc
        assert bool(trace.flags[i] & 1) == record.taken
        if record.mem_addr is not None:
            assert trace.flags[i] & 4
            assert trace.mem_addrs[i] == record.mem_addr
        else:
            assert not (trace.flags[i] & 4)


def test_capture_checkpoints_positions():
    trace = _capture(length=1000, skip=400)
    assert trace.skip_checkpoint.seq == 400
    assert trace.end_checkpoint.seq == 1000
    assert len(trace) == 1000
    no_skip = _capture(length=100, skip=0)
    assert no_skip.skip_checkpoint is None


def test_capture_validates_arguments():
    with pytest.raises(ValueError):
        capture_trace(PROGRAM, 0, 0)
    with pytest.raises(ValueError):
        capture_trace(PROGRAM, 0, 10, skip=11)


def test_checkpoint_restore_resumes_identically():
    trace = _capture(length=500, skip=200)
    resumed = trace.skip_checkpoint.restore(PROGRAM)
    fresh = FunctionalExecutor(PROGRAM, mem_seed=PROFILE.mem_seed)
    fresh.run(200)
    for a, b in zip(resumed.run(300), fresh.run(300)):
        assert (a.seq, a.inst.pc, a.taken, a.next_pc, a.mem_addr) \
            == (b.seq, b.inst.pc, b.taken, b.next_pc, b.mem_addr)


# ----------------------------------------------------------------------
# Round-trip and validation
# ----------------------------------------------------------------------

def test_encode_decode_round_trip():
    trace = _capture()
    payload = pickle.loads(pickle.dumps(encode_trace(trace)))
    loaded = decode_trace(payload)
    assert list(loaded.pcs) == list(trace.pcs)
    assert bytes(loaded.flags) == bytes(trace.flags)
    assert list(loaded.next_pcs) == list(trace.next_pcs)
    assert list(loaded.mem_addrs) == list(trace.mem_addrs)
    assert list(loaded.wb_values) == list(trace.wb_values)
    assert loaded.skip_checkpoint == trace.skip_checkpoint
    assert loaded.end_checkpoint == trace.end_checkpoint
    assert loaded.captured_skip == trace.captured_skip
    assert loaded.mem_seed == trace.mem_seed


@pytest.mark.parametrize("mutate", [
    lambda p: p.__setitem__("format", 999),          # stale schema
    lambda p: p.__setitem__("pcs", p["pcs"][:-4]),   # truncated array
    lambda p: p.__setitem__("checksum", "0" * 64),   # corrupted checksum
    lambda p: p.__setitem__("count", 7),             # inconsistent count
    lambda p: p.pop("end_checkpoint"),               # missing field
], ids=["version", "truncated", "checksum", "count", "missing-field"])
def test_decode_rejects_damaged_payloads(mutate):
    payload = encode_trace(_capture())
    mutate(payload)
    with pytest.raises(TraceFormatError):
        decode_trace(payload)


def test_decode_rejects_non_mapping():
    with pytest.raises(TraceFormatError):
        decode_trace([1, 2, 3])


# ----------------------------------------------------------------------
# Extension
# ----------------------------------------------------------------------

def test_extension_is_bit_identical_to_fresh_capture():
    short = _capture(length=700, skip=300)
    extended = extend_trace(short, PROGRAM, 1500)
    fresh = capture_trace(PROGRAM, PROFILE.mem_seed, 1500, skip=300)
    assert list(extended.pcs) == list(fresh.pcs)
    assert bytes(extended.flags) == bytes(fresh.flags)
    assert list(extended.next_pcs) == list(fresh.next_pcs)
    assert list(extended.mem_addrs) == list(fresh.mem_addrs)
    assert list(extended.wb_values) == list(fresh.wb_values)
    assert extended.end_checkpoint == fresh.end_checkpoint
    # The input trace was not mutated.
    assert len(short) == 700


def test_extension_noop_when_already_long_enough():
    trace = _capture(length=500)
    assert extend_trace(trace, PROGRAM, 400) is trace


# ----------------------------------------------------------------------
# Store
# ----------------------------------------------------------------------

def test_store_acquire_rounds_and_memoizes(tmp_path):
    store = TraceStore(root=tmp_path, persistent=True)
    trace = store.acquire(PROGRAM, PROFILE.mem_seed, 5000, skip_hint=2000)
    assert len(trace) == 2 * REPLAY_MARGIN  # rounded up to the margin
    assert store.acquire(PROGRAM, PROFILE.mem_seed, 3000) is trace
    assert store.captures == 1 and store.extensions == 0
    longer = store.acquire(PROGRAM, PROFILE.mem_seed, 2 * REPLAY_MARGIN + 1)
    assert len(longer) == 3 * REPLAY_MARGIN
    assert store.extensions == 1


def test_store_persists_across_instances(tmp_path):
    first = TraceStore(root=tmp_path, persistent=True)
    first.acquire(PROGRAM, PROFILE.mem_seed, 1000, skip_hint=500)
    second = TraceStore(root=tmp_path, persistent=True)
    trace = second.acquire(PROGRAM, PROFILE.mem_seed, 1000)
    assert second.captures == 0  # served from disk
    assert trace.captured_skip == 500


def test_store_memory_only_when_not_persistent(tmp_path):
    store = TraceStore(root=tmp_path, persistent=False)
    store.acquire(PROGRAM, PROFILE.mem_seed, 1000)
    assert not list(tmp_path.rglob("*.pkl"))
    # Still memoized in-process.
    assert store.acquire(PROGRAM, PROFILE.mem_seed, 1000) is not None
    assert store.captures == 1


@pytest.mark.parametrize("damage", [
    lambda path: path.write_bytes(path.read_bytes()[:-20]),  # truncated file
    lambda path: path.write_bytes(b"not a pickle"),          # garbage
    lambda path: path.write_bytes(
        pickle.dumps({"schema": CACHE_SCHEMA_VERSION, "key": "k",
                      "result": {"format": 0}})),
], ids=["truncated", "garbage", "stale-version"])
def test_store_rerecords_after_damage(tmp_path, damage):
    """A damaged on-disk trace is silently re-recorded, never a crash."""
    store = TraceStore(root=tmp_path, persistent=True)
    store.acquire(PROGRAM, PROFILE.mem_seed, 1000)
    entries = list(tmp_path.rglob("*.pkl"))
    assert len(entries) == 1
    damage(entries[0])
    fresh_store = TraceStore(root=tmp_path, persistent=True)
    trace = fresh_store.acquire(PROGRAM, PROFILE.mem_seed, 1000)
    assert fresh_store.captures == 1  # damage => clean re-record
    assert len(trace) >= 1000


def test_store_warm_round_trip(tmp_path):
    store = TraceStore(root=tmp_path, persistent=True)
    key = store.warm_key(PROGRAM, PROFILE.mem_seed, 100, "mem",
                         {"geometry": 1})
    assert store.get_warm(key) is None
    store.put_warm(key, ({"state": [1, 2, 3]},))
    restored = store.get_warm(key)
    assert restored == ({"state": [1, 2, 3]},)
    # Every restore yields fresh objects, never shared mutables.
    assert store.get_warm(key)[0] is not restored[0]


def test_program_fingerprint_sensitive_to_seed():
    assert program_fingerprint(PROGRAM, 0) != program_fingerprint(PROGRAM, 1)


def _race_acquire(root):
    """Worker for the cross-process claim test (fork-picklable)."""
    store = TraceStore(root=root, persistent=True)
    store.acquire(PROGRAM, PROFILE.mem_seed, 2000)
    return store.captures


def test_store_parallel_acquire_captures_once(tmp_path):
    """Concurrent cold acquires of one key record the trace exactly once.

    The ``O_EXCL`` claim file elects a single recorder; everyone else
    polls until the entry is published, so the per-process capture
    counters must sum to one across the pool.
    """
    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(4) as pool:
        counts = pool.map(_race_acquire, [tmp_path] * 4)
    assert sum(counts) == 1
    # The election leaves no claim file behind.
    assert not list(tmp_path.rglob("*.claim"))
    # And the published entry serves later processes from disk.
    follower = TraceStore(root=tmp_path, persistent=True)
    follower.acquire(PROGRAM, PROFILE.mem_seed, 2000)
    assert follower.captures == 0


# ----------------------------------------------------------------------
# Interval checkpoints (format v2)
# ----------------------------------------------------------------------

@given(interval=st.integers(min_value=32, max_value=300),
       length=st.integers(min_value=50, max_value=800),
       seat=st.integers(min_value=0, max_value=799))
def test_interval_checkpoints_round_trip_and_resume(interval, length, seat):
    """Property: cadence positions survive the round trip, and seating at
    the nearest checkpoint <= any seat resumes bit-identically.

    This is the contract mid-run region sampling leans on: replaying a
    region seats architectural state at ``checkpoint_at(seat)`` and
    fast-forwards only the residue.
    """
    seat = min(seat, length - 1)
    trace = capture_trace(PROGRAM, PROFILE.mem_seed, length,
                          checkpoint_interval=interval)
    expected = tuple(range(interval, length, interval))
    assert tuple(c.seq for c in trace.interval_checkpoints) == expected
    assert trace.checkpoint_interval == interval

    loaded = decode_trace(pickle.loads(pickle.dumps(encode_trace(trace))))
    assert loaded.checkpoint_interval == interval
    assert loaded.interval_checkpoints == trace.interval_checkpoints

    ckpt = loaded.checkpoint_at(seat)
    if ckpt is None:
        assert seat < interval  # nothing recorded at or below the seat
        executor = FunctionalExecutor(PROGRAM, mem_seed=PROFILE.mem_seed)
    else:
        assert ckpt.seq <= seat
        # Nearest: no recorded checkpoint lands in (ckpt.seq, seat].
        for other in loaded.interval_checkpoints:
            if other.seq <= seat:
                assert other.seq <= ckpt.seq
        executor = ckpt.restore(PROGRAM)
        assert executor.seq == ckpt.seq
    executor.run(seat - executor.seq)
    record = executor.step()
    assert record.inst.pc == trace.pcs[seat]
    assert record.next_pc == trace.next_pcs[seat]
    assert record.taken == bool(trace.flags[seat] & 1)


def test_interval_checkpoints_disabled_with_zero():
    trace = capture_trace(PROGRAM, PROFILE.mem_seed, 500,
                          checkpoint_interval=0)
    assert trace.checkpoint_interval == 0
    assert trace.interval_checkpoints == ()


def test_decode_rejects_misplaced_interval_checkpoint():
    trace = _capture(length=1000, skip=0)
    payload = encode_trace(trace)
    # Claim a checkpoint at a seq that is not a cadence multiple.
    payload["interval_checkpoints"] = (
        payload["end_checkpoint"],)  # seq == count: out of position
    with pytest.raises(TraceFormatError):
        decode_trace(payload)
