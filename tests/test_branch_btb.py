"""Unit tests for the branch target buffer."""

import pytest

from repro.branch import BranchTargetBuffer


class TestBtb:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(num_sets=16, assoc=2)
        assert btb.lookup(0x40) is None
        btb.install(0x40, 0x100)
        assert btb.lookup(0x40) == 0x100

    def test_install_overwrites_target(self):
        btb = BranchTargetBuffer(16, 2)
        btb.install(0x40, 0x100)
        btb.install(0x40, 0x200)
        assert btb.lookup(0x40) == 0x200

    def test_lru_eviction_within_set(self):
        btb = BranchTargetBuffer(num_sets=1, assoc=2)
        btb.install(0x0, 1)
        btb.install(0x4, 2)
        btb.lookup(0x0)       # make 0x0 MRU
        btb.install(0x8, 3)   # evicts 0x4
        assert btb.lookup(0x0) == 1
        assert btb.lookup(0x8) == 3
        assert btb.lookup(0x4) is None

    def test_distinct_sets_do_not_conflict(self):
        btb = BranchTargetBuffer(num_sets=16, assoc=1)
        btb.install(0x0, 1)
        btb.install(0x4, 2)  # next set
        assert btb.lookup(0x0) == 1
        assert btb.lookup(0x4) == 2

    def test_hit_rate_tracking(self):
        btb = BranchTargetBuffer(16, 2)
        btb.lookup(0x40)
        btb.install(0x40, 0x100)
        btb.lookup(0x40)
        assert btb.hit_rate == pytest.approx(0.5)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(num_sets=100)
        with pytest.raises(ValueError):
            BranchTargetBuffer(num_sets=16, assoc=0)

    def test_capacity_many_branches(self):
        btb = BranchTargetBuffer(num_sets=2048, assoc=4)
        for i in range(4096):
            btb.install(i * 4, i)
        hits = sum(btb.lookup(i * 4) == i for i in range(4096))
        assert hits == 4096  # 8K-entry BTB holds 4K branches easily
