"""Adaptive variance-driven sampling, the run facade, and RunRequest.

Covers the escalation loop's contract (deterministic schedule, CI-target
convergence, region-cap respect), the jackknife/floor error model behind
its stopping rule, the ``RunRequest`` precedence chain (explicit > env >
default), the sampled suite's honesty (full-budget goldens inside the
reported CIs, loud fallback when a trace is unavailable), and the
``repro.api`` facade.
"""

import math
from types import SimpleNamespace

import pytest

import repro.api as api
from repro.core.config import ProcessorConfig, RunRequest
from repro.core.simulator import simulate
from repro.sampling import (
    CI_RELATIVE_FLOOR,
    DEFAULT_CI_TARGET,
    AdaptiveRun,
    estimate_cpi,
    sample_workload,
    sample_workload_adaptive,
)
from repro.trace.store import TraceStore
from repro.workloads.generator import build_program
from repro.workloads.profiles import get_profile

BASE = ProcessorConfig.cortex_a72_like()
PUBS = BASE.with_pubs()


def _result(cycles, committed, penalty=0, mispredictions=0):
    return SimpleNamespace(stats=SimpleNamespace(
        cycles=cycles, committed=committed,
        missspec_penalty_cycles=penalty, mispredictions=mispredictions))


@pytest.fixture
def isolated_store(monkeypatch, tmp_path):
    from repro.trace import store as store_module

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    store_module.reset_shared_stores()
    yield
    store_module.reset_shared_stores()


# ----------------------------------------------------------------------
# Error model: jackknife, CI floor, zero-point honesty
# ----------------------------------------------------------------------

class TestErrorModel:
    def test_jackknife_stderr_over_weighted_terms(self):
        # terms (100,50) and (900,300): leave-one-out ratios 3 and 2,
        # jackknife variance (n-1)/n * sum((v-mean)^2) = 0.25.
        est = estimate_cpi([_result(100, 50), _result(300, 100)],
                           weights=[1, 3])
        assert est.terms == ((100, 50), (900, 300))
        assert est.stderr == pytest.approx(0.5)

    def test_ci_floor_binds_on_identical_regions(self):
        # Identical regions: jackknife spread is exactly 0, but the
        # window-tiling truncation bias still exists -- the floor keeps
        # the reported interval from claiming impossible precision.
        est = estimate_cpi([_result(100, 50)] * 4)
        assert est.point == 2.0
        assert est.ci_halfwidth == pytest.approx(CI_RELATIVE_FLOOR * 2.0)
        assert est.relative_error == pytest.approx(CI_RELATIVE_FLOOR)

    def test_zero_point_relative_error_is_nan(self):
        # A 0.0 point estimate used to ZeroDivisionError; it now carries
        # no relative-error claim, like the n=1 stderr convention.
        est = estimate_cpi([_result(0, 50), _result(0, 100)])
        assert est.point == 0.0
        assert math.isnan(est.relative_error)

    def test_zero_point_renders_na(self):
        from repro.cli import _pct
        est = estimate_cpi([_result(0, 50), _result(0, 100)])
        assert _pct(est.relative_error) == "n/a"

    def test_single_region_still_nan(self):
        est = estimate_cpi([_result(100, 50)])
        assert math.isnan(est.stderr)
        assert math.isnan(est.relative_error)


# ----------------------------------------------------------------------
# The escalation loop
# ----------------------------------------------------------------------

class TestAdaptiveEscalation:
    def _run(self, name, **kwargs):
        kwargs.setdefault("instructions", 6000)
        kwargs.setdefault("skip", 1000)
        kwargs.setdefault("max_fraction", 1.0)
        kwargs.setdefault("jobs", 1)
        kwargs.setdefault("cache", False)
        kwargs.setdefault("store", TraceStore(persistent=False))
        return sample_workload_adaptive(name, BASE, **kwargs)

    def test_returns_adaptive_run_with_rounds(self):
        run = self._run("mcf")
        assert isinstance(run, AdaptiveRun)
        assert run.rounds
        assert run.rounds[-1].regions == len(run.plan.regions)
        assert run.rounds[-1].relative_ci == pytest.approx(
            run.relative_ci, nan_ok=True)
        # Escalation only ever adds regions.
        counts = [r.regions for r in run.rounds]
        assert counts == sorted(counts)

    def test_converged_means_ci_target_met(self):
        run = self._run("mcf", ci_target=0.5)  # generous: must converge
        assert run.converged
        assert run.relative_ci <= 0.5

    def test_respects_region_cap(self):
        run = self._run("sjeng", ci_target=1e-6, regions=4,
                        max_fraction=1.0)
        assert not run.converged  # floor makes 1e-6 unreachable
        assert len(run.plan.regions) <= 4

    def test_cap_at_start_regions_never_escalates(self):
        run = self._run("sjeng", ci_target=1e-6, regions=3,
                        start_regions=3, max_fraction=1.0)
        assert len(run.plan.regions) == 3
        assert len(run.rounds) == 1

    def test_deterministic_for_fixed_trace(self):
        a = self._run("gcc", max_fraction=1.0)
        b = self._run("gcc", max_fraction=1.0)
        assert a.plan == b.plan
        assert a.cpi.point == b.cpi.point
        assert [(r.regions, r.relative_ci) for r in a.rounds] \
            == [(r.regions, r.relative_ci) for r in b.rounds]

    def test_weights_cover_every_window(self):
        run = self._run("sjeng", max_fraction=1.0)
        windows = 6000 // run.plan.regions[0].measure
        assert sum(r.weight for r in run.plan.regions) == windows

    def test_high_variance_workload_escalates_past_start(self):
        run = self._run("gcc", max_fraction=1.0, ci_target=0.02)
        assert len(run.plan.regions) > 3

    def test_validation(self):
        with pytest.raises(ValueError):
            self._run("mcf", ci_target=0.0)
        with pytest.raises(ValueError):
            self._run("mcf", start_regions=1)
        with pytest.raises(ValueError):
            self._run("mcf", batch=0)
        with pytest.raises(ValueError):
            self._run("mcf", regions=2, start_regions=3)

    def test_strategy_dispatch_from_sample_workload(self):
        run = sample_workload("mcf", BASE, instructions=6000, skip=1000,
                              strategy="adaptive", jobs=1, cache=False,
                              store=TraceStore(persistent=False))
        assert isinstance(run, AdaptiveRun)
        assert run.ci_target == DEFAULT_CI_TARGET

    def test_ci_target_requires_adaptive(self):
        with pytest.raises(ValueError):
            sample_workload("mcf", strategy="simpoint", ci_target=0.05)


# ----------------------------------------------------------------------
# RunRequest: validation and precedence (explicit > env > default)
# ----------------------------------------------------------------------

class TestRunRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            RunRequest(sampling="psychic")
        with pytest.raises(ValueError):
            RunRequest(frontend="psychic")
        with pytest.raises(ValueError):
            RunRequest(ci_target=-1.0)
        with pytest.raises(ValueError):
            RunRequest(sampling="fixed", ci_target=0.05)
        with pytest.raises(ValueError):
            RunRequest(instructions=0)
        with pytest.raises(ValueError):
            RunRequest(max_fraction=1.5)
        assert RunRequest(sampling="adaptive", ci_target=0.05)

    def test_env_fills_unset_sampling(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLING", "fixed")
        assert RunRequest().resolved().sampling == "fixed"

    def test_explicit_sampling_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLING", "adaptive")
        assert RunRequest(sampling="off").resolved().sampling == "off"

    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SAMPLING", raising=False)
        assert RunRequest().resolved().sampling == "off"

    def test_env_ci_target(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLING", "adaptive")
        monkeypatch.setenv("REPRO_CI_TARGET", "0.02")
        assert RunRequest().resolved().ci_target == pytest.approx(0.02)

    def test_explicit_ci_target_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CI_TARGET", "0.02")
        req = RunRequest(sampling="adaptive", ci_target=0.1).resolved()
        assert req.ci_target == pytest.approx(0.1)

    def test_with_overrides_skips_none(self):
        req = RunRequest(jobs=2).with_overrides(jobs=None, sampling="fixed")
        assert req.jobs == 2 and req.sampling == "fixed"

    def test_cli_flags_map_onto_request(self):
        from repro.cli import _request_from_args, build_parser
        args = build_parser().parse_args(
            ["run", "sjeng", "-n", "5000", "--skip", "700", "--jobs", "2",
             "--no-cache", "--frontend", "replay",
             "--sampling", "adaptive", "--ci-target", "0.02"])
        req = _request_from_args(args)
        assert req.instructions == 5000 and req.skip == 700
        assert req.jobs == 2 and req.cache is False
        assert req.frontend == "replay"
        assert req.sampling == "adaptive"
        assert req.ci_target == pytest.approx(0.02)

    def test_shared_flags_on_every_simulating_command(self):
        parser = build = None
        from repro.cli import build_parser
        for argv in (["run", "x"], ["compare", "x"], ["suite"],
                     ["sample"], ["verify"], ["profile", "x"]):
            args = build_parser().parse_args(argv + ["--sampling", "off",
                                                     "--jobs", "3"])
            assert args.sampling == "off" and args.jobs == 3


# ----------------------------------------------------------------------
# Sampled entry points
# ----------------------------------------------------------------------

class TestSampledRunners:
    def test_off_mode_keeps_classic_types(self, isolated_store):
        r = api.run_workload("hmmer", BASE, instructions=600, skip=300,
                             cache=False)
        assert not isinstance(r, api.WorkloadRun)
        assert r.stats.committed == 600

    def test_sampled_run_workload_returns_cell(self, isolated_store):
        cell = api.run_workload("mcf", BASE, instructions=20_000,
                                skip=2_000, cache=False,
                                sampling="fixed", jobs=1)
        assert isinstance(cell, api.WorkloadRun)
        assert cell.is_sampled and cell.fallback_reason is None
        assert cell.cpi > 0 and cell.ipc == pytest.approx(1 / cell.cpi)
        lo, hi = cell.cpi_ci95
        assert lo <= cell.cpi <= hi
        with pytest.raises(AttributeError):
            cell.stats  # estimates, not counters

    def test_request_object_routes_sampling(self, isolated_store):
        req = RunRequest(instructions=20_000, skip=2_000, cache=False,
                         jobs=1, sampling="adaptive", ci_target=0.5)
        cell = api.run_workload("mcf", BASE, request=req)
        assert isinstance(cell.sampled, AdaptiveRun)
        assert cell.sampled.converged

    def test_env_sampling_reaches_runner(self, isolated_store, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLING", "fixed")
        cell = api.run_workload("mcf", BASE, instructions=20_000,
                                skip=2_000, cache=False, jobs=1)
        assert isinstance(cell, api.WorkloadRun) and cell.is_sampled

    def test_sampled_pair_has_speedup_ci(self, isolated_store):
        pair = api.run_pair("sjeng", BASE, PUBS, instructions=20_000,
                            skip=2_000, cache=False, jobs=1,
                            sampling="fixed")
        assert pair.base is None and pair.base_cell.is_sampled
        rel = pair.speedup_relative_ci
        assert rel > 0
        lo, hi = pair.speedup_ci95
        assert lo <= pair.speedup <= hi

    def test_full_pair_has_no_ci_claim(self, isolated_store):
        pair = api.run_pair("sjeng", BASE, PUBS, instructions=800,
                            skip=400, cache=False)
        assert pair.base.stats.committed == 800  # classic access works
        assert math.isnan(pair.speedup_relative_ci)

    def test_fallback_is_loud_and_full(self, isolated_store, monkeypatch):
        def refuse(*args, **kwargs):
            raise OSError("trace store unavailable")
        monkeypatch.setattr("repro.sampling.run.acquire_span_trace", refuse)
        cell = api.run_workload("mcf", BASE, instructions=800, skip=400,
                                cache=False, sampling="fixed")
        assert not cell.is_sampled
        assert "OSError" in cell.fallback_reason
        assert cell.full.stats.committed == 800
        assert math.isnan(cell.relative_ci)  # exact -> no CI claim

    def test_other_errors_propagate(self, isolated_store):
        with pytest.raises(ValueError):
            api.run_workload("mcf", BASE, instructions=800, skip=400,
                             sampling="fixed", request=None, cache=False,
                             ci_target=0.05)  # ci_target needs adaptive


class TestSampledSuiteGoldens:
    def test_cells_cover_full_budget_goldens(self, isolated_store):
        """Every sampled cell's CI must contain the full-budget value."""
        cfgs = {"base": BASE, "pubs": PUBS}
        names = ["mcf", "sjeng"]
        full = api.run_suite(cfgs, names, instructions=20_000, skip=2_000,
                             cache=False, jobs=1)
        sampled = api.run_suite(cfgs, names, instructions=20_000,
                                skip=2_000, cache=False, jobs=1,
                                sampling="adaptive")
        checked = 0
        for config_name in cfgs:
            for name in names:
                stats = full[config_name][name].stats
                golden = stats.cycles / stats.committed
                cell = sampled[config_name][name]
                assert cell.is_sampled, cell.fallback_reason
                lo, hi = cell.cpi_ci95
                assert lo <= golden <= hi, \
                    f"{config_name}/{name}: {golden} outside ({lo}, {hi})"
                # Sampling must actually save work.
                assert cell.simulated_records < 20_000
                checked += 1
        assert checked == 4


# ----------------------------------------------------------------------
# The facade
# ----------------------------------------------------------------------

class TestApiFacade:
    def test_exports(self):
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_facade_is_the_runner(self):
        from repro.analysis import runner
        assert api.run_workload is runner.run_workload
        assert api.run_pair is runner.run_pair
        assert api.run_suite is runner.run_suite

    def test_root_package_re_exports(self):
        import repro
        assert repro.RunRequest is RunRequest
        assert repro.sample_workload is sample_workload


class TestCliSamplingGuards:
    def test_verify_rejects_sampled_mode(self, capsys):
        from repro.cli import main
        assert main(["verify", "--workload", "sjeng", "--sampling",
                     "fixed", "-n", "400", "--skip", "200"]) == 2
        assert "--sampling must be off" in capsys.readouterr().err

    def test_sample_rejects_off(self, capsys):
        from repro.cli import main
        assert main(["sample", "mcf", "--sampling", "off"]) == 2
        assert "always samples" in capsys.readouterr().err
